//! # bonsai-bdd
//!
//! A from-scratch, performance-grade **reduced ordered binary decision
//! diagram** (ROBDD, Bryant 1986) manager, replacing the JavaBDD library
//! the Bonsai paper uses (§5.1).
//!
//! The compression algorithm needs exactly one property from its BDD
//! package: *canonicity*. Two interface policies are semantically equivalent
//! iff their compiled BDDs are the same node — which makes the equivalence
//! test performed millions of times inside abstraction refinement an O(1)
//! pointer comparison (paper: "two BDDs are semantically-equivalent iff
//! their pointers are the same").
//!
//! Design notes (the CUDD school, sized for a shared per-run arena):
//!
//! * **Complement edges.** A [`Ref`] is a `u32` whose low bit marks
//!   negation; a function and its complement share one stored node, halving
//!   the arena and making [`Bdd::not`] a free bit-flip (no `not` memo, no
//!   allocation). Canonical form: the *high* edge of a stored node is never
//!   complemented, and there is a single terminal (`⊤`; `⊥` is its
//!   complement) — so structural identity remains semantic identity.
//! * **Open-addressed unique table** with a multiply-xor-shift hasher
//!   (no SipHash): one flat `u32` slot array, linear probing, amortized
//!   growth. The table enforces both reduction rules.
//! * **Bounded direct-mapped apply cache**: a fixed power-of-two array of
//!   `(op, lhs, rhs) → result` entries, overwritten on collision. Memory
//!   stays bounded no matter how many operations run through a shared
//!   arena, and lookups are one index computation.
//! * **Arena statistics** ([`Bdd::stats`]): live/peak node counts and
//!   cache hit rates, so callers (the compression engine) can report how
//!   much sharing a run achieved.
//! * One arena ([`Bdd`]) owns all nodes; variable order is the numeric
//!   order of [`Var`] indices. No `Rc`, no interior mutability, no unsafe.
//!
//! ```
//! use bonsai_bdd::Bdd;
//!
//! let mut bdd = Bdd::new();
//! let (x, y) = (bdd.var(0), bdd.var(1));
//! let a = bdd.and(x, y);
//! let not_x = bdd.not(x);
//! let not_y = bdd.not(y);
//! let b_inner = bdd.or(not_x, not_y);
//! let b = bdd.not(b_inner);
//! assert_eq!(a, b); // De Morgan, witnessed by canonicity
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;

/// A boolean variable. Lower indices are tested closer to the root.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub u32);

/// A reference to a BDD node inside a [`Bdd`] arena: a node index tagged
/// with a complement bit (bit 0).
///
/// `Ref`s obtained from the same arena are canonical: two formulas are
/// logically equivalent iff their `Ref`s are equal.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ref(u32);

impl Ref {
    /// The constant true function: the terminal node, uncomplemented.
    pub const TRUE: Ref = Ref(0);
    /// The constant false function: the complement edge to the terminal.
    pub const FALSE: Ref = Ref(1);

    /// True if this is one of the two constant functions.
    #[inline]
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }

    /// True if the reference carries the complement tag.
    #[inline]
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// Raw tagged value (stable for the lifetime of the arena); useful as
    /// a hash key in caller-side tables.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The untagged (positive-phase) version of this reference.
    #[inline]
    fn regular(self) -> Ref {
        Ref(self.0 & !1)
    }

    /// The stored node index.
    #[inline]
    fn index(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Complement as a pure bit-flip (the whole point of tagged edges).
    #[inline]
    fn flip(self) -> Ref {
        Ref(self.0 ^ 1)
    }

    /// XOR another ref's complement bit onto this one.
    #[inline]
    fn xor_tag(self, other: Ref) -> Ref {
        Ref(self.0 ^ (other.0 & 1))
    }
}

impl fmt::Debug for Ref {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Ref::TRUE => write!(f, "⊤"),
            Ref::FALSE => write!(f, "⊥"),
            Ref(i) if i & 1 == 1 => write!(f, "¬@{}", i >> 1),
            Ref(i) => write!(f, "@{}", i >> 1),
        }
    }
}

/// Terminal marker stored in the `var` field of the terminal node.
const TERMINAL_VAR: u32 = u32::MAX;

/// A stored node. Invariants: `hi` is never complemented (canonical form
/// for complement edges), `lo != hi`, and both children test later
/// variables.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Node {
    var: u32,
    lo: Ref,
    hi: Ref,
}

/// Binary operations that go through the apply cache. `Or` is not here:
/// it is normalized to `And` by De Morgan (both directions are free with
/// complement edges), doubling cache sharing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
enum Op {
    And = 0,
    Xor = 1,
}

/// SplitMix64 finalizer: a fast, well-mixed hash step (no SipHash).
#[inline]
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[inline]
fn hash3(a: u32, b: u32, c: u32) -> u64 {
    mix64((a as u64) << 42 ^ (b as u64) << 21 ^ c as u64)
}

/// Open-addressed unique table: maps `(var, lo, hi)` to a node index by
/// probing a flat power-of-two slot array. Slot payloads are node indices
/// into the arena's node vector; `EMPTY` marks a free slot.
struct UniqueTable {
    slots: Vec<u32>,
    len: usize,
}

const EMPTY: u32 = u32::MAX;

impl UniqueTable {
    fn new() -> Self {
        UniqueTable {
            slots: vec![EMPTY; 1 << 12],
            len: 0,
        }
    }

    #[inline]
    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    /// Finds the node's slot (occupied by `nodes[slot]` equal to the key)
    /// or the empty slot where it belongs.
    #[inline]
    fn probe(&self, nodes: &[Node], key: &Node) -> (usize, Option<u32>) {
        let mut i = hash3(key.var, key.lo.0, key.hi.0) as usize & self.mask();
        loop {
            let s = self.slots[i];
            if s == EMPTY {
                return (i, None);
            }
            if nodes[s as usize] == *key {
                return (i, Some(s));
            }
            i = (i + 1) & self.mask();
        }
    }

    /// Inserts a freshly pushed node index at a previously probed slot,
    /// growing (and rehashing) past 70% load.
    fn insert(&mut self, nodes: &[Node], slot: usize, id: u32) {
        self.slots[slot] = id;
        self.len += 1;
        if self.len * 10 >= self.slots.len() * 7 {
            self.grow(nodes);
        }
    }

    fn grow(&mut self, nodes: &[Node]) {
        let new_cap = self.slots.len() * 2;
        let mut slots = vec![EMPTY; new_cap];
        let mask = new_cap - 1;
        for &s in &self.slots {
            if s == EMPTY {
                continue;
            }
            let n = &nodes[s as usize];
            let mut i = hash3(n.var, n.lo.0, n.hi.0) as usize & mask;
            while slots[i] != EMPTY {
                i = (i + 1) & mask;
            }
            slots[i] = s;
        }
        self.slots = slots;
    }
}

/// One entry of the direct-mapped apply cache.
#[derive(Clone, Copy)]
struct ApplyEntry {
    op: u8,
    a: u32,
    b: u32,
    result: Ref,
}

const APPLY_EMPTY: ApplyEntry = ApplyEntry {
    op: u8::MAX,
    a: u32::MAX,
    b: u32::MAX,
    result: Ref::FALSE,
};

/// Bounded direct-mapped apply cache: one slot per hash bucket, overwritten
/// on collision. Memory is fixed at construction time.
struct ApplyCache {
    entries: Vec<ApplyEntry>,
    lookups: u64,
    hits: u64,
}

impl ApplyCache {
    fn with_bits(bits: u32) -> Self {
        ApplyCache {
            entries: vec![APPLY_EMPTY; 1 << bits],
            lookups: 0,
            hits: 0,
        }
    }

    #[inline]
    fn slot(&self, op: Op, a: Ref, b: Ref) -> usize {
        hash3(op as u32, a.0, b.0) as usize & (self.entries.len() - 1)
    }

    #[inline]
    fn get(&mut self, op: Op, a: Ref, b: Ref) -> Option<Ref> {
        self.lookups += 1;
        let e = self.entries[self.slot(op, a, b)];
        if e.op == op as u8 && e.a == a.0 && e.b == b.0 {
            self.hits += 1;
            Some(e.result)
        } else {
            None
        }
    }

    #[inline]
    fn put(&mut self, op: Op, a: Ref, b: Ref, result: Ref) {
        let i = self.slot(op, a, b);
        self.entries[i] = ApplyEntry {
            op: op as u8,
            a: a.0,
            b: b.0,
            result,
        };
    }
}

/// A point-in-time snapshot of arena health (see [`Bdd::stats`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct BddStats {
    /// Live stored nodes (including the terminal). With complement edges
    /// this is roughly half the node count a plain arena would hold.
    pub nodes: usize,
    /// Peak stored node count over the arena's lifetime (equals `nodes`
    /// while the arena performs no garbage collection; kept separate so
    /// the stats contract survives a future GC).
    pub peak_nodes: usize,
    /// Apply-cache probes.
    pub apply_lookups: u64,
    /// Apply-cache hits.
    pub apply_hits: u64,
    /// Unique-table (hash-cons) probes from `mk`.
    pub unique_lookups: u64,
    /// Unique-table probes answered by an existing node.
    pub unique_hits: u64,
    /// Apply-cache capacity in entries.
    pub apply_capacity: usize,
}

impl BddStats {
    /// Fraction of apply probes answered from the cache (0 when idle).
    pub fn apply_hit_rate(&self) -> f64 {
        if self.apply_lookups == 0 {
            0.0
        } else {
            self.apply_hits as f64 / self.apply_lookups as f64
        }
    }

    /// Fraction of `mk` calls that deduplicated into an existing node.
    pub fn unique_hit_rate(&self) -> f64 {
        if self.unique_lookups == 0 {
            0.0
        } else {
            self.unique_hits as f64 / self.unique_lookups as f64
        }
    }

    /// Publishes this snapshot into the `bdd.*` registry metrics. The
    /// counters here are cumulative for the arena's lifetime, so the
    /// registry mirrors them with `set` (and keeps the node high-water
    /// mark with `set_max` — a process may hold several arenas).
    pub fn publish(&self) {
        bonsai_obs::set("bdd.arena.nodes", self.nodes as u64);
        bonsai_obs::set_max("bdd.arena.peak_nodes", self.peak_nodes as u64);
        bonsai_obs::set("bdd.apply.lookups", self.apply_lookups);
        bonsai_obs::set("bdd.apply.hits", self.apply_hits);
        bonsai_obs::set("bdd.unique.lookups", self.unique_lookups);
        bonsai_obs::set("bdd.unique.hits", self.unique_hits);
    }
}

/// Default apply-cache size: 2^16 entries (1 MiB).
pub const DEFAULT_APPLY_CACHE_BITS: u32 = 16;

/// The BDD arena: owns every node, the unique table and the apply cache.
///
/// All operations take `&mut self` because they may allocate nodes; results
/// are plain [`Ref`]s that stay valid for the arena's lifetime.
pub struct Bdd {
    nodes: Vec<Node>,
    unique: UniqueTable,
    apply_cache: ApplyCache,
    unique_lookups: u64,
    unique_hits: u64,
}

impl Default for Bdd {
    fn default() -> Self {
        Self::new()
    }
}

impl Bdd {
    /// Creates an empty arena containing just the terminal node, with the
    /// default apply-cache size.
    pub fn new() -> Self {
        Self::with_apply_cache_bits(DEFAULT_APPLY_CACHE_BITS)
    }

    /// Creates an empty arena with a `2^bits`-entry apply cache
    /// (16 bytes per entry). `bits` is clamped to `[8, 28]`.
    pub fn with_apply_cache_bits(bits: u32) -> Self {
        let one = Node {
            var: TERMINAL_VAR,
            lo: Ref::TRUE,
            hi: Ref::TRUE,
        };
        Bdd {
            nodes: vec![one],
            unique: UniqueTable::new(),
            apply_cache: ApplyCache::with_bits(bits.clamp(8, 28)),
            unique_lookups: 0,
            unique_hits: 0,
        }
    }

    /// Total number of live stored nodes (including the terminal). A
    /// function and its complement share one node.
    pub fn arena_size(&self) -> usize {
        self.nodes.len()
    }

    /// Current arena statistics. Each snapshot is also published into
    /// the `bdd.*` metrics of the process registry ([`bonsai_obs`]), so
    /// any caller that reads stats keeps the telemetry surface current.
    pub fn stats(&self) -> BddStats {
        let stats = BddStats {
            nodes: self.nodes.len(),
            peak_nodes: self.nodes.len(),
            apply_lookups: self.apply_cache.lookups,
            apply_hits: self.apply_cache.hits,
            unique_lookups: self.unique_lookups,
            unique_hits: self.unique_hits,
            apply_capacity: self.apply_cache.entries.len(),
        };
        stats.publish();
        stats
    }

    /// One of the two constant functions.
    #[inline]
    pub fn constant(&self, value: bool) -> Ref {
        if value {
            Ref::TRUE
        } else {
            Ref::FALSE
        }
    }

    /// The positive literal `v`.
    pub fn var(&mut self, v: u32) -> Ref {
        self.mk(v, Ref::FALSE, Ref::TRUE)
    }

    /// The negative literal `¬v`.
    pub fn nvar(&mut self, v: u32) -> Ref {
        self.mk(v, Ref::TRUE, Ref::FALSE)
    }

    #[inline]
    fn node(&self, r: Ref) -> Node {
        self.nodes[r.index()]
    }

    /// The variable tested at the root of `r`, or `None` for constants.
    pub fn root_var(&self, r: Ref) -> Option<Var> {
        let v = self.node(r).var;
        (v != TERMINAL_VAR).then_some(Var(v))
    }

    /// The low (variable=false) cofactor of a non-constant function.
    pub fn lo(&self, r: Ref) -> Ref {
        debug_assert!(!r.is_const());
        self.node(r).lo.xor_tag(r)
    }

    /// The high (variable=true) cofactor of a non-constant function.
    pub fn hi(&self, r: Ref) -> Ref {
        debug_assert!(!r.is_const());
        self.node(r).hi.xor_tag(r)
    }

    /// Hash-consing constructor enforcing the reduction rules and the
    /// complement-edge canonical form (high edge never complemented).
    fn mk(&mut self, var: u32, lo: Ref, hi: Ref) -> Ref {
        debug_assert!(var != TERMINAL_VAR);
        if lo == hi {
            return lo; // redundant test elimination
        }
        // Canonical form: push a complemented high edge through the node.
        if hi.is_complemented() {
            return self.mk_raw(var, lo.flip(), hi.flip()).flip();
        }
        self.mk_raw(var, lo, hi)
    }

    fn mk_raw(&mut self, var: u32, lo: Ref, hi: Ref) -> Ref {
        debug_assert!(!hi.is_complemented());
        let key = Node { var, lo, hi };
        self.unique_lookups += 1;
        let (slot, found) = self.unique.probe(&self.nodes, &key);
        if let Some(id) = found {
            self.unique_hits += 1;
            return Ref(id << 1);
        }
        let id = self.nodes.len() as u32;
        debug_assert!(id < u32::MAX >> 1, "BDD arena overflow");
        self.nodes.push(key);
        self.unique.insert(&self.nodes, slot, id);
        Ref(id << 1)
    }

    /// Logical negation: a free bit-flip on the complement tag.
    #[inline]
    pub fn not(&self, r: Ref) -> Ref {
        r.flip()
    }

    /// Logical conjunction.
    pub fn and(&mut self, a: Ref, b: Ref) -> Ref {
        // Terminal and absorption cases.
        if a == Ref::FALSE || b == Ref::FALSE || a == b.flip() {
            return Ref::FALSE;
        }
        if a == Ref::TRUE || a == b {
            return b;
        }
        if b == Ref::TRUE {
            return a;
        }
        // Commutative: normalize operand order for the cache.
        let (a, b) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        if let Some(m) = self.apply_cache.get(Op::And, a, b) {
            return m;
        }
        let na = self.node(a);
        let nb = self.node(b);
        let var = na.var.min(nb.var);
        let (a_lo, a_hi) = if na.var == var {
            (na.lo.xor_tag(a), na.hi.xor_tag(a))
        } else {
            (a, a)
        };
        let (b_lo, b_hi) = if nb.var == var {
            (nb.lo.xor_tag(b), nb.hi.xor_tag(b))
        } else {
            (b, b)
        };
        let lo = self.and(a_lo, b_lo);
        let hi = self.and(a_hi, b_hi);
        let result = self.mk(var, lo, hi);
        self.apply_cache.put(Op::And, a, b, result);
        result
    }

    /// Logical disjunction, by De Morgan through the (free) complement —
    /// shares the `And` cache instead of filling a second one.
    pub fn or(&mut self, a: Ref, b: Ref) -> Ref {
        self.and(a.flip(), b.flip()).flip()
    }

    /// Exclusive or.
    pub fn xor(&mut self, a: Ref, b: Ref) -> Ref {
        // xor(¬a, b) == ¬xor(a, b): strip both tags, reapply their parity.
        let parity = (a.0 ^ b.0) & 1;
        let (a, b) = (a.regular(), b.regular());
        let r = if a == Ref::TRUE {
            b.flip()
        } else if b == Ref::TRUE {
            a.flip()
        } else if a == b {
            Ref::FALSE
        } else {
            let (a, b) = if a.0 <= b.0 { (a, b) } else { (b, a) };
            if let Some(m) = self.apply_cache.get(Op::Xor, a, b) {
                m
            } else {
                let na = self.node(a);
                let nb = self.node(b);
                let var = na.var.min(nb.var);
                let (a_lo, a_hi) = if na.var == var {
                    (na.lo, na.hi)
                } else {
                    (a, a)
                };
                let (b_lo, b_hi) = if nb.var == var {
                    (nb.lo, nb.hi)
                } else {
                    (b, b)
                };
                let lo = self.xor(a_lo, b_lo);
                let hi = self.xor(a_hi, b_hi);
                let result = self.mk(var, lo, hi);
                self.apply_cache.put(Op::Xor, a, b, result);
                result
            }
        };
        Ref(r.0 ^ parity)
    }

    /// Implication `a → b`.
    pub fn implies(&mut self, a: Ref, b: Ref) -> Ref {
        self.or(a.flip(), b)
    }

    /// Biconditional `a ↔ b`.
    pub fn iff(&mut self, a: Ref, b: Ref) -> Ref {
        self.xor(a, b).flip()
    }

    /// If-then-else `(c ∧ t) ∨ (¬c ∧ e)`.
    pub fn ite(&mut self, c: Ref, t: Ref, e: Ref) -> Ref {
        let ct = self.and(c, t);
        let ce = self.and(c.flip(), e);
        self.or(ct, ce)
    }

    /// Conjunction of many operands (`⊤` for none).
    pub fn and_all(&mut self, operands: impl IntoIterator<Item = Ref>) -> Ref {
        operands
            .into_iter()
            .fold(Ref::TRUE, |acc, r| self.and(acc, r))
    }

    /// Disjunction of many operands (`⊥` for none).
    pub fn or_all(&mut self, operands: impl IntoIterator<Item = Ref>) -> Ref {
        operands
            .into_iter()
            .fold(Ref::FALSE, |acc, r| self.or(acc, r))
    }

    /// Restriction `f[v := value]` (Shannon cofactor).
    pub fn restrict(&mut self, f: Ref, v: Var, value: bool) -> Ref {
        if f.is_const() {
            return f;
        }
        let n = self.node(f);
        if n.var > v.0 {
            return f; // v does not occur in f
        }
        if n.var == v.0 {
            return (if value { n.hi } else { n.lo }).xor_tag(f);
        }
        let lo = self.restrict(n.lo.xor_tag(f), v, value);
        let hi = self.restrict(n.hi.xor_tag(f), v, value);
        self.mk(n.var, lo, hi)
    }

    /// Existential quantification `∃v. f`.
    pub fn exists(&mut self, f: Ref, v: Var) -> Ref {
        let lo = self.restrict(f, v, false);
        let hi = self.restrict(f, v, true);
        self.or(lo, hi)
    }

    /// Universal quantification `∀v. f`.
    pub fn forall(&mut self, f: Ref, v: Var) -> Ref {
        let lo = self.restrict(f, v, false);
        let hi = self.restrict(f, v, true);
        self.and(lo, hi)
    }

    /// Evaluates `f` under a total assignment (indexed by variable number;
    /// variables beyond the slice are taken as false).
    pub fn eval(&self, f: Ref, assignment: &[bool]) -> bool {
        let mut r = f;
        while !r.is_const() {
            let n = self.node(r);
            let bit = assignment.get(n.var as usize).copied().unwrap_or(false);
            r = (if bit { n.hi } else { n.lo }).xor_tag(r);
        }
        r == Ref::TRUE
    }

    /// Number of distinct stored nodes reachable from `f` (including the
    /// terminal): the conventional "BDD size" under complement edges.
    pub fn size(&self, f: Ref) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.regular()];
        while let Some(r) = stack.pop() {
            if seen.insert(r) && !r.is_const() {
                let n = self.node(r);
                stack.push(n.lo.regular());
                stack.push(n.hi.regular());
            }
        }
        seen.len()
    }

    /// The set of variables appearing in `f`, ascending.
    pub fn support(&self, f: Ref) -> Vec<Var> {
        let mut vars = std::collections::BTreeSet::new();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.regular()];
        while let Some(r) = stack.pop() {
            if r.is_const() || !seen.insert(r) {
                continue;
            }
            let n = self.node(r);
            vars.insert(Var(n.var));
            stack.push(n.lo.regular());
            stack.push(n.hi.regular());
        }
        vars.into_iter().collect()
    }

    /// Number of satisfying assignments over the first `nvars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `f` mentions a variable `>= nvars`.
    pub fn sat_count(&self, f: Ref, nvars: u32) -> u128 {
        // memo: per regular node, the count over variables [node.var, nvars).
        let mut memo: HashMap<u32, u128> = HashMap::new();
        self.count_from(f, 0, nvars, &mut memo)
    }

    /// Count of satisfying assignments of `f` over variables
    /// `[from, nvars)`; `f`'s root variable must be `>= from`.
    fn count_from(&self, f: Ref, from: u32, nvars: u32, memo: &mut HashMap<u32, u128>) -> u128 {
        let full = 1u128 << (nvars - from);
        if f == Ref::TRUE {
            return full;
        }
        if f == Ref::FALSE {
            return 0;
        }
        let n = self.node(f);
        assert!(n.var < nvars, "sat_count: variable out of range");
        debug_assert!(n.var >= from);
        let at_node = self.count_node(f.index() as u32, nvars, memo) << (n.var - from);
        if f.is_complemented() {
            full - at_node
        } else {
            at_node
        }
    }

    /// Count for the positive phase of stored node `idx`, over variables
    /// `[node.var, nvars)`.
    fn count_node(&self, idx: u32, nvars: u32, memo: &mut HashMap<u32, u128>) -> u128 {
        if let Some(&c) = memo.get(&idx) {
            return c;
        }
        let n = self.nodes[idx as usize];
        let lo = self.count_from(n.lo, n.var + 1, nvars, memo);
        let hi = self.count_from(n.hi, n.var + 1, nvars, memo);
        let c = lo + hi;
        memo.insert(idx, c);
        c
    }

    /// One satisfying assignment of `f` (values for its support variables),
    /// or `None` if `f` is unsatisfiable.
    pub fn any_sat(&self, f: Ref) -> Option<Vec<(Var, bool)>> {
        if f == Ref::FALSE {
            return None;
        }
        let mut out = Vec::new();
        let mut r = f;
        while !r.is_const() {
            let n = self.node(r);
            let hi = n.hi.xor_tag(r);
            if hi != Ref::FALSE {
                out.push((Var(n.var), true));
                r = hi;
            } else {
                out.push((Var(n.var), false));
                r = n.lo.xor_tag(r);
            }
        }
        debug_assert_eq!(r, Ref::TRUE);
        Some(out)
    }

    /// Checks the structural invariants of the arena; panics with a
    /// description on the first violation. Intended for tests.
    ///
    /// Invariants: the high edge of every stored node is uncomplemented
    /// (so constants are never stored complemented and `¬¬f` is pointer-
    /// identical to `f`), no redundant tests, children test strictly later
    /// variables, and the unique table holds no duplicates.
    pub fn check_invariants(&self) {
        let mut seen = std::collections::HashSet::new();
        for (i, n) in self.nodes.iter().enumerate().skip(1) {
            assert!(
                !n.hi.is_complemented(),
                "node @{i}: complemented high edge {:?}",
                n.hi
            );
            assert_ne!(n.lo, n.hi, "node @{i}: redundant test");
            assert!(
                n.var != TERMINAL_VAR,
                "node @{i}: terminal var on internal node"
            );
            for child in [n.lo, n.hi] {
                assert!(child.index() < i, "node @{i}: forward edge to {child:?}");
                let cv = self.nodes[child.index()].var;
                assert!(
                    child.is_const() || cv > n.var,
                    "node @{i}: child {child:?} does not test a later variable"
                );
            }
            assert!(
                seen.insert((n.var, n.lo, n.hi)),
                "node @{i}: duplicate of an earlier node"
            );
        }
    }
}

impl fmt::Debug for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bdd {{ nodes: {} }}", self.nodes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals() {
        let bdd = Bdd::new();
        assert_eq!(bdd.constant(true), Ref::TRUE);
        assert_eq!(bdd.constant(false), Ref::FALSE);
        assert!(Ref::TRUE.is_const());
        assert!(Ref::FALSE.is_const());
        assert_eq!(bdd.size(Ref::TRUE), 1);
        // The two constants share the single terminal node.
        assert_eq!(bdd.arena_size(), 1);
    }

    #[test]
    fn literals_are_canonical() {
        let mut bdd = Bdd::new();
        assert_eq!(bdd.var(3), bdd.var(3));
        assert_ne!(bdd.var(3), bdd.var(4));
        let v = bdd.var(3);
        let nv = bdd.nvar(3);
        assert_eq!(bdd.not(v), nv);
        assert_eq!(bdd.not(nv), v);
        // A literal and its negation share one stored node.
        assert_eq!(v.regular(), nv.regular());
    }

    #[test]
    fn negation_is_free() {
        let mut bdd = Bdd::new();
        let x = bdd.var(0);
        let y = bdd.var(1);
        let f = bdd.and(x, y);
        let before = bdd.arena_size();
        let nf = bdd.not(f);
        assert_eq!(bdd.arena_size(), before, "not must not allocate");
        assert_eq!(bdd.not(nf), f, "¬¬f is pointer-identical to f");
        assert_ne!(f, nf);
    }

    #[test]
    fn basic_identities() {
        let mut bdd = Bdd::new();
        let x = bdd.var(0);
        let y = bdd.var(1);
        assert_eq!(bdd.and(x, Ref::TRUE), x);
        assert_eq!(bdd.and(x, Ref::FALSE), Ref::FALSE);
        assert_eq!(bdd.or(x, Ref::FALSE), x);
        assert_eq!(bdd.or(x, Ref::TRUE), Ref::TRUE);
        assert_eq!(bdd.xor(x, x), Ref::FALSE);
        let nx = bdd.not(x);
        assert_eq!(bdd.and(x, nx), Ref::FALSE);
        assert_eq!(bdd.or(x, nx), Ref::TRUE);
        assert_eq!(bdd.and(x, y), bdd.and(y, x));
        assert_eq!(bdd.xor(x, nx), Ref::TRUE);
    }

    #[test]
    fn de_morgan() {
        let mut bdd = Bdd::new();
        let x = bdd.var(0);
        let y = bdd.var(1);
        let lhs_inner = bdd.and(x, y);
        let lhs = bdd.not(lhs_inner);
        let nx = bdd.not(x);
        let ny = bdd.not(y);
        let rhs = bdd.or(nx, ny);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn ite_is_mux() {
        let mut bdd = Bdd::new();
        let c = bdd.var(0);
        let t = bdd.var(1);
        let e = bdd.var(2);
        let f = bdd.ite(c, t, e);
        for bits in 0..8u8 {
            let a = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
            let expect = if a[0] { a[1] } else { a[2] };
            assert_eq!(bdd.eval(f, &a), expect);
        }
    }

    #[test]
    fn restrict_cofactors() {
        let mut bdd = Bdd::new();
        let x = bdd.var(0);
        let y = bdd.var(1);
        let f = bdd.and(x, y);
        assert_eq!(bdd.restrict(f, Var(0), true), y);
        assert_eq!(bdd.restrict(f, Var(0), false), Ref::FALSE);
        // Restricting an absent variable is the identity.
        assert_eq!(bdd.restrict(f, Var(7), true), f);
        // Restriction distributes through the complement tag.
        let nf = bdd.not(f);
        let r = bdd.restrict(nf, Var(0), true);
        assert_eq!(r, bdd.not(y));
    }

    #[test]
    fn quantifiers() {
        let mut bdd = Bdd::new();
        let x = bdd.var(0);
        let y = bdd.var(1);
        let f = bdd.and(x, y);
        assert_eq!(bdd.exists(f, Var(0)), y);
        assert_eq!(bdd.forall(f, Var(0)), Ref::FALSE);
        let g = bdd.or(x, y);
        assert_eq!(bdd.exists(g, Var(0)), Ref::TRUE);
        assert_eq!(bdd.forall(g, Var(0)), y);
    }

    #[test]
    fn sat_count_small() {
        let mut bdd = Bdd::new();
        let x = bdd.var(0);
        let y = bdd.var(1);
        let f = bdd.and(x, y);
        assert_eq!(bdd.sat_count(f, 2), 1);
        let g = bdd.or(x, y);
        assert_eq!(bdd.sat_count(g, 2), 3);
        assert_eq!(bdd.sat_count(Ref::TRUE, 5), 32);
        assert_eq!(bdd.sat_count(Ref::FALSE, 5), 0);
        // Skipped levels are counted.
        assert_eq!(bdd.sat_count(x, 3), 4);
        assert_eq!(bdd.sat_count(bdd.constant(true), 0), 1);
        // Complemented roots count the complement.
        let nf = bdd.not(f);
        assert_eq!(bdd.sat_count(nf, 2), 3);
        let nx = bdd.not(x);
        assert_eq!(bdd.sat_count(nx, 3), 4);
    }

    #[test]
    fn any_sat_finds_model() {
        let mut bdd = Bdd::new();
        let x = bdd.var(0);
        let ny = bdd.nvar(1);
        let f = bdd.and(x, ny);
        let model = bdd.any_sat(f).unwrap();
        let mut a = vec![false; 2];
        for (v, val) in model {
            a[v.0 as usize] = val;
        }
        assert!(bdd.eval(f, &a));
        assert!(bdd.any_sat(Ref::FALSE).is_none());
        // A complemented root still yields a correct model.
        let nf = bdd.not(f);
        let model = bdd.any_sat(nf).unwrap();
        let mut a = vec![false; 2];
        for (v, val) in model {
            a[v.0 as usize] = val;
        }
        assert!(bdd.eval(nf, &a));
    }

    #[test]
    fn support_and_size() {
        let mut bdd = Bdd::new();
        let x = bdd.var(0);
        let z = bdd.var(5);
        let f = bdd.xor(x, z);
        assert_eq!(bdd.support(f), vec![Var(0), Var(5)]);
        // Two internal nodes + the shared terminal.
        assert_eq!(bdd.size(f), 3);
        assert_eq!(bdd.support(Ref::TRUE), vec![]);
        // A function and its complement have equal size.
        let nf = bdd.not(f);
        assert_eq!(bdd.size(nf), bdd.size(f));
    }

    #[test]
    fn canonicity_xor_chain() {
        // Build the same parity function in two different associativity
        // orders; canonicity must give the same node.
        let mut bdd = Bdd::new();
        let vars: Vec<Ref> = (0..8).map(|i| bdd.var(i)).collect();
        let left = vars.iter().copied().reduce(|a, b| bdd.xor(a, b)).unwrap();
        let right = vars
            .iter()
            .rev()
            .copied()
            .reduce(|a, b| bdd.xor(a, b))
            .unwrap();
        assert_eq!(left, right);
        assert_eq!(bdd.sat_count(left, 8), 128);
        bdd.check_invariants();
    }

    #[test]
    fn implies_iff() {
        let mut bdd = Bdd::new();
        let x = bdd.var(0);
        let y = bdd.var(1);
        let imp = bdd.implies(x, y);
        assert!(bdd.eval(imp, &[false, false]));
        assert!(bdd.eval(imp, &[false, true]));
        assert!(!bdd.eval(imp, &[true, false]));
        assert!(bdd.eval(imp, &[true, true]));
        let eq = bdd.iff(x, y);
        assert!(bdd.eval(eq, &[false, false]));
        assert!(!bdd.eval(eq, &[true, false]));
    }

    #[test]
    fn and_or_all() {
        let mut bdd = Bdd::new();
        let vs: Vec<Ref> = (0..4).map(|i| bdd.var(i)).collect();
        let all = bdd.and_all(vs.iter().copied());
        assert_eq!(bdd.sat_count(all, 4), 1);
        let any = bdd.or_all(vs.iter().copied());
        assert_eq!(bdd.sat_count(any, 4), 15);
        assert_eq!(bdd.and_all([]), Ref::TRUE);
        assert_eq!(bdd.or_all([]), Ref::FALSE);
    }

    #[test]
    fn stats_track_cache_activity() {
        let mut bdd = Bdd::with_apply_cache_bits(10);
        let vs: Vec<Ref> = (0..10).map(|i| bdd.var(i)).collect();
        let f = bdd.and_all(vs.iter().copied());
        // Re-running the same conjunction must hit the apply cache, and
        // re-making an existing literal must hit the unique table.
        let g = bdd.and_all(vs.iter().copied());
        assert_eq!(f, g);
        assert_eq!(bdd.var(5), vs[5]);
        let s = bdd.stats();
        assert!(s.nodes > 10);
        assert_eq!(s.peak_nodes, s.nodes);
        assert!(s.apply_hits > 0, "expected apply-cache hits: {s:?}");
        assert!(s.apply_hit_rate() > 0.0);
        assert!(s.unique_hit_rate() > 0.0);
        assert_eq!(s.apply_capacity, 1 << 10);
    }

    #[test]
    fn unique_table_growth_keeps_canonicity() {
        // Push well past the initial unique-table growth threshold
        // (70% of 2^12 slots = 2868 entries) to force rehashes, then
        // verify canonicity still holds. An XOR of pairwise products has
        // no small BDD, so the arena genuinely fills.
        let mut bdd = Bdd::new();
        let mut acc = Ref::FALSE;
        for i in 0..24u32 {
            for j in (i + 1)..24 {
                let v = bdd.var(i);
                let w = bdd.var(j);
                let t = bdd.and(v, w);
                acc = bdd.xor(acc, t);
            }
        }
        assert!(
            bdd.arena_size() > (1 << 12) * 7 / 10,
            "test must cross the rehash threshold, got {} nodes",
            bdd.arena_size()
        );
        // Canonicity after growth: existing nodes are still found...
        let v3 = bdd.var(3);
        assert_eq!(v3, bdd.var(3));
        // ...and semantically equal formulas still share a Ref.
        let x = bdd.var(0);
        let y = bdd.var(1);
        let xy = bdd.and(x, y);
        let acc2 = bdd.xor(acc, xy);
        let back = bdd.xor(acc2, xy);
        assert_eq!(back, acc);
        bdd.check_invariants();
    }
}
