//! # bonsai-bdd
//!
//! A from-scratch, hash-consed implementation of **reduced ordered binary
//! decision diagrams** (ROBDDs, Bryant 1986), replacing the JavaBDD library
//! the Bonsai paper uses (§5.1).
//!
//! The compression algorithm needs exactly one property from its BDD
//! package: *canonicity*. Two interface policies are semantically equivalent
//! iff their compiled BDDs are the same node — which makes the equivalence
//! test performed millions of times inside abstraction refinement an O(1)
//! pointer comparison (paper: "two BDDs are semantically-equivalent iff
//! their pointers are the same").
//!
//! Design notes, in the spirit of the networking guides (smoltcp school):
//!
//! * One arena ([`Bdd`]) owns all nodes; [`Ref`] is a plain `u32` index.
//!   No `Rc`, no interior mutability, no unsafe.
//! * The unique table enforces the two ROBDD reduction rules (no redundant
//!   tests, no duplicate nodes), so structural identity *is* semantic
//!   identity for a fixed variable order.
//! * Binary operations are memoized per `(op, lhs, rhs)`.
//! * Variable order is the numeric order of [`Var`] indices; callers choose
//!   a good order when they allocate variables.
//!
//! ```
//! use bonsai_bdd::Bdd;
//!
//! let mut bdd = Bdd::new();
//! let (x, y) = (bdd.var(0), bdd.var(1));
//! let a = bdd.and(x, y);
//! let not_x = bdd.not(x);
//! let not_y = bdd.not(y);
//! let b_inner = bdd.or(not_x, not_y);
//! let b = bdd.not(b_inner);
//! assert_eq!(a, b); // De Morgan, witnessed by canonicity
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;

/// A boolean variable. Lower indices are tested closer to the root.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub u32);

/// A reference to a BDD node inside a [`Bdd`] arena.
///
/// `Ref`s obtained from the same arena are canonical: two formulas are
/// logically equivalent iff their `Ref`s are equal.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ref(u32);

impl Ref {
    /// The constant false node.
    pub const FALSE: Ref = Ref(0);
    /// The constant true node.
    pub const TRUE: Ref = Ref(1);

    /// True if this is one of the two terminal nodes.
    #[inline]
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }

    /// Raw index (stable for the lifetime of the arena); useful as a hash
    /// key in caller-side tables.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Ref {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Ref::FALSE => write!(f, "⊥"),
            Ref::TRUE => write!(f, "⊤"),
            Ref(i) => write!(f, "@{i}"),
        }
    }
}

/// Terminal marker stored in the `var` field of the two constant nodes.
const TERMINAL_VAR: u32 = u32::MAX;

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Node {
    var: u32,
    lo: Ref,
    hi: Ref,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    And,
    Or,
    Xor,
}

/// The BDD arena: owns every node and all memo tables.
///
/// All operations take `&mut self` because they may allocate nodes; results
/// are plain [`Ref`]s that stay valid for the arena's lifetime.
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<Node, Ref>,
    apply_memo: HashMap<(Op, Ref, Ref), Ref>,
    not_memo: HashMap<Ref, Ref>,
}

impl Default for Bdd {
    fn default() -> Self {
        Self::new()
    }
}

impl Bdd {
    /// Creates an empty arena containing just the two terminals.
    pub fn new() -> Self {
        let f = Node {
            var: TERMINAL_VAR,
            lo: Ref::FALSE,
            hi: Ref::FALSE,
        };
        let t = Node {
            var: TERMINAL_VAR,
            lo: Ref::TRUE,
            hi: Ref::TRUE,
        };
        Bdd {
            nodes: vec![f, t],
            unique: HashMap::new(),
            apply_memo: HashMap::new(),
            not_memo: HashMap::new(),
        }
    }

    /// Total number of live nodes in the arena (including terminals).
    pub fn arena_size(&self) -> usize {
        self.nodes.len()
    }

    /// One of the two terminal nodes.
    #[inline]
    pub fn constant(&self, value: bool) -> Ref {
        if value {
            Ref::TRUE
        } else {
            Ref::FALSE
        }
    }

    /// The positive literal `v`.
    pub fn var(&mut self, v: u32) -> Ref {
        self.mk(v, Ref::FALSE, Ref::TRUE)
    }

    /// The negative literal `¬v`.
    pub fn nvar(&mut self, v: u32) -> Ref {
        self.mk(v, Ref::TRUE, Ref::FALSE)
    }

    #[inline]
    fn node(&self, r: Ref) -> Node {
        self.nodes[r.0 as usize]
    }

    /// The variable tested at the root of `r`, or `None` for terminals.
    pub fn root_var(&self, r: Ref) -> Option<Var> {
        let v = self.node(r).var;
        (v != TERMINAL_VAR).then_some(Var(v))
    }

    /// The low (variable=false) cofactor of a non-terminal node.
    pub fn lo(&self, r: Ref) -> Ref {
        debug_assert!(!r.is_const());
        self.node(r).lo
    }

    /// The high (variable=true) cofactor of a non-terminal node.
    pub fn hi(&self, r: Ref) -> Ref {
        debug_assert!(!r.is_const());
        self.node(r).hi
    }

    /// Hash-consing constructor enforcing both reduction rules.
    fn mk(&mut self, var: u32, lo: Ref, hi: Ref) -> Ref {
        debug_assert!(var != TERMINAL_VAR);
        if lo == hi {
            return lo; // redundant test elimination
        }
        let node = Node { var, lo, hi };
        if let Some(&r) = self.unique.get(&node) {
            return r; // duplicate elimination
        }
        let r = Ref(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, r);
        r
    }

    /// Logical negation.
    pub fn not(&mut self, r: Ref) -> Ref {
        match r {
            Ref::FALSE => return Ref::TRUE,
            Ref::TRUE => return Ref::FALSE,
            _ => {}
        }
        if let Some(&m) = self.not_memo.get(&r) {
            return m;
        }
        let n = self.node(r);
        let lo = self.not(n.lo);
        let hi = self.not(n.hi);
        let result = self.mk(n.var, lo, hi);
        self.not_memo.insert(r, result);
        self.not_memo.insert(result, r);
        result
    }

    fn apply(&mut self, op: Op, a: Ref, b: Ref) -> Ref {
        // Terminal cases.
        match op {
            Op::And => {
                if a == Ref::FALSE || b == Ref::FALSE {
                    return Ref::FALSE;
                }
                if a == Ref::TRUE {
                    return b;
                }
                if b == Ref::TRUE {
                    return a;
                }
                if a == b {
                    return a;
                }
            }
            Op::Or => {
                if a == Ref::TRUE || b == Ref::TRUE {
                    return Ref::TRUE;
                }
                if a == Ref::FALSE {
                    return b;
                }
                if b == Ref::FALSE {
                    return a;
                }
                if a == b {
                    return a;
                }
            }
            Op::Xor => {
                if a == Ref::FALSE {
                    return b;
                }
                if b == Ref::FALSE {
                    return a;
                }
                if a == b {
                    return Ref::FALSE;
                }
                if a == Ref::TRUE {
                    return self.not(b);
                }
                if b == Ref::TRUE {
                    return self.not(a);
                }
            }
        }
        // Commutative ops: normalize the memo key.
        let key = if a.0 <= b.0 { (op, a, b) } else { (op, b, a) };
        if let Some(&m) = self.apply_memo.get(&key) {
            return m;
        }
        let na = self.node(a);
        let nb = self.node(b);
        let var = na.var.min(nb.var);
        let (a_lo, a_hi) = if na.var == var {
            (na.lo, na.hi)
        } else {
            (a, a)
        };
        let (b_lo, b_hi) = if nb.var == var {
            (nb.lo, nb.hi)
        } else {
            (b, b)
        };
        let lo = self.apply(op, a_lo, b_lo);
        let hi = self.apply(op, a_hi, b_hi);
        let result = self.mk(var, lo, hi);
        self.apply_memo.insert(key, result);
        result
    }

    /// Logical conjunction.
    pub fn and(&mut self, a: Ref, b: Ref) -> Ref {
        self.apply(Op::And, a, b)
    }

    /// Logical disjunction.
    pub fn or(&mut self, a: Ref, b: Ref) -> Ref {
        self.apply(Op::Or, a, b)
    }

    /// Exclusive or.
    pub fn xor(&mut self, a: Ref, b: Ref) -> Ref {
        self.apply(Op::Xor, a, b)
    }

    /// Implication `a → b`.
    pub fn implies(&mut self, a: Ref, b: Ref) -> Ref {
        let na = self.not(a);
        self.or(na, b)
    }

    /// Biconditional `a ↔ b`.
    pub fn iff(&mut self, a: Ref, b: Ref) -> Ref {
        let x = self.xor(a, b);
        self.not(x)
    }

    /// If-then-else `(c ∧ t) ∨ (¬c ∧ e)`.
    pub fn ite(&mut self, c: Ref, t: Ref, e: Ref) -> Ref {
        let ct = self.and(c, t);
        let nc = self.not(c);
        let ce = self.and(nc, e);
        self.or(ct, ce)
    }

    /// Conjunction of many operands (`⊤` for none).
    pub fn and_all(&mut self, operands: impl IntoIterator<Item = Ref>) -> Ref {
        operands
            .into_iter()
            .fold(Ref::TRUE, |acc, r| self.and(acc, r))
    }

    /// Disjunction of many operands (`⊥` for none).
    pub fn or_all(&mut self, operands: impl IntoIterator<Item = Ref>) -> Ref {
        operands
            .into_iter()
            .fold(Ref::FALSE, |acc, r| self.or(acc, r))
    }

    /// Restriction `f[v := value]` (Shannon cofactor).
    pub fn restrict(&mut self, f: Ref, v: Var, value: bool) -> Ref {
        if f.is_const() {
            return f;
        }
        let n = self.node(f);
        if n.var > v.0 {
            return f; // v does not occur in f
        }
        if n.var == v.0 {
            return if value { n.hi } else { n.lo };
        }
        let lo = self.restrict(n.lo, v, value);
        let hi = self.restrict(n.hi, v, value);
        self.mk(n.var, lo, hi)
    }

    /// Existential quantification `∃v. f`.
    pub fn exists(&mut self, f: Ref, v: Var) -> Ref {
        let lo = self.restrict(f, v, false);
        let hi = self.restrict(f, v, true);
        self.or(lo, hi)
    }

    /// Universal quantification `∀v. f`.
    pub fn forall(&mut self, f: Ref, v: Var) -> Ref {
        let lo = self.restrict(f, v, false);
        let hi = self.restrict(f, v, true);
        self.and(lo, hi)
    }

    /// Evaluates `f` under a total assignment (indexed by variable number;
    /// variables beyond the slice are taken as false).
    pub fn eval(&self, f: Ref, assignment: &[bool]) -> bool {
        let mut r = f;
        loop {
            match r {
                Ref::FALSE => return false,
                Ref::TRUE => return true,
                _ => {
                    let n = self.node(r);
                    let bit = assignment.get(n.var as usize).copied().unwrap_or(false);
                    r = if bit { n.hi } else { n.lo };
                }
            }
        }
    }

    /// Number of distinct nodes reachable from `f` (including terminals):
    /// the conventional "BDD size".
    pub fn size(&self, f: Ref) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(r) = stack.pop() {
            if seen.insert(r) && !r.is_const() {
                let n = self.node(r);
                stack.push(n.lo);
                stack.push(n.hi);
            }
        }
        seen.len()
    }

    /// The set of variables appearing in `f`, ascending.
    pub fn support(&self, f: Ref) -> Vec<Var> {
        let mut vars = std::collections::BTreeSet::new();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(r) = stack.pop() {
            if r.is_const() || !seen.insert(r) {
                continue;
            }
            let n = self.node(r);
            vars.insert(Var(n.var));
            stack.push(n.lo);
            stack.push(n.hi);
        }
        vars.into_iter().collect()
    }

    /// Number of satisfying assignments over the first `nvars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `f` mentions a variable `>= nvars`.
    pub fn sat_count(&self, f: Ref, nvars: u32) -> u128 {
        fn go(bdd: &Bdd, r: Ref, nvars: u32, memo: &mut HashMap<Ref, u128>) -> u128 {
            match r {
                Ref::FALSE => return 0,
                Ref::TRUE => return 1,
                _ => {}
            }
            if let Some(&c) = memo.get(&r) {
                return c;
            }
            let n = bdd.node(r);
            assert!(n.var < nvars, "sat_count: variable out of range");
            let lo_count = go(bdd, n.lo, nvars, memo) << gap(bdd, n.lo, n.var, nvars);
            let hi_count = go(bdd, n.hi, nvars, memo) << gap(bdd, n.hi, n.var, nvars);
            let c = lo_count + hi_count;
            memo.insert(r, c);
            c
        }
        /// Number of skipped variable levels between a node at `parent_var`
        /// and its child `r`.
        fn gap(bdd: &Bdd, r: Ref, parent_var: u32, nvars: u32) -> u32 {
            let child_var = if r.is_const() { nvars } else { bdd.node(r).var };
            child_var - parent_var - 1
        }
        let mut memo = HashMap::new();
        let root_var = if f.is_const() {
            nvars
        } else {
            self.node(f).var
        };
        go(self, f, nvars, &mut memo) << root_var
    }

    /// One satisfying assignment of `f` (values for its support variables),
    /// or `None` if `f` is unsatisfiable.
    pub fn any_sat(&self, f: Ref) -> Option<Vec<(Var, bool)>> {
        if f == Ref::FALSE {
            return None;
        }
        let mut out = Vec::new();
        let mut r = f;
        while !r.is_const() {
            let n = self.node(r);
            if n.hi != Ref::FALSE {
                out.push((Var(n.var), true));
                r = n.hi;
            } else {
                out.push((Var(n.var), false));
                r = n.lo;
            }
        }
        debug_assert_eq!(r, Ref::TRUE);
        Some(out)
    }
}

impl fmt::Debug for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bdd {{ nodes: {} }}", self.nodes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals() {
        let bdd = Bdd::new();
        assert_eq!(bdd.constant(true), Ref::TRUE);
        assert_eq!(bdd.constant(false), Ref::FALSE);
        assert!(Ref::TRUE.is_const());
        assert_eq!(bdd.size(Ref::TRUE), 1);
    }

    #[test]
    fn literals_are_canonical() {
        let mut bdd = Bdd::new();
        assert_eq!(bdd.var(3), bdd.var(3));
        assert_ne!(bdd.var(3), bdd.var(4));
        let v = bdd.var(3);
        let nv = bdd.nvar(3);
        assert_eq!(bdd.not(v), nv);
        assert_eq!(bdd.not(nv), v);
    }

    #[test]
    fn basic_identities() {
        let mut bdd = Bdd::new();
        let x = bdd.var(0);
        let y = bdd.var(1);
        assert_eq!(bdd.and(x, Ref::TRUE), x);
        assert_eq!(bdd.and(x, Ref::FALSE), Ref::FALSE);
        assert_eq!(bdd.or(x, Ref::FALSE), x);
        assert_eq!(bdd.or(x, Ref::TRUE), Ref::TRUE);
        assert_eq!(bdd.xor(x, x), Ref::FALSE);
        let nx = bdd.not(x);
        assert_eq!(bdd.and(x, nx), Ref::FALSE);
        assert_eq!(bdd.or(x, nx), Ref::TRUE);
        assert_eq!(bdd.and(x, y), bdd.and(y, x));
    }

    #[test]
    fn de_morgan() {
        let mut bdd = Bdd::new();
        let x = bdd.var(0);
        let y = bdd.var(1);
        let lhs_inner = bdd.and(x, y);
        let lhs = bdd.not(lhs_inner);
        let nx = bdd.not(x);
        let ny = bdd.not(y);
        let rhs = bdd.or(nx, ny);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn ite_is_mux() {
        let mut bdd = Bdd::new();
        let c = bdd.var(0);
        let t = bdd.var(1);
        let e = bdd.var(2);
        let f = bdd.ite(c, t, e);
        for bits in 0..8u8 {
            let a = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
            let expect = if a[0] { a[1] } else { a[2] };
            assert_eq!(bdd.eval(f, &a), expect);
        }
    }

    #[test]
    fn restrict_cofactors() {
        let mut bdd = Bdd::new();
        let x = bdd.var(0);
        let y = bdd.var(1);
        let f = bdd.and(x, y);
        assert_eq!(bdd.restrict(f, Var(0), true), y);
        assert_eq!(bdd.restrict(f, Var(0), false), Ref::FALSE);
        // Restricting an absent variable is the identity.
        assert_eq!(bdd.restrict(f, Var(7), true), f);
    }

    #[test]
    fn quantifiers() {
        let mut bdd = Bdd::new();
        let x = bdd.var(0);
        let y = bdd.var(1);
        let f = bdd.and(x, y);
        assert_eq!(bdd.exists(f, Var(0)), y);
        assert_eq!(bdd.forall(f, Var(0)), Ref::FALSE);
        let g = bdd.or(x, y);
        assert_eq!(bdd.exists(g, Var(0)), Ref::TRUE);
        assert_eq!(bdd.forall(g, Var(0)), y);
    }

    #[test]
    fn sat_count_small() {
        let mut bdd = Bdd::new();
        let x = bdd.var(0);
        let y = bdd.var(1);
        let f = bdd.and(x, y);
        assert_eq!(bdd.sat_count(f, 2), 1);
        let g = bdd.or(x, y);
        assert_eq!(bdd.sat_count(g, 2), 3);
        assert_eq!(bdd.sat_count(Ref::TRUE, 5), 32);
        assert_eq!(bdd.sat_count(Ref::FALSE, 5), 0);
        // Skipped levels are counted.
        assert_eq!(bdd.sat_count(x, 3), 4);
        assert_eq!(bdd.sat_count(bdd.constant(true), 0), 1);
    }

    #[test]
    fn any_sat_finds_model() {
        let mut bdd = Bdd::new();
        let x = bdd.var(0);
        let ny = bdd.nvar(1);
        let f = bdd.and(x, ny);
        let model = bdd.any_sat(f).unwrap();
        let mut a = vec![false; 2];
        for (v, val) in model {
            a[v.0 as usize] = val;
        }
        assert!(bdd.eval(f, &a));
        assert!(bdd.any_sat(Ref::FALSE).is_none());
    }

    #[test]
    fn support_and_size() {
        let mut bdd = Bdd::new();
        let x = bdd.var(0);
        let z = bdd.var(5);
        let f = bdd.xor(x, z);
        assert_eq!(bdd.support(f), vec![Var(0), Var(5)]);
        assert!(bdd.size(f) >= 4); // two internal + two terminals
        assert_eq!(bdd.support(Ref::TRUE), vec![]);
    }

    #[test]
    fn canonicity_xor_chain() {
        // Build the same parity function in two different associativity
        // orders; canonicity must give the same node.
        let mut bdd = Bdd::new();
        let vars: Vec<Ref> = (0..8).map(|i| bdd.var(i)).collect();
        let left = vars.iter().copied().reduce(|a, b| bdd.xor(a, b)).unwrap();
        let right = vars
            .iter()
            .rev()
            .copied()
            .reduce(|a, b| bdd.xor(a, b))
            .unwrap();
        assert_eq!(left, right);
        assert_eq!(bdd.sat_count(left, 8), 128);
    }

    #[test]
    fn implies_iff() {
        let mut bdd = Bdd::new();
        let x = bdd.var(0);
        let y = bdd.var(1);
        let imp = bdd.implies(x, y);
        assert!(bdd.eval(imp, &[false, false]));
        assert!(bdd.eval(imp, &[false, true]));
        assert!(!bdd.eval(imp, &[true, false]));
        assert!(bdd.eval(imp, &[true, true]));
        let eq = bdd.iff(x, y);
        assert!(bdd.eval(eq, &[false, false]));
        assert!(!bdd.eval(eq, &[true, false]));
    }

    #[test]
    fn and_or_all() {
        let mut bdd = Bdd::new();
        let vs: Vec<Ref> = (0..4).map(|i| bdd.var(i)).collect();
        let all = bdd.and_all(vs.iter().copied());
        assert_eq!(bdd.sat_count(all, 4), 1);
        let any = bdd.or_all(vs.iter().copied());
        assert_eq!(bdd.sat_count(any, 4), 15);
        assert_eq!(bdd.and_all([]), Ref::TRUE);
        assert_eq!(bdd.or_all([]), Ref::FALSE);
    }
}
