//! Property tests: BDD operations agree with direct boolean evaluation on
//! random expressions, and canonicity holds (semantic equality == Ref
//! equality).

use bonsai_bdd::{Bdd, Ref, Var};
use proptest::prelude::*;

const NVARS: u32 = 5;

/// A random boolean expression over NVARS variables.
#[derive(Clone, Debug)]
enum Expr {
    Const(bool),
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    fn eval(&self, a: &[bool]) -> bool {
        match self {
            Expr::Const(b) => *b,
            Expr::Var(v) => a[*v as usize],
            Expr::Not(x) => !x.eval(a),
            Expr::And(x, y) => x.eval(a) && y.eval(a),
            Expr::Or(x, y) => x.eval(a) || y.eval(a),
            Expr::Xor(x, y) => x.eval(a) ^ y.eval(a),
            Expr::Ite(c, t, e) => {
                if c.eval(a) {
                    t.eval(a)
                } else {
                    e.eval(a)
                }
            }
        }
    }

    fn build(&self, bdd: &mut Bdd) -> Ref {
        match self {
            Expr::Const(b) => bdd.constant(*b),
            Expr::Var(v) => bdd.var(*v),
            Expr::Not(x) => {
                let r = x.build(bdd);
                bdd.not(r)
            }
            Expr::And(x, y) => {
                let (rx, ry) = (x.build(bdd), y.build(bdd));
                bdd.and(rx, ry)
            }
            Expr::Or(x, y) => {
                let (rx, ry) = (x.build(bdd), y.build(bdd));
                bdd.or(rx, ry)
            }
            Expr::Xor(x, y) => {
                let (rx, ry) = (x.build(bdd), y.build(bdd));
                bdd.xor(rx, ry)
            }
            Expr::Ite(c, t, e) => {
                let (rc, rt, re) = (c.build(bdd), t.build(bdd), e.build(bdd));
                bdd.ite(rc, rt, re)
            }
        }
    }
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Expr::Const),
        (0..NVARS).prop_map(Expr::Var),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|x| Expr::Not(Box::new(x))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::And(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::Or(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::Xor(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, e)| Expr::Ite(
                Box::new(c),
                Box::new(t),
                Box::new(e)
            )),
        ]
    })
}

fn assignments() -> impl Iterator<Item = Vec<bool>> {
    (0u32..(1 << NVARS)).map(|bits| (0..NVARS).map(|i| bits >> i & 1 == 1).collect())
}

proptest! {
    /// A compiled BDD computes exactly the expression's truth table.
    #[test]
    fn bdd_matches_truth_table(e in arb_expr()) {
        let mut bdd = Bdd::new();
        let f = e.build(&mut bdd);
        for a in assignments() {
            prop_assert_eq!(bdd.eval(f, &a), e.eval(&a));
        }
    }

    /// Canonicity: two expressions are semantically equal iff they compile
    /// to the same Ref.
    #[test]
    fn canonicity(e1 in arb_expr(), e2 in arb_expr()) {
        let mut bdd = Bdd::new();
        let f1 = e1.build(&mut bdd);
        let f2 = e2.build(&mut bdd);
        let sem_equal = assignments().all(|a| e1.eval(&a) == e2.eval(&a));
        prop_assert_eq!(f1 == f2, sem_equal);
    }

    /// sat_count agrees with brute-force counting.
    #[test]
    fn sat_count_matches_brute_force(e in arb_expr()) {
        let mut bdd = Bdd::new();
        let f = e.build(&mut bdd);
        let brute = assignments().filter(|a| e.eval(a)).count() as u128;
        prop_assert_eq!(bdd.sat_count(f, NVARS), brute);
    }

    /// Shannon expansion: f == ite(v, f[v:=1], f[v:=0]) for every variable.
    #[test]
    fn shannon_expansion(e in arb_expr(), v in 0..NVARS) {
        let mut bdd = Bdd::new();
        let f = e.build(&mut bdd);
        let hi = bdd.restrict(f, Var(v), true);
        let lo = bdd.restrict(f, Var(v), false);
        let var = bdd.var(v);
        let rebuilt = bdd.ite(var, hi, lo);
        prop_assert_eq!(f, rebuilt);
    }

    /// Quantifier semantics against brute force.
    #[test]
    fn quantifier_semantics(e in arb_expr(), v in 0..NVARS) {
        let mut bdd = Bdd::new();
        let f = e.build(&mut bdd);
        let ex = bdd.exists(f, Var(v));
        let fa = bdd.forall(f, Var(v));
        for a in assignments() {
            let mut a1 = a.clone();
            a1[v as usize] = true;
            let mut a0 = a.clone();
            a0[v as usize] = false;
            let (e1, e0) = (e.eval(&a1), e.eval(&a0));
            prop_assert_eq!(bdd.eval(ex, &a), e1 || e0);
            prop_assert_eq!(bdd.eval(fa, &a), e1 && e0);
        }
    }

    /// Double negation is the identity; negation flips every entry.
    #[test]
    fn negation_involution(e in arb_expr()) {
        let mut bdd = Bdd::new();
        let f = e.build(&mut bdd);
        let nf = bdd.not(f);
        let nnf = bdd.not(nf);
        prop_assert_eq!(f, nnf);
        for a in assignments() {
            prop_assert_eq!(bdd.eval(nf, &a), !e.eval(&a));
        }
    }

    /// Complement-edge canonical form: after building arbitrary formula
    /// trees, every stored node has an uncomplemented high edge (so the
    /// constants are never stored complemented), children are ordered,
    /// and the unique table holds no duplicates.
    #[test]
    fn complement_edge_invariants(e in arb_expr()) {
        let mut bdd = Bdd::new();
        let _ = e.build(&mut bdd);
        bdd.check_invariants();
    }

    /// Negation is a free edge-tag flip: it allocates nothing, is an
    /// involution up to pointer equality, and never returns a
    /// "complemented constant" distinct from the canonical constants.
    #[test]
    fn negation_allocates_nothing(e in arb_expr()) {
        let mut bdd = Bdd::new();
        let f = e.build(&mut bdd);
        let before = bdd.arena_size();
        let nf = bdd.not(f);
        prop_assert_eq!(bdd.arena_size(), before);
        prop_assert_eq!(bdd.not(nf), f);
        if f.is_const() {
            prop_assert!(nf.is_const());
            prop_assert!(nf == Ref::TRUE || nf == Ref::FALSE);
        }
        // A function and its complement share every stored node.
        prop_assert_eq!(bdd.size(f), bdd.size(nf));
    }

    /// The complement edge really is semantic negation: sat counts of f
    /// and ¬f partition the assignment space.
    #[test]
    fn complement_partitions_space(e in arb_expr()) {
        let mut bdd = Bdd::new();
        let f = e.build(&mut bdd);
        let nf = bdd.not(f);
        let total = 1u128 << NVARS;
        prop_assert_eq!(bdd.sat_count(f, NVARS) + bdd.sat_count(nf, NVARS), total);
    }

    /// any_sat returns a model exactly when one exists.
    #[test]
    fn any_sat_correct(e in arb_expr()) {
        let mut bdd = Bdd::new();
        let f = e.build(&mut bdd);
        match bdd.any_sat(f) {
            None => prop_assert_eq!(f, Ref::FALSE),
            Some(model) => {
                let mut a = vec![false; NVARS as usize];
                for (v, val) in model {
                    a[v.0 as usize] = val;
                }
                prop_assert!(bdd.eval(f, &a));
            }
        }
    }
}
