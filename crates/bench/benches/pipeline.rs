//! Criterion micro-benchmarks of the compression pipeline stages, plus the
//! DESIGN.md ablation: canonical-BDD policy equality vs deep structural
//! comparison.

use bonsai_core::compress::{compress, CompressOptions};
use bonsai_core::ecs::compute_ecs;
use bonsai_core::engine::CompiledPolicies;
use bonsai_core::signatures::build_sig_table;
use bonsai_topo::{fattree, full_mesh, ring, FattreePolicy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_compress(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress");
    group.sample_size(10);
    for k in [4usize, 8] {
        let net = fattree(k, FattreePolicy::ShortestPath);
        group.bench_with_input(BenchmarkId::new("fattree", k), &net, |b, net| {
            b.iter(|| {
                compress(
                    net,
                    CompressOptions {
                        threads: 1,
                        ..Default::default()
                    },
                )
            })
        });
    }
    let net = ring(64);
    group.bench_function("ring64", |b| {
        b.iter(|| {
            compress(
                &net,
                CompressOptions {
                    threads: 1,
                    ..Default::default()
                },
            )
        })
    });
    let net = full_mesh(24);
    group.bench_function("mesh24", |b| {
        b.iter(|| {
            compress(
                &net,
                CompressOptions {
                    threads: 1,
                    ..Default::default()
                },
            )
        })
    });
    group.finish();
}

fn bench_stages(c: &mut Criterion) {
    let net = fattree(8, FattreePolicy::ShortestPath);
    let topo = bonsai_config::BuiltTopology::build(&net).unwrap();
    let ecs = compute_ecs(&net, &topo);
    let ec = ecs[0].to_ec_dest();

    let mut group = c.benchmark_group("stages");
    group.bench_function("compute_ecs/fattree8", |b| {
        b.iter(|| compute_ecs(&net, &topo))
    });
    group.bench_function("sig_table/fattree8", |b| {
        b.iter(|| {
            let engine = CompiledPolicies::from_network(&net, false);
            build_sig_table(&engine, &net, &topo, &ec)
        })
    });
    group.bench_function("refinement/fattree8", |b| {
        let engine = CompiledPolicies::from_network(&net, false);
        let sigs = build_sig_table(&engine, &net, &topo, &ec);
        b.iter(|| bonsai_core::algorithm::find_abstraction(&topo.graph, &ec, &sigs))
    });
    group.finish();
}

/// The shared-engine ablation: building every EC's signature table against
/// one engine (production path) vs rebuilding a fresh engine per EC (the
/// pre-refactor architecture).
fn bench_engine_sharing(c: &mut Criterion) {
    let net = fattree(8, FattreePolicy::PreferBottom);
    let topo = bonsai_config::BuiltTopology::build(&net).unwrap();
    let ecs = compute_ecs(&net, &topo);

    let mut group = c.benchmark_group("engine_sharing");
    group.sample_size(10);
    group.bench_function("shared_engine_all_ecs", |b| {
        b.iter(|| {
            let engine = CompiledPolicies::from_network(&net, false);
            for ec in &ecs {
                let ec_dest = ec.to_ec_dest();
                build_sig_table(&engine, &net, &topo, &ec_dest);
            }
        })
    });
    group.bench_function("fresh_engine_per_ec", |b| {
        b.iter(|| {
            for ec in &ecs {
                let engine = CompiledPolicies::from_network(&net, false);
                let ec_dest = ec.to_ec_dest();
                build_sig_table(&engine, &net, &topo, &ec_dest);
            }
        })
    });
    group.finish();
}

/// Ablation: policy equality by canonical BDD id vs deep structural
/// comparison of the route-map IR (what refinement would cost without the
/// BDD encoding).
fn bench_policy_eq(c: &mut Criterion) {
    let net = fattree(8, FattreePolicy::PreferBottom);
    let topo = bonsai_config::BuiltTopology::build(&net).unwrap();
    let ecs = compute_ecs(&net, &topo);
    let ec = ecs[0].to_ec_dest();
    let engine = CompiledPolicies::from_network(&net, false);
    let sigs = build_sig_table(&engine, &net, &topo, &ec);

    let mut group = c.benchmark_group("policy_eq");
    group.bench_function("bdd_ids", |b| {
        b.iter(|| {
            let mut equal_pairs = 0usize;
            for e1 in topo.graph.edges() {
                for e2 in topo.graph.out(topo.graph.source(e1)) {
                    if sigs.sig_of_edge[e1.index()] == sigs.sig_of_edge[e2.index()] {
                        equal_pairs += 1;
                    }
                }
            }
            equal_pairs
        })
    });
    group.bench_function("structural", |b| {
        b.iter(|| {
            let mut equal_pairs = 0usize;
            for e1 in topo.graph.edges() {
                let (u1, v1) = topo.graph.endpoints(e1);
                let d1 = &net.devices[u1.index()];
                let x1 = &net.devices[v1.index()];
                for e2 in topo.graph.out(u1) {
                    let (u2, v2) = topo.graph.endpoints(e2);
                    let d2 = &net.devices[u2.index()];
                    let x2 = &net.devices[v2.index()];
                    // Deep structural comparison of the policy surface.
                    if d1.route_maps == d2.route_maps
                        && d1.prefix_lists == d2.prefix_lists
                        && x1.route_maps == x2.route_maps
                        && x1.prefix_lists == x2.prefix_lists
                    {
                        equal_pairs += 1;
                    }
                }
            }
            equal_pairs
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_compress,
    bench_stages,
    bench_policy_eq,
    bench_engine_sharing
);
criterion_main!(benches);
