//! Regenerates the §8 **Batfish reachability query** experiment: a
//! port-to-port reachability query on the data-center network, answered by
//! the simulation engine with and without compression. The paper: 77 s
//! with Bonsai, out-of-memory after an hour without.
//!
//! With compression, only the destination classes rooted at the queried
//! device need abstractions ("we only generate abstract networks for
//! destination ECs that are relevant for a query", §7) — that selectivity
//! plus the tiny abstract networks is where the speedup comes from.

use bonsai_core::compress::{build_engine, compress_ec, CompressOptions};
use bonsai_topo::{datacenter, DatacenterParams};
use bonsai_verify::query::QueryCtx;
use bonsai_verify::SimEngine;
use std::time::Instant;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick {
        DatacenterParams {
            clusters: 4,
            tors_per_cluster: 6,
            prefixes_per_tor: 3,
            ..Default::default()
        }
    } else {
        DatacenterParams::default()
    };
    let net = datacenter(params);
    let src = "c0_tor0".to_string();
    let dst = format!("c{}_tor1", params.clusters - 1);
    println!(
        "reachability query {src} -> {dst} on {} routers / {} links",
        net.devices.len(),
        bonsai_config::BuiltTopology::build(&net)
            .unwrap()
            .graph
            .link_count()
    );

    // Without compression, Batfish-style: simulate the *entire* control
    // plane (every destination class) to produce the full data plane,
    // then answer the query — that is how Batfish works and why the
    // paper's concrete run exhausted memory.
    let t0 = Instant::now();
    let engine = SimEngine::new(&net);
    let mut solved = 0usize;
    for ec in &engine.ecs {
        let solution = engine.solve_ec(ec, &QueryCtx::failure_free()).unwrap();
        let _data_plane = engine.data_plane(ec, &solution);
        solved += 1;
    }
    let concrete = engine
        .query_reachability(&src, &dst, &QueryCtx::failure_free())
        .unwrap();
    let concrete_time = t0.elapsed();
    println!(
        "  without Bonsai: full data plane ({solved} classes), {} reachable prefixes, {:.2}s",
        concrete.len(),
        concrete_time.as_secs_f64()
    );

    // With compression: compress only the classes rooted at dst, then
    // query the abstract networks.
    let t1 = Instant::now();
    let topo = bonsai_config::BuiltTopology::build(&net).unwrap();
    let ecs = bonsai_core::ecs::compute_ecs(&net, &topo);
    let dst_node = topo.graph.node_by_name(&dst).unwrap();
    let src_node = topo.graph.node_by_name(&src).unwrap();
    let options = CompressOptions {
        strip_unused_communities: true,
        ..Default::default()
    };
    // One shared engine even for the selective per-EC path: queried
    // classes reuse each other's compiled policies.
    let policy_engine = build_engine(&net, options);
    let mut reachable = 0usize;
    let mut queried = 0usize;
    for ec in ecs
        .iter()
        .filter(|ec| ec.origins.iter().any(|(n, _)| *n == dst_node))
    {
        queried += 1;
        let compression = compress_ec(&policy_engine, &net, &topo, ec);
        let abs = &compression.abstract_network;
        let abs_engine = SimEngine::new(&abs.network);
        let abs_src = compression
            .abstract_network
            .candidates_of(&compression.abstraction, src_node);
        // The source reaches iff all its candidate copies reach (copy
        // assignment is solution-dependent).
        let solution = abs_engine
            .solve_ec(&abs_engine.ecs[0], &QueryCtx::failure_free())
            .unwrap();
        let data = abs_engine.data_plane(&abs_engine.ecs[0], &solution);
        let origins: Vec<_> = abs_engine.ecs[0].origins.iter().map(|(n, _)| *n).collect();
        let analysis = bonsai_verify::properties::SolutionAnalysis::new(
            &abs_engine.topo.graph,
            &data,
            &origins,
        );
        if abs_src.iter().all(|&c| analysis.can_reach(c)) {
            reachable += 1;
        }
    }
    let abstract_time = t1.elapsed();
    println!(
        "  with Bonsai:    {reachable} reachable prefixes (of {queried} classes) in {:.2}s",
        abstract_time.as_secs_f64()
    );
    let concrete_at_dst = concrete.len();
    assert_eq!(
        reachable, concrete_at_dst,
        "abstract query disagrees with concrete query"
    );
    println!(
        "  speedup: {:.1}x",
        concrete_time.as_secs_f64() / abstract_time.as_secs_f64().max(1e-9)
    );
}
