//! The CI perf-regression gate.
//!
//! ```text
//! bench_gate BASELINE.json CANDIDATE.json [--threshold 1.5] [--floor 0.025]
//! ```
//!
//! Loads two enveloped snapshots of the same kind (`bench/compress` from
//! `table1 --json`, or `bench/failures` from `failures --json` — the
//! stage list follows the kind), compares every
//! baseline row's per-stage wall-clock times against the candidate, and
//! exits nonzero when any stage regressed more than `threshold`× (stages
//! below `floor` seconds in the baseline are measured against the floor,
//! so micro-stage jitter cannot fail the gate). See `bonsai_bench::gate`
//! for the exact rule.

use bonsai_bench::gate::{compare_snapshots, render};
use bonsai_core::snapshot::Envelope;
use std::process::ExitCode;

fn load(path: &str) -> Result<Envelope, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Envelope::parse(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn flag(args: &[String], name: &str, default: f64) -> Result<f64, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(default),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("{name} needs a value"))?
            .parse()
            .map_err(|e| format!("{name}: {e}")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Positionals are everything that is neither a flag nor a flag's value.
    let mut positional: Vec<&String> = Vec::new();
    let mut skip_value = false;
    for a in &args {
        if skip_value {
            skip_value = false;
        } else if a.starts_with("--") {
            skip_value = matches!(a.as_str(), "--threshold" | "--floor");
        } else {
            positional.push(a);
        }
    }
    let run = || -> Result<bool, String> {
        let [baseline_path, candidate_path] = positional.as_slice() else {
            return Err(
                "usage: bench_gate BASELINE.json CANDIDATE.json [--threshold 1.5] [--floor 0.025]"
                    .to_string(),
            );
        };
        let threshold = flag(&args, "--threshold", 1.5)?;
        let floor = flag(&args, "--floor", 0.025)?;
        let baseline = load(baseline_path.as_str())?;
        let candidate = load(candidate_path.as_str())?;
        let result = compare_snapshots(&baseline, &candidate, threshold, floor);
        print!("{}", render(&result, threshold));
        Ok(result.passed())
    };
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!("perf gate FAILED");
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("bench_gate: {msg}");
            ExitCode::FAILURE
        }
    }
}
