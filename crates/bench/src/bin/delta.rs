//! The delta-reverification study: on fattree-8, edit one route-map and
//! compare the **fresh full pipeline** on the edited config against the
//! **warm delta pipeline** that absorbs the edit into the unedited run's
//! engine and re-sweeps only the classes the edit touched.
//!
//! ```text
//! delta [--failures k] [--threads n] [--json [path]] [--check]
//! ```
//!
//! The edit pins local-preference for `edge0_0`'s own /24 on its import
//! route-map — a destination-specific, policy-content change. Exactly
//! one destination class's signature table moves; the other 31 classes
//! are proven equal and keep their abstractions, so `delta_s` pays one
//! class's re-sweep while `full_s` pays 32 compressions plus the whole
//! (class × scenario) plane.
//!
//! `--check` turns the run into the CI acceptance gate: every row must
//! re-derive at most 2 classes and finish the delta path in at most 10%
//! of the full path's wall clock. `--json` writes the `bench/delta`
//! snapshot (`BENCH_delta.json`) that `bench_gate` compares against the
//! committed `BENCH_delta_baseline.json`.

use bonsai_bench::{delta_snapshot_json, secs};
use bonsai_config::{
    Action, MatchCond, NetworkConfig, PrefixList, PrefixListEntry, RouteMapClause, SetAction,
};
use bonsai_core::compress::{compress, recompress_delta, CompressOptions};
use bonsai_topo::{fattree, FattreePolicy};
use bonsai_verify::netsweep::{sweep_network, sweep_network_subset, NetworkSweepOptions};
use bonsai_verify::sweep::SweepOptions;
use std::process::ExitCode;
use std::time::Instant;

/// The studied edit: on `edge0_0`, a new first clause of the import
/// route-map that pins local-preference for the device's **own** /24.
/// Destination-specific (only the 10.0.0.0/24 class's signatures move)
/// and orbit-preserving (the origin is already unique in that class's
/// orbit structure), so the touched class stays as cheap to re-sweep as
/// it was to sweep.
fn edited(net: &NetworkConfig) -> NetworkConfig {
    let mut new_net = net.clone();
    let dev = new_net
        .devices
        .iter_mut()
        .find(|d| d.name == "edge0_0")
        .expect("fattree-8 has edge0_0");
    dev.prefix_lists.push(PrefixList {
        name: "ONE".into(),
        entries: vec![PrefixListEntry {
            seq: 5,
            action: Action::Permit,
            prefix: "10.0.0.0/24".parse().unwrap(),
            ge: None,
            le: None,
        }],
    });
    dev.route_maps[0].clauses.insert(
        0,
        RouteMapClause {
            seq: 5,
            action: Action::Permit,
            matches: vec![MatchCond::PrefixList("ONE".into())],
            sets: vec![SetAction::LocalPref(150)],
        },
    );
    new_net
}

fn usize_flag(args: &[String], name: &str, default: usize) -> Result<usize, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(default),
        Some(i) => args
            .get(i + 1)
            .filter(|v| !v.starts_with("--"))
            .ok_or_else(|| format!("{name} needs a value"))?
            .parse()
            .map_err(|e| format!("{name}: {e}")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (k, threads) = match (
        usize_flag(&args, "--failures", 2),
        usize_flag(&args, "--threads", 0),
    ) {
        (Ok(k), Ok(t)) => (k, t),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let check = args.iter().any(|a| a == "--check");
    let json_path: Option<Option<String>> = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).filter(|v| !v.starts_with("--")).cloned());

    let old_net = fattree(8, FattreePolicy::ShortestPath);
    let new_net = edited(&old_net);
    let options = CompressOptions::default();
    let sweep_options = NetworkSweepOptions {
        sweep: SweepOptions {
            max_failures: k,
            threads,
            ..Default::default()
        },
        share_across_ecs: true,
        ..Default::default()
    };
    let new_topo = bonsai_config::BuiltTopology::build(&new_net).expect("fattree builds");

    // Fresh full pipeline on the edited config: what a non-incremental
    // deployment pays for every push.
    let full_start = Instant::now();
    let full_report = compress(&new_net, options);
    let full_sweep = match sweep_network(&new_net, &new_topo, &full_report, &sweep_options) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("full sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let full_s = full_start.elapsed().as_secs_f64();

    // Warm delta pipeline: the unedited run's engine is the resident
    // state (built outside the timer — it exists before the push), the
    // timer covers absorbing the edit and re-sweeping what moved.
    let old_report = compress(&old_net, options);
    let delta_start = Instant::now();
    let dr = recompress_delta(&old_report, &old_net, &new_net, options);
    let subset = match sweep_network_subset(
        &new_net,
        &new_topo,
        &dr.report,
        &sweep_options,
        &dr.rederived,
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("delta re-sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let delta_s = delta_start.elapsed().as_secs_f64();

    println!(
        "{:<10} {:>2} {:>9} {:>10} {:>13} {:>10} {:>8}",
        "Topology", "k", "full(s)", "delta(s)", "rederived/ECs", "fp moved", "ratio"
    );
    println!(
        "{:<10} {:>2} {:>9} {:>10} {:>10}/{:<2} {:>10} {:>7.1}%",
        "Fattree8",
        k,
        secs(std::time::Duration::from_secs_f64(full_s)),
        secs(std::time::Duration::from_secs_f64(delta_s)),
        dr.rederived.len(),
        dr.ecs_total(),
        dr.fingerprints_moved,
        100.0 * delta_s / full_s,
    );
    println!(
        "full sweep: {} derivations; delta re-sweep: {} derivations across {} classes",
        full_sweep.derivations,
        subset.derivations,
        subset.per_ec.len(),
    );

    let row = format!(
        concat!(
            "{{\"label\":\"Fattree8\",\"k\":{},",
            "\"times\":{{\"full_s\":{:.6},\"delta_s\":{:.6}}},",
            "\"ecs_total\":{},\"ecs_rederived\":{},\"fingerprints_moved\":{}}}"
        ),
        k,
        full_s,
        delta_s,
        dr.ecs_total(),
        dr.rederived.len(),
        dr.fingerprints_moved,
    );
    match &json_path {
        Some(Some(path)) => {
            if let Err(e) = std::fs::write(path, delta_snapshot_json(&[row])) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {path}");
        }
        Some(None) => print!("{}", delta_snapshot_json(&[row])),
        None => {}
    }

    if check {
        if dr.rederived.len() > 2 {
            eprintln!(
                "delta check FAILED: {} classes re-derived (acceptance bound: ≤ 2)",
                dr.rederived.len()
            );
            return ExitCode::FAILURE;
        }
        if delta_s > 0.10 * full_s {
            eprintln!("delta check FAILED: delta {delta_s:.3}s > 10% of full {full_s:.3}s",);
            return ExitCode::FAILURE;
        }
        println!(
            "delta check passed: {}/{} classes re-derived, delta at {:.1}% of full",
            dr.rederived.len(),
            dr.ecs_total(),
            100.0 * delta_s / full_s,
        );
    }
    ExitCode::SUCCESS
}
