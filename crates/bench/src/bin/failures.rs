//! The bounded link-failure study: what does it cost to verify every
//! `≤ k` link-failure scenario concretely, versus auditing + repairing
//! the abstraction once and sweeping the scenarios on the **refined
//! abstract** network?
//!
//! ```text
//! failures                 # diamond / gadget / mesh-10 / fattree-4, k = 1..2
//! failures --quick         # CI-friendly subset (fewer audited classes)
//! failures --k 3           # raise the failure bound
//! failures --exhaustive    # disable symmetry pruning in the sweeps
//! failures --json [PATH]   # write a BENCH_failures.json snapshot
//!                          # (default path BENCH_failures.json)
//! ```
//!
//! Per network and per `k`, the table reports the scenario counts
//! (pruned vs exhaustive), the audit outcome (counterexamples found,
//! abstract nodes before → after refinement) and three wall-clock
//! columns: solving every scenario on the concrete network, the one-off
//! audit-and-refine, and solving every scenario on the refined abstract
//! network.

use bonsai_bench::{failures_snapshot_json, secs};
use bonsai_config::{BuiltTopology, NetworkConfig};
use bonsai_core::compress::{compress, CompressOptions};
use bonsai_core::scenarios::{
    enumerate_scenarios, enumerate_scenarios_pruned, exhaustive_scenario_count, FailureScenario,
};
use bonsai_core::signatures::build_sig_table;
use bonsai_net::NodeId;
use bonsai_srp::instance::{EcDest, MultiProtocol};
use bonsai_srp::solver::solve_masked;
use bonsai_srp::{papernets, Srp};
use bonsai_topo::{fattree, full_mesh, FattreePolicy};
use bonsai_verify::failures::{
    check_cp_equivalence_under_failures, lift_failure_mask, FailureAuditOptions,
};
use std::time::{Duration, Instant};

struct Row {
    label: String,
    k: usize,
    links: usize,
    ecs_audited: usize,
    scenarios: usize,
    scenarios_exhaustive: usize,
    counterexamples: usize,
    abs_nodes_before: usize,
    abs_nodes_after: usize,
    concrete: Duration,
    audit: Duration,
    abstract_: Duration,
}

impl Row {
    fn render(&self) -> String {
        format!(
            "{:<10} {:>2} {:>6} {:>7}/{:<7} {:>4} {:>6} -> {:<6} {:>11} {:>9} {:>12}",
            self.label,
            self.k,
            self.links,
            self.scenarios,
            self.scenarios_exhaustive,
            self.counterexamples,
            self.abs_nodes_before,
            self.abs_nodes_after,
            secs(self.concrete),
            secs(self.audit),
            secs(self.abstract_),
        )
    }

    fn header() -> String {
        format!(
            "{:<10} {:>2} {:>6} {:>7}/{:<7} {:>4} {:>6}    {:<6} {:>11} {:>9} {:>12}",
            "Topology",
            "k",
            "Links",
            "Scen.",
            "All",
            "Cex",
            "Abs",
            "Abs'",
            "Concrete(s)",
            "Audit(s)",
            "Abstract'(s)"
        )
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"label\":\"{}\",\"k\":{},\"links\":{},\"ecs_audited\":{},",
                "\"scenarios\":{},\"scenarios_exhaustive\":{},\"counterexamples\":{},",
                "\"abs_nodes_before\":{},\"abs_nodes_after\":{},",
                "\"times\":{{\"concrete_s\":{:.6},\"audit_s\":{:.6},\"abstract_s\":{:.6}}}}}"
            ),
            self.label,
            self.k,
            self.links,
            self.ecs_audited,
            self.scenarios,
            self.scenarios_exhaustive,
            self.counterexamples,
            self.abs_nodes_before,
            self.abs_nodes_after,
            self.concrete.as_secs_f64(),
            self.audit.as_secs_f64(),
            self.abstract_.as_secs_f64(),
        )
    }
}

/// Solves every scenario of the sweep on one (network, EC) instance.
fn sweep_time(
    network: &NetworkConfig,
    topo: &BuiltTopology,
    ec: &EcDest,
    scenarios: &[FailureScenario],
    lift: Option<(&bonsai_core::Abstraction, &bonsai_core::AbstractNetwork)>,
) -> Duration {
    let proto = MultiProtocol::build(network, topo, ec);
    let origins: Vec<NodeId> = ec.origins.iter().map(|(n, _)| *n).collect();
    let srp = Srp::with_origins(&topo.graph, origins, proto);
    let t0 = Instant::now();
    for scenario in scenarios {
        let mask = match lift {
            None => scenario.mask(&topo.graph),
            Some((abstraction, abs)) => lift_failure_mask(scenario, abstraction, abs),
        };
        // Divergence is a property of the instance, not the harness; it
        // is counted like any other solve.
        let _ = solve_masked(&srp, Some(&mask));
    }
    t0.elapsed()
}

fn run_network(label: &str, net: &NetworkConfig, k: usize, max_ecs: usize, pruned: bool) -> Row {
    let topo = BuiltTopology::build(net).expect("network builds");
    let report = compress(net, CompressOptions::default());
    let ecs_audited = report.num_ecs().min(max_ecs);

    let mut concrete = Duration::ZERO;
    let mut audit_time = Duration::ZERO;
    let mut abstract_ = Duration::ZERO;
    let mut counterexamples = 0usize;
    let mut abs_nodes_before = 0usize;
    let mut abs_nodes_after = 0usize;
    let mut scenario_count = 0usize;

    for ec in report.per_ec.iter().take(ecs_audited) {
        let ec_dest = ec.ec.to_ec_dest();
        let sigs = build_sig_table(&report.policies, net, &topo, &ec_dest);
        let scenarios = if pruned {
            enumerate_scenarios_pruned(&topo.graph, &ec.abstraction, &sigs, k)
        } else {
            enumerate_scenarios(&topo.graph, k)
        };
        scenario_count += scenarios.len();

        // Column 1: the price of concrete per-scenario verification.
        concrete += sweep_time(net, &topo, &ec_dest, &scenarios, None);

        // Column 2: one-off audit + repair through the shared engine.
        let t1 = Instant::now();
        let audit = check_cp_equivalence_under_failures(
            net,
            &topo,
            &ec_dest,
            &ec.abstraction,
            &ec.abstract_network,
            &report.policies,
            &FailureAuditOptions {
                max_failures: k,
                prune_symmetric: pruned,
                concrete_orders: 2,
                abstract_orders: 8,
                ..Default::default()
            },
        )
        .expect("audit converges");
        audit_time += t1.elapsed();
        counterexamples += audit.counterexamples.len();
        abs_nodes_before += audit.initial_abstract_nodes;
        abs_nodes_after += audit.final_abstract_nodes();

        // Column 3: the same sweep on the refined abstract network.
        abstract_ += sweep_time(
            &audit.abstract_network.network,
            &audit.abstract_network.topo,
            &audit.abstract_network.ec,
            &scenarios,
            Some((&audit.abstraction, &audit.abstract_network)),
        );
    }

    Row {
        label: label.to_string(),
        k,
        links: topo.graph.link_count(),
        ecs_audited,
        scenarios: scenario_count,
        scenarios_exhaustive: exhaustive_scenario_count(topo.graph.link_count(), k)
            * ecs_audited.max(1),
        counterexamples,
        abs_nodes_before,
        abs_nodes_after,
        concrete,
        audit: audit_time,
        abstract_,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let exhaustive = args.iter().any(|a| a == "--exhaustive");
    let max_k: usize = args
        .iter()
        .position(|a| a == "--k")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_failures.json".to_string())
    });

    println!("Bounded link-failure study (concrete vs refined-abstract solving)");
    println!("{}", Row::header());
    let mut snapshot: Vec<String> = Vec::new();

    let fattree_net = fattree(4, FattreePolicy::ShortestPath);
    let mesh_net = full_mesh(10);
    let diamond = papernets::figure1_rip();
    let gadget = papernets::figure2_gadget();
    let mut cases: Vec<(&str, &NetworkConfig, usize)> = vec![
        ("Diamond", &diamond, usize::MAX),
        ("Gadget", &gadget, usize::MAX),
        ("Fattree4", &fattree_net, if quick { 2 } else { 4 }),
    ];
    if !quick {
        cases.push(("FullMesh10", &mesh_net, 1));
    }

    for (label, net, max_ecs) in &cases {
        for k in 1..=max_k {
            let row = run_network(label, net, k, *max_ecs, !exhaustive);
            println!("{}", row.render());
            snapshot.push(row.json());
        }
    }

    if let Some(path) = json_path {
        let doc = failures_snapshot_json(&snapshot);
        std::fs::write(&path, doc).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path} ({} rows)", snapshot.len());
    }
}
