//! The bounded link-failure study: what does it cost to verify every
//! `≤ k` link-failure scenario concretely, versus auditing + repairing
//! the abstraction once (PR 3), versus the per-scenario refinement
//! **sweep engine** (orbit-cached refinements, warm-started solves)?
//!
//! ```text
//! failures                 # diamond / gadget / mesh-10 / fattree-4, k = 1..2
//! failures --quick         # CI-friendly subset (fewer audited classes)
//! failures --k 3           # raise the failure bound
//! failures --exhaustive    # disable symmetry pruning in the audit sweep
//! failures --json [PATH]   # write a BENCH_failures.json snapshot
//!                          # (default path BENCH_failures.json)
//! ```
//!
//! Per network and per `k`, the table reports the scenario counts
//! (pruned vs exhaustive), the audit outcome (counterexamples found,
//! abstract nodes before → after refinement) and six wall-clock columns:
//! solving every scenario cold on the concrete network, the same sweep
//! **warm-started** from the failure-free fixpoint, the one-off PR 3
//! audit-and-refine, solving every scenario on the audit's refined
//! abstract network, the per-scenario **sweep engine** run over the
//! audited classes (always exhaustive — the orbit cache absorbs the
//! symmetry), and the **network-level sweep** over *every* class with
//! cross-EC refinement sharing — together with the sweep's cache hit
//! rate, refined sizes, and the cross-EC sharing statistics (classes
//! covered, derivations vs. the unshared count, sharing ratio).

use bonsai_bench::{failures_snapshot_json, secs};
use bonsai_config::{BuiltTopology, NetworkConfig};
use bonsai_core::compress::{compress, CompressOptions};
use bonsai_core::scenarios::{
    enumerate_scenarios_pruned, exhaustive_scenario_count, FailureScenario, ScenarioStream,
};
use bonsai_core::signatures::build_sig_table;
use bonsai_net::NodeId;
use bonsai_srp::instance::{EcDest, MultiProtocol};
use bonsai_srp::solver::{solve, solve_masked, solve_warm_masked, SolverOptions};
use bonsai_srp::{papernets, Srp};
use bonsai_topo::{fattree, full_mesh, FattreePolicy};
use bonsai_verify::failures::{
    check_cp_equivalence_under_failures, lift_failure_mask, FailureAuditOptions,
};
use bonsai_verify::netsweep::{
    merge_reports, sweep_network, sweep_network_sharded, NetworkSweepOptions,
};
use bonsai_verify::session::{QueryRequest, Session, SessionOptions};
use bonsai_verify::sweep::{sweep_failures, SweepOptions};
use std::time::{Duration, Instant};

struct Row {
    label: String,
    k: usize,
    links: usize,
    ecs_audited: usize,
    scenarios: usize,
    scenarios_exhaustive: usize,
    counterexamples: usize,
    abs_nodes_before: usize,
    abs_nodes_after: usize,
    concrete: Duration,
    warm: Duration,
    audit: Duration,
    abstract_: Duration,
    sweep: Duration,
    sweep_scenarios: usize,
    sweep_refinements: usize,
    sweep_hit_rate: f64,
    sweep_base_mean: f64,
    sweep_mean_refined: f64,
    sweep_max_refined: usize,
    sweep_fallbacks: usize,
    netsweep: Duration,
    netsweep_ecs: usize,
    netsweep_derivations: usize,
    netsweep_unshared: usize,
    netsweep_sharing_ratio: f64,
    netsweep_exact: usize,
    netsweep_symmetric: usize,
    netsweep_fingerprints: usize,
    chunk_size: usize,
    scenarios_streamed: usize,
    peak_resident_scenarios: usize,
    merge: Duration,
    query_cold_us: f64,
    query_warm_us: f64,
}

impl Row {
    fn render(&self) -> String {
        format!(
            "{:<10} {:>2} {:>6} {:>7}/{:<7} {:>4} {:>6} -> {:<6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>5.0}% {:>5.0}% {:>6.1} {:>7} {:>9.0} {:>9.0}",
            self.label,
            self.k,
            self.links,
            self.scenarios,
            self.scenarios_exhaustive,
            self.counterexamples,
            self.abs_nodes_before,
            self.abs_nodes_after,
            secs(self.concrete),
            secs(self.warm),
            secs(self.audit),
            secs(self.abstract_),
            secs(self.sweep),
            secs(self.netsweep),
            secs(self.merge),
            self.sweep_hit_rate * 100.0,
            self.netsweep_sharing_ratio * 100.0,
            self.sweep_mean_refined,
            self.peak_resident_scenarios,
            self.query_cold_us,
            self.query_warm_us,
        )
    }

    fn header() -> String {
        format!(
            "{:<10} {:>2} {:>6} {:>7}/{:<7} {:>4} {:>6}    {:<6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>6} {:>6} {:>6} {:>7} {:>9} {:>9}",
            "Topology",
            "k",
            "Links",
            "Scen.",
            "All",
            "Cex",
            "Abs",
            "Abs'",
            "Cold(s)",
            "Warm(s)",
            "Audit(s)",
            "Abst'(s)",
            "Sweep(s)",
            "Net(s)",
            "Merge(s)",
            "Hit",
            "Share",
            "Mean",
            "Peak",
            "Qcold(us)",
            "Qwarm(us)"
        )
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"label\":\"{}\",\"k\":{},\"links\":{},\"ecs_audited\":{},",
                "\"scenarios\":{},\"scenarios_exhaustive\":{},\"counterexamples\":{},",
                "\"abs_nodes_before\":{},\"abs_nodes_after\":{},",
                "\"times\":{{\"concrete_s\":{:.6},\"warm_s\":{:.6},\"audit_s\":{:.6},",
                "\"abstract_s\":{:.6},\"sweep_s\":{:.6},\"netsweep_s\":{:.6},",
                "\"merge_s\":{:.6}}},",
                "\"sweep\":{{\"scenarios\":{},\"refinements\":{},\"cache_hit_rate\":{:.6},",
                "\"base_abs_nodes_mean\":{:.6},\"mean_refined_nodes\":{:.6},\"max_refined_nodes\":{},",
                "\"global_fallbacks\":{}}},",
                "\"cross_ec\":{{\"ecs_covered\":{},\"derivations\":{},\"unshared_derivations\":{},",
                "\"sharing_ratio\":{:.6},\"exact_transfers\":{},\"symmetric_transfers\":{},",
                "\"distinct_fingerprints\":{}}},",
                "\"streamed\":{{\"chunk_size\":{},\"scenarios_streamed\":{},",
                "\"peak_resident_scenarios\":{}}},",
                "\"query_cold_us\":{:.3},\"query_warm_us\":{:.3}}}"
            ),
            self.label,
            self.k,
            self.links,
            self.ecs_audited,
            self.scenarios,
            self.scenarios_exhaustive,
            self.counterexamples,
            self.abs_nodes_before,
            self.abs_nodes_after,
            self.concrete.as_secs_f64(),
            self.warm.as_secs_f64(),
            self.audit.as_secs_f64(),
            self.abstract_.as_secs_f64(),
            self.sweep.as_secs_f64(),
            self.netsweep.as_secs_f64(),
            self.merge.as_secs_f64(),
            self.sweep_scenarios,
            self.sweep_refinements,
            self.sweep_hit_rate,
            self.sweep_base_mean,
            self.sweep_mean_refined,
            self.sweep_max_refined,
            self.sweep_fallbacks,
            self.netsweep_ecs,
            self.netsweep_derivations,
            self.netsweep_unshared,
            self.netsweep_sharing_ratio,
            self.netsweep_exact,
            self.netsweep_symmetric,
            self.netsweep_fingerprints,
            self.chunk_size,
            self.scenarios_streamed,
            self.peak_resident_scenarios,
            self.query_cold_us,
            self.query_warm_us,
        )
    }
}

/// Solves every scenario of the sweep on one (network, EC) instance —
/// cold (from ⊥) or warm-started from the failure-free fixpoint.
fn sweep_time(
    network: &NetworkConfig,
    topo: &BuiltTopology,
    ec: &EcDest,
    scenarios: &[FailureScenario],
    lift: Option<(&bonsai_core::Abstraction, &bonsai_core::AbstractNetwork)>,
    warm: bool,
) -> Duration {
    let proto = MultiProtocol::build(network, topo, ec);
    let origins: Vec<NodeId> = ec.origins.iter().map(|(n, _)| *n).collect();
    let srp = Srp::with_origins(&topo.graph, origins, proto);
    let t0 = Instant::now();
    // The failure-free fixpoint is part of the warm column's cost: one
    // cold solve amortized over every scenario.
    let base = if warm { solve(&srp).ok() } else { None };
    for scenario in scenarios {
        let mask = match lift {
            None => scenario.mask(&topo.graph),
            Some((abstraction, abs)) => lift_failure_mask(scenario, abstraction, abs),
        };
        // Divergence is a property of the instance, not the harness; it
        // is counted like any other solve.
        match &base {
            Some(b) => {
                let _ = solve_warm_masked(&srp, b, SolverOptions::default(), &mask);
            }
            None => {
                let _ = solve_masked(&srp, Some(&mask));
            }
        }
    }
    t0.elapsed()
}

fn run_network(label: &str, net: &NetworkConfig, k: usize, max_ecs: usize, pruned: bool) -> Row {
    let topo = BuiltTopology::build(net).expect("network builds");
    let report = compress(net, CompressOptions::default());
    let ecs_audited = report.num_ecs().min(max_ecs);

    let mut concrete = Duration::ZERO;
    let mut warm = Duration::ZERO;
    let mut audit_time = Duration::ZERO;
    let mut abstract_ = Duration::ZERO;
    let mut sweep_total = Duration::ZERO;
    let mut counterexamples = 0usize;
    let mut abs_nodes_before = 0usize;
    let mut abs_nodes_after = 0usize;
    let mut scenario_count = 0usize;
    let mut sweep_scenarios = 0usize;
    let mut sweep_refinements = 0usize;
    let mut sweep_base_sum = 0.0f64;
    let mut sweep_refined_sum = 0.0f64;
    let mut sweep_max_refined = 0usize;
    let mut sweep_fallbacks = 0usize;

    for ec in report.per_ec.iter().take(ecs_audited) {
        let ec_dest = ec.ec.to_ec_dest();
        let sigs = build_sig_table(&report.policies, net, &topo, &ec_dest);
        let scenarios = if pruned {
            enumerate_scenarios_pruned(&topo.graph, &ec.abstraction, &sigs, k)
        } else {
            ScenarioStream::new(&topo.graph, k).to_vec()
        };
        scenario_count += scenarios.len();

        // Columns 1+2: concrete per-scenario verification, cold (from ⊥)
        // vs warm-started (repairing the failure-free fixpoint, whose one
        // cold solve is part of the column). Both sweep the *exhaustive*
        // enumeration — "verify every scenario" is the workload these
        // columns price, and the same one the sweep engine covers.
        let all_scenarios = ScenarioStream::new(&topo.graph, k).to_vec();
        concrete += sweep_time(net, &topo, &ec_dest, &all_scenarios, None, false);
        warm += sweep_time(net, &topo, &ec_dest, &all_scenarios, None, true);

        // Column 3: one-off PR 3 audit + repair through the shared engine.
        let t1 = Instant::now();
        let audit = check_cp_equivalence_under_failures(
            net,
            &topo,
            &ec_dest,
            &ec.abstraction,
            &ec.abstract_network,
            &report.policies,
            &FailureAuditOptions {
                max_failures: k,
                prune_symmetric: pruned,
                concrete_orders: 2,
                abstract_orders: 8,
                ..Default::default()
            },
        )
        .expect("audit converges");
        audit_time += t1.elapsed();
        counterexamples += audit.counterexamples.len();
        abs_nodes_before += audit.initial_abstract_nodes;
        abs_nodes_after += audit.final_abstract_nodes();

        // Column 4: the same exhaustive sweep on the audit's refined
        // abstract network (comparable to the cold/warm columns).
        abstract_ += sweep_time(
            &audit.abstract_network.network,
            &audit.abstract_network.topo,
            &audit.abstract_network.ec,
            &all_scenarios,
            Some((&audit.abstraction, &audit.abstract_network)),
            false,
        );

        // Column 5: the per-scenario sweep engine — always exhaustive
        // (the orbit cache absorbs the symmetry; the hit rate proves it).
        let t2 = Instant::now();
        let sweep = sweep_failures(
            net,
            &topo,
            &ec_dest,
            &ec.abstraction,
            &ec.abstract_network,
            &report.policies,
            &SweepOptions {
                max_failures: k,
                prune_symmetric: false,
                threads: 1,
                ..Default::default()
            },
        )
        .expect("sweep completes");
        sweep_total += t2.elapsed();
        sweep_scenarios += sweep.scenarios_swept();
        sweep_refinements += sweep.refinements.len();
        sweep_base_sum += sweep.base_abstract_nodes as f64;
        sweep_refined_sum += sweep.mean_refined_nodes() * sweep.scenarios_swept() as f64;
        sweep_max_refined = sweep_max_refined.max(sweep.max_refined_nodes());
        sweep_fallbacks += sweep.fallback_count();
    }

    // The network-level column: one orchestrated sweep over **every**
    // class (not just the audited subset) with cross-EC sharing — the
    // "verify any property under ≤ k failures, for all destinations"
    // workload. Single-threaded like the other columns.
    let t3 = Instant::now();
    let netsweep = sweep_network(
        net,
        &topo,
        &report,
        &NetworkSweepOptions {
            sweep: SweepOptions {
                max_failures: k,
                prune_symmetric: false,
                threads: 1,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("network sweep completes");
    let netsweep_time = t3.elapsed();

    let netsweep_ecs = netsweep.per_ec.len();
    let netsweep_derivations = netsweep.derivations;
    let netsweep_unshared = netsweep.unshared_derivations();
    let netsweep_sharing_ratio = netsweep.sharing_ratio();
    let netsweep_exact = netsweep.exact_transfers;
    let netsweep_symmetric = netsweep.symmetric_transfers;
    let netsweep_fingerprints = netsweep.distinct_fingerprints;
    let netsweep_scenarios = netsweep.scenarios_swept();
    let scenarios_streamed = netsweep.scenarios_streamed;

    let sweep_opts_for = |shard_free: bool| NetworkSweepOptions {
        sweep: SweepOptions {
            max_failures: k,
            prune_symmetric: false,
            threads: 1,
            ..Default::default()
        },
        collect_outcomes: shard_free,
        ..Default::default()
    };

    // The bounded-memory rerun: aggregate mode drops the per-scenario
    // outcome records, so the resident gauge proves the O(chunk) claim —
    // the peak must be bounded by threads × chunk no matter how large
    // C(L,k) × ECs is. Its integer tallies must match the collected run.
    let aggregate = sweep_network(net, &topo, &report, &sweep_opts_for(false))
        .expect("aggregate network sweep completes");
    assert!(
        aggregate.peak_resident_scenarios <= aggregate.chunk_size,
        "aggregate-mode peak {} exceeds the chunk bound {}",
        aggregate.peak_resident_scenarios,
        aggregate.chunk_size
    );
    assert_eq!(
        aggregate.scenarios_swept(),
        netsweep_scenarios,
        "aggregate tallies must match the collected sweep"
    );
    let chunk_size = aggregate.chunk_size;
    let peak_resident_scenarios = aggregate.peak_resident_scenarios;

    // The sharded run: two canonical-signature shards swept independently
    // (as two processes would), then merged. The merge column times only
    // the reassembly; the equality asserts prove the sharding exact.
    let shard_reports: Vec<_> = (0..2)
        .map(|i| {
            sweep_network_sharded(net, &topo, &report, &sweep_opts_for(true), i, 2)
                .expect("shard sweep completes")
        })
        .collect();
    let t_merge = Instant::now();
    let merged = merge_reports(shard_reports).expect("shard set merges");
    let merge_time = t_merge.elapsed();
    assert_eq!(merged.scenarios_swept(), netsweep_scenarios);
    assert_eq!(merged.derivations, netsweep_derivations);
    assert_eq!(merged.unshared_derivations(), netsweep_unshared);

    // The resident-session columns: wire a Session from the compression +
    // sweep just measured (no re-solving) and time one identical query
    // batch twice. Cold fills the per-(class, scenario) verdict memo from
    // the sweep's cached refinements; warm must be pure memo lookups —
    // latency decoupled from solve time.
    let (query_cold_us, query_warm_us) = {
        let session = Session::from_sweep(
            net.clone(),
            report,
            netsweep,
            SessionOptions {
                max_failures: k,
                threads: 1,
                ..Default::default()
            },
        )
        .expect("session wires from the sweep");
        let (u, v) = topo.graph.links()[0];
        let link = (
            topo.graph.name(u).to_string(),
            topo.graph.name(v).to_string(),
        );
        let requests = vec![
            QueryRequest::AllPairs { links: vec![] },
            QueryRequest::AllPairs { links: vec![link] },
        ];
        let t4 = Instant::now();
        let cold = session.batch(&requests);
        let cold_us = t4.elapsed().as_secs_f64() * 1e6;
        let t5 = Instant::now();
        let warm = session.batch(&requests);
        let warm_us = t5.elapsed().as_secs_f64() * 1e6;
        assert_eq!(
            cold.iter().map(|r| format!("{r:?}")).collect::<Vec<_>>(),
            warm.iter().map(|r| format!("{r:?}")).collect::<Vec<_>>(),
            "repeated batch must answer identically"
        );
        (cold_us, warm_us)
    };

    Row {
        label: label.to_string(),
        k,
        links: topo.graph.link_count(),
        ecs_audited,
        scenarios: scenario_count,
        scenarios_exhaustive: exhaustive_scenario_count(topo.graph.link_count(), k)
            * ecs_audited.max(1),
        counterexamples,
        abs_nodes_before,
        abs_nodes_after,
        concrete,
        warm,
        audit: audit_time,
        abstract_,
        sweep: sweep_total,
        sweep_scenarios,
        sweep_refinements,
        sweep_hit_rate: if sweep_scenarios == 0 {
            0.0
        } else {
            1.0 - sweep_refinements as f64 / sweep_scenarios as f64
        },
        // Per-EC mean, the same unit as mean_refined_nodes — the snapshot
        // ratio mean_refined_nodes / base_abs_nodes_mean is the headline
        // "stays within 2x of base" number.
        sweep_base_mean: sweep_base_sum / ecs_audited.max(1) as f64,
        sweep_mean_refined: if sweep_scenarios == 0 {
            0.0
        } else {
            sweep_refined_sum / sweep_scenarios as f64
        },
        sweep_max_refined,
        sweep_fallbacks,
        netsweep: netsweep_time,
        netsweep_ecs,
        netsweep_derivations,
        netsweep_unshared,
        netsweep_sharing_ratio,
        netsweep_exact,
        netsweep_symmetric,
        netsweep_fingerprints,
        chunk_size,
        scenarios_streamed,
        peak_resident_scenarios,
        merge: merge_time,
        query_cold_us,
        query_warm_us,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let exhaustive = args.iter().any(|a| a == "--exhaustive");
    let max_k: usize = args
        .iter()
        .position(|a| a == "--k")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_failures.json".to_string())
    });

    println!("Bounded link-failure study (concrete vs refined-abstract solving)");
    println!("{}", Row::header());
    let mut snapshot: Vec<String> = Vec::new();

    let fattree_net = fattree(4, FattreePolicy::ShortestPath);
    let mesh_net = full_mesh(10);
    let diamond = papernets::figure1_rip();
    let gadget = papernets::figure2_gadget();
    let mut cases: Vec<(&str, &NetworkConfig, usize)> = vec![
        ("Diamond", &diamond, usize::MAX),
        ("Gadget", &gadget, usize::MAX),
        ("Fattree4", &fattree_net, if quick { 2 } else { 4 }),
    ];
    if !quick {
        cases.push(("FullMesh10", &mesh_net, 1));
    }

    for (label, net, max_ecs) in &cases {
        for k in 1..=max_k {
            let row = run_network(label, net, k, *max_ecs, !exhaustive);
            println!("{}", row.render());
            snapshot.push(row.json());
        }
    }

    if let Some(path) = json_path {
        let doc = failures_snapshot_json(&snapshot);
        std::fs::write(&path, doc).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path} ({} rows)", snapshot.len());
    }
}
