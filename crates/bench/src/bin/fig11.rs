//! Regenerates **Figure 11**: abstraction size of a BGP fattree under two
//! routing policies — shortest path vs "middle tier prefers the bottom
//! tier". The policy variant must produce a strictly larger abstraction
//! because the aggregation routers can exhibit more forwarding behaviors.

use bonsai_core::compress::{compress, CompressOptions};
use bonsai_topo::{fattree, FattreePolicy};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let ks: &[usize] = if quick { &[4] } else { &[4, 8, 12] };
    println!(
        "{:<4} {:<16} {:>14} {:>14} {:>10}",
        "k", "policy", "abs nodes", "abs links", "ECs"
    );
    for &k in ks {
        for (policy, label) in [
            (FattreePolicy::ShortestPath, "shortest-path"),
            (FattreePolicy::PreferBottom, "prefer-bottom"),
        ] {
            let net = fattree(k, policy);
            let report = compress(&net, CompressOptions::default());
            println!(
                "{:<4} {:<16} {:>11.1}±{:<3.1} {:>11.1}±{:<3.1} {:>8}",
                k,
                label,
                report.mean_abstract_nodes(),
                report.std_abstract_nodes(),
                report.mean_abstract_links(),
                report.std_abstract_links(),
                report.num_ecs(),
            );
        }
    }
}
