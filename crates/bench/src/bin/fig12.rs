//! Regenerates **Figure 12**: verification time for an all-pairs
//! reachability query, with and without compression, as topology size
//! grows — for (a) fattree, (b) full mesh, (c) ring.
//!
//! The verifier is the exhaustive-solution search engine (our Minesweeper
//! substitute) under a wall-clock budget; `TIMEOUT` / `OOM` rows mirror
//! the paper's 10-minute timeout and full-mesh out-of-memory failures.
//!
//! ```text
//! fig12 [--quick] [--timeout <secs>]
//! ```

use bonsai_bench::fig12_point;
use bonsai_topo::{fattree, full_mesh, ring, FattreePolicy};
use bonsai_verify::search_engine::SearchBudget;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let timeout = args
        .iter()
        .position(|a| a == "--timeout")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(if quick { 10 } else { 120 });
    let budget = SearchBudget {
        wall: Duration::from_secs(timeout),
        ..Default::default()
    };

    let fattree_ks: &[usize] = if quick { &[4, 6] } else { &[4, 8, 12, 16, 20] };
    let mesh_ns: &[usize] = if quick {
        &[8, 16]
    } else {
        &[25, 50, 100, 150, 200]
    };
    let ring_ns: &[usize] = if quick {
        &[16, 32]
    } else {
        &[50, 100, 200, 400]
    };

    println!("(a) Fattree");
    header();
    for &k in fattree_ks {
        row(fig12_point(
            &fattree(k, FattreePolicy::ShortestPath),
            budget,
        ));
    }
    println!("\n(b) Full Mesh");
    header();
    for &n in mesh_ns {
        row(fig12_point(&full_mesh(n), budget));
    }
    println!("\n(c) Ring");
    header();
    for &n in ring_ns {
        row(fig12_point(&ring(n), budget));
    }
}

fn header() {
    println!(
        "{:>7} {:>14} {:>12} {:>14} {:>12}",
        "nodes", "concrete", "time(s)", "compressed", "time(s)"
    );
}

fn row(p: bonsai_bench::Fig12Point) {
    println!(
        "{:>7} {:>14} {:>12.2} {:>14} {:>12.2}",
        p.nodes,
        p.concrete.0,
        p.concrete.1.as_secs_f64(),
        p.compressed.0,
        p.compressed.1.as_secs_f64(),
    );
}
