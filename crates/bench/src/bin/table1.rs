//! Regenerates **Table 1**: compression results for synthetic and "real"
//! networks, now including the shared-engine arena/cache columns.
//!
//! ```text
//! table1                   # Table 1(a): fattree / ring / full mesh sweeps
//! table1 --quick           # smaller sweep sizes (CI-friendly)
//! table1 --real            # Table 1(b): data-center and WAN simulacra
//! table1 --roles           # the §8 role-count study (112 → 26 → 8)
//! table1 --json [PATH]     # also write a BENCH_compress.json perf
//!                          # snapshot (per-stage times, arena stats,
//!                          # compression ratios); default path
//!                          # BENCH_compress.json
//! ```

use bonsai_bench::{compress_snapshot_json, report_json, Table1Row};
use bonsai_core::compress::{compress, CompressOptions, CompressionReport};
use bonsai_core::roles::{count_roles, RoleOptions};
use bonsai_topo::{
    datacenter, fattree, full_mesh, ring, wan, DatacenterParams, FattreePolicy, WanParams,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let real = args.iter().any(|a| a == "--real");
    let roles = args.iter().any(|a| a == "--roles");
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_compress.json".to_string())
    });

    if roles {
        if json_path.is_some() {
            eprintln!("warning: --json is ignored with --roles (the role study produces no compression snapshot)");
        }
        run_roles(quick);
        return;
    }
    let mut snapshot: Vec<String> = Vec::new();
    if real {
        run_real(quick, &mut snapshot);
    } else {
        run_synthetic(quick, &mut snapshot);
    }
    if let Some(path) = json_path {
        let doc = compress_snapshot_json(&snapshot);
        std::fs::write(&path, doc).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path} ({} rows)", snapshot.len());
    }
}

fn run_one(label: &str, report: &CompressionReport, snapshot: &mut Vec<String>) {
    println!("{}", Table1Row::from_report(label, report).render());
    snapshot.push(report_json(label, report));
}

fn run_synthetic(quick: bool, snapshot: &mut Vec<String>) {
    println!("(a) Synthetic networks");
    println!("{}", Table1Row::header());
    let fattree_ks: &[usize] = if quick { &[4, 8] } else { &[12, 20, 30] };
    for &k in fattree_ks {
        let net = fattree(k, FattreePolicy::ShortestPath);
        let report = compress(&net, CompressOptions::default());
        run_one(&format!("Fattree{k}"), &report, snapshot);
    }
    let ring_ns: &[usize] = if quick { &[20, 50] } else { &[100, 500, 1000] };
    for &n in ring_ns {
        let report = compress(&ring(n), CompressOptions::default());
        run_one(&format!("Ring{n}"), &report, snapshot);
    }
    let mesh_ns: &[usize] = if quick { &[10, 20] } else { &[50, 150, 250] };
    for &n in mesh_ns {
        let report = compress(&full_mesh(n), CompressOptions::default());
        run_one(&format!("FullMesh{n}"), &report, snapshot);
    }
}

fn run_real(quick: bool, snapshot: &mut Vec<String>) {
    println!("(b) Real networks (structural simulacra; see DESIGN.md)");
    println!("{}", Table1Row::header());
    let dc_params = if quick {
        DatacenterParams {
            clusters: 4,
            tors_per_cluster: 6,
            prefixes_per_tor: 3,
            ..Default::default()
        }
    } else {
        DatacenterParams::default()
    };
    let dc = datacenter(dc_params);
    // The paper's data-center run uses the unused-tag-stripping h.
    let report = compress(
        &dc,
        CompressOptions {
            strip_unused_communities: true,
            ..Default::default()
        },
    );
    run_one("Data center", &report, snapshot);

    let wan_params = if quick {
        WanParams {
            pops: 6,
            access_per_pop: 10,
            prefixes_per_agg: 2,
            ..Default::default()
        }
    } else {
        WanParams::default()
    };
    let w = wan(wan_params);
    let report = compress(&w, CompressOptions::default());
    run_one("WAN", &report, snapshot);
}

fn run_roles(quick: bool) {
    let dc_params = if quick {
        DatacenterParams {
            clusters: 4,
            tors_per_cluster: 6,
            ..Default::default()
        }
    } else {
        DatacenterParams::default()
    };
    let dc = datacenter(dc_params);
    let full = count_roles(&dc, RoleOptions::default());
    let stripped = count_roles(
        &dc,
        RoleOptions {
            strip_unused_communities: true,
            ..Default::default()
        },
    );
    let no_static = count_roles(
        &dc,
        RoleOptions {
            strip_unused_communities: true,
            ignore_static_routes: true,
        },
    );
    println!("Data center roles (paper: 112 -> 26 -> 8):");
    println!("  full signatures:          {full}");
    println!("  unused tags stripped:     {stripped}");
    println!("  ... and static ignored:   {no_static}");

    let w = wan(if quick {
        WanParams {
            pops: 6,
            ..Default::default()
        }
    } else {
        WanParams::default()
    });
    let wan_roles = count_roles(&w, RoleOptions::default());
    println!("WAN roles (paper: 137): {wan_roles}");
}
