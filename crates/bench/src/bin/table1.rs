//! Regenerates **Table 1**: compression results for synthetic and "real"
//! networks.
//!
//! ```text
//! table1              # Table 1(a): fattree / ring / full mesh sweeps
//! table1 --quick      # smaller sweep sizes (CI-friendly)
//! table1 --real       # Table 1(b): data-center and WAN simulacra
//! table1 --roles      # the §8 role-count study (112 → 26 → 8)
//! ```

use bonsai_bench::Table1Row;
use bonsai_core::compress::{compress, CompressOptions};
use bonsai_core::roles::{count_roles, RoleOptions};
use bonsai_topo::{
    datacenter, fattree, full_mesh, ring, wan, DatacenterParams, FattreePolicy, WanParams,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let real = args.iter().any(|a| a == "--real");
    let roles = args.iter().any(|a| a == "--roles");

    if roles {
        run_roles(quick);
        return;
    }
    if real {
        run_real(quick);
        return;
    }
    run_synthetic(quick);
}

fn run_synthetic(quick: bool) {
    println!("(a) Synthetic networks");
    println!("{}", Table1Row::header());
    let fattree_ks: &[usize] = if quick { &[4, 8] } else { &[12, 20, 30] };
    for &k in fattree_ks {
        let net = fattree(k, FattreePolicy::ShortestPath);
        let report = compress(&net, CompressOptions::default());
        println!("{}", Table1Row::from_report("Fattree", &report).render());
    }
    let ring_ns: &[usize] = if quick { &[20, 50] } else { &[100, 500, 1000] };
    for &n in ring_ns {
        let report = compress(&ring(n), CompressOptions::default());
        println!("{}", Table1Row::from_report("Ring", &report).render());
    }
    let mesh_ns: &[usize] = if quick { &[10, 20] } else { &[50, 150, 250] };
    for &n in mesh_ns {
        let report = compress(&full_mesh(n), CompressOptions::default());
        println!("{}", Table1Row::from_report("Full Mesh", &report).render());
    }
}

fn run_real(quick: bool) {
    println!("(b) Real networks (structural simulacra; see DESIGN.md)");
    println!("{}", Table1Row::header());
    let dc_params = if quick {
        DatacenterParams {
            clusters: 4,
            tors_per_cluster: 6,
            prefixes_per_tor: 3,
            ..Default::default()
        }
    } else {
        DatacenterParams::default()
    };
    let dc = datacenter(dc_params);
    // The paper's data-center run uses the unused-tag-stripping h.
    let report = compress(
        &dc,
        CompressOptions {
            strip_unused_communities: true,
            ..Default::default()
        },
    );
    println!(
        "{}",
        Table1Row::from_report("Data center", &report).render()
    );

    let wan_params = if quick {
        WanParams {
            pops: 6,
            access_per_pop: 10,
            prefixes_per_agg: 2,
            ..Default::default()
        }
    } else {
        WanParams::default()
    };
    let w = wan(wan_params);
    let report = compress(&w, CompressOptions::default());
    println!("{}", Table1Row::from_report("WAN", &report).render());
}

fn run_roles(quick: bool) {
    let dc_params = if quick {
        DatacenterParams {
            clusters: 4,
            tors_per_cluster: 6,
            ..Default::default()
        }
    } else {
        DatacenterParams::default()
    };
    let dc = datacenter(dc_params);
    let full = count_roles(&dc, RoleOptions::default());
    let stripped = count_roles(
        &dc,
        RoleOptions {
            strip_unused_communities: true,
            ..Default::default()
        },
    );
    let no_static = count_roles(
        &dc,
        RoleOptions {
            strip_unused_communities: true,
            ignore_static_routes: true,
        },
    );
    println!("Data center roles (paper: 112 -> 26 -> 8):");
    println!("  full signatures:          {full}");
    println!("  unused tags stripped:     {stripped}");
    println!("  ... and static ignored:   {no_static}");

    let w = wan(if quick {
        WanParams {
            pops: 6,
            ..Default::default()
        }
    } else {
        WanParams::default()
    });
    let wan_roles = count_roles(&w, RoleOptions::default());
    println!("WAN roles (paper: 137): {wan_roles}");
}
