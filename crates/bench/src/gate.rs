//! The CI perf-regression gate: compare two `bonsai-bench/compress-v1`
//! snapshots stage by stage and fail on wall-clock regressions.
//!
//! CI has always *uploaded* the compression perf snapshot; this module is
//! what finally reads it back. A committed `BENCH_baseline.json` records
//! the blessed per-stage times; the gate compares a freshly generated
//! snapshot against it, row by row (matched on `label`) and stage by
//! stage, and reports a regression when
//!
//! ```text
//! candidate > threshold * max(baseline, floor)
//! ```
//!
//! The `floor` (default 25 ms) keeps micro-stages out of the verdict:
//! sub-millisecond stages jitter by integer factors on shared CI runners
//! without any code change, while a genuine pipeline regression shows up
//! in stages that take real time. Both knobs are command-line flags of
//! the `bench_gate` binary, so a noisy runner can be accommodated without
//! touching code. Missing rows and missing stages are hard failures —
//! silently dropping a benchmark must not read as "no regression".

use crate::json::Json;

/// The per-stage wall-clock fields of a snapshot row's `times` object.
pub const STAGES: [&str; 5] = [
    "total_s",
    "ec_compute_s",
    "engine_build_s",
    "bdd_s",
    "per_ec_s",
];

/// One stage comparison.
#[derive(Clone, Debug)]
pub struct StageComparison {
    /// Row label (topology).
    pub label: String,
    /// Stage name (a member of [`STAGES`]).
    pub stage: String,
    /// Baseline seconds.
    pub baseline_s: f64,
    /// Candidate seconds.
    pub candidate_s: f64,
    /// `candidate / max(baseline, floor)`.
    pub ratio: f64,
    /// True when the stage regressed past the threshold.
    pub regressed: bool,
}

/// Outcome of a snapshot comparison.
#[derive(Clone, Debug, Default)]
pub struct GateResult {
    /// Every stage comparison performed, in row order.
    pub comparisons: Vec<StageComparison>,
    /// Structural problems (missing rows/stages, schema mismatch).
    pub errors: Vec<String>,
}

impl GateResult {
    /// The comparisons that regressed.
    pub fn regressions(&self) -> impl Iterator<Item = &StageComparison> {
        self.comparisons.iter().filter(|c| c.regressed)
    }

    /// True when the candidate passes: no regressions, no structural
    /// problems.
    pub fn passed(&self) -> bool {
        self.errors.is_empty() && self.regressions().next().is_none()
    }
}

fn rows_by_label<'j>(
    doc: &'j Json,
    which: &str,
    errors: &mut Vec<String>,
) -> Vec<(&'j str, &'j Json)> {
    match doc.get("schema").and_then(Json::as_str) {
        Some("bonsai-bench/compress-v1") => {}
        other => errors.push(format!("{which}: unexpected schema {other:?}")),
    }
    let mut out = Vec::new();
    match doc.get("rows").and_then(Json::as_arr) {
        None => errors.push(format!("{which}: no rows array")),
        Some(rows) => {
            for row in rows {
                match row.get("label").and_then(Json::as_str) {
                    Some(label) => out.push((label, row)),
                    None => errors.push(format!("{which}: row without a label")),
                }
            }
        }
    }
    out
}

/// Compares a candidate snapshot against a baseline.
///
/// Every baseline row must exist in the candidate and every stage of
/// [`STAGES`] must be present in both (missing data is a structural
/// error). Candidate-only rows are compared against nothing — new
/// benchmarks may land before their baseline is re-blessed.
pub fn compare_snapshots(
    baseline: &Json,
    candidate: &Json,
    threshold: f64,
    floor_s: f64,
) -> GateResult {
    let mut result = GateResult::default();
    let base_rows = rows_by_label(baseline, "baseline", &mut result.errors);
    let cand_rows = rows_by_label(candidate, "candidate", &mut result.errors);

    for (label, base_row) in &base_rows {
        let Some((_, cand_row)) = cand_rows.iter().find(|(l, _)| l == label) else {
            result
                .errors
                .push(format!("candidate is missing baseline row '{label}'"));
            continue;
        };
        for stage in STAGES {
            let get = |row: &Json| -> Option<f64> {
                row.get("times")
                    .and_then(|t| t.get(stage))
                    .and_then(Json::as_f64)
            };
            let (base, cand) = match (get(base_row), get(cand_row)) {
                (Some(b), Some(c)) => (b, c),
                _ => {
                    result.errors.push(format!(
                        "row '{label}': stage '{stage}' missing on one side"
                    ));
                    continue;
                }
            };
            let effective_base = base.max(floor_s);
            let ratio = cand / effective_base;
            result.comparisons.push(StageComparison {
                label: label.to_string(),
                stage: stage.to_string(),
                baseline_s: base,
                candidate_s: cand,
                ratio,
                regressed: ratio > threshold,
            });
        }
    }
    result
}

/// Renders the comparison as the table `bench_gate` prints.
pub fn render(result: &GateResult, threshold: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:<16} {:>12} {:>12} {:>8}  verdict\n",
        "row", "stage", "baseline(s)", "candidate(s)", "ratio"
    ));
    for c in &result.comparisons {
        out.push_str(&format!(
            "{:<14} {:<16} {:>12.4} {:>12.4} {:>8.2}  {}\n",
            c.label,
            c.stage,
            c.baseline_s,
            c.candidate_s,
            c.ratio,
            if c.regressed {
                "REGRESSED"
            } else if c.ratio > 1.0 {
                "ok (slower)"
            } else {
                "ok"
            }
        ));
    }
    for e in &result.errors {
        out.push_str(&format!("error: {e}\n"));
    }
    let regressions = result.regressions().count();
    out.push_str(&format!(
        "{} comparisons, {} regression(s) at threshold {:.2}x, {} structural error(s)\n",
        result.comparisons.len(),
        regressions,
        threshold,
        result.errors.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(rows: &[(&str, f64)]) -> Json {
        let body: Vec<String> = rows
            .iter()
            .map(|(label, t)| {
                format!(
                    "{{\"label\":\"{label}\",\"times\":{{\"total_s\":{t},\"ec_compute_s\":{t},\
                     \"engine_build_s\":{t},\"bdd_s\":{t},\"per_ec_s\":{t}}}}}"
                )
            })
            .collect();
        Json::parse(&format!(
            "{{\"schema\":\"bonsai-bench/compress-v1\",\"rows\":[{}]}}",
            body.join(",")
        ))
        .unwrap()
    }

    #[test]
    fn identical_snapshots_pass() {
        let a = snap(&[("Fattree4", 0.1), ("Ring20", 0.05)]);
        let r = compare_snapshots(&a, &a, 1.5, 0.025);
        assert!(r.passed(), "{r:?}");
        assert_eq!(r.comparisons.len(), 2 * STAGES.len());
    }

    #[test]
    fn regression_past_threshold_fails() {
        let base = snap(&[("Fattree4", 0.1)]);
        let cand = snap(&[("Fattree4", 0.16)]);
        let r = compare_snapshots(&base, &cand, 1.5, 0.025);
        assert!(!r.passed());
        assert!(r.regressions().count() >= 1);
        // 1.6x over every stage.
        assert!(r.regressions().all(|c| c.ratio > 1.5));
    }

    #[test]
    fn floor_absorbs_micro_stage_jitter() {
        // 1 ms → 3 ms is a 3x blowup but far below the 25 ms floor.
        let base = snap(&[("Ring20", 0.001)]);
        let cand = snap(&[("Ring20", 0.003)]);
        let r = compare_snapshots(&base, &cand, 1.5, 0.025);
        assert!(r.passed(), "{}", render(&r, 1.5));
        // Without the floor the same pair fails.
        let r2 = compare_snapshots(&base, &cand, 1.5, 0.0);
        assert!(!r2.passed());
    }

    #[test]
    fn missing_row_is_a_structural_error() {
        let base = snap(&[("Fattree4", 0.1), ("Ring20", 0.05)]);
        let cand = snap(&[("Fattree4", 0.1)]);
        let r = compare_snapshots(&base, &cand, 1.5, 0.025);
        assert!(!r.passed());
        assert!(r.errors.iter().any(|e| e.contains("Ring20")));
    }

    #[test]
    fn candidate_only_rows_are_ignored() {
        let base = snap(&[("Fattree4", 0.1)]);
        let cand = snap(&[("Fattree4", 0.1), ("Brandnew", 9.9)]);
        let r = compare_snapshots(&base, &cand, 1.5, 0.025);
        assert!(r.passed(), "{}", render(&r, 1.5));
    }

    #[test]
    fn wrong_schema_is_flagged() {
        let base = snap(&[("Fattree4", 0.1)]);
        let bad = Json::parse("{\"schema\":\"other\",\"rows\":[]}").unwrap();
        let r = compare_snapshots(&base, &bad, 1.5, 0.025);
        assert!(!r.passed());
    }

    #[test]
    fn render_mentions_regressions() {
        let base = snap(&[("Fattree4", 0.1)]);
        let cand = snap(&[("Fattree4", 0.2)]);
        let r = compare_snapshots(&base, &cand, 1.5, 0.025);
        let table = render(&r, 1.5);
        assert!(table.contains("REGRESSED"));
        assert!(table.contains("Fattree4"));
    }
}
