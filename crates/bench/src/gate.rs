//! The CI perf-regression gate: compare two snapshots of the same
//! envelope kind stage by stage and fail on wall-clock regressions.
//!
//! CI has always *uploaded* the perf snapshots; this module is what reads
//! them back. Committed baselines (`BENCH_baseline.json` for the
//! compression study, `BENCH_failures_baseline.json` for the failure
//! study) record the blessed per-stage times; the gate compares a freshly
//! generated snapshot against its baseline, row by row (matched on
//! `label`, failure rows additionally on `k`) and stage by stage, and
//! reports a regression when
//!
//! ```text
//! candidate > threshold * max(baseline, floor)
//! ```
//!
//! Snapshots arrive as [`bonsai_core::snapshot::Envelope`]s; the stage
//! list follows the envelope kind ([`stages_for_kind`]): compression
//! snapshots gate the pipeline stages, failure snapshots gate the cold /
//! warm / audit / refined-abstract / sweep-engine / network-sweep columns
//! — which is what locks in the warm-start and per-scenario-sweep
//! speedups. Pre-envelope snapshots (and enveloped ones of an older
//! payload version) fail with an explicit regenerate message rather than
//! a silent pass.
//!
//! The `floor` (default 25 ms) keeps micro-stages out of the verdict:
//! sub-millisecond stages jitter by integer factors on shared CI runners
//! without any code change, while a genuine pipeline regression shows up
//! in stages that take real time. Both knobs are command-line flags of
//! the `bench_gate` binary, so a noisy runner can be accommodated without
//! touching code. Missing rows and missing stages are hard failures —
//! silently dropping a benchmark must not read as "no regression".

use crate::json::Json;
use bonsai_core::snapshot::Envelope;

/// The per-stage wall-clock fields of a compression snapshot row's
/// `times` object.
pub const STAGES: [&str; 5] = [
    "total_s",
    "ec_compute_s",
    "engine_build_s",
    "bdd_s",
    "per_ec_s",
];

/// The per-stage wall-clock fields of a failure-study snapshot row's
/// `times` object (cold concrete sweep, warm-started sweep, PR 3 audit,
/// refined-abstract sweep, per-scenario sweep engine, network-level
/// sweep, sharded-report merge). The resident-session query latencies
/// (`query_cold_us`, `query_warm_us`) ride in the rows but are **not**
/// gated — they are microsecond-scale and would drown in runner jitter;
/// same for the `streamed` counters, which are exact integers gated by
/// the acceptance tests instead.
pub const FAILURE_STAGES: [&str; 7] = [
    "concrete_s",
    "warm_s",
    "audit_s",
    "abstract_s",
    "sweep_s",
    "netsweep_s",
    "merge_s",
];

/// The per-stage wall-clock fields of a delta-reverification snapshot
/// row's `times` object (fresh full pipeline vs warm delta pipeline on
/// the same edited config). The reuse counters (`ecs_rederived`,
/// `fingerprints_moved`) ride in the rows ungated — they are exact
/// integers asserted by the `delta --check` acceptance run.
pub const DELTA_STAGES: [&str; 2] = ["full_s", "delta_s"];

/// The stage list the gate compares for an envelope kind + payload
/// version, or `None` for snapshots it does not know how to gate.
pub fn stages_for_kind(kind: &str, version: u32) -> Option<&'static [&'static str]> {
    match (kind, version) {
        (crate::COMPRESS_SNAPSHOT_KIND, crate::COMPRESS_SNAPSHOT_VERSION) => Some(&STAGES),
        (crate::FAILURES_SNAPSHOT_KIND, crate::FAILURES_SNAPSHOT_VERSION) => Some(&FAILURE_STAGES),
        (crate::DELTA_SNAPSHOT_KIND, crate::DELTA_SNAPSHOT_VERSION) => Some(&DELTA_STAGES),
        _ => None,
    }
}

/// One stage comparison.
#[derive(Clone, Debug)]
pub struct StageComparison {
    /// Row label (topology).
    pub label: String,
    /// Stage name (a member of [`STAGES`]).
    pub stage: String,
    /// Baseline seconds.
    pub baseline_s: f64,
    /// Candidate seconds.
    pub candidate_s: f64,
    /// `candidate / max(baseline, floor)`.
    pub ratio: f64,
    /// True when the stage regressed past the threshold.
    pub regressed: bool,
}

/// Outcome of a snapshot comparison.
#[derive(Clone, Debug, Default)]
pub struct GateResult {
    /// Every stage comparison performed, in row order.
    pub comparisons: Vec<StageComparison>,
    /// Structural problems (missing rows/stages, kind/version mismatch).
    pub errors: Vec<String>,
}

impl GateResult {
    /// The comparisons that regressed.
    pub fn regressions(&self) -> impl Iterator<Item = &StageComparison> {
        self.comparisons.iter().filter(|c| c.regressed)
    }

    /// True when the candidate passes: no regressions, no structural
    /// problems.
    pub fn passed(&self) -> bool {
        self.errors.is_empty() && self.regressions().next().is_none()
    }
}

/// Row key: the label, extended with the failure bound `k` when present
/// (failure-study rows repeat a topology across bounds).
fn row_key(row: &Json) -> Option<String> {
    let label = row.get("label").and_then(Json::as_str)?;
    match row.get("k").and_then(Json::as_f64) {
        Some(k) => Some(format!("{label} k={k}")),
        None => Some(label.to_string()),
    }
}

fn rows_by_label<'j>(
    env: &'j Envelope,
    which: &str,
    errors: &mut Vec<String>,
) -> Vec<(String, &'j Json)> {
    let mut out = Vec::new();
    match env.payload.get("rows").and_then(Json::as_arr) {
        None => errors.push(format!("{which}: no rows array in the payload")),
        Some(rows) => {
            for row in rows {
                match row_key(row) {
                    Some(key) => out.push((key, row)),
                    None => errors.push(format!("{which}: row without a label")),
                }
            }
        }
    }
    out
}

/// Compares a candidate snapshot against a baseline of the same envelope
/// kind and payload version.
///
/// The stage list is derived from the baseline's kind
/// ([`stages_for_kind`]); the candidate must carry the identical kind and
/// version. Every baseline row must exist in the candidate and every
/// stage must be present in both (missing data is a structural error).
/// Candidate-only rows are compared against nothing — new benchmarks may
/// land before their baseline is re-blessed.
pub fn compare_snapshots(
    baseline: &Envelope,
    candidate: &Envelope,
    threshold: f64,
    floor_s: f64,
) -> GateResult {
    let mut result = GateResult::default();
    let Some(stages) = stages_for_kind(&baseline.kind, baseline.version) else {
        result.errors.push(format!(
            "baseline: don't know how to gate snapshot kind \"{}\" v{} — regenerate it \
             with the current writers",
            baseline.kind, baseline.version
        ));
        return result;
    };
    if (candidate.kind.as_str(), candidate.version) != (baseline.kind.as_str(), baseline.version) {
        result.errors.push(format!(
            "candidate snapshot \"{}\" v{} does not match baseline \"{}\" v{}",
            candidate.kind, candidate.version, baseline.kind, baseline.version
        ));
        return result;
    }
    let base_rows = rows_by_label(baseline, "baseline", &mut result.errors);
    let cand_rows = rows_by_label(candidate, "candidate", &mut result.errors);

    for (label, base_row) in &base_rows {
        let Some((_, cand_row)) = cand_rows.iter().find(|(l, _)| l == label) else {
            result
                .errors
                .push(format!("candidate is missing baseline row '{label}'"));
            continue;
        };
        for &stage in stages {
            let get = |row: &Json| -> Option<f64> {
                row.get("times")
                    .and_then(|t| t.get(stage))
                    .and_then(Json::as_f64)
            };
            let (base, cand) = match (get(base_row), get(cand_row)) {
                (Some(b), Some(c)) => (b, c),
                _ => {
                    result.errors.push(format!(
                        "row '{label}': stage '{stage}' missing on one side"
                    ));
                    continue;
                }
            };
            let effective_base = base.max(floor_s);
            let ratio = cand / effective_base;
            result.comparisons.push(StageComparison {
                label: label.to_string(),
                stage: stage.to_string(),
                baseline_s: base,
                candidate_s: cand,
                ratio,
                regressed: ratio > threshold,
            });
        }
    }
    result
}

/// Renders the comparison as the table `bench_gate` prints.
pub fn render(result: &GateResult, threshold: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:<16} {:>12} {:>12} {:>8}  verdict\n",
        "row", "stage", "baseline(s)", "candidate(s)", "ratio"
    ));
    for c in &result.comparisons {
        out.push_str(&format!(
            "{:<14} {:<16} {:>12.4} {:>12.4} {:>8.2}  {}\n",
            c.label,
            c.stage,
            c.baseline_s,
            c.candidate_s,
            c.ratio,
            if c.regressed {
                "REGRESSED"
            } else if c.ratio > 1.0 {
                "ok (slower)"
            } else {
                "ok"
            }
        ));
    }
    for e in &result.errors {
        out.push_str(&format!("error: {e}\n"));
    }
    let regressions = result.regressions().count();
    out.push_str(&format!(
        "{} comparisons, {} regression(s) at threshold {:.2}x, {} structural error(s)\n",
        result.comparisons.len(),
        regressions,
        threshold,
        result.errors.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress_snapshot_json, failures_snapshot_json};

    fn snap(rows: &[(&str, f64)]) -> Envelope {
        let body: Vec<String> = rows
            .iter()
            .map(|(label, t)| {
                format!(
                    "{{\"label\":\"{label}\",\"times\":{{\"total_s\":{t},\"ec_compute_s\":{t},\
                     \"engine_build_s\":{t},\"bdd_s\":{t},\"per_ec_s\":{t}}}}}"
                )
            })
            .collect();
        Envelope::parse(&compress_snapshot_json(&body)).unwrap()
    }

    #[test]
    fn identical_snapshots_pass() {
        let a = snap(&[("Fattree4", 0.1), ("Ring20", 0.05)]);
        let r = compare_snapshots(&a, &a, 1.5, 0.025);
        assert!(r.passed(), "{r:?}");
        assert_eq!(r.comparisons.len(), 2 * STAGES.len());
    }

    #[test]
    fn regression_past_threshold_fails() {
        let base = snap(&[("Fattree4", 0.1)]);
        let cand = snap(&[("Fattree4", 0.16)]);
        let r = compare_snapshots(&base, &cand, 1.5, 0.025);
        assert!(!r.passed());
        assert!(r.regressions().count() >= 1);
        // 1.6x over every stage.
        assert!(r.regressions().all(|c| c.ratio > 1.5));
    }

    #[test]
    fn floor_absorbs_micro_stage_jitter() {
        // 1 ms → 3 ms is a 3x blowup but far below the 25 ms floor.
        let base = snap(&[("Ring20", 0.001)]);
        let cand = snap(&[("Ring20", 0.003)]);
        let r = compare_snapshots(&base, &cand, 1.5, 0.025);
        assert!(r.passed(), "{}", render(&r, 1.5));
        // Without the floor the same pair fails.
        let r2 = compare_snapshots(&base, &cand, 1.5, 0.0);
        assert!(!r2.passed());
    }

    #[test]
    fn missing_row_is_a_structural_error() {
        let base = snap(&[("Fattree4", 0.1), ("Ring20", 0.05)]);
        let cand = snap(&[("Fattree4", 0.1)]);
        let r = compare_snapshots(&base, &cand, 1.5, 0.025);
        assert!(!r.passed());
        assert!(r.errors.iter().any(|e| e.contains("Ring20")));
    }

    #[test]
    fn candidate_only_rows_are_ignored() {
        let base = snap(&[("Fattree4", 0.1)]);
        let cand = snap(&[("Fattree4", 0.1), ("Brandnew", 9.9)]);
        let r = compare_snapshots(&base, &cand, 1.5, 0.025);
        assert!(r.passed(), "{}", render(&r, 1.5));
    }

    #[test]
    fn unknown_kind_is_flagged() {
        let base = snap(&[("Fattree4", 0.1)]);
        let other = Envelope::parse(&bonsai_core::snapshot::write_envelope(
            "bench/other",
            1,
            "sha",
            "tc",
            "{\"rows\": []}",
        ))
        .unwrap();
        let r = compare_snapshots(&other, &base, 1.5, 0.025);
        assert!(!r.passed());
        assert!(r
            .errors
            .iter()
            .any(|e| e.contains("don't know how to gate")));
    }

    fn failures_snap(rows: &[(&str, usize, f64)]) -> Envelope {
        let body: Vec<String> = rows
            .iter()
            .map(|(label, k, t)| {
                format!(
                    "{{\"label\":\"{label}\",\"k\":{k},\"times\":{{\"concrete_s\":{t},\
                     \"warm_s\":{t},\"audit_s\":{t},\"abstract_s\":{t},\"sweep_s\":{t},\
                     \"netsweep_s\":{t},\"merge_s\":{t}}},\
                     \"streamed\":{{\"chunk_size\":1024,\"scenarios_streamed\":8,\
                     \"peak_resident_scenarios\":2}},\
                     \"query_cold_us\":{t},\"query_warm_us\":{t}}}"
                )
            })
            .collect();
        Envelope::parse(&failures_snapshot_json(&body)).unwrap()
    }

    #[test]
    fn failure_snapshots_gate_on_their_own_stages() {
        let base = failures_snap(&[("Fattree4", 1, 0.1), ("Fattree4", 2, 0.2)]);
        let same = compare_snapshots(&base, &base, 1.5, 0.025);
        assert!(same.passed(), "{same:?}");
        // Rows are matched on (label, k): regressing only k=2 is caught.
        assert_eq!(same.comparisons.len(), 2 * FAILURE_STAGES.len());
        let cand = failures_snap(&[("Fattree4", 1, 0.1), ("Fattree4", 2, 0.4)]);
        let r = compare_snapshots(&base, &cand, 1.5, 0.025);
        assert!(!r.passed());
        assert!(r.regressions().all(|c| c.label.contains("k=2")));
        // The failure stages include the sweep and merge columns.
        assert!(r.comparisons.iter().any(|c| c.stage == "sweep_s"));
        assert!(r.comparisons.iter().any(|c| c.stage == "netsweep_s"));
        assert!(r.comparisons.iter().any(|c| c.stage == "merge_s"));
    }

    fn delta_snap(rows: &[(&str, usize, f64, f64)]) -> Envelope {
        let body: Vec<String> = rows
            .iter()
            .map(|(label, k, full, delta)| {
                format!(
                    "{{\"label\":\"{label}\",\"k\":{k},\
                     \"times\":{{\"full_s\":{full},\"delta_s\":{delta}}},\
                     \"ecs_total\":32,\"ecs_rederived\":1,\"fingerprints_moved\":1}}"
                )
            })
            .collect();
        Envelope::parse(&crate::delta_snapshot_json(&body)).unwrap()
    }

    #[test]
    fn delta_snapshots_gate_full_and_delta_stages() {
        let base = delta_snap(&[("Fattree8", 2, 3.0, 0.1)]);
        let same = compare_snapshots(&base, &base, 1.5, 0.025);
        assert!(same.passed(), "{same:?}");
        assert_eq!(same.comparisons.len(), DELTA_STAGES.len());
        // A delta-path slowdown regresses the gate even when the full
        // pipeline is unchanged — the incremental speedup is the product.
        let cand = delta_snap(&[("Fattree8", 2, 3.0, 0.5)]);
        let r = compare_snapshots(&base, &cand, 1.5, 0.025);
        assert!(!r.passed());
        assert!(r.regressions().all(|c| c.stage == "delta_s"));
        // The reuse counters ride along ungated.
        assert!(r.comparisons.iter().all(|c| !c.stage.contains("ecs")));
    }

    #[test]
    fn query_latency_columns_ride_along_ungated() {
        let base = failures_snap(&[("Fattree4", 1, 0.1)]);
        let r = compare_snapshots(&base, &base, 1.5, 0.025);
        assert!(r.passed());
        assert!(r.comparisons.iter().all(|c| !c.stage.contains("query")));
    }

    #[test]
    fn version_mismatch_is_flagged_not_silently_passed() {
        let base = failures_snap(&[("Fattree4", 1, 0.1)]);
        let old = Envelope::parse(&bonsai_core::snapshot::write_envelope(
            crate::FAILURES_SNAPSHOT_KIND,
            3,
            "sha",
            "tc",
            "{\"rows\": []}",
        ))
        .unwrap();
        let r = compare_snapshots(&base, &old, 1.5, 0.025);
        assert!(!r.passed());
        assert!(r.errors.iter().any(|e| e.contains("does not match")));
        // And an old baseline cannot gate at all.
        let r2 = compare_snapshots(&old, &base, 1.5, 0.025);
        assert!(!r2.passed());
        assert!(r2.errors.iter().any(|e| e.contains("regenerate")));
    }

    #[test]
    fn mismatched_snapshot_kinds_are_flagged() {
        let compress = snap(&[("Fattree4", 0.1)]);
        let failures = failures_snap(&[("Fattree4", 1, 0.1)]);
        let r = compare_snapshots(&compress, &failures, 1.5, 0.025);
        assert!(!r.passed());
        assert!(r.errors.iter().any(|e| e.contains("does not match")));
    }

    #[test]
    fn render_mentions_regressions() {
        let base = snap(&[("Fattree4", 0.1)]);
        let cand = snap(&[("Fattree4", 0.2)]);
        let r = compare_snapshots(&base, &cand, 1.5, 0.025);
        let table = render(&r, 1.5);
        assert!(table.contains("REGRESSED"));
        assert!(table.contains("Fattree4"));
    }
}
