//! Compatibility shim: the JSON reader moved to [`bonsai_core::snapshot`]
//! so the bench, CLI, and daemon can share one parser and one versioned
//! snapshot envelope. Import from there in new code.

pub use bonsai_core::snapshot::{Json, JsonError};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_own_writer_output() {
        // The actual writer output must be readable by the gate.
        let row = crate::report_json(
            "X\"y\\z",
            &bonsai_core::compress::compress(
                &bonsai_srp::papernets::figure1_rip(),
                Default::default(),
            ),
        );
        let doc = crate::compress_snapshot_json(&[row]);
        let env = bonsai_core::snapshot::Envelope::parse(&doc).unwrap();
        assert_eq!(env.kind, "bench/compress");
        let rows = env.payload.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(rows[0].get("label").and_then(Json::as_str), Some("X\"y\\z"));
    }
}
