//! # bonsai-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (§8). Each experiment is a binary printing rows in
//! the paper's format:
//!
//! * `table1` — compression results for the synthetic topologies
//!   (Table 1(a)) and, with `--real`, the data-center and WAN simulacra
//!   (Table 1(b)); `--roles` reproduces the role-count study.
//! * `fig11` — abstraction size for the fattree under the two policies.
//! * `fig12` — all-pairs reachability verification time with and without
//!   compression (Minesweeper substitute), with timeout/OOM reporting.
//! * `batfish_query` — the single reachability query on the data center
//!   (simulation engine), with and without compression.
//!
//! * `failures` — the bounded link-failure study: concrete vs
//!   refined-abstract solve time per failure bound `k`, with the
//!   `BENCH_failures.json` snapshot.
//! * `bench_gate` — the CI perf-regression gate comparing a fresh
//!   `table1 --quick --json` snapshot against the committed
//!   `BENCH_baseline.json` (see [`gate`]).
//!
//! Criterion micro-benchmarks of the pipeline stages live in `benches/`.
//!
//! Snapshots carry provenance metadata (`git_sha`, `toolchain`) so
//! artifacts uploaded from different runs remain traceable; [`json`] is
//! the minimal reader the gate uses to load them back.

#![forbid(unsafe_code)]

pub mod gate;
pub mod json;

use bonsai_core::compress::CompressionReport;
use bonsai_net::NodeId;
use bonsai_verify::properties::SolutionAnalysis;
use bonsai_verify::search_engine::{for_each_solution, SearchBudget, SearchOutcome};
use std::time::{Duration, Instant};

/// One row of Table 1.
pub struct Table1Row {
    /// Topology label, e.g. `Fattree` or `Data center`.
    pub topology: String,
    /// Concrete nodes / links.
    pub nodes: usize,
    /// Concrete undirected links.
    pub links: usize,
    /// Mean ± std abstract nodes.
    pub abs_nodes: (f64, f64),
    /// Mean ± std abstract links.
    pub abs_links: (f64, f64),
    /// Compression ratios (nodes, links).
    pub ratios: (f64, f64),
    /// Number of destination classes.
    pub ecs: usize,
    /// Total BDD-construction time.
    pub bdd_time: Duration,
    /// Mean per-class compression time.
    pub per_ec_time: Duration,
    /// Shared-arena node count at end of run.
    pub arena_nodes: usize,
    /// Cross-EC signature-cache hit rate (0..1).
    pub sig_hit_rate: f64,
    /// Whole-table cache hit rate across ECs (0..1).
    pub table_hit_rate: f64,
}

impl Table1Row {
    /// Builds a row from a compression report.
    pub fn from_report(topology: impl Into<String>, report: &CompressionReport) -> Self {
        Table1Row {
            topology: topology.into(),
            nodes: report.concrete_nodes,
            links: report.concrete_links,
            abs_nodes: (report.mean_abstract_nodes(), report.std_abstract_nodes()),
            abs_links: (report.mean_abstract_links(), report.std_abstract_links()),
            ratios: (report.node_ratio(), report.link_ratio()),
            ecs: report.num_ecs(),
            bdd_time: report.bdd_time(),
            per_ec_time: report.compress_time_per_ec(),
            arena_nodes: report.engine.arena_nodes,
            sig_hit_rate: report.engine.sig_hit_rate(),
            table_hit_rate: report.engine.table_hit_rate(),
        }
    }

    /// Renders the row in the paper's column layout, extended with the
    /// shared-engine columns (arena nodes, signature-cache hit rate).
    pub fn render(&self) -> String {
        format!(
            "{:<12} {:>6} / {:<7} {:>7.1}±{:<5.1} / {:>7.1}±{:<7.1} {:>7.2}x / {:<9.2}x {:>6} {:>10.2} {:>12.4} {:>8} {:>6.0}%",
            self.topology,
            self.nodes,
            self.links,
            self.abs_nodes.0,
            self.abs_nodes.1,
            self.abs_links.0,
            self.abs_links.1,
            self.ratios.0,
            self.ratios.1,
            self.ecs,
            self.bdd_time.as_secs_f64(),
            self.per_ec_time.as_secs_f64(),
            self.arena_nodes,
            self.table_hit_rate * 100.0,
        )
    }

    /// The table header matching [`Table1Row::render`].
    pub fn header() -> String {
        format!(
            "{:<12} {:>6} / {:<7} {:>13} / {:<17} {:>19} {:>6} {:>10} {:>12} {:>8} {:>7}",
            "Topology",
            "Nodes",
            "Links",
            "Abs.Nodes",
            "Abs.Links",
            "Compression",
            "ECs",
            "BDD(s)",
            "perEC(s)",
            "BDDnode",
            "ecHit"
        )
    }
}

/// Minimal JSON string escaping (labels are ASCII; quotes and backslashes
/// still must not break the document).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// Serializes one compression run for the `BENCH_compress.json` perf
/// snapshot: per-stage times, shared-engine arena/cache statistics and
/// compression ratios.
pub fn report_json(label: &str, report: &CompressionReport) -> String {
    let e = &report.engine;
    format!(
        concat!(
            "{{\"label\":\"{}\",\"nodes\":{},\"links\":{},\"ecs\":{},",
            "\"abs_nodes_mean\":{},\"abs_nodes_std\":{},",
            "\"abs_links_mean\":{},\"abs_links_std\":{},",
            "\"node_ratio\":{},\"link_ratio\":{},",
            "\"times\":{{\"total_s\":{},\"ec_compute_s\":{},\"engine_build_s\":{},",
            "\"bdd_s\":{},\"per_ec_s\":{}}},",
            "\"engine\":{{\"arena_nodes\":{},\"arena_peak\":{},",
            "\"apply_lookups\":{},\"apply_hits\":{},\"apply_hit_rate\":{},",
            "\"unique_lookups\":{},\"unique_hits\":{},",
            "\"stage_lookups\":{},\"stage_hits\":{},\"stage_hit_rate\":{},",
            "\"sig_lookups\":{},\"sig_hits\":{},\"sig_hit_rate\":{},",
            "\"table_lookups\":{},\"table_hits\":{},\"table_hit_rate\":{}}}}}"
        ),
        json_escape(label),
        report.concrete_nodes,
        report.concrete_links,
        report.num_ecs(),
        json_f64(report.mean_abstract_nodes()),
        json_f64(report.std_abstract_nodes()),
        json_f64(report.mean_abstract_links()),
        json_f64(report.std_abstract_links()),
        json_f64(report.node_ratio()),
        json_f64(report.link_ratio()),
        json_f64(report.total_time.as_secs_f64()),
        json_f64(report.ec_compute_time.as_secs_f64()),
        json_f64(report.engine_build_time.as_secs_f64()),
        json_f64(report.bdd_time().as_secs_f64()),
        json_f64(report.compress_time_per_ec().as_secs_f64()),
        e.arena_nodes,
        e.arena_peak,
        e.apply_lookups,
        e.apply_hits,
        json_f64(e.apply_hit_rate()),
        e.unique_lookups,
        e.unique_hits,
        e.stage_lookups,
        e.stage_hits,
        json_f64(e.stage_hit_rate()),
        e.sig_lookups,
        e.sig_hits,
        json_f64(e.sig_hit_rate()),
        e.table_lookups,
        e.table_hits,
        json_f64(e.table_hit_rate()),
    )
}

/// The commit the snapshot was generated from: `GITHUB_SHA` when CI
/// provides it, otherwise `git rev-parse HEAD`, otherwise `"unknown"`.
pub fn git_sha() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The toolchain the snapshot binary was built with (`rustc --version`),
/// or `"unknown"` outside a rust environment.
pub fn toolchain() -> String {
    std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The shared provenance fields of every snapshot document.
/// Envelope kind of the compression perf snapshot.
pub const COMPRESS_SNAPSHOT_KIND: &str = "bench/compress";
/// Payload version of the compression perf snapshot.
pub const COMPRESS_SNAPSHOT_VERSION: u32 = 1;
/// Envelope kind of the delta-reverification perf snapshot.
pub const DELTA_SNAPSHOT_KIND: &str = "bench/delta";
/// Payload version of the delta-reverification snapshot.
pub const DELTA_SNAPSHOT_VERSION: u32 = 1;
/// Envelope kind of the failure-study perf snapshot.
pub const FAILURES_SNAPSHOT_KIND: &str = "bench/failures";
/// Payload version of the failure-study snapshot. v5 adds the streamed
/// fan-out columns (`scenarios_streamed`, `peak_resident_scenarios`,
/// `chunk_size` in the `streamed` object) and the sharded-sweep merge
/// stage (`merge_s` in `times`).
pub const FAILURES_SNAPSHOT_VERSION: u32 = 5;

fn rows_payload(rows: &[String]) -> String {
    let indented: Vec<String> = rows.iter().map(|json| format!("      {json}")).collect();
    format!("{{\n    \"rows\": [\n{}\n    ]\n  }}", indented.join(",\n"))
}

/// Assembles the full `BENCH_compress.json` document from
/// [`report_json`] rows: a [`bonsai_core::snapshot`] envelope of kind
/// [`COMPRESS_SNAPSHOT_KIND`], stamped with provenance metadata
/// (`git_sha`, `toolchain`) so uploaded artifacts are traceable across
/// runs.
pub fn compress_snapshot_json(rows: &[String]) -> String {
    bonsai_core::snapshot::write_envelope(
        COMPRESS_SNAPSHOT_KIND,
        COMPRESS_SNAPSHOT_VERSION,
        &git_sha(),
        &toolchain(),
        &rows_payload(rows),
    )
}

/// Assembles the `BENCH_failures.json` document from failure-study rows
/// (see the `failures` binary): an envelope of kind
/// [`FAILURES_SNAPSHOT_KIND`], with the same provenance metadata.
/// Payload lineage: v2 added the sweep-engine stages (`warm_s`,
/// `sweep_s` in `times`, plus the per-row `sweep` statistics object);
/// v3 added the network-level sweep (`netsweep_s` in `times` plus the
/// `cross_ec` object); v4 — the first enveloped version — added the
/// resident-session query latencies (`query_cold_us`, `query_warm_us`)
/// so the table shows warm answers decoupled from solve time; v5 adds
/// the streamed-enumeration columns (the `streamed` object:
/// `chunk_size`, `scenarios_streamed`, `peak_resident_scenarios` — the
/// bounded-memory proof) and the sharded-sweep merge stage (`merge_s`).
pub fn failures_snapshot_json(rows: &[String]) -> String {
    bonsai_core::snapshot::write_envelope(
        FAILURES_SNAPSHOT_KIND,
        FAILURES_SNAPSHOT_VERSION,
        &git_sha(),
        &toolchain(),
        &rows_payload(rows),
    )
}

/// Assembles the `BENCH_delta.json` document from delta-study rows (see
/// the `delta` binary): an envelope of kind [`DELTA_SNAPSHOT_KIND`].
/// Each row carries `times.full_s` (fresh compress + sweep on the edited
/// config) vs `times.delta_s` (warm delta apply + subset re-sweep) plus
/// the exact reuse counters (`ecs_total`, `ecs_rederived`,
/// `fingerprints_moved`) — the counters are gated by the acceptance
/// checks, the times by the perf gate.
pub fn delta_snapshot_json(rows: &[String]) -> String {
    bonsai_core::snapshot::write_envelope(
        DELTA_SNAPSHOT_KIND,
        DELTA_SNAPSHOT_VERSION,
        &git_sha(),
        &toolchain(),
        &rows_payload(rows),
    )
}

/// Outcome of one Figure 12 measurement.
pub struct Fig12Point {
    /// Concrete node count.
    pub nodes: usize,
    /// Concrete verification outcome and wall time.
    pub concrete: (String, Duration),
    /// Compressed verification outcome (compression + abstract query) and
    /// total wall time.
    pub compressed: (String, Duration),
}

fn outcome_label<T>(o: &SearchOutcome<T>) -> String {
    match o {
        SearchOutcome::Completed(_) => "ok".into(),
        SearchOutcome::Timeout => "TIMEOUT".into(),
        SearchOutcome::OutOfMemory => "OOM".into(),
        SearchOutcome::Diverged(_) => "diverged".into(),
    }
}

/// Runs the Figure 12 experiment on one network: all-pairs reachability
/// with the exhaustive-search engine, concrete vs compressed.
pub fn fig12_point(net: &bonsai_config::NetworkConfig, budget: SearchBudget) -> Fig12Point {
    // Concrete run.
    let t0 = Instant::now();
    let concrete = bonsai_verify::search_engine::all_pairs_reachability(
        net,
        budget,
        &bonsai_verify::query::QueryCtx::failure_free(),
    );
    let concrete_time = t0.elapsed();

    // Compressed run: compression time counts toward the total (the paper
    // includes partitioning, BDD and abstraction time in the abstract
    // series).
    let t1 = Instant::now();
    let report = bonsai_core::compress::compress(net, Default::default());
    let abstract_outcome = abstract_all_pairs(&report, budget);
    let compressed_time = t1.elapsed();

    // Sanity: when both complete, the mapped-back counts must agree —
    // that is CP-equivalence paying off.
    if let (SearchOutcome::Completed(c), SearchOutcome::Completed(a)) =
        (&concrete, &abstract_outcome)
    {
        assert_eq!(c, a, "abstract all-pairs disagrees with concrete all-pairs");
    }

    Fig12Point {
        nodes: net.devices.len(),
        concrete: (outcome_label(&concrete), concrete_time),
        compressed: (outcome_label(&abstract_outcome), compressed_time),
    }
}

/// All-pairs reachability answered on the *compressed* networks, mapped
/// back to concrete `(node, class)` pair counts via the abstraction.
pub fn abstract_all_pairs(
    report: &CompressionReport,
    budget: SearchBudget,
) -> SearchOutcome<usize> {
    let deadline = Instant::now() + budget.wall;
    let mut total = 0usize;
    for ec in &report.per_ec {
        if Instant::now() >= deadline {
            return SearchOutcome::Timeout;
        }
        let abs = &ec.abstract_network;
        let abs_ecs = bonsai_core::ecs::compute_ecs(&abs.network, &abs.topo);
        let n = abs.topo.graph.node_count();
        let mut reach_all = vec![true; n];
        for abs_ec in &abs_ecs {
            let origins: Vec<NodeId> = abs_ec.origins.iter().map(|(o, _)| *o).collect();
            let outcome = for_each_solution(
                &abs.network,
                &abs.topo,
                abs_ec,
                budget,
                deadline,
                &bonsai_verify::query::QueryCtx::failure_free(),
                &mut |sol| {
                    let analysis = SolutionAnalysis::new(&abs.topo.graph, sol, &origins);
                    for u in abs.topo.graph.nodes() {
                        reach_all[u.index()] &= analysis.can_reach(u);
                    }
                },
            );
            match outcome {
                SearchOutcome::Completed(_) => {}
                SearchOutcome::Timeout => return SearchOutcome::Timeout,
                SearchOutcome::OutOfMemory => return SearchOutcome::OutOfMemory,
                SearchOutcome::Diverged(e) => return SearchOutcome::Diverged(e),
            }
        }
        // Map back: a concrete node reaches iff every copy of its block
        // reaches (copy assignment is solution-dependent, so "in all
        // solutions" quantifies over copies too). Origin blocks are
        // excluded like the concrete count excludes origins.
        let abs_origin_blocks: std::collections::BTreeSet<_> = ec
            .abstract_network
            .ec
            .origins
            .iter()
            .map(|(o, _)| ec.abstract_network.copy_of_node[o.index()].0)
            .collect();
        for block in ec.abstraction.partition.blocks() {
            if abs_origin_blocks.contains(&block) {
                // Count non-origin members of origin blocks as reachable
                // (they sit with the origin and always deliver); the
                // concrete count skips only true origins.
                let member_count = ec.abstraction.partition.members(block).len();
                let origin_count = ec
                    .ec
                    .origins
                    .iter()
                    .filter(|(o, _)| ec.abstraction.partition.members(block).contains(&o.0))
                    .count();
                total += member_count - origin_count;
                continue;
            }
            let copies: Vec<NodeId> = ec.abstract_network.candidates_of(
                &ec.abstraction,
                NodeId(ec.abstraction.partition.members(block)[0]),
            );
            if copies.iter().all(|c| reach_all[c.index()]) {
                total += ec.abstraction.partition.members(block).len();
            }
        }
    }
    SearchOutcome::Completed(total)
}

/// Formats a duration like the paper's second columns.
pub fn secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}
