//! Policy semantics: route maps, prefix lists and ACLs.
//!
//! These functions are **the** definition of what a policy means. The SRP
//! simulator interprets them directly; the BDD compiler in `bonsai-core`
//! enumerates the same code over symbolic inputs. Keeping a single
//! implementation is what justifies the paper's claim that BDD equality
//! implies transfer-function equality.

use crate::ir::{Acl, Action, Community, DeviceConfig, MatchCond, PrefixList, RouteMap, SetAction};
use bonsai_net::prefix::Prefix;
use std::collections::BTreeSet;

/// The route attributes a policy can observe.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PolicyInput {
    /// Destination prefix of the advertisement.
    pub dest: Prefix,
    /// Communities currently attached.
    pub communities: BTreeSet<Community>,
}

/// The effect of running a route map on an advertisement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PolicyResult {
    /// False if the route was denied (dropped).
    pub permit: bool,
    /// New local preference, if the map set one.
    pub local_pref: Option<u32>,
    /// New metric (MED), if the map set one.
    pub metric: Option<u32>,
    /// Communities attached by the map.
    pub added: BTreeSet<Community>,
    /// Communities stripped by the map.
    pub deleted: BTreeSet<Community>,
    /// Extra times the local AS is prepended on export.
    pub prepend: u8,
}

impl PolicyResult {
    /// A result that permits the route unchanged.
    pub fn permit_unchanged() -> Self {
        PolicyResult {
            permit: true,
            local_pref: None,
            metric: None,
            added: BTreeSet::new(),
            deleted: BTreeSet::new(),
            prepend: 0,
        }
    }

    /// A result that drops the route.
    pub fn deny() -> Self {
        PolicyResult {
            permit: false,
            ..PolicyResult::permit_unchanged()
        }
    }

    /// Applies the community edits to a community set.
    pub fn apply_communities(&self, communities: &mut BTreeSet<Community>) {
        for c in &self.deleted {
            communities.remove(c);
        }
        for c in &self.added {
            communities.insert(*c);
        }
    }
}

/// Evaluates a prefix list against a destination prefix.
///
/// Entries are scanned in order; the first entry whose range covers the
/// destination *and* whose `ge`/`le` bounds admit the destination's length
/// decides. No match means deny (IOS semantics).
pub fn prefix_list_permits(list: &PrefixList, dest: Prefix) -> bool {
    for e in &list.entries {
        // IOS length rule: without ge/le only the exact length matches;
        // `ge` opens the lower bound, `le` the upper (ge alone implies 32).
        let lo = e.ge.unwrap_or(e.prefix.len());
        let hi =
            e.le.unwrap_or(if e.ge.is_some() { 32 } else { e.prefix.len() });
        if e.prefix.contains(dest) && dest.len() >= lo && dest.len() <= hi {
            return e.action == Action::Permit;
        }
    }
    false
}

/// Evaluates an ACL against a destination address range.
///
/// The whole range must match one entry for a decision; first match wins,
/// default deny. (Bonsai's equivalence classes guarantee the queried range
/// never straddles an ACL entry boundary.)
pub fn acl_permits(acl: &Acl, dest: Prefix) -> bool {
    for e in &acl.entries {
        if e.prefix.contains(dest) {
            return e.action == Action::Permit;
        }
    }
    false
}

/// True if the route's communities satisfy the named community list
/// (at least one listed community present).
pub fn community_list_matches(
    device: &DeviceConfig,
    list: &str,
    communities: &BTreeSet<Community>,
) -> bool {
    match device.community_list(list) {
        Some(cl) => cl.communities.iter().any(|c| communities.contains(c)),
        None => false, // dangling reference never matches
    }
}

/// True if a single match condition holds for the input.
pub fn match_holds(device: &DeviceConfig, cond: &MatchCond, input: &PolicyInput) -> bool {
    match cond {
        MatchCond::Community(list) => community_list_matches(device, list, &input.communities),
        MatchCond::PrefixList(list) => match device.prefix_list(list) {
            Some(pl) => prefix_list_permits(pl, input.dest),
            None => false,
        },
    }
}

/// Runs a route map over an advertisement.
///
/// IOS semantics: clauses in sequence order; the first clause whose match
/// conditions all hold decides — deny drops the route, permit applies the
/// clause's set actions and accepts. If no clause matches, the route is
/// dropped (implicit deny).
pub fn eval_route_map(device: &DeviceConfig, map: &RouteMap, input: &PolicyInput) -> PolicyResult {
    for clause in &map.clauses {
        if clause.matches.iter().all(|m| match_holds(device, m, input)) {
            if clause.action == Action::Deny {
                return PolicyResult::deny();
            }
            let mut result = PolicyResult::permit_unchanged();
            for set in &clause.sets {
                match set {
                    SetAction::LocalPref(lp) => result.local_pref = Some(*lp),
                    SetAction::AddCommunity(c) => {
                        result.deleted.remove(c);
                        result.added.insert(*c);
                    }
                    SetAction::DeleteCommunity(c) => {
                        result.added.remove(c);
                        result.deleted.insert(*c);
                    }
                    SetAction::Prepend(n) => result.prepend = result.prepend.saturating_add(*n),
                    SetAction::Metric(m) => result.metric = Some(*m),
                }
            }
            return result;
        }
    }
    PolicyResult::deny()
}

/// Runs an optional route map: absent maps permit everything unchanged.
pub fn eval_optional_route_map(
    device: &DeviceConfig,
    map: Option<&str>,
    input: &PolicyInput,
) -> PolicyResult {
    match map {
        None => PolicyResult::permit_unchanged(),
        Some(name) => match device.route_map(name) {
            Some(m) => eval_route_map(device, m, input),
            // Dangling route-map reference: IOS treats it as deny-all.
            None => PolicyResult::deny(),
        },
    }
}

/// The set of local-preference values a device may assign to routes for a
/// given destination: the default plus every `set local-preference` in any
/// route map that could apply (paper §4.3, `prefs(v)`).
///
/// This is a static over-approximation read straight off the configuration,
/// exactly as the paper prescribes.
pub fn possible_local_prefs(device: &DeviceConfig, default_lp: u32) -> BTreeSet<u32> {
    let mut prefs = BTreeSet::new();
    prefs.insert(default_lp);
    for map in &device.route_maps {
        for clause in &map.clauses {
            if clause.action == Action::Permit {
                for set in &clause.sets {
                    if let SetAction::LocalPref(lp) = set {
                        prefs.insert(*lp);
                    }
                }
            }
        }
    }
    prefs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn device_with_lists() -> DeviceConfig {
        let mut d = DeviceConfig::new("r1");
        d.prefix_lists.push(PrefixList {
            name: "TEN".into(),
            entries: vec![
                PrefixListEntry {
                    seq: 5,
                    action: Action::Deny,
                    prefix: p("10.9.0.0/16"),
                    ge: None,
                    le: Some(32),
                },
                PrefixListEntry {
                    seq: 10,
                    action: Action::Permit,
                    prefix: p("10.0.0.0/8"),
                    ge: None,
                    le: Some(32),
                },
            ],
        });
        d.community_lists.push(CommunityList {
            name: "DEPT".into(),
            communities: vec![Community::new(65001, 1), Community::new(65001, 2)],
        });
        d
    }

    #[test]
    fn prefix_list_order_and_default_deny() {
        let d = device_with_lists();
        let pl = d.prefix_list("TEN").unwrap();
        assert!(!prefix_list_permits(pl, p("10.9.1.0/24"))); // denied by seq 5
        assert!(prefix_list_permits(pl, p("10.1.0.0/16"))); // permitted by seq 10
        assert!(!prefix_list_permits(pl, p("11.0.0.0/8"))); // implicit deny
    }

    #[test]
    fn prefix_list_exact_length_without_bounds() {
        let pl = PrefixList {
            name: "X".into(),
            entries: vec![PrefixListEntry {
                seq: 5,
                action: Action::Permit,
                prefix: p("10.0.0.0/8"),
                ge: None,
                le: None,
            }],
        };
        // Without ge/le only the exact prefix matches (IOS semantics).
        assert!(prefix_list_permits(&pl, p("10.0.0.0/8")));
        assert!(!prefix_list_permits(&pl, p("10.1.0.0/16")));
    }

    #[test]
    fn prefix_list_ge_bound() {
        let pl = PrefixList {
            name: "X".into(),
            entries: vec![PrefixListEntry {
                seq: 5,
                action: Action::Permit,
                prefix: p("10.0.0.0/8"),
                ge: Some(24),
                le: None,
            }],
        };
        assert!(prefix_list_permits(&pl, p("10.1.2.0/24")));
        assert!(!prefix_list_permits(&pl, p("10.1.0.0/16")));
    }

    #[test]
    fn acl_first_match_wins() {
        let acl = Acl {
            name: "A".into(),
            entries: vec![
                AclEntry {
                    action: Action::Deny,
                    prefix: p("10.9.0.0/16"),
                },
                AclEntry {
                    action: Action::Permit,
                    prefix: Prefix::DEFAULT,
                },
            ],
        };
        assert!(!acl_permits(&acl, p("10.9.3.0/24")));
        assert!(acl_permits(&acl, p("10.1.0.0/16")));
        let empty = Acl {
            name: "E".into(),
            entries: vec![],
        };
        assert!(!acl_permits(&empty, p("10.0.0.0/8")));
    }

    #[test]
    fn route_map_first_match_and_implicit_deny() {
        let mut d = device_with_lists();
        d.route_maps.push(RouteMap {
            name: "M".into(),
            clauses: vec![
                RouteMapClause {
                    seq: 10,
                    action: Action::Permit,
                    matches: vec![MatchCond::Community("DEPT".into())],
                    sets: vec![
                        SetAction::AddCommunity(Community::new(65001, 3)),
                        SetAction::LocalPref(350),
                    ],
                },
                RouteMapClause {
                    seq: 20,
                    action: Action::Deny,
                    matches: vec![MatchCond::PrefixList("TEN".into())],
                    sets: vec![],
                },
            ],
        });
        let m = d.route_map("M").unwrap();

        // Community present: clause 10 applies (Figure 10 of the paper).
        let mut comms = BTreeSet::new();
        comms.insert(Community::new(65001, 1));
        let r = eval_route_map(
            &d,
            m,
            &PolicyInput {
                dest: p("10.1.0.0/16"),
                communities: comms,
            },
        );
        assert!(r.permit);
        assert_eq!(r.local_pref, Some(350));
        assert!(r.added.contains(&Community::new(65001, 3)));

        // No community, dest in TEN: clause 20 denies.
        let r = eval_route_map(
            &d,
            m,
            &PolicyInput {
                dest: p("10.1.0.0/16"),
                communities: BTreeSet::new(),
            },
        );
        assert!(!r.permit);

        // Nothing matches: implicit deny.
        let r = eval_route_map(
            &d,
            m,
            &PolicyInput {
                dest: p("11.0.0.0/8"),
                communities: BTreeSet::new(),
            },
        );
        assert!(!r.permit);
    }

    #[test]
    fn add_then_delete_community_cancels() {
        let d = DeviceConfig::new("r1");
        let map = RouteMap {
            name: "M".into(),
            clauses: vec![RouteMapClause {
                seq: 10,
                action: Action::Permit,
                matches: vec![],
                sets: vec![
                    SetAction::AddCommunity(Community::new(1, 1)),
                    SetAction::DeleteCommunity(Community::new(1, 1)),
                ],
            }],
        };
        let r = eval_route_map(
            &d,
            &map,
            &PolicyInput {
                dest: p("10.0.0.0/8"),
                communities: BTreeSet::new(),
            },
        );
        assert!(r.permit);
        assert!(!r.added.contains(&Community::new(1, 1)));
        assert!(r.deleted.contains(&Community::new(1, 1)));
        let mut cs = BTreeSet::new();
        cs.insert(Community::new(1, 1));
        r.apply_communities(&mut cs);
        assert!(cs.is_empty());
    }

    #[test]
    fn optional_route_map_semantics() {
        let d = device_with_lists();
        let input = PolicyInput {
            dest: p("10.1.0.0/16"),
            communities: BTreeSet::new(),
        };
        assert!(eval_optional_route_map(&d, None, &input).permit);
        // Dangling reference denies.
        assert!(!eval_optional_route_map(&d, Some("NOPE"), &input).permit);
    }

    #[test]
    fn possible_local_prefs_reads_configuration() {
        let mut d = DeviceConfig::new("r1");
        d.route_maps.push(RouteMap {
            name: "M".into(),
            clauses: vec![
                RouteMapClause {
                    seq: 10,
                    action: Action::Permit,
                    matches: vec![],
                    sets: vec![SetAction::LocalPref(200)],
                },
                RouteMapClause {
                    seq: 20,
                    action: Action::Deny,
                    matches: vec![],
                    // Denied clause cannot assign a preference.
                    sets: vec![SetAction::LocalPref(999)],
                },
                RouteMapClause {
                    seq: 30,
                    action: Action::Permit,
                    matches: vec![],
                    sets: vec![SetAction::LocalPref(300)],
                },
            ],
        });
        let prefs = possible_local_prefs(&d, 100);
        assert_eq!(prefs.into_iter().collect::<Vec<_>>(), vec![100, 200, 300]);
    }
}
