//! The vendor-independent configuration model.
//!
//! This mirrors the slice of Batfish's intermediate representation that the
//! Bonsai paper exercises: interfaces with connected networks and ACLs, BGP
//! with neighbor import/export route maps, communities and local
//! preference, OSPF with per-interface costs and areas, static routes, and
//! route redistribution (paper §6).
//!
//! Everything here is plain data. Semantics (how a route map transforms an
//! advertisement) live in [`crate::eval`].

use bonsai_net::prefix::Prefix;
use std::fmt;

/// A BGP community value, conventionally written `asn:tag`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Community(pub u32);

impl Community {
    /// Builds a community from its `asn:tag` halves.
    pub const fn new(asn: u16, tag: u16) -> Self {
        Community(((asn as u32) << 16) | tag as u32)
    }

    /// The high half (`asn`).
    pub const fn asn(self) -> u16 {
        (self.0 >> 16) as u16
    }

    /// The low half (`tag`).
    pub const fn tag(self) -> u16 {
        self.0 as u16
    }
}

impl fmt::Display for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.asn(), self.tag())
    }
}

impl fmt::Debug for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Permit or deny, used by route maps, prefix lists and ACLs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Action {
    /// Accept the route/packet.
    Permit,
    /// Reject the route/packet.
    Deny,
}

/// One entry of a prefix list.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PrefixListEntry {
    /// Sequence number (entries are evaluated in ascending order).
    pub seq: u32,
    /// Permit or deny on match.
    pub action: Action,
    /// The prefix to match against.
    pub prefix: Prefix,
    /// Optional minimum matched prefix length (`ge`).
    pub ge: Option<u8>,
    /// Optional maximum matched prefix length (`le`).
    pub le: Option<u8>,
}

/// A named, ordered prefix list; first matching entry wins, default deny.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PrefixList {
    /// The list's name, referenced from route maps.
    pub name: String,
    /// Entries in evaluation (sequence) order.
    pub entries: Vec<PrefixListEntry>,
}

/// A named community list: a set of communities; a route matches if it
/// carries at least one of them.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CommunityList {
    /// The list's name, referenced from route maps.
    pub name: String,
    /// Communities that satisfy the list.
    pub communities: Vec<Community>,
}

/// One entry of a (destination-prefix) access control list.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct AclEntry {
    /// Permit or deny on match.
    pub action: Action,
    /// Matched destination range; `0.0.0.0/0` written `any`.
    pub prefix: Prefix,
}

/// A named ACL; first matching entry wins, default deny.
///
/// ACLs do not affect the control plane, but Bonsai conservatively folds
/// them into the transfer function (paper §6) so that two nodes are only
/// abstracted together if they filter traffic to the destination alike.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Acl {
    /// The ACL's name, referenced from interfaces.
    pub name: String,
    /// Entries in evaluation order.
    pub entries: Vec<AclEntry>,
}

/// A match condition inside a route-map clause. All conditions of a clause
/// must hold for the clause to apply.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum MatchCond {
    /// Route carries a community from the named community list.
    Community(String),
    /// Route's destination prefix is permitted by the named prefix list.
    PrefixList(String),
}

/// An action applied by a permitting route-map clause.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum SetAction {
    /// Overwrite the BGP local preference.
    LocalPref(u32),
    /// Attach a community (Cisco `set community ... additive`).
    AddCommunity(Community),
    /// Strip a community.
    DeleteCommunity(Community),
    /// Prepend the router's own AS `n` extra times on export.
    Prepend(u8),
    /// Overwrite the metric (MED).
    Metric(u32),
}

/// One clause of a route map.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct RouteMapClause {
    /// Sequence number (clauses are evaluated in ascending order).
    pub seq: u32,
    /// Permit (apply `sets`, accept) or deny (drop) on match.
    pub action: Action,
    /// Conditions, all of which must hold. Empty = always matches.
    pub matches: Vec<MatchCond>,
    /// Transformations applied when a permit clause matches.
    pub sets: Vec<SetAction>,
}

/// A named route map: ordered clauses, first match wins, implicit deny at
/// the end (IOS semantics).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct RouteMap {
    /// The map's name, referenced from BGP neighbors.
    pub name: String,
    /// Clauses in evaluation (sequence) order.
    pub clauses: Vec<RouteMapClause>,
}

/// A router interface.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Interface {
    /// Interface name, e.g. `eth0`.
    pub name: String,
    /// Connected network, if addressed. Connected networks are originated
    /// into routing per the device's protocol configuration.
    pub prefix: Option<Prefix>,
    /// Inbound ACL name, filtering traffic arriving on this interface.
    pub acl_in: Option<String>,
    /// Outbound ACL name, filtering traffic leaving this interface.
    pub acl_out: Option<String>,
    /// OSPF link cost (default 1 when OSPF is enabled).
    pub ospf_cost: Option<u32>,
    /// OSPF area; interfaces in different areas exchange inter-area routes.
    pub ospf_area: Option<u32>,
}

impl Interface {
    /// A bare interface with the given name and no addressing or policy.
    pub fn named(name: impl Into<String>) -> Self {
        Interface {
            name: name.into(),
            prefix: None,
            acl_in: None,
            acl_out: None,
            ospf_cost: None,
            ospf_area: None,
        }
    }
}

/// A BGP neighbor session, identified by the interface it runs over.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct BgpNeighbor {
    /// Interface the session runs over.
    pub iface: String,
    /// Route map applied to routes received from this neighbor.
    pub import_policy: Option<String>,
    /// Route map applied to routes advertised to this neighbor.
    pub export_policy: Option<String>,
    /// True for an iBGP session (same AS); affects loop prevention and
    /// re-advertisement rules (paper §6).
    pub ibgp: bool,
}

/// BGP process configuration.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct BgpConfig {
    /// The device's autonomous system number. In the data-center networks
    /// the paper studies, every router runs its own private AS (§8).
    pub asn: u32,
    /// Prefixes originated by this router (`network` statements).
    pub networks: Vec<Prefix>,
    /// Neighbor sessions.
    pub neighbors: Vec<BgpNeighbor>,
    /// Local preference assigned to routes with no explicit `set
    /// local-preference` (Cisco default 100).
    pub default_local_pref: u32,
    /// Redistribute static routes into BGP.
    pub redistribute_static: bool,
    /// Redistribute OSPF routes into BGP.
    pub redistribute_ospf: bool,
}

impl BgpConfig {
    /// A BGP process with the given AS and IOS defaults.
    pub fn new(asn: u32) -> Self {
        BgpConfig {
            asn,
            networks: Vec::new(),
            neighbors: Vec::new(),
            default_local_pref: 100,
            redistribute_static: false,
            redistribute_ospf: false,
        }
    }
}

/// OSPF process configuration. Costs and areas live on interfaces.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct OspfConfig {
    /// Prefixes originated by this router into OSPF.
    pub networks: Vec<Prefix>,
    /// Redistribute static routes into OSPF.
    pub redistribute_static: bool,
}

/// A static route: traffic to `prefix` leaves via `iface`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct StaticRoute {
    /// Destination range.
    pub prefix: Prefix,
    /// Egress interface.
    pub iface: String,
}

/// The full configuration of one device.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DeviceConfig {
    /// Hostname (unique within a network).
    pub name: String,
    /// Interfaces in declaration order.
    pub interfaces: Vec<Interface>,
    /// BGP process, if running.
    pub bgp: Option<BgpConfig>,
    /// OSPF process, if running.
    pub ospf: Option<OspfConfig>,
    /// Static routes.
    pub static_routes: Vec<StaticRoute>,
    /// Route maps by name.
    pub route_maps: Vec<RouteMap>,
    /// Prefix lists by name.
    pub prefix_lists: Vec<PrefixList>,
    /// Community lists by name.
    pub community_lists: Vec<CommunityList>,
    /// ACLs by name.
    pub acls: Vec<Acl>,
}

impl DeviceConfig {
    /// An empty device with the given hostname.
    pub fn new(name: impl Into<String>) -> Self {
        DeviceConfig {
            name: name.into(),
            interfaces: Vec::new(),
            bgp: None,
            ospf: None,
            static_routes: Vec::new(),
            route_maps: Vec::new(),
            prefix_lists: Vec::new(),
            community_lists: Vec::new(),
            acls: Vec::new(),
        }
    }

    /// Looks up an interface by name.
    pub fn interface(&self, name: &str) -> Option<&Interface> {
        self.interfaces.iter().find(|i| i.name == name)
    }

    /// Index of an interface by name.
    pub fn interface_index(&self, name: &str) -> Option<usize> {
        self.interfaces.iter().position(|i| i.name == name)
    }

    /// Looks up a route map by name.
    pub fn route_map(&self, name: &str) -> Option<&RouteMap> {
        self.route_maps.iter().find(|m| m.name == name)
    }

    /// Looks up a prefix list by name.
    pub fn prefix_list(&self, name: &str) -> Option<&PrefixList> {
        self.prefix_lists.iter().find(|l| l.name == name)
    }

    /// Looks up a community list by name.
    pub fn community_list(&self, name: &str) -> Option<&CommunityList> {
        self.community_lists.iter().find(|l| l.name == name)
    }

    /// Looks up an ACL by name.
    pub fn acl(&self, name: &str) -> Option<&Acl> {
        self.acls.iter().find(|a| a.name == name)
    }

    /// All prefixes this device originates into any protocol (BGP network
    /// statements, OSPF networks, connected interface networks, static
    /// route targets). Used to seed destination equivalence classes.
    pub fn originated_prefixes(&self) -> Vec<Prefix> {
        let mut out = Vec::new();
        if let Some(bgp) = &self.bgp {
            out.extend(bgp.networks.iter().copied());
        }
        if let Some(ospf) = &self.ospf {
            out.extend(ospf.networks.iter().copied());
        }
        out
    }

    /// All prefixes mentioned by any match construct (prefix lists, ACLs,
    /// static routes). These fragment the destination equivalence classes.
    pub fn match_prefixes(&self) -> Vec<Prefix> {
        let mut out = Vec::new();
        for pl in &self.prefix_lists {
            out.extend(pl.entries.iter().map(|e| e.prefix));
        }
        for acl in &self.acls {
            out.extend(acl.entries.iter().map(|e| e.prefix));
        }
        out.extend(self.static_routes.iter().map(|s| s.prefix));
        out
    }

    /// Approximate configuration size in lines of the textual dialect.
    pub fn config_lines(&self) -> usize {
        crate::print::print_device(self).lines().count()
    }
}

/// One endpoint of a physical link: `(device, interface)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LinkEnd {
    /// Device hostname.
    pub device: String,
    /// Interface name on that device.
    pub iface: String,
}

/// A bidirectional physical link between two interfaces.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Link {
    /// One endpoint.
    pub a: LinkEnd,
    /// The other endpoint.
    pub b: LinkEnd,
}

impl Link {
    /// Convenience constructor from `(device, iface)` string pairs.
    pub fn new(
        (da, ia): (impl Into<String>, impl Into<String>),
        (db, ib): (impl Into<String>, impl Into<String>),
    ) -> Self {
        Link {
            a: LinkEnd {
                device: da.into(),
                iface: ia.into(),
            },
            b: LinkEnd {
                device: db.into(),
                iface: ib.into(),
            },
        }
    }
}

/// A whole network: devices plus the physical links between them.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct NetworkConfig {
    /// Devices; node ids in the derived graph follow this order.
    pub devices: Vec<DeviceConfig>,
    /// Physical links.
    pub links: Vec<Link>,
}

impl NetworkConfig {
    /// Looks up a device by hostname.
    pub fn device(&self, name: &str) -> Option<&DeviceConfig> {
        self.devices.iter().find(|d| d.name == name)
    }

    /// Index of a device by hostname.
    pub fn device_index(&self, name: &str) -> Option<usize> {
        self.devices.iter().position(|d| d.name == name)
    }

    /// Total configuration size in lines of the textual dialect.
    pub fn config_lines(&self) -> usize {
        self.devices.iter().map(|d| d.config_lines()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn community_halves() {
        let c = Community::new(65001, 3);
        assert_eq!(c.asn(), 65001);
        assert_eq!(c.tag(), 3);
        assert_eq!(c.to_string(), "65001:3");
    }

    #[test]
    fn device_lookups() {
        let mut d = DeviceConfig::new("r1");
        d.interfaces.push(Interface::named("eth0"));
        d.interfaces.push(Interface::named("eth1"));
        d.route_maps.push(RouteMap {
            name: "M".into(),
            clauses: vec![],
        });
        assert_eq!(d.interface_index("eth1"), Some(1));
        assert!(d.interface("eth2").is_none());
        assert!(d.route_map("M").is_some());
        assert!(d.route_map("N").is_none());
    }

    #[test]
    fn originated_and_match_prefixes() {
        let mut d = DeviceConfig::new("r1");
        let mut bgp = BgpConfig::new(65000);
        bgp.networks.push("10.0.1.0/24".parse().unwrap());
        d.bgp = Some(bgp);
        d.static_routes.push(StaticRoute {
            prefix: "10.9.0.0/16".parse().unwrap(),
            iface: "eth0".into(),
        });
        d.prefix_lists.push(PrefixList {
            name: "PL".into(),
            entries: vec![PrefixListEntry {
                seq: 5,
                action: Action::Permit,
                prefix: "10.0.0.0/8".parse().unwrap(),
                ge: None,
                le: None,
            }],
        });
        assert_eq!(
            d.originated_prefixes(),
            vec!["10.0.1.0/24".parse().unwrap()]
        );
        let m = d.match_prefixes();
        assert!(m.contains(&"10.0.0.0/8".parse().unwrap()));
        assert!(m.contains(&"10.9.0.0/16".parse().unwrap()));
    }

    #[test]
    fn network_lookup() {
        let mut n = NetworkConfig::default();
        n.devices.push(DeviceConfig::new("a"));
        n.devices.push(DeviceConfig::new("b"));
        assert_eq!(n.device_index("b"), Some(1));
        assert!(n.device("c").is_none());
    }
}
