//! # bonsai-config
//!
//! A vendor-independent router-configuration representation, together with a
//! parser and printer for a Cisco-like textual dialect.
//!
//! The Bonsai paper consumes Batfish's vendor-independent intermediate
//! representation and *emits abstract networks in the same form*. There is
//! no router-config parsing library in the Rust ecosystem, so this crate is
//! that substrate, built from scratch:
//!
//! * [`ir`] — the typed configuration model: devices, interfaces, BGP /
//!   OSPF / static routing configuration, route maps, prefix lists,
//!   community lists and ACLs.
//! * [`eval`] — the *single source of truth* for policy semantics: route
//!   map, prefix list and ACL evaluation. Both the SRP simulator
//!   (`bonsai-srp`) and the BDD compiler (`bonsai-core`) are defined in
//!   terms of these functions, which is what makes the BDD encoding
//!   faithful to the simulated behavior.
//! * [`parse`] / [`mod@print`] — a line-oriented, IOS-flavoured dialect with a
//!   hand-written lexer and parser. `parse(print(c)) == c` is tested by a
//!   round-trip property.
//! * [`topology`] — derives the SRP graph from device/link declarations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval;
pub mod ir;
pub mod parse;
pub mod print;
pub mod topology;

pub use eval::{PolicyInput, PolicyResult};
pub use ir::*;
pub use parse::{parse_device, parse_network, ParseError};
pub use print::{print_device, print_network};
pub use topology::BuiltTopology;
