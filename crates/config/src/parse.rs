//! Parser for the Cisco-like textual configuration dialect.
//!
//! The dialect is line-oriented, like IOS: top-level commands (`hostname`,
//! `interface`, `route-map`, `router bgp`, …) open a *context*, and
//! subsequent sub-commands (`ip address`, `match`, `set`, `neighbor`, …)
//! apply to the open context until the next top-level command. Comment
//! lines (`!`) and blank lines are ignored. A whole network is a sequence
//! of `device <name> … end` blocks followed by `link` declarations.
//!
//! ```text
//! device r1
//! hostname r1
//! interface eth0
//!  ip address 10.0.1.0/24
//!  ip access-group BLOCK in
//! ip prefix-list P seq 5 permit 10.0.0.0/8 le 24
//! ip community-list DEPT permit 65001:1
//! ip access-list BLOCK deny 10.9.0.0/16
//! ip access-list BLOCK permit any
//! route-map M permit 10
//!  match community DEPT
//!  set local-preference 350
//! router bgp 65001
//!  network 10.0.1.0/24
//!  neighbor eth0 remote-as external
//!  neighbor eth0 route-map M in
//! ip route 10.9.0.0/16 eth0
//! end
//! link r1 eth0 r2 eth3
//! ```
//!
//! The grammar was chosen so that [`crate::print`] emits it verbatim; the
//! `parse(print(c)) == c` round-trip is enforced by property tests.

use crate::ir::*;
use bonsai_net::prefix::Prefix;
use std::fmt;

/// A parse failure, with the 1-based line number where it occurred.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the input.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// The currently open configuration context.
enum Context {
    None,
    Interface(usize),
    RouteMap { map: usize, clause: usize },
    Bgp,
    Ospf,
}

struct Parser<'a> {
    device: DeviceConfig,
    context: Context,
    line_no: usize,
    line: &'a str,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line_no,
            message: message.into(),
        }
    }

    fn parse_prefix(&self, token: &str) -> Result<Prefix, ParseError> {
        if token == "any" {
            return Ok(Prefix::DEFAULT);
        }
        token
            .parse()
            .map_err(|_| self.err(format!("bad prefix `{token}`")))
    }

    fn parse_u32(&self, token: &str) -> Result<u32, ParseError> {
        token
            .parse()
            .map_err(|_| self.err(format!("bad number `{token}`")))
    }

    fn parse_u8(&self, token: &str) -> Result<u8, ParseError> {
        token
            .parse()
            .map_err(|_| self.err(format!("bad number `{token}`")))
    }

    fn parse_community(&self, token: &str) -> Result<Community, ParseError> {
        let (a, t) = token
            .split_once(':')
            .ok_or_else(|| self.err(format!("bad community `{token}` (want asn:tag)")))?;
        let a: u16 = a
            .parse()
            .map_err(|_| self.err(format!("bad community `{token}`")))?;
        let t: u16 = t
            .parse()
            .map_err(|_| self.err(format!("bad community `{token}`")))?;
        Ok(Community::new(a, t))
    }

    fn parse_action(&self, token: &str) -> Result<Action, ParseError> {
        match token {
            "permit" => Ok(Action::Permit),
            "deny" => Ok(Action::Deny),
            other => Err(self.err(format!("expected permit/deny, got `{other}`"))),
        }
    }

    /// Dispatches one (non-empty, non-comment) line.
    fn line(&mut self, tokens: &[&'a str]) -> Result<(), ParseError> {
        match tokens {
            ["hostname", name] => {
                self.device.name = name.to_string();
                self.context = Context::None;
            }
            ["interface", name] => {
                let idx = match self.device.interface_index(name) {
                    Some(i) => i,
                    None => {
                        self.device.interfaces.push(Interface::named(*name));
                        self.device.interfaces.len() - 1
                    }
                };
                self.context = Context::Interface(idx);
            }
            ["ip", "prefix-list", name, "seq", seq, action, prefix, rest @ ..] => {
                let entry = PrefixListEntry {
                    seq: self.parse_u32(seq)?,
                    action: self.parse_action(action)?,
                    prefix: self.parse_prefix(prefix)?,
                    ge: match rest {
                        ["ge", g, ..] => Some(self.parse_u8(g)?),
                        [_, _, "ge", g] => Some(self.parse_u8(g)?),
                        _ => None,
                    },
                    le: match rest {
                        ["le", l, ..] => Some(self.parse_u8(l)?),
                        [_, _, "le", l] => Some(self.parse_u8(l)?),
                        _ => None,
                    },
                };
                match self
                    .device
                    .prefix_lists
                    .iter_mut()
                    .find(|l| l.name == *name)
                {
                    Some(list) => list.entries.push(entry),
                    None => self.device.prefix_lists.push(PrefixList {
                        name: name.to_string(),
                        entries: vec![entry],
                    }),
                }
                self.context = Context::None;
            }
            ["ip", "community-list", name, "permit", community] => {
                let c = self.parse_community(community)?;
                match self
                    .device
                    .community_lists
                    .iter_mut()
                    .find(|l| l.name == *name)
                {
                    Some(list) => list.communities.push(c),
                    None => self.device.community_lists.push(CommunityList {
                        name: name.to_string(),
                        communities: vec![c],
                    }),
                }
                self.context = Context::None;
            }
            ["ip", "access-list", name, action, prefix] => {
                let entry = AclEntry {
                    action: self.parse_action(action)?,
                    prefix: self.parse_prefix(prefix)?,
                };
                match self.device.acls.iter_mut().find(|a| a.name == *name) {
                    Some(acl) => acl.entries.push(entry),
                    None => self.device.acls.push(Acl {
                        name: name.to_string(),
                        entries: vec![entry],
                    }),
                }
                self.context = Context::None;
            }
            ["route-map", name, action, seq] => {
                let clause = RouteMapClause {
                    seq: self.parse_u32(seq)?,
                    action: self.parse_action(action)?,
                    matches: Vec::new(),
                    sets: Vec::new(),
                };
                let map = match self.device.route_maps.iter().position(|m| m.name == *name) {
                    Some(i) => i,
                    None => {
                        self.device.route_maps.push(RouteMap {
                            name: name.to_string(),
                            clauses: Vec::new(),
                        });
                        self.device.route_maps.len() - 1
                    }
                };
                self.device.route_maps[map].clauses.push(clause);
                let clause = self.device.route_maps[map].clauses.len() - 1;
                self.context = Context::RouteMap { map, clause };
            }
            ["router", "bgp", asn] => {
                let asn = self.parse_u32(asn)?;
                if self.device.bgp.is_none() {
                    self.device.bgp = Some(BgpConfig::new(asn));
                } else {
                    return Err(self.err("duplicate `router bgp`"));
                }
                self.context = Context::Bgp;
            }
            ["router", "ospf"] => {
                if self.device.ospf.is_none() {
                    self.device.ospf = Some(OspfConfig::default());
                } else {
                    return Err(self.err("duplicate `router ospf`"));
                }
                self.context = Context::Ospf;
            }
            ["ip", "route", prefix, iface] => {
                let prefix = self.parse_prefix(prefix)?;
                self.device.static_routes.push(StaticRoute {
                    prefix,
                    iface: iface.to_string(),
                });
                self.context = Context::None;
            }
            _ => return self.sub_command(tokens),
        }
        Ok(())
    }

    /// Dispatches a sub-command of the open context.
    fn sub_command(&mut self, tokens: &[&'a str]) -> Result<(), ParseError> {
        match self.context {
            Context::Interface(idx) => {
                let line_no = self.line_no;
                let iface = &mut self.device.interfaces[idx];
                let parse_u32 = |token: &str| -> Result<u32, ParseError> {
                    token.parse().map_err(|_| ParseError {
                        line: line_no,
                        message: format!("bad number `{token}`"),
                    })
                };
                match tokens {
                    ["ip", "address", prefix] => {
                        iface.prefix = Some(if *prefix == "any" {
                            Prefix::DEFAULT
                        } else {
                            prefix.parse().map_err(|_| ParseError {
                                line: self.line_no,
                                message: format!("bad prefix `{prefix}`"),
                            })?
                        });
                    }
                    ["ip", "access-group", name, "in"] => iface.acl_in = Some(name.to_string()),
                    ["ip", "access-group", name, "out"] => iface.acl_out = Some(name.to_string()),
                    ["ip", "ospf", "cost", cost] => iface.ospf_cost = Some(parse_u32(cost)?),
                    ["ip", "ospf", "area", area] => iface.ospf_area = Some(parse_u32(area)?),
                    _ => return Err(self.err(format!("unknown interface command `{}`", self.line))),
                }
            }
            Context::RouteMap { map, clause } => {
                let set_or_match = match tokens {
                    ["match", "community", name] => Ok(MatchCond::Community(name.to_string())),
                    ["match", "ip", "address", "prefix-list", name] => {
                        Ok(MatchCond::PrefixList(name.to_string()))
                    }
                    other => Err(other),
                };
                let clause = &mut self.device.route_maps[map].clauses[clause];
                match set_or_match {
                    Ok(m) => clause.matches.push(m),
                    Err(tokens) => {
                        let set = match tokens {
                            ["set", "local-preference", lp] => {
                                SetAction::LocalPref(lp.parse().map_err(|_| ParseError {
                                    line: self.line_no,
                                    message: format!("bad number `{lp}`"),
                                })?)
                            }
                            ["set", "community", c, "additive"] => {
                                let (a, t) = c.split_once(':').ok_or_else(|| ParseError {
                                    line: self.line_no,
                                    message: format!("bad community `{c}`"),
                                })?;
                                let a: u16 = a.parse().map_err(|_| ParseError {
                                    line: self.line_no,
                                    message: format!("bad community `{c}`"),
                                })?;
                                let t: u16 = t.parse().map_err(|_| ParseError {
                                    line: self.line_no,
                                    message: format!("bad community `{c}`"),
                                })?;
                                SetAction::AddCommunity(Community::new(a, t))
                            }
                            ["set", "community-delete", c] => {
                                let (a, t) = c.split_once(':').ok_or_else(|| ParseError {
                                    line: self.line_no,
                                    message: format!("bad community `{c}`"),
                                })?;
                                let a: u16 = a.parse().map_err(|_| ParseError {
                                    line: self.line_no,
                                    message: format!("bad community `{c}`"),
                                })?;
                                let t: u16 = t.parse().map_err(|_| ParseError {
                                    line: self.line_no,
                                    message: format!("bad community `{c}`"),
                                })?;
                                SetAction::DeleteCommunity(Community::new(a, t))
                            }
                            ["set", "as-path", "prepend", n] => {
                                SetAction::Prepend(n.parse().map_err(|_| ParseError {
                                    line: self.line_no,
                                    message: format!("bad number `{n}`"),
                                })?)
                            }
                            ["set", "metric", m] => {
                                SetAction::Metric(m.parse().map_err(|_| ParseError {
                                    line: self.line_no,
                                    message: format!("bad number `{m}`"),
                                })?)
                            }
                            _ => {
                                return Err(ParseError {
                                    line: self.line_no,
                                    message: format!("unknown route-map command `{}`", self.line),
                                })
                            }
                        };
                        clause.sets.push(set);
                    }
                }
            }
            Context::Bgp => {
                let bgp = self.device.bgp.as_mut().expect("bgp context open");
                match tokens {
                    ["network", prefix] => {
                        let p = if *prefix == "any" {
                            Prefix::DEFAULT
                        } else {
                            prefix.parse().map_err(|_| ParseError {
                                line: self.line_no,
                                message: format!("bad prefix `{prefix}`"),
                            })?
                        };
                        bgp.networks.push(p);
                    }
                    ["neighbor", iface, "remote-as", kind] => {
                        let ibgp = match *kind {
                            "external" => false,
                            "internal" => true,
                            other => {
                                return Err(ParseError {
                                    line: self.line_no,
                                    message: format!("expected external/internal, got `{other}`"),
                                })
                            }
                        };
                        match bgp.neighbors.iter_mut().find(|n| n.iface == *iface) {
                            Some(n) => n.ibgp = ibgp,
                            None => bgp.neighbors.push(BgpNeighbor {
                                iface: iface.to_string(),
                                import_policy: None,
                                export_policy: None,
                                ibgp,
                            }),
                        }
                    }
                    ["neighbor", iface, "route-map", map, dir @ ("in" | "out")] => {
                        let neighbor = match bgp.neighbors.iter_mut().find(|n| n.iface == *iface) {
                            Some(n) => n,
                            None => {
                                bgp.neighbors.push(BgpNeighbor {
                                    iface: iface.to_string(),
                                    import_policy: None,
                                    export_policy: None,
                                    ibgp: false,
                                });
                                bgp.neighbors.last_mut().unwrap()
                            }
                        };
                        if *dir == "in" {
                            neighbor.import_policy = Some(map.to_string());
                        } else {
                            neighbor.export_policy = Some(map.to_string());
                        }
                    }
                    ["bgp", "default", "local-preference", lp] => {
                        bgp.default_local_pref = lp.parse().map_err(|_| ParseError {
                            line: self.line_no,
                            message: format!("bad number `{lp}`"),
                        })?;
                    }
                    ["redistribute", "static"] => bgp.redistribute_static = true,
                    ["redistribute", "ospf"] => bgp.redistribute_ospf = true,
                    _ => {
                        return Err(ParseError {
                            line: self.line_no,
                            message: format!("unknown bgp command `{}`", self.line),
                        })
                    }
                }
            }
            Context::Ospf => {
                let ospf = self.device.ospf.as_mut().expect("ospf context open");
                match tokens {
                    ["network", prefix] => {
                        let p = if *prefix == "any" {
                            Prefix::DEFAULT
                        } else {
                            prefix.parse().map_err(|_| ParseError {
                                line: self.line_no,
                                message: format!("bad prefix `{prefix}`"),
                            })?
                        };
                        ospf.networks.push(p);
                    }
                    ["redistribute", "static"] => ospf.redistribute_static = true,
                    _ => {
                        return Err(ParseError {
                            line: self.line_no,
                            message: format!("unknown ospf command `{}`", self.line),
                        })
                    }
                }
            }
            Context::None => {
                return Err(ParseError {
                    line: self.line_no,
                    message: format!("unknown command `{}`", self.line),
                })
            }
        }
        Ok(())
    }
}

/// Parses one device configuration from the textual dialect.
pub fn parse_device(input: &str) -> Result<DeviceConfig, ParseError> {
    parse_device_lines(input.lines().enumerate().map(|(i, l)| (i + 1, l)))
}

fn parse_device_lines<'a>(
    lines: impl Iterator<Item = (usize, &'a str)>,
) -> Result<DeviceConfig, ParseError> {
    let mut parser = Parser {
        device: DeviceConfig::new(""),
        context: Context::None,
        line_no: 0,
        line: "",
    };
    for (no, raw) in lines {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('!') {
            continue;
        }
        parser.line_no = no;
        parser.line = line;
        let tokens: Vec<&str> = line.split_whitespace().collect();
        parser.line(&tokens)?;
    }
    Ok(parser.device)
}

/// Parses a whole network: `device <name> … end` blocks plus `link` lines.
pub fn parse_network(input: &str) -> Result<NetworkConfig, ParseError> {
    let mut network = NetworkConfig::default();
    let mut block: Vec<(usize, &str)> = Vec::new();
    let mut in_device = false;
    let mut device_name = String::new();
    let mut device_start = 0usize;

    for (i, raw) in input.lines().enumerate() {
        let no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('!') {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens.as_slice() {
            ["device", name] if !in_device => {
                in_device = true;
                device_name = name.to_string();
                device_start = no;
                block.clear();
            }
            ["end"] if in_device => {
                let mut device = parse_device_lines(block.drain(..))?;
                if device.name.is_empty() {
                    device.name = device_name.clone();
                } else if device.name != device_name {
                    return Err(ParseError {
                        line: device_start,
                        message: format!(
                            "device block `{device_name}` declares hostname `{}`",
                            device.name
                        ),
                    });
                }
                network.devices.push(device);
                in_device = false;
            }
            ["link", da, ia, db, ib] if !in_device => {
                network.links.push(Link::new((*da, *ia), (*db, *ib)));
            }
            _ if in_device => block.push((no, raw)),
            _ => {
                return Err(ParseError {
                    line: no,
                    message: format!("unknown network command `{line}`"),
                })
            }
        }
    }
    if in_device {
        return Err(ParseError {
            line: device_start,
            message: format!("device block `{device_name}` never closed with `end`"),
        });
    }
    Ok(network)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure_10_policy() {
        // The route map from Figure 10 of the paper.
        let cfg = "\
hostname r1
ip community-list dept permit 65001:1
ip community-list dept permit 65001:2
route-map M permit 10
 match community dept
 set community 65001:3 additive
 set local-preference 350
";
        let d = parse_device(cfg).unwrap();
        assert_eq!(d.name, "r1");
        let cl = d.community_list("dept").unwrap();
        assert_eq!(
            cl.communities,
            vec![Community::new(65001, 1), Community::new(65001, 2)]
        );
        let m = d.route_map("M").unwrap();
        assert_eq!(m.clauses.len(), 1);
        let c = &m.clauses[0];
        assert_eq!(c.seq, 10);
        assert_eq!(c.action, Action::Permit);
        assert_eq!(c.matches, vec![MatchCond::Community("dept".into())]);
        assert_eq!(
            c.sets,
            vec![
                SetAction::AddCommunity(Community::new(65001, 3)),
                SetAction::LocalPref(350),
            ]
        );
    }

    #[test]
    fn parses_full_device() {
        let cfg = "\
hostname edge1
interface eth0
 ip address 10.0.1.0/24
 ip access-group BLOCK in
 ip ospf cost 10
 ip ospf area 0
interface eth1
ip prefix-list P seq 5 permit 10.0.0.0/8 le 24
ip prefix-list P seq 10 deny any le 32
ip access-list BLOCK deny 10.9.0.0/16
ip access-list BLOCK permit any
route-map OUT permit 10
 match ip address prefix-list P
 set as-path prepend 2
 set metric 50
route-map OUT deny 20
router bgp 65001
 bgp default local-preference 120
 network 10.0.1.0/24
 neighbor eth0 remote-as external
 neighbor eth0 route-map OUT out
 neighbor eth1 remote-as internal
 redistribute static
router ospf
 network 10.0.1.0/24
 redistribute static
ip route 10.9.0.0/16 eth1
";
        let d = parse_device(cfg).unwrap();
        assert_eq!(d.interfaces.len(), 2);
        let e0 = d.interface("eth0").unwrap();
        assert_eq!(e0.prefix, Some("10.0.1.0/24".parse().unwrap()));
        assert_eq!(e0.acl_in.as_deref(), Some("BLOCK"));
        assert_eq!(e0.ospf_cost, Some(10));
        assert_eq!(e0.ospf_area, Some(0));
        let pl = d.prefix_list("P").unwrap();
        assert_eq!(pl.entries.len(), 2);
        assert_eq!(pl.entries[0].le, Some(24));
        assert_eq!(pl.entries[1].prefix, Prefix::DEFAULT);
        let bgp = d.bgp.as_ref().unwrap();
        assert_eq!(bgp.asn, 65001);
        assert_eq!(bgp.default_local_pref, 120);
        assert!(bgp.redistribute_static);
        assert_eq!(bgp.neighbors.len(), 2);
        assert!(!bgp.neighbors[0].ibgp);
        assert_eq!(bgp.neighbors[0].export_policy.as_deref(), Some("OUT"));
        assert!(bgp.neighbors[1].ibgp);
        let ospf = d.ospf.as_ref().unwrap();
        assert!(ospf.redistribute_static);
        assert_eq!(d.static_routes.len(), 1);
        let m = d.route_map("OUT").unwrap();
        assert_eq!(m.clauses.len(), 2);
        assert_eq!(m.clauses[1].action, Action::Deny);
        assert_eq!(
            m.clauses[0].sets,
            vec![SetAction::Prepend(2), SetAction::Metric(50)]
        );
    }

    #[test]
    fn parses_network_with_links() {
        let input = "\
device r1
hostname r1
interface eth0
end
device r2
hostname r2
interface eth0
end
link r1 eth0 r2 eth0
";
        let n = parse_network(input).unwrap();
        assert_eq!(n.devices.len(), 2);
        assert_eq!(n.links.len(), 1);
        assert_eq!(n.links[0].a.device, "r1");
        assert_eq!(n.links[0].b.iface, "eth0");
    }

    #[test]
    fn error_reports_line_number() {
        let cfg = "hostname r1\ngarbage here\n";
        let err = parse_device(cfg).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("garbage"));
    }

    #[test]
    fn error_on_bad_prefix() {
        let err = parse_device("ip route 10.0.0.0/40 eth0").unwrap_err();
        assert!(err.message.contains("bad prefix"));
    }

    #[test]
    fn error_on_unclosed_device() {
        let err = parse_network("device r1\nhostname r1\n").unwrap_err();
        assert!(err.message.contains("never closed"));
    }

    #[test]
    fn error_on_hostname_mismatch() {
        let err = parse_network("device r1\nhostname other\nend\n").unwrap_err();
        assert!(err.message.contains("declares hostname"));
    }

    #[test]
    fn sub_command_without_context_fails() {
        let err = parse_device("set local-preference 100").unwrap_err();
        assert!(err.message.contains("unknown command"));
    }

    #[test]
    fn prefix_list_ge_and_le_both() {
        let d = parse_device("ip prefix-list P seq 5 permit 10.0.0.0/8 ge 16 le 24").unwrap();
        let e = &d.prefix_list("P").unwrap().entries[0];
        assert_eq!(e.ge, Some(16));
        assert_eq!(e.le, Some(24));
    }

    #[test]
    fn duplicate_router_bgp_rejected() {
        let err = parse_device("router bgp 1\nrouter bgp 2\n").unwrap_err();
        assert!(err.message.contains("duplicate"));
    }
}
