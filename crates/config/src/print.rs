//! Printer for the textual dialect: the inverse of [`crate::parse`].
//!
//! Bonsai's output is *a smaller network in the same configuration format*
//! as its input, so that downstream analyzers can run unchanged; this
//! module is how abstract networks are materialized back into text.

use crate::ir::*;
use std::fmt::Write;

fn action(a: Action) -> &'static str {
    match a {
        Action::Permit => "permit",
        Action::Deny => "deny",
    }
}

fn prefix(p: bonsai_net::prefix::Prefix) -> String {
    if p.is_default() {
        "any".to_string()
    } else {
        p.to_string()
    }
}

/// Renders one device configuration in the textual dialect.
pub fn print_device(d: &DeviceConfig) -> String {
    let mut out = String::new();
    let w = &mut out;
    writeln!(w, "hostname {}", d.name).unwrap();

    for iface in &d.interfaces {
        writeln!(w, "interface {}", iface.name).unwrap();
        if let Some(p) = iface.prefix {
            writeln!(w, " ip address {}", prefix(p)).unwrap();
        }
        if let Some(acl) = &iface.acl_in {
            writeln!(w, " ip access-group {acl} in").unwrap();
        }
        if let Some(acl) = &iface.acl_out {
            writeln!(w, " ip access-group {acl} out").unwrap();
        }
        if let Some(cost) = iface.ospf_cost {
            writeln!(w, " ip ospf cost {cost}").unwrap();
        }
        if let Some(area) = iface.ospf_area {
            writeln!(w, " ip ospf area {area}").unwrap();
        }
    }

    for pl in &d.prefix_lists {
        for e in &pl.entries {
            write!(
                w,
                "ip prefix-list {} seq {} {} {}",
                pl.name,
                e.seq,
                action(e.action),
                prefix(e.prefix)
            )
            .unwrap();
            if let Some(g) = e.ge {
                write!(w, " ge {g}").unwrap();
            }
            if let Some(l) = e.le {
                write!(w, " le {l}").unwrap();
            }
            writeln!(w).unwrap();
        }
    }

    for cl in &d.community_lists {
        for c in &cl.communities {
            writeln!(w, "ip community-list {} permit {c}", cl.name).unwrap();
        }
    }

    for acl in &d.acls {
        for e in &acl.entries {
            writeln!(
                w,
                "ip access-list {} {} {}",
                acl.name,
                action(e.action),
                prefix(e.prefix)
            )
            .unwrap();
        }
    }

    for map in &d.route_maps {
        for clause in &map.clauses {
            writeln!(
                w,
                "route-map {} {} {}",
                map.name,
                action(clause.action),
                clause.seq
            )
            .unwrap();
            for m in &clause.matches {
                match m {
                    MatchCond::Community(n) => writeln!(w, " match community {n}").unwrap(),
                    MatchCond::PrefixList(n) => {
                        writeln!(w, " match ip address prefix-list {n}").unwrap()
                    }
                }
            }
            for s in &clause.sets {
                match s {
                    SetAction::LocalPref(lp) => writeln!(w, " set local-preference {lp}").unwrap(),
                    SetAction::AddCommunity(c) => {
                        writeln!(w, " set community {c} additive").unwrap()
                    }
                    SetAction::DeleteCommunity(c) => {
                        writeln!(w, " set community-delete {c}").unwrap()
                    }
                    SetAction::Prepend(n) => writeln!(w, " set as-path prepend {n}").unwrap(),
                    SetAction::Metric(m) => writeln!(w, " set metric {m}").unwrap(),
                }
            }
        }
    }

    if let Some(bgp) = &d.bgp {
        writeln!(w, "router bgp {}", bgp.asn).unwrap();
        if bgp.default_local_pref != 100 {
            writeln!(
                w,
                " bgp default local-preference {}",
                bgp.default_local_pref
            )
            .unwrap();
        }
        for n in &bgp.networks {
            writeln!(w, " network {}", prefix(*n)).unwrap();
        }
        for nb in &bgp.neighbors {
            writeln!(
                w,
                " neighbor {} remote-as {}",
                nb.iface,
                if nb.ibgp { "internal" } else { "external" }
            )
            .unwrap();
            if let Some(m) = &nb.import_policy {
                writeln!(w, " neighbor {} route-map {m} in", nb.iface).unwrap();
            }
            if let Some(m) = &nb.export_policy {
                writeln!(w, " neighbor {} route-map {m} out", nb.iface).unwrap();
            }
        }
        if bgp.redistribute_static {
            writeln!(w, " redistribute static").unwrap();
        }
        if bgp.redistribute_ospf {
            writeln!(w, " redistribute ospf").unwrap();
        }
    }

    if let Some(ospf) = &d.ospf {
        writeln!(w, "router ospf").unwrap();
        for n in &ospf.networks {
            writeln!(w, " network {}", prefix(*n)).unwrap();
        }
        if ospf.redistribute_static {
            writeln!(w, " redistribute static").unwrap();
        }
    }

    for sr in &d.static_routes {
        writeln!(w, "ip route {} {}", prefix(sr.prefix), sr.iface).unwrap();
    }

    out
}

/// Renders a whole network (devices + links) in the textual dialect.
pub fn print_network(n: &NetworkConfig) -> String {
    let mut out = String::new();
    for d in &n.devices {
        out.push_str(&format!("device {}\n", d.name));
        out.push_str(&print_device(d));
        out.push_str("end\n!\n");
    }
    for l in &n.links {
        out.push_str(&format!(
            "link {} {} {} {}\n",
            l.a.device, l.a.iface, l.b.device, l.b.iface
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_device, parse_network};

    #[test]
    fn roundtrip_rich_device() {
        let mut d = DeviceConfig::new("edge1");
        let mut e0 = Interface::named("eth0");
        e0.prefix = Some("10.0.1.0/24".parse().unwrap());
        e0.acl_in = Some("BLOCK".into());
        e0.ospf_cost = Some(7);
        e0.ospf_area = Some(1);
        d.interfaces.push(e0);
        d.interfaces.push(Interface::named("eth1"));
        d.prefix_lists.push(PrefixList {
            name: "P".into(),
            entries: vec![PrefixListEntry {
                seq: 5,
                action: Action::Permit,
                prefix: "10.0.0.0/8".parse().unwrap(),
                ge: Some(16),
                le: Some(24),
            }],
        });
        d.community_lists.push(CommunityList {
            name: "DEPT".into(),
            communities: vec![Community::new(65001, 1)],
        });
        d.acls.push(Acl {
            name: "BLOCK".into(),
            entries: vec![
                AclEntry {
                    action: Action::Deny,
                    prefix: "10.9.0.0/16".parse().unwrap(),
                },
                AclEntry {
                    action: Action::Permit,
                    prefix: bonsai_net::prefix::Prefix::DEFAULT,
                },
            ],
        });
        d.route_maps.push(RouteMap {
            name: "M".into(),
            clauses: vec![RouteMapClause {
                seq: 10,
                action: Action::Permit,
                matches: vec![
                    MatchCond::Community("DEPT".into()),
                    MatchCond::PrefixList("P".into()),
                ],
                sets: vec![
                    SetAction::LocalPref(350),
                    SetAction::AddCommunity(Community::new(65001, 3)),
                    SetAction::DeleteCommunity(Community::new(65001, 9)),
                    SetAction::Prepend(2),
                    SetAction::Metric(77),
                ],
            }],
        });
        let mut bgp = BgpConfig::new(65001);
        bgp.default_local_pref = 150;
        bgp.networks.push("10.0.1.0/24".parse().unwrap());
        bgp.neighbors.push(BgpNeighbor {
            iface: "eth0".into(),
            import_policy: Some("M".into()),
            export_policy: None,
            ibgp: false,
        });
        bgp.redistribute_static = true;
        d.bgp = Some(bgp);
        d.ospf = Some(OspfConfig {
            networks: vec!["10.0.1.0/24".parse().unwrap()],
            redistribute_static: true,
        });
        d.static_routes.push(StaticRoute {
            prefix: "10.9.0.0/16".parse().unwrap(),
            iface: "eth1".into(),
        });

        let text = print_device(&d);
        let parsed = parse_device(&text).unwrap();
        assert_eq!(parsed, d);
    }

    #[test]
    fn roundtrip_network() {
        let mut n = NetworkConfig::default();
        for name in ["r1", "r2"] {
            let mut d = DeviceConfig::new(name);
            d.interfaces.push(Interface::named("eth0"));
            n.devices.push(d);
        }
        n.links.push(Link::new(("r1", "eth0"), ("r2", "eth0")));
        let text = print_network(&n);
        let parsed = parse_network(&text).unwrap();
        assert_eq!(parsed, n);
    }

    #[test]
    fn default_local_pref_is_not_printed() {
        let mut d = DeviceConfig::new("r");
        d.bgp = Some(BgpConfig::new(1));
        let text = print_device(&d);
        assert!(!text.contains("default local-preference"));
        assert_eq!(parse_device(&text).unwrap(), d);
    }
}
