//! Deriving the SRP graph from device and link declarations.
//!
//! A [`crate::NetworkConfig`] lists devices and the physical links between
//! their interfaces. The SRP model wants a directed graph whose nodes are
//! devices and whose directed edges are link halves, plus — for the
//! transfer function — the interface each directed edge leaves through and
//! arrives on. [`BuiltTopology`] packages all of that.

use crate::ir::NetworkConfig;
use bonsai_net::{EdgeId, Graph, GraphBuilder, NodeId};
use std::fmt;

/// Error produced when a network's link declarations are inconsistent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopologyError(pub String);

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "topology error: {}", self.0)
    }
}

impl std::error::Error for TopologyError {}

/// The SRP graph derived from a [`NetworkConfig`], with edge→interface maps.
///
/// Node `i` of the graph is device `i` of the configuration. Every physical
/// link contributes two directed edges (one per direction).
#[derive(Clone, Debug)]
pub struct BuiltTopology {
    /// The directed SRP graph.
    pub graph: Graph,
    /// For each directed edge: index (into the *source* device's interface
    /// list) of the egress interface.
    pub out_iface: Vec<usize>,
    /// For each directed edge: index (into the *target* device's interface
    /// list) of the ingress interface.
    pub in_iface: Vec<usize>,
}

impl BuiltTopology {
    /// Builds the topology, validating that every link endpoint names an
    /// existing device and interface and that no interface is used twice.
    pub fn build(network: &NetworkConfig) -> Result<Self, TopologyError> {
        let mut gb = GraphBuilder::new();
        for d in &network.devices {
            gb.add_node(d.name.clone());
        }

        let mut used: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
        let mut resolve = |end: &crate::ir::LinkEnd| -> Result<(NodeId, usize), TopologyError> {
            let dev = network
                .device_index(&end.device)
                .ok_or_else(|| TopologyError(format!("unknown device `{}`", end.device)))?;
            let iface = network.devices[dev]
                .interface_index(&end.iface)
                .ok_or_else(|| {
                    TopologyError(format!(
                        "unknown interface `{}` on device `{}`",
                        end.iface, end.device
                    ))
                })?;
            if !used.insert((dev, iface)) {
                return Err(TopologyError(format!(
                    "interface `{}` on device `{}` appears in two links",
                    end.iface, end.device
                )));
            }
            Ok((NodeId(dev as u32), iface))
        };

        let mut halves: Vec<(NodeId, NodeId, usize, usize)> = Vec::new();
        for link in &network.links {
            let (na, ia) = resolve(&link.a)?;
            let (nb, ib) = resolve(&link.b)?;
            if na == nb {
                return Err(TopologyError(format!(
                    "link connects device `{}` to itself",
                    link.a.device
                )));
            }
            halves.push((na, nb, ia, ib));
            halves.push((nb, na, ib, ia));
        }

        let mut out_iface = Vec::with_capacity(halves.len());
        let mut in_iface = Vec::with_capacity(halves.len());
        for (src, dst, oi, ii) in halves {
            if gb.has_edge(src, dst) {
                return Err(TopologyError(format!(
                    "parallel link between `{}` and `{}` (one link per device pair supported)",
                    network.devices[src.index()].name,
                    network.devices[dst.index()].name,
                )));
            }
            gb.add_edge(src, dst);
            out_iface.push(oi);
            in_iface.push(ii);
        }

        Ok(BuiltTopology {
            graph: gb.build(),
            out_iface,
            in_iface,
        })
    }

    /// Egress interface index of a directed edge.
    #[inline]
    pub fn egress(&self, e: EdgeId) -> usize {
        self.out_iface[e.index()]
    }

    /// Ingress interface index of a directed edge.
    #[inline]
    pub fn ingress(&self, e: EdgeId) -> usize {
        self.in_iface[e.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::*;

    fn two_node_network() -> NetworkConfig {
        let mut n = NetworkConfig::default();
        for name in ["r1", "r2"] {
            let mut d = DeviceConfig::new(name);
            d.interfaces.push(Interface::named("eth0"));
            d.interfaces.push(Interface::named("eth1"));
            n.devices.push(d);
        }
        n.links.push(Link::new(("r1", "eth0"), ("r2", "eth1")));
        n
    }

    #[test]
    fn builds_two_directed_edges_per_link() {
        let topo = BuiltTopology::build(&two_node_network()).unwrap();
        assert_eq!(topo.graph.node_count(), 2);
        assert_eq!(topo.graph.edge_count(), 2);
        let e01 = topo.graph.find_edge(NodeId(0), NodeId(1)).unwrap();
        let e10 = topo.graph.find_edge(NodeId(1), NodeId(0)).unwrap();
        // r1 leaves through eth0 (index 0), arrives on r2's eth1 (index 1).
        assert_eq!(topo.egress(e01), 0);
        assert_eq!(topo.ingress(e01), 1);
        assert_eq!(topo.egress(e10), 1);
        assert_eq!(topo.ingress(e10), 0);
    }

    #[test]
    fn rejects_unknown_device() {
        let mut n = two_node_network();
        n.links.push(Link::new(("r9", "eth0"), ("r1", "eth1")));
        let err = BuiltTopology::build(&n).unwrap_err();
        assert!(err.0.contains("unknown device"));
    }

    #[test]
    fn rejects_unknown_interface() {
        let mut n = two_node_network();
        n.links.push(Link::new(("r1", "eth9"), ("r2", "eth0")));
        let err = BuiltTopology::build(&n).unwrap_err();
        assert!(err.0.contains("unknown interface"));
    }

    #[test]
    fn rejects_reused_interface() {
        let mut n = two_node_network();
        n.links.push(Link::new(("r1", "eth0"), ("r2", "eth0")));
        let err = BuiltTopology::build(&n).unwrap_err();
        assert!(err.0.contains("two links"));
    }

    #[test]
    fn rejects_self_link() {
        let mut n = two_node_network();
        n.links.push(Link::new(("r1", "eth1"), ("r1", "eth1")));
        let err = BuiltTopology::build(&n).unwrap_err();
        // Reused interface triggers first when both ends are the same iface;
        // use distinct ifaces to hit the self-link check.
        assert!(err.0.contains("two links") || err.0.contains("itself"));
        let mut n2 = NetworkConfig::default();
        let mut d = DeviceConfig::new("r1");
        d.interfaces.push(Interface::named("a"));
        d.interfaces.push(Interface::named("b"));
        n2.devices.push(d);
        n2.links.push(Link::new(("r1", "a"), ("r1", "b")));
        let err = BuiltTopology::build(&n2).unwrap_err();
        assert!(err.0.contains("itself"));
    }
}
