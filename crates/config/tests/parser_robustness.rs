//! Robustness: the parser must never panic, whatever bytes it is fed —
//! it either produces a configuration or a positioned error.

use bonsai_config::{parse_device, parse_network};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary text never panics the device parser.
    #[test]
    fn parse_device_never_panics(input in "\\PC{0,400}") {
        let _ = parse_device(&input);
    }

    /// Arbitrary text never panics the network parser.
    #[test]
    fn parse_network_never_panics(input in "\\PC{0,400}") {
        let _ = parse_network(&input);
    }

    /// Mutations of a valid configuration (line deletions / duplications /
    /// truncations) never panic and, when they parse, re-print cleanly.
    #[test]
    fn mutated_configs_never_panic(
        drop_line in 0usize..20,
        dup_line in 0usize..20,
        truncate in 0usize..600,
    ) {
        let base = bonsai_config::print_network(&bonsai_srp::papernets::figure2_gadget());
        let mut lines: Vec<&str> = base.lines().collect();
        if drop_line < lines.len() {
            lines.remove(drop_line);
        }
        if dup_line < lines.len() {
            lines.insert(dup_line, lines[dup_line]);
        }
        let mut text = lines.join("\n");
        text.truncate(truncate.min(text.len()));
        if let Ok(net) = parse_network(&text) {
            let _ = bonsai_config::print_network(&net);
        }
    }
}
