//! Property test: `parse(print(config)) == config` for arbitrary
//! configurations — the printer and parser are exact inverses.

use bonsai_config::*;
use bonsai_net::prefix::{Ipv4Addr, Prefix};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(a, l)| Prefix::new(Ipv4Addr(a), l))
}

fn arb_community() -> impl Strategy<Value = Community> {
    (any::<u16>(), any::<u16>()).prop_map(|(a, t)| Community::new(a, t))
}

fn arb_name(prefix: &'static str) -> impl Strategy<Value = String> {
    (0..5u32).prop_map(move |i| format!("{prefix}{i}"))
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![Just(Action::Permit), Just(Action::Deny)]
}

fn arb_match() -> impl Strategy<Value = MatchCond> {
    prop_oneof![
        arb_name("CL").prop_map(MatchCond::Community),
        arb_name("PL").prop_map(MatchCond::PrefixList),
    ]
}

fn arb_set() -> impl Strategy<Value = SetAction> {
    prop_oneof![
        any::<u32>().prop_map(SetAction::LocalPref),
        arb_community().prop_map(SetAction::AddCommunity),
        arb_community().prop_map(SetAction::DeleteCommunity),
        any::<u8>().prop_map(SetAction::Prepend),
        any::<u32>().prop_map(SetAction::Metric),
    ]
}

fn arb_route_map(name: String) -> impl Strategy<Value = RouteMap> {
    prop::collection::vec(
        (
            arb_action(),
            prop::collection::vec(arb_match(), 0..3),
            prop::collection::vec(arb_set(), 0..3),
        ),
        1..4,
    )
    .prop_map(move |clauses| RouteMap {
        name: name.clone(),
        clauses: clauses
            .into_iter()
            .enumerate()
            .map(|(i, (action, matches, sets))| RouteMapClause {
                seq: (i as u32 + 1) * 10,
                action,
                matches,
                sets,
            })
            .collect(),
    })
}

fn arb_device() -> impl Strategy<Value = DeviceConfig> {
    let interfaces = prop::collection::vec(
        (
            prop::option::of(arb_prefix()),
            prop::option::of(arb_name("ACL")),
            prop::option::of(arb_name("ACL")),
            prop::option::of(0u32..100),
            prop::option::of(0u32..4),
        ),
        0..4,
    );
    let prefix_lists = prop::collection::vec(
        (
            arb_action(),
            arb_prefix(),
            prop::option::of(0u8..=32),
            prop::option::of(0u8..=32),
        ),
        0..4,
    );
    let community_lists = prop::collection::vec(arb_community(), 0..4);
    let acls = prop::collection::vec((arb_action(), arb_prefix()), 0..4);
    let maps = prop::collection::vec(Just(()), 0..3);
    let statics = prop::collection::vec(arb_prefix(), 0..3);
    let bgp = prop::option::of((
        1u32..65000,
        prop::collection::vec(arb_prefix(), 0..3),
        any::<bool>(),
        any::<bool>(),
        prop::option::of(1u32..500),
    ));
    let ospf = prop::option::of((prop::collection::vec(arb_prefix(), 0..2), any::<bool>()));

    (
        interfaces,
        prefix_lists,
        community_lists,
        acls,
        maps,
        statics,
        bgp,
        ospf,
    )
        .prop_flat_map(|(ifaces, pls, cls, acls, maps, statics, bgp, ospf)| {
            let map_strats: Vec<_> = maps
                .iter()
                .enumerate()
                .map(|(i, _)| arb_route_map(format!("MAP{i}")))
                .collect();
            (
                Just((ifaces, pls, cls, acls, statics, bgp, ospf)),
                map_strats,
            )
        })
        .prop_map(|((ifaces, pls, cls, acls, statics, bgp, ospf), maps)| {
            let mut d = DeviceConfig::new("dev");
            for (i, (prefix, acl_in, acl_out, cost, area)) in ifaces.into_iter().enumerate() {
                let mut iface = Interface::named(format!("eth{i}"));
                iface.prefix = prefix;
                iface.acl_in = acl_in;
                iface.acl_out = acl_out;
                iface.ospf_cost = cost;
                iface.ospf_area = area;
                d.interfaces.push(iface);
            }
            if !pls.is_empty() {
                d.prefix_lists.push(PrefixList {
                    name: "PL0".into(),
                    entries: pls
                        .into_iter()
                        .enumerate()
                        .map(|(i, (action, prefix, ge, le))| PrefixListEntry {
                            seq: (i as u32 + 1) * 5,
                            action,
                            prefix,
                            // `le` alone prints/parses cleanly; ge without
                            // le too. Both fine.
                            ge,
                            le,
                        })
                        .collect(),
                });
            }
            if !cls.is_empty() {
                d.community_lists.push(CommunityList {
                    name: "CL0".into(),
                    communities: cls,
                });
            }
            if !acls.is_empty() {
                d.acls.push(Acl {
                    name: "ACL0".into(),
                    entries: acls
                        .into_iter()
                        .map(|(action, prefix)| AclEntry { action, prefix })
                        .collect(),
                });
            }
            d.route_maps = maps;
            let iface_names: Vec<String> = d.interfaces.iter().map(|i| i.name.clone()).collect();
            if let Some((asn, networks, redist_s, redist_o, dlp)) = bgp {
                let mut b = BgpConfig::new(asn);
                b.networks = networks;
                b.redistribute_static = redist_s;
                b.redistribute_ospf = redist_o;
                if let Some(lp) = dlp {
                    b.default_local_pref = lp;
                }
                // Neighbors on existing interfaces.
                for (i, iface) in iface_names.iter().enumerate() {
                    if i % 2 == 0 {
                        b.neighbors.push(BgpNeighbor {
                            iface: iface.clone(),
                            import_policy: (i % 4 == 0 && !d.route_maps.is_empty())
                                .then(|| d.route_maps[0].name.clone()),
                            export_policy: None,
                            ibgp: i % 3 == 0,
                        });
                    }
                }
                d.bgp = Some(b);
            }
            if let Some((networks, redist)) = ospf {
                d.ospf = Some(OspfConfig {
                    networks,
                    redistribute_static: redist,
                });
            }
            for (i, p) in statics.into_iter().enumerate() {
                if !iface_names.is_empty() {
                    d.static_routes.push(StaticRoute {
                        prefix: p,
                        iface: iface_names[i % iface_names.len()].clone(),
                    });
                }
            }
            d
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn device_roundtrip(device in arb_device()) {
        let text = print_device(&device);
        let parsed = parse_device(&text)
            .unwrap_or_else(|e| panic!("emitted config failed to parse: {e}\n{text}"));
        prop_assert_eq!(parsed, device);
    }

    #[test]
    fn network_roundtrip(devices in prop::collection::vec(arb_device(), 1..4)) {
        let mut net = NetworkConfig::default();
        for (i, mut d) in devices.into_iter().enumerate() {
            d.name = format!("dev{i}");
            net.devices.push(d);
        }
        // A link between the first two devices when interfaces allow.
        if net.devices.len() >= 2
            && !net.devices[0].interfaces.is_empty()
            && !net.devices[1].interfaces.is_empty()
        {
            let a = net.devices[0].interfaces[0].name.clone();
            let b = net.devices[1].interfaces[0].name.clone();
            net.links.push(Link::new(("dev0", a), ("dev1", b)));
        }
        let text = print_network(&net);
        let parsed = parse_network(&text).unwrap();
        prop_assert_eq!(parsed, net);
    }
}
