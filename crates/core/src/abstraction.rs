//! Materializing an [`Abstraction`] as a smaller, runnable network.
//!
//! Bonsai's output is a set of vendor-independent configurations for the
//! *abstract* network, so that any downstream analyzer (here: the SRP
//! solver and the verification engines) runs on it unchanged. This module
//! builds that network: one abstract device per block copy, one interface
//! per abstract neighbor, with route maps, filter lists, ACLs, OSPF
//! settings and BGP sessions taken from a representative member (all
//! members agree at the refinement fixpoint — that is what refinement
//! enforced).
//!
//! Intra-block quotient edges are dropped for single-copy blocks (they can
//! only represent strictly-worse detours at equal preference; this mirrors
//! the tool evaluated in the paper, where a full mesh compresses to two
//! nodes and one link) and expanded between distinct copies for BGP-split
//! blocks, where loop prevention makes peer routes matter.

use crate::algorithm::Abstraction;
use bonsai_config::{
    BgpNeighbor, BuiltTopology, DeviceConfig, Interface, Link, NetworkConfig, StaticRoute,
};
use bonsai_net::partition::BlockId;
use bonsai_net::NodeId;
use bonsai_srp::instance::EcDest;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The abstract network generated for one destination equivalence class.
#[derive(Clone, Debug)]
pub struct AbstractNetwork {
    /// The generated configurations.
    pub network: NetworkConfig,
    /// The generated topology.
    pub topo: BuiltTopology,
    /// The destination class transported to the abstract network.
    pub ec: EcDest,
    /// Abstract node of each `(block, copy)` pair.
    pub node_of_copy: HashMap<(BlockId, u32), NodeId>,
    /// `(block, copy)` of each abstract node.
    pub copy_of_node: Vec<(BlockId, u32)>,
}

impl AbstractNetwork {
    /// The abstract nodes a concrete node may map to (all copies of its
    /// block — which copy applies is solution-dependent, paper §4.3).
    pub fn candidates_of(&self, abstraction: &Abstraction, u: NodeId) -> Vec<NodeId> {
        let block = abstraction.role_of(u);
        (0..abstraction.copies[block.index()])
            .map(|c| self.node_of_copy[&(block, c)])
            .collect()
    }

    /// Undirected link count of the abstract network.
    pub fn link_count(&self) -> usize {
        self.topo.graph.link_count()
    }
}

/// Builds the abstract network for one class from a refined abstraction.
pub fn build_abstract_network(
    network: &NetworkConfig,
    topo: &BuiltTopology,
    ec: &EcDest,
    abstraction: &Abstraction,
) -> AbstractNetwork {
    let graph = &topo.graph;

    // Deterministic block order: by smallest member.
    let mut blocks: Vec<BlockId> = abstraction.partition.blocks().collect();
    blocks.sort_by_key(|b| abstraction.partition.members(*b)[0]);

    // Allocate abstract nodes.
    let mut node_of_copy: HashMap<(BlockId, u32), NodeId> = HashMap::new();
    let mut copy_of_node: Vec<(BlockId, u32)> = Vec::new();
    for &b in &blocks {
        for c in 0..abstraction.copies[b.index()] {
            node_of_copy.insert((b, c), NodeId(copy_of_node.len() as u32));
            copy_of_node.push((b, c));
        }
    }

    // Quotient adjacency with a representative concrete edge per pair.
    let mut quotient: BTreeMap<(BlockId, BlockId), bonsai_net::EdgeId> = BTreeMap::new();
    for e in graph.edges() {
        let (u, v) = graph.endpoints(e);
        let bu = abstraction.partition.block_of(u.0);
        let bv = abstraction.partition.block_of(v.0);
        // Prefer an edge whose source is the block representative so the
        // interface settings we copy exist on the representative device.
        let rep = abstraction.partition.members(bu)[0];
        quotient
            .entry((bu, bv))
            .and_modify(|slot| {
                if graph.source(*slot).0 != rep && u.0 == rep {
                    *slot = e;
                }
            })
            .or_insert(e);
    }

    // Abstract links (undirected, between abstract copies).
    let mut abs_links: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
    for &(ba, bb) in quotient.keys() {
        let ca = abstraction.copies[ba.index()];
        let cb = abstraction.copies[bb.index()];
        if ba == bb {
            if ca > 1 {
                for i in 0..ca {
                    for j in (i + 1)..ca {
                        abs_links.insert(ordered(node_of_copy[&(ba, i)], node_of_copy[&(ba, j)]));
                    }
                }
            }
            continue;
        }
        for i in 0..ca {
            for j in 0..cb {
                abs_links.insert(ordered(node_of_copy[&(ba, i)], node_of_copy[&(bb, j)]));
            }
        }
    }

    // Build devices.
    let mut devices: Vec<DeviceConfig> = Vec::new();
    for (abs_id, &(block, _copy)) in copy_of_node.iter().enumerate() {
        let abs_id = NodeId(abs_id as u32);
        let rep = NodeId(abstraction.partition.members(block)[0]);
        let rep_dev = &network.devices[rep.index()];
        let mut dev = DeviceConfig::new(abs_name(abs_id, rep_dev));

        // Copy named policy objects wholesale (referenced by name).
        dev.route_maps = rep_dev.route_maps.clone();
        dev.prefix_lists = rep_dev.prefix_lists.clone();
        dev.community_lists = rep_dev.community_lists.clone();
        dev.acls = rep_dev.acls.clone();

        // One interface per abstract neighbor, configured from the
        // representative's concrete interface toward that neighbor block.
        let mut bgp_neighbors: Vec<BgpNeighbor> = Vec::new();
        let mut static_routes: Vec<StaticRoute> = Vec::new();
        for &(na, nb) in abs_links.iter() {
            let peer = if na == abs_id {
                nb
            } else if nb == abs_id {
                na
            } else {
                continue;
            };
            let (peer_block, _) = copy_of_node[peer.index()];
            let iface_name = iface_to(peer);
            // Representative concrete edge rep-block -> peer-block.
            let Some(&ce) = quotient.get(&(block, peer_block)) else {
                continue;
            };
            let src_dev = &network.devices[graph.source(ce).index()];
            let src_iface = &src_dev.interfaces[topo.egress(ce)];
            let mut iface = Interface::named(iface_name.clone());
            iface.acl_in = src_iface.acl_in.clone();
            iface.acl_out = src_iface.acl_out.clone();
            iface.ospf_cost = src_iface.ospf_cost;
            iface.ospf_area = src_iface.ospf_area;
            dev.interfaces.push(iface);

            // BGP session on the representative edge → session here.
            if let Some(rep_bgp) = &src_dev.bgp {
                if let Some(nb_cfg) = rep_bgp.neighbors.iter().find(|n| n.iface == src_iface.name) {
                    bgp_neighbors.push(BgpNeighbor {
                        iface: iface_name.clone(),
                        import_policy: nb_cfg.import_policy.clone(),
                        export_policy: nb_cfg.export_policy.clone(),
                        ibgp: nb_cfg.ibgp,
                    });
                }
            }

            // Static routes out of the representative edge (only those
            // matching this class; point them at the first peer copy).
            for sr in &src_dev.static_routes {
                if sr.iface == src_iface.name && sr.prefix.contains(ec.prefix) {
                    static_routes.push(StaticRoute {
                        prefix: sr.prefix,
                        iface: iface_name.clone(),
                    });
                }
            }
        }

        // Processes.
        if let Some(rep_bgp) = &rep_dev.bgp {
            let mut bgp = rep_bgp.clone();
            bgp.neighbors = bgp_neighbors;
            bgp.networks = rep_bgp
                .networks
                .iter()
                .copied()
                .filter(|p| *p == ec.prefix || p.contains(ec.prefix))
                .collect();
            dev.bgp = Some(bgp);
        }
        if let Some(rep_ospf) = &rep_dev.ospf {
            let mut ospf = rep_ospf.clone();
            ospf.networks = rep_ospf
                .networks
                .iter()
                .copied()
                .filter(|p| *p == ec.prefix || p.contains(ec.prefix))
                .collect();
            dev.ospf = Some(ospf);
        }
        dev.static_routes = static_routes;
        devices.push(dev);
    }

    // Links between abstract devices.
    let mut links = Vec::new();
    for &(na, nb) in &abs_links {
        links.push(Link::new(
            (devices[na.index()].name.clone(), iface_to(nb)),
            (devices[nb.index()].name.clone(), iface_to(na)),
        ));
    }

    let abs_network = NetworkConfig { devices, links };
    let abs_topo = BuiltTopology::build(&abs_network)
        .expect("abstract network construction yields a consistent topology");

    // Transport the EC: origins are copy 0 of each origin block (origin
    // blocks always have exactly one copy).
    let mut abs_origins: Vec<(NodeId, bonsai_srp::instance::OriginProto)> = Vec::new();
    let mut seen_blocks: BTreeSet<BlockId> = BTreeSet::new();
    for &(n, proto) in &ec.origins {
        let block = abstraction.role_of(n);
        if seen_blocks.insert(block) {
            abs_origins.push((node_of_copy[&(block, 0)], proto));
        }
    }
    let abs_ec = EcDest {
        prefix: ec.prefix,
        ranges: ec.ranges.clone(),
        origins: abs_origins,
    };

    AbstractNetwork {
        network: abs_network,
        topo: abs_topo,
        ec: abs_ec,
        node_of_copy,
        copy_of_node,
    }
}

fn ordered(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a.0 <= b.0 {
        (a, b)
    } else {
        (b, a)
    }
}

fn abs_name(abs_id: NodeId, rep: &DeviceConfig) -> String {
    format!("abs{}_{}", abs_id.0, rep.name)
}

fn iface_to(peer: NodeId) -> String {
    format!("to{}", peer.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::find_abstraction;
    use crate::engine::CompiledPolicies;
    use crate::signatures::build_sig_table;
    use bonsai_srp::instance::OriginProto;
    use bonsai_srp::papernets;

    fn abstract_of(
        net: &NetworkConfig,
        dest: &str,
    ) -> (BuiltTopology, Abstraction, AbstractNetwork) {
        let topo = BuiltTopology::build(net).unwrap();
        let d = topo.graph.node_by_name(dest).unwrap();
        let ec = EcDest::new(
            papernets::DEST_PREFIX.parse().unwrap(),
            vec![(d, OriginProto::Bgp)],
        );
        let engine = CompiledPolicies::from_network(net, false);
        let sigs = build_sig_table(&engine, net, &topo, &ec);
        let abs = find_abstraction(&topo.graph, &ec, &sigs);
        let abs_net = build_abstract_network(net, &topo, &ec, &abs);
        (topo, abs, abs_net)
    }

    #[test]
    fn figure1_abstract_is_three_node_chain() {
        let net = papernets::figure1_rip();
        let (_topo, abs, abs_net) = abstract_of(&net, "d");
        assert_eq!(abs.abstract_node_count(), 3);
        assert_eq!(abs_net.topo.graph.node_count(), 3);
        assert_eq!(abs_net.link_count(), 2); // d̂—b̂—â
        assert_eq!(abs_net.ec.origins.len(), 1);
        // The abstract network parses/prints through the normal pipeline.
        let text = bonsai_config::print_network(&abs_net.network);
        let reparsed = bonsai_config::parse_network(&text).unwrap();
        assert_eq!(reparsed, abs_net.network);
    }

    #[test]
    fn gadget_abstract_has_four_nodes_four_links() {
        let net = papernets::figure2_gadget();
        let (_topo, abs, abs_net) = abstract_of(&net, "d");
        assert_eq!(abs.abstract_node_count(), 4);
        assert_eq!(abs_net.topo.graph.node_count(), 4);
        assert_eq!(abs_net.link_count(), 4);
        // Both b-copies carry the UP route map with lp 200.
        let b_copies: Vec<&DeviceConfig> = abs_net
            .network
            .devices
            .iter()
            .filter(|d| d.name.contains("_b"))
            .collect();
        assert_eq!(b_copies.len(), 2);
        for b in b_copies {
            assert!(b.route_map("UP").is_some());
        }
    }

    #[test]
    fn candidates_cover_all_copies() {
        let net = papernets::figure2_gadget();
        let (topo, abs, abs_net) = abstract_of(&net, "d");
        let b1 = topo.graph.node_by_name("b1").unwrap();
        assert_eq!(abs_net.candidates_of(&abs, b1).len(), 2);
        let d = topo.graph.node_by_name("d").unwrap();
        assert_eq!(abs_net.candidates_of(&abs, d).len(), 1);
    }

    #[test]
    fn mesh_compresses_to_two_nodes_one_link() {
        // A 6-node full mesh running shortest-path eBGP, destination at m0.
        let mut text = String::new();
        for i in 0..6 {
            text.push_str(&format!("device m{i}\n"));
            for j in 0..6 {
                if i != j {
                    text.push_str(&format!("interface to{j}\n"));
                }
            }
            text.push_str(&format!("router bgp {}\n", i + 1));
            if i == 0 {
                text.push_str(" network 10.0.0.0/24\n");
            }
            for j in 0..6 {
                if i != j {
                    text.push_str(&format!(" neighbor to{j} remote-as external\n"));
                }
            }
            text.push_str("end\n");
        }
        for i in 0..6 {
            for j in (i + 1)..6 {
                text.push_str(&format!("link m{i} to{j} m{j} to{i}\n"));
            }
        }
        let net = bonsai_config::parse_network(&text).unwrap();
        let (_topo, abs, abs_net) = abstract_of(&net, "m0");
        assert_eq!(abs.abstract_node_count(), 2);
        assert_eq!(abs_net.topo.graph.node_count(), 2);
        assert_eq!(abs_net.link_count(), 1);
    }
}
