//! Abstraction refinement: Algorithm 1 of the paper (§5.2).
//!
//! `FindAbstraction` starts from the coarsest partition — origins isolated,
//! everything else in one block — and repeatedly splits blocks whose
//! members disagree on their *refinement key*: the set of
//! `(edge-signature, neighbor)` pairs over their out-edges, where
//! "neighbor" is the neighbor's **block** for ordinary nodes
//! (∀∃-abstraction) and the **concrete** neighbor for nodes that may use
//! several local-preference values (the stronger ∀∀-abstraction BGP loop
//! prevention demands, §4.3). At the fixpoint, every condition of an
//! effective abstraction holds by construction; a final
//! `SplitIntoBGPCases` step splits each block into `min(|prefs|, |block|)`
//! copies, bounding the dynamic behaviors loop prevention can produce
//! (Theorem 4.4).

use crate::signatures::{origin_key, SigTable};
use bonsai_net::partition::BlockId;
use bonsai_net::{Graph, NodeId, Partition};
use bonsai_srp::instance::EcDest;
use std::collections::BTreeSet;

/// The output of Algorithm 1 for one destination equivalence class.
#[derive(Clone, Debug)]
pub struct Abstraction {
    /// The refined partition of concrete nodes (before BGP case
    /// splitting): each block is one abstract *role*.
    pub partition: Partition,
    /// Per block (indexed by `BlockId`): how many abstract copies the
    /// block expands into (`min(|prefs|, |block|)`, at least 1; exactly 1
    /// for origin blocks and singletons).
    pub copies: Vec<u32>,
    /// Number of refinement iterations until fixpoint.
    pub iterations: usize,
}

impl Abstraction {
    /// Number of abstract nodes (blocks, counting BGP copies).
    pub fn abstract_node_count(&self) -> usize {
        self.partition
            .blocks()
            .map(|b| self.copies[b.index()] as usize)
            .sum()
    }

    /// Number of abstract edges: one per unordered pair of adjacent
    /// abstract copies (directed edges counted like the concrete graph —
    /// i.e. we count directed edges of the quotient-with-copies).
    pub fn abstract_edge_count(&self, graph: &Graph) -> usize {
        // Distinct (block, block) directed pairs in the quotient.
        let mut pairs: BTreeSet<(u32, u32)> = BTreeSet::new();
        for e in graph.edges() {
            let (u, v) = graph.endpoints(e);
            let bu = self.partition.block_of(u.0);
            let bv = self.partition.block_of(v.0);
            pairs.insert((bu.0, bv.0));
        }
        // Each quotient edge (A, B) expands to copies(A) * copies(B)
        // abstract edges (A ≠ B); intra-block adjacency (A, A) expands to
        // edges between distinct copies.
        let mut count = 0usize;
        for (a, b) in pairs {
            let ca = self.copies[a as usize] as usize;
            let cb = self.copies[b as usize] as usize;
            if a == b {
                count += ca * (ca - 1); // directed, no self loops
            } else {
                count += ca * cb;
            }
        }
        count
    }

    /// The block (role) of a concrete node.
    pub fn role_of(&self, u: NodeId) -> BlockId {
        self.partition.block_of(u.0)
    }
}

/// Runs Algorithm 1 for one destination class over a prebuilt signature
/// table.
pub fn find_abstraction(graph: &Graph, ec: &EcDest, sigs: &SigTable) -> Abstraction {
    let n = graph.node_count();
    let mut partition = Partition::coarsest(n);

    // Line 4: give the destination its own abstract node. Origins of
    // different protocols are separated from each other and from the rest.
    let origin_nodes: Vec<u32> = ec.origins.iter().map(|(n, _)| n.0).collect();
    partition.split(&origin_nodes);
    // Separate BGP-origins from OSPF-origins if mixed.
    let bgp_origins: Vec<u32> = ec
        .origins
        .iter()
        .filter(|(n, _)| origin_key(ec, *n) == 1)
        .map(|(n, _)| n.0)
        .collect();
    partition.split(&bgp_origins);

    find_abstraction_from(graph, ec, sigs, partition)
}

/// Runs the refinement loop of Algorithm 1 starting from an arbitrary
/// partition instead of the coarsest one, then recomputes BGP copy counts.
///
/// This is the re-entry point of counterexample-guided refinement: the
/// failure-scenario auditor splits nodes out of their blocks and calls
/// this to restore the effective-abstraction fixpoint (splits only ever
/// propagate more splits — refinement is monotone — so starting from a
/// finer partition is sound and yields a partition at least as fine as
/// `find_abstraction`'s).
pub fn find_abstraction_from(
    graph: &Graph,
    ec: &EcDest,
    sigs: &SigTable,
    mut partition: Partition,
) -> Abstraction {
    // Lines 5-11: refine until no block splits.
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let before = partition.block_count();
        let blocks: Vec<BlockId> = partition.blocks().collect();
        for block in blocks {
            if partition.members(block).len() <= 1 {
                continue;
            }
            let num_prefs = sigs.prefs_of_block(partition.members(block));
            refine(graph, &mut partition, block, sigs, num_prefs);
        }
        if partition.block_count() == before {
            break;
        }
    }

    // Line 12: SplitIntoBGPCases — each block may exhibit up to
    // |prefs(û)| behaviors (Theorem 4.4), but never more than it has
    // members; origins are pinned and need exactly one copy.
    let max_block = partition.blocks().map(|b| b.index() + 1).max().unwrap_or(0);
    let mut copies = vec![1u32; max_block];
    for block in partition.blocks() {
        let members = partition.members(block);
        let is_origin_block = members.iter().any(|&m| origin_key(ec, NodeId(m)) != 0);
        if is_origin_block {
            copies[block.index()] = 1;
            continue;
        }
        let prefs = sigs.prefs_of_block(members).max(1);
        copies[block.index()] = (prefs.min(members.len())).max(1) as u32;
    }

    Abstraction {
        partition,
        copies,
        iterations,
    }
}

/// Splits the given concrete nodes into singleton blocks of an existing
/// abstraction and re-runs refinement to the fixpoint.
///
/// The counterexample-guided step of the failure-scenario auditor: when an
/// abstraction turns out to be unsound under a link-failure scenario, the
/// nodes adjacent to the failed links (or the members of the offending
/// block) are isolated so the abstract network can represent the asymmetry
/// the failure introduced, and refinement then propagates the split to any
/// block whose members now see different neighbor blocks. The result is
/// strictly finer than the input whenever any of the nodes shared a block.
pub fn refine_with_split(
    graph: &Graph,
    ec: &EcDest,
    sigs: &SigTable,
    abstraction: &Abstraction,
    split: &[NodeId],
) -> Abstraction {
    let mut partition = abstraction.partition.clone();
    for &u in split {
        partition.isolate(u.0);
    }
    find_abstraction_from(graph, ec, sigs, partition)
}

/// One `Refine` step (Algorithm 1, lines 14-22): group a block's members
/// by their outgoing (policy, neighbor) sets and split accordingly.
fn refine(
    graph: &Graph,
    partition: &mut Partition,
    block: BlockId,
    sigs: &SigTable,
    num_prefs: usize,
) {
    // The key must be an order-insensitive set; BTreeSet gives canonical
    // iteration for hashing. Keys are computed against a snapshot of the
    // current partition before any split is applied.
    let members = partition.members(block).to_vec();
    let keys: std::collections::HashMap<u32, BTreeSet<(u32, u32)>> = members
        .iter()
        .map(|&m| {
            let u = NodeId(m);
            let mut key: BTreeSet<(u32, u32)> = BTreeSet::new();
            for e in graph.out(u) {
                let v = graph.target(e);
                let neighbor = if num_prefs > 1 {
                    // ∀∀: key on the concrete neighbor (paper line 19).
                    v.0 | 0x8000_0000
                } else {
                    // ∀∃: key on the neighbor's current abstract node.
                    partition.block_of(v.0).0
                };
                key.insert((sigs.sig_of_edge[e.index()], neighbor));
            }
            (m, key)
        })
        .collect();
    partition.refine_block_by_key(block, |u| keys[&u].clone());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CompiledPolicies;
    use crate::signatures::build_sig_table;
    use bonsai_config::BuiltTopology;
    use bonsai_srp::instance::OriginProto;
    use bonsai_srp::papernets;

    fn run(net: &bonsai_config::NetworkConfig, dest_name: &str) -> (BuiltTopology, Abstraction) {
        let topo = BuiltTopology::build(net).unwrap();
        let d = topo.graph.node_by_name(dest_name).unwrap();
        let ec = EcDest::new(
            papernets::DEST_PREFIX.parse().unwrap(),
            vec![(d, OriginProto::Bgp)],
        );
        let engine = CompiledPolicies::from_network(net, false);
        let sigs = build_sig_table(&engine, net, &topo, &ec);
        let abs = find_abstraction(&topo.graph, &ec, &sigs);
        (topo, abs)
    }

    /// Figure 1/2(c)-style shortest-path diamond: b1 and b2 merge; the
    /// abstraction is the 3-node chain of Figure 1(c).
    #[test]
    fn figure_1_compresses_to_three_roles() {
        let net = papernets::figure1_rip();
        let (topo, abs) = run(&net, "d");
        let b1 = topo.graph.node_by_name("b1").unwrap();
        let b2 = topo.graph.node_by_name("b2").unwrap();
        let a = topo.graph.node_by_name("a").unwrap();
        let d = topo.graph.node_by_name("d").unwrap();
        assert_eq!(abs.role_of(b1), abs.role_of(b2));
        assert_ne!(abs.role_of(a), abs.role_of(b1));
        assert_ne!(abs.role_of(d), abs.role_of(b1));
        assert_eq!(abs.partition.block_count(), 3);
        // No local-pref policy: single copy each → 3 abstract nodes.
        assert_eq!(abs.abstract_node_count(), 3);
        // Edges: d̂—b̂ and b̂—â, directed both ways = 4.
        assert_eq!(abs.abstract_edge_count(&topo.graph), 4);
    }

    /// The Figure 2 gadget: refinement reaches {d}, {a}, {b1,b2,b3} (the
    /// walk-through of Figure 3), then BGP case splitting doubles the b
    /// role because prefs = {100, 200}. Final: 4 abstract nodes, 8
    /// directed edges (4 links — the "4 total edges" of the paper).
    #[test]
    fn figure_2_gadget_splits_into_two_b_copies() {
        let net = papernets::figure2_gadget();
        let (topo, abs) = run(&net, "d");
        let b: Vec<NodeId> = ["b1", "b2", "b3"]
            .iter()
            .map(|n| topo.graph.node_by_name(n).unwrap())
            .collect();
        // One role for all three b's.
        assert_eq!(abs.role_of(b[0]), abs.role_of(b[1]));
        assert_eq!(abs.role_of(b[1]), abs.role_of(b[2]));
        assert_eq!(abs.partition.block_count(), 3);
        // The b role gets 2 copies (|prefs| = |{100, 200}| = 2).
        assert_eq!(abs.copies[abs.role_of(b[0]).index()], 2);
        assert_eq!(abs.abstract_node_count(), 4);
        // Links: b̂a—â, b̂n—â, b̂a—d̂, b̂n—d̂ = 4 links = 8 directed edges.
        assert_eq!(abs.abstract_edge_count(&topo.graph), 8);
    }

    /// Origins never receive extra copies, and different-policy middles
    /// split topologically (the Figure 3(a) → 3(b) step).
    #[test]
    fn topological_refinement_separates_a_from_bs() {
        let net = papernets::figure2_gadget();
        let (topo, abs) = run(&net, "d");
        let a = topo.graph.node_by_name("a").unwrap();
        let b1 = topo.graph.node_by_name("b1").unwrap();
        let d = topo.graph.node_by_name("d").unwrap();
        assert_ne!(abs.role_of(a), abs.role_of(b1));
        assert_eq!(abs.copies[abs.role_of(d).index()], 1);
        assert_eq!(abs.copies[abs.role_of(a).index()], 1);
        assert!(abs.iterations >= 2);
    }

    /// `refine_with_split` isolates the requested nodes and restores the
    /// fixpoint; splitting a node of a merged block leaves the remainder
    /// intact and recomputes BGP copies per block.
    #[test]
    fn split_refinement_isolates_and_refixpoints() {
        let net = papernets::figure2_gadget();
        let topo = BuiltTopology::build(&net).unwrap();
        let d = topo.graph.node_by_name("d").unwrap();
        let ec = EcDest::new(
            papernets::DEST_PREFIX.parse().unwrap(),
            vec![(d, OriginProto::Bgp)],
        );
        let engine = CompiledPolicies::from_network(&net, false);
        let sigs = build_sig_table(&engine, &net, &topo, &ec);
        let abs = find_abstraction(&topo.graph, &ec, &sigs);
        assert_eq!(abs.partition.block_count(), 3);

        let b1 = topo.graph.node_by_name("b1").unwrap();
        let b2 = topo.graph.node_by_name("b2").unwrap();
        let refined = refine_with_split(&topo.graph, &ec, &sigs, &abs, &[b1]);
        assert_eq!(refined.partition.block_count(), 4);
        assert_eq!(refined.partition.members(refined.role_of(b1)), &[b1.0]);
        // The remainder {b2, b3} still shares a block…
        let b3 = topo.graph.node_by_name("b3").unwrap();
        assert_eq!(refined.role_of(b2), refined.role_of(b3));
        // …with recomputed copies: prefs {100,200} but only 2 members for
        // the remainder, 1 for the singleton.
        assert_eq!(refined.copies[refined.role_of(b2).index()], 2);
        assert_eq!(refined.copies[refined.role_of(b1).index()], 1);
        // Splitting every node degenerates to the discrete partition.
        let all: Vec<NodeId> = topo.graph.nodes().collect();
        let discrete = refine_with_split(&topo.graph, &ec, &sigs, &abs, &all);
        assert_eq!(discrete.partition.block_count(), topo.graph.node_count());
        assert_eq!(discrete.abstract_node_count(), topo.graph.node_count());
    }

    /// Figure 5: a, b1, b2 all play different roles (different policies),
    /// so the abstraction cannot compress this 4-node network.
    #[test]
    fn figure_5_has_no_symmetry() {
        let net = papernets::figure5_bgp();
        let (_topo, abs) = run(&net, "d");
        assert_eq!(abs.partition.block_count(), 4);
        assert_eq!(abs.abstract_node_count(), 4);
    }
}
