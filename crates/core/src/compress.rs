//! The top-level compression driver: configurations in, per-class abstract
//! networks and a timing/size report out.
//!
//! Mirrors Bonsai's pipeline (§5, §7): compute destination equivalence
//! classes, then — in parallel across classes, as the paper's
//! implementation does — build the BDD signature table, run abstraction
//! refinement, and materialize the abstract network.

use crate::abstraction::{build_abstract_network, AbstractNetwork};
use crate::algorithm::{find_abstraction, Abstraction};
use crate::ecs::{compute_ecs, DestEc};
use crate::policy_bdd::PolicyCtx;
use crate::signatures::build_sig_table;
use bonsai_config::{BuiltTopology, NetworkConfig};
use std::time::{Duration, Instant};

/// Options for a compression run.
#[derive(Clone, Copy, Debug, Default)]
pub struct CompressOptions {
    /// Apply the attribute abstraction that ignores communities which are
    /// attached but never matched (the `h` of the paper's data-center
    /// study, §8).
    pub strip_unused_communities: bool,
    /// Number of worker threads for per-EC work (0 = all available cores).
    pub threads: usize,
}

/// Result of compressing one destination equivalence class.
pub struct EcCompression {
    /// The class.
    pub ec: DestEc,
    /// The refined abstraction.
    pub abstraction: Abstraction,
    /// The materialized abstract network.
    pub abstract_network: AbstractNetwork,
    /// Time spent building the BDD signature table.
    pub bdd_time: Duration,
    /// Time spent in refinement + abstract-network construction.
    pub compress_time: Duration,
}

/// Whole-network compression report (the raw material of Table 1).
pub struct CompressionReport {
    /// Concrete size: nodes.
    pub concrete_nodes: usize,
    /// Concrete size: undirected links.
    pub concrete_links: usize,
    /// Per-class results, ordered by representative prefix.
    pub per_ec: Vec<EcCompression>,
    /// Wall-clock time of the whole run.
    pub total_time: Duration,
}

impl CompressionReport {
    /// Number of destination equivalence classes.
    pub fn num_ecs(&self) -> usize {
        self.per_ec.len()
    }

    /// Mean abstract node count across classes.
    pub fn mean_abstract_nodes(&self) -> f64 {
        mean(
            self.per_ec
                .iter()
                .map(|e| e.abstraction.abstract_node_count() as f64),
        )
    }

    /// Standard deviation of the abstract node count.
    pub fn std_abstract_nodes(&self) -> f64 {
        std_dev(
            self.per_ec
                .iter()
                .map(|e| e.abstraction.abstract_node_count() as f64),
        )
    }

    /// Mean abstract link count across classes.
    pub fn mean_abstract_links(&self) -> f64 {
        mean(
            self.per_ec
                .iter()
                .map(|e| e.abstract_network.link_count() as f64),
        )
    }

    /// Standard deviation of the abstract link count.
    pub fn std_abstract_links(&self) -> f64 {
        std_dev(
            self.per_ec
                .iter()
                .map(|e| e.abstract_network.link_count() as f64),
        )
    }

    /// Node compression ratio (concrete / mean abstract).
    pub fn node_ratio(&self) -> f64 {
        self.concrete_nodes as f64 / self.mean_abstract_nodes().max(1e-9)
    }

    /// Link compression ratio (concrete / mean abstract).
    pub fn link_ratio(&self) -> f64 {
        self.concrete_links as f64 / self.mean_abstract_links().max(1e-9)
    }

    /// Total BDD-construction time across classes (the paper's "BDD time"
    /// column; our pipeline specializes BDDs per class, so this is the sum
    /// of per-class signature-table builds).
    pub fn bdd_time(&self) -> Duration {
        self.per_ec.iter().map(|e| e.bdd_time).sum()
    }

    /// Mean per-class compression time (the paper's "Compression time
    /// (per EC)" column).
    pub fn compress_time_per_ec(&self) -> Duration {
        if self.per_ec.is_empty() {
            return Duration::ZERO;
        }
        self.per_ec
            .iter()
            .map(|e| e.compress_time)
            .sum::<Duration>()
            / self.per_ec.len() as u32
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

fn std_dev(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.len() < 2 {
        return 0.0;
    }
    let m = v.iter().sum::<f64>() / v.len() as f64;
    (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
}

/// Compresses one destination class (with a fresh BDD arena).
pub fn compress_ec(
    network: &NetworkConfig,
    topo: &BuiltTopology,
    ec: &DestEc,
    options: CompressOptions,
) -> EcCompression {
    let ec_dest = ec.to_ec_dest();
    let t0 = Instant::now();
    let mut ctx = PolicyCtx::from_network(network, options.strip_unused_communities);
    let sigs = build_sig_table(&mut ctx, network, topo, &ec_dest);
    let bdd_time = t0.elapsed();

    let t1 = Instant::now();
    let abstraction = find_abstraction(&topo.graph, &ec_dest, &sigs);
    let abstract_network = build_abstract_network(network, topo, &ec_dest, &abstraction);
    let compress_time = t1.elapsed();

    EcCompression {
        ec: ec.clone(),
        abstraction,
        abstract_network,
        bdd_time,
        compress_time,
    }
}

/// Compresses a whole network: every destination equivalence class,
/// processed in parallel.
pub fn compress(network: &NetworkConfig, options: CompressOptions) -> CompressionReport {
    let start = Instant::now();
    let topo = BuiltTopology::build(network).expect("network has a consistent topology");
    let ecs = compute_ecs(network, &topo);

    let threads = if options.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        options.threads
    }
    .min(ecs.len().max(1));

    let mut results: Vec<Option<EcCompression>> = Vec::new();
    results.resize_with(ecs.len(), || None);

    if threads <= 1 {
        for (i, ec) in ecs.iter().enumerate() {
            results[i] = Some(compress_ec(network, &topo, ec, options));
        }
    } else {
        let counter = std::sync::atomic::AtomicUsize::new(0);
        let slots: Vec<std::sync::Mutex<Option<EcCompression>>> = (0..ecs.len())
            .map(|_| std::sync::Mutex::new(None))
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= ecs.len() {
                        break;
                    }
                    let r = compress_ec(network, &topo, &ecs[i], options);
                    *slots[i].lock().unwrap() = Some(r);
                });
            }
        });
        for (i, slot) in slots.into_iter().enumerate() {
            results[i] = slot.into_inner().unwrap();
        }
    }

    CompressionReport {
        concrete_nodes: topo.graph.node_count(),
        concrete_links: topo.graph.link_count(),
        per_ec: results
            .into_iter()
            .map(|r| r.expect("every EC processed"))
            .collect(),
        total_time: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_srp::papernets;

    #[test]
    fn gadget_report() {
        let net = papernets::figure2_gadget();
        let report = compress(&net, CompressOptions::default());
        assert_eq!(report.concrete_nodes, 5);
        assert_eq!(report.concrete_links, 6);
        assert_eq!(report.num_ecs(), 1);
        assert_eq!(report.mean_abstract_nodes(), 4.0);
        assert_eq!(report.mean_abstract_links(), 4.0);
        assert!(report.node_ratio() > 1.0);
        assert!(report.link_ratio() > 1.0);
    }

    #[test]
    fn multiple_ecs_processed_in_parallel() {
        // Two destinations → two ECs; run with 2 threads.
        let net = bonsai_config::parse_network(
            "
device a
interface i
router bgp 1
 network 10.0.1.0/24
 neighbor i remote-as external
end
device b
interface i
router bgp 2
 network 10.0.2.0/24
 neighbor i remote-as external
end
link a i b i
",
        )
        .unwrap();
        let report = compress(
            &net,
            CompressOptions {
                threads: 2,
                ..Default::default()
            },
        );
        assert_eq!(report.num_ecs(), 2);
        for ec in &report.per_ec {
            assert_eq!(ec.abstraction.abstract_node_count(), 2);
        }
        // Deterministic order by representative prefix.
        assert!(report.per_ec[0].ec.rep < report.per_ec[1].ec.rep);
    }
}
