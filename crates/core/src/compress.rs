//! The top-level compression driver: configurations in, per-class abstract
//! networks and a timing/size report out.
//!
//! Mirrors Bonsai's pipeline (§5, §7) on top of the shared engine
//! architecture: compute destination equivalence classes, build **one**
//! [`CompiledPolicies`] engine for the whole network, then fan the classes
//! over scoped workers. Workers pull class indices from one atomic
//! counter, keep their results in worker-local vectors, and the driver
//! merges them after the scope joins — no per-slot locks. All BDD work
//! flows through the shared engine, so route maps compiled for one class
//! are reused by every other class that resolves them the same way; the
//! report carries the engine statistics that prove (and quantify) the
//! reuse.

use crate::abstraction::{build_abstract_network, AbstractNetwork};
use crate::algorithm::{find_abstraction, Abstraction};
use crate::ecs::{compute_ecs, DestEc};
use crate::engine::{CompiledPolicies, EngineStats};
use crate::signatures::build_sig_table;
use bonsai_config::{BuiltTopology, NetworkConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Options for a compression run.
#[derive(Clone, Copy, Debug, Default)]
pub struct CompressOptions {
    /// Apply the attribute abstraction that ignores communities which are
    /// attached but never matched (the `h` of the paper's data-center
    /// study, §8).
    pub strip_unused_communities: bool,
    /// Number of worker threads for per-EC work (0 = all available cores).
    pub threads: usize,
    /// Apply-cache size of the shared arena, as a power of two
    /// (`2^bits` entries; 0 = the library default of 2^16).
    pub apply_cache_bits: u32,
}

/// Result of compressing one destination equivalence class.
pub struct EcCompression {
    /// The class.
    pub ec: DestEc,
    /// The refined abstraction.
    pub abstraction: Abstraction,
    /// The materialized abstract network.
    pub abstract_network: AbstractNetwork,
    /// Time spent building the BDD signature table (mostly engine-cache
    /// lookups after the first class touches a policy).
    pub bdd_time: Duration,
    /// Time spent in refinement + abstract-network construction.
    pub compress_time: Duration,
}

/// Whole-network compression report (the raw material of Table 1).
pub struct CompressionReport {
    /// Concrete size: nodes.
    pub concrete_nodes: usize,
    /// Concrete size: undirected links.
    pub concrete_links: usize,
    /// Per-class results, ordered by representative prefix.
    pub per_ec: Vec<EcCompression>,
    /// Wall-clock time of the whole run.
    pub total_time: Duration,
    /// Time spent partitioning the address space into classes.
    pub ec_compute_time: Duration,
    /// Time spent building the shared engine (community scan + arena).
    pub engine_build_time: Duration,
    /// End-of-run statistics of the shared policy-compilation engine:
    /// arena size and cache hit rates across **all** classes.
    pub engine: EngineStats,
    /// The shared engine itself, for downstream consumers (verification
    /// reuses the same manager instead of rescanning the network).
    pub policies: Arc<CompiledPolicies>,
}

impl CompressionReport {
    /// Number of destination equivalence classes.
    pub fn num_ecs(&self) -> usize {
        self.per_ec.len()
    }

    /// Mean abstract node count across classes.
    pub fn mean_abstract_nodes(&self) -> f64 {
        mean(
            self.per_ec
                .iter()
                .map(|e| e.abstraction.abstract_node_count() as f64),
        )
    }

    /// Standard deviation of the abstract node count.
    pub fn std_abstract_nodes(&self) -> f64 {
        std_dev(
            self.per_ec
                .iter()
                .map(|e| e.abstraction.abstract_node_count() as f64),
        )
    }

    /// Mean abstract link count across classes.
    pub fn mean_abstract_links(&self) -> f64 {
        mean(
            self.per_ec
                .iter()
                .map(|e| e.abstract_network.link_count() as f64),
        )
    }

    /// Standard deviation of the abstract link count.
    pub fn std_abstract_links(&self) -> f64 {
        std_dev(
            self.per_ec
                .iter()
                .map(|e| e.abstract_network.link_count() as f64),
        )
    }

    /// Node compression ratio (concrete / mean abstract).
    pub fn node_ratio(&self) -> f64 {
        self.concrete_nodes as f64 / self.mean_abstract_nodes().max(1e-9)
    }

    /// Link compression ratio (concrete / mean abstract).
    pub fn link_ratio(&self) -> f64 {
        self.concrete_links as f64 / self.mean_abstract_links().max(1e-9)
    }

    /// Total BDD-construction time across classes (the paper's "BDD time"
    /// column; our pipeline specializes BDDs per class through the shared
    /// engine, so this is the sum of per-class signature-table builds).
    pub fn bdd_time(&self) -> Duration {
        self.per_ec.iter().map(|e| e.bdd_time).sum()
    }

    /// Mean per-class compression time (the paper's "Compression time
    /// (per EC)" column).
    pub fn compress_time_per_ec(&self) -> Duration {
        if self.per_ec.is_empty() {
            return Duration::ZERO;
        }
        self.per_ec
            .iter()
            .map(|e| e.compress_time)
            .sum::<Duration>()
            / self.per_ec.len() as u32
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

fn std_dev(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.len() < 2 {
        return 0.0;
    }
    let m = v.iter().sum::<f64>() / v.len() as f64;
    (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
}

/// Builds the shared engine a compression run (or an external caller that
/// wants to share one) uses.
pub fn build_engine(network: &NetworkConfig, options: CompressOptions) -> CompiledPolicies {
    let bits = if options.apply_cache_bits == 0 {
        bonsai_bdd::DEFAULT_APPLY_CACHE_BITS
    } else {
        options.apply_cache_bits
    };
    CompiledPolicies::with_cache_bits(network, options.strip_unused_communities, bits)
}

/// Compresses one destination class against a shared engine.
pub fn compress_ec(
    engine: &CompiledPolicies,
    network: &NetworkConfig,
    topo: &BuiltTopology,
    ec: &DestEc,
) -> EcCompression {
    let ec_dest = ec.to_ec_dest();
    let t0 = Instant::now();
    let sigs = build_sig_table(engine, network, topo, &ec_dest);
    let bdd_time = t0.elapsed();

    let t1 = Instant::now();
    let abstraction = find_abstraction(&topo.graph, &ec_dest, &sigs);
    let abstract_network = build_abstract_network(network, topo, &ec_dest, &abstraction);
    let compress_time = t1.elapsed();

    EcCompression {
        ec: ec.clone(),
        abstraction,
        abstract_network,
        bdd_time,
        compress_time,
    }
}

/// The counterexample-guided refinement step of the failure-scenario
/// auditor: isolates the given concrete nodes in an existing abstraction,
/// re-runs refinement to the fixpoint, and rebuilds the abstract network —
/// all through the same shared engine (the signature table is a cache hit).
///
/// Returns the refined abstraction and its materialized network. The
/// result is at least as fine as the input; callers loop this against
/// re-verification until the abstraction is sound for their scenario set
/// (termination: each effective split strictly increases the block count,
/// bounded by the node count, where abstract = concrete and every check
/// passes).
pub fn refine_ec_with_split(
    engine: &CompiledPolicies,
    network: &NetworkConfig,
    topo: &BuiltTopology,
    ec: &bonsai_srp::instance::EcDest,
    abstraction: &crate::algorithm::Abstraction,
    split: &[bonsai_net::NodeId],
) -> (crate::algorithm::Abstraction, AbstractNetwork) {
    let sigs = build_sig_table(engine, network, topo, ec);
    let refined = crate::algorithm::refine_with_split(&topo.graph, ec, &sigs, abstraction, split);
    let abs_net = build_abstract_network(network, topo, ec, &refined);
    (refined, abs_net)
}

/// The unified fan-out driver: workers claim class indices from one atomic
/// counter and collect into worker-local vectors (lock-free; the only
/// shared mutable state is the engine's internal arena lock). `threads: 1`
/// runs the identical worker loop inline. The generic machinery lives in
/// [`crate::fanout::fan_out`], which the failure-scenario sweep engine
/// drives with the same contract.
fn run_workers(
    engine: &CompiledPolicies,
    network: &NetworkConfig,
    topo: &BuiltTopology,
    ecs: &[DestEc],
    threads: usize,
) -> Vec<EcCompression> {
    let (results, _) = crate::fanout::fan_out(
        ecs.len(),
        threads,
        || (),
        |(), i| compress_ec(engine, network, topo, &ecs[i]),
    );
    results
}

/// Compresses a whole network: every destination equivalence class,
/// processed in parallel over one shared policy-compilation engine.
pub fn compress(network: &NetworkConfig, options: CompressOptions) -> CompressionReport {
    let start = Instant::now();
    let topo = BuiltTopology::build(network).expect("network has a consistent topology");

    let t_ecs = Instant::now();
    let ecs = compute_ecs(network, &topo);
    let ec_compute_time = t_ecs.elapsed();

    let t_engine = Instant::now();
    let engine = Arc::new(build_engine(network, options));
    let engine_build_time = t_engine.elapsed();

    let threads = if options.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        options.threads
    }
    .min(ecs.len().max(1));

    let per_ec = run_workers(&engine, network, &topo, &ecs, threads);

    CompressionReport {
        concrete_nodes: topo.graph.node_count(),
        concrete_links: topo.graph.link_count(),
        per_ec,
        total_time: start.elapsed(),
        ec_compute_time,
        engine_build_time,
        engine: engine.stats(),
        policies: engine,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_srp::papernets;

    #[test]
    fn gadget_report() {
        let net = papernets::figure2_gadget();
        let report = compress(&net, CompressOptions::default());
        assert_eq!(report.concrete_nodes, 5);
        assert_eq!(report.concrete_links, 6);
        assert_eq!(report.num_ecs(), 1);
        assert_eq!(report.mean_abstract_nodes(), 4.0);
        assert_eq!(report.mean_abstract_links(), 4.0);
        assert!(report.node_ratio() > 1.0);
        assert!(report.link_ratio() > 1.0);
        // The engine saw work even for a single class (the gadget models
        // no communities, so the arena is just the shared terminal).
        assert!(report.engine.arena_nodes >= 1);
        assert!(report.engine.sig_lookups > 0);
    }

    #[test]
    fn multiple_ecs_processed_in_parallel() {
        // Two destinations → two ECs; run with 2 threads.
        let net = bonsai_config::parse_network(
            "
device a
interface i
router bgp 1
 network 10.0.1.0/24
 neighbor i remote-as external
end
device b
interface i
router bgp 2
 network 10.0.2.0/24
 neighbor i remote-as external
end
link a i b i
",
        )
        .unwrap();
        let report = compress(
            &net,
            CompressOptions {
                threads: 2,
                ..Default::default()
            },
        );
        assert_eq!(report.num_ecs(), 2);
        for ec in &report.per_ec {
            assert_eq!(ec.abstraction.abstract_node_count(), 2);
        }
        // Deterministic order by representative prefix.
        assert!(report.per_ec[0].ec.rep < report.per_ec[1].ec.rep);
    }

    /// When an ACL makes two classes differ (different table keys), the
    /// middle cache tier still shares the per-edge BGP signatures, whose
    /// keys depend only on the route-map resolution.
    #[test]
    fn sig_tier_absorbs_acl_only_differences() {
        let net = bonsai_config::parse_network(
            "
device a
interface i
 ip access-group BLOCK out
ip access-list BLOCK deny 10.0.5.0/24
ip access-list BLOCK permit any
router bgp 1
 network 10.0.0.0/16
 neighbor i remote-as external
end
device b
interface i
router bgp 2
 neighbor i remote-as external
end
link a i b i
",
        )
        .unwrap();
        let report = compress(&net, CompressOptions::default());
        assert_eq!(report.num_ecs(), 2);
        let stats = &report.engine;
        // The ACL splits the classes' table keys...
        assert_eq!(stats.table_hits, 0, "{stats:?}");
        // ...but the BGP signatures (no prefix lists involved) are shared.
        assert!(
            stats.sig_hits > 0,
            "acl-only difference must still share BGP signatures: {stats:?}"
        );
        assert!(stats.reuse_observed());
    }

    /// The acceptance criterion of the shared-engine refactor: on a
    /// multi-EC network the second class reuses the first class's
    /// compiled signatures, visible as nonzero cache hit rates.
    #[test]
    fn engine_is_shared_across_ecs() {
        let more = bonsai_config::parse_network(
            "
device a
interface i
router bgp 1
 network 10.0.1.0/24
 network 10.0.2.0/24
 network 10.0.3.0/24
 neighbor i remote-as external
end
device b
interface i
router bgp 2
 neighbor i remote-as external
end
link a i b i
",
        )
        .unwrap();
        let report = compress(&more, CompressOptions::default());
        assert!(report.num_ecs() >= 3);
        let stats = &report.engine;
        assert!(
            stats.table_hits > 0,
            "multi-EC compression must reuse cached tables: {stats:?}"
        );
        assert!(stats.table_hit_rate() > 0.0);
        assert!(stats.reuse_observed());
        // One arena served every class.
        assert!(stats.arena_nodes >= 1);
        // An identical single-threaded run produces identical results
        // (the unified driver contract at threads: 1).
        let seq = compress(
            &more,
            CompressOptions {
                threads: 1,
                ..Default::default()
            },
        );
        assert_eq!(seq.num_ecs(), report.num_ecs());
        for (a, b) in seq.per_ec.iter().zip(report.per_ec.iter()) {
            assert_eq!(a.ec.rep, b.ec.rep);
            assert_eq!(
                a.abstraction.abstract_node_count(),
                b.abstraction.abstract_node_count()
            );
            assert_eq!(a.abstract_network.network, b.abstract_network.network);
        }
    }
}
