//! The top-level compression driver: configurations in, per-class abstract
//! networks and a timing/size report out.
//!
//! Mirrors Bonsai's pipeline (§5, §7) on top of the shared engine
//! architecture: compute destination equivalence classes, build **one**
//! [`CompiledPolicies`] engine for the whole network, then fan the classes
//! over scoped workers. Workers pull class indices from one atomic
//! counter, keep their results in worker-local vectors, and the driver
//! merges them after the scope joins — no per-slot locks. All BDD work
//! flows through the shared engine, so route maps compiled for one class
//! are reused by every other class that resolves them the same way; the
//! report carries the engine statistics that prove (and quantify) the
//! reuse.

use crate::abstraction::{build_abstract_network, AbstractNetwork};
use crate::algorithm::{find_abstraction, Abstraction};
use crate::ecs::{compute_ecs, DestEc};
use crate::engine::{CompiledPolicies, EngineStats};
use crate::signatures::{build_sig_table, SigTable};
use bonsai_config::{BuiltTopology, NetworkConfig};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Options for a compression run.
#[derive(Clone, Copy, Debug, Default)]
pub struct CompressOptions {
    /// Apply the attribute abstraction that ignores communities which are
    /// attached but never matched (the `h` of the paper's data-center
    /// study, §8).
    pub strip_unused_communities: bool,
    /// Number of worker threads for per-EC work (0 = all available cores).
    pub threads: usize,
    /// Apply-cache size of the shared arena, as a power of two
    /// (`2^bits` entries; 0 = the library default of 2^16).
    pub apply_cache_bits: u32,
}

/// Result of compressing one destination equivalence class.
pub struct EcCompression {
    /// The class.
    pub ec: DestEc,
    /// The refined abstraction.
    pub abstraction: Abstraction,
    /// The materialized abstract network.
    pub abstract_network: AbstractNetwork,
    /// Time spent building the BDD signature table (mostly engine-cache
    /// lookups after the first class touches a policy).
    pub bdd_time: Duration,
    /// Time spent in refinement + abstract-network construction.
    pub compress_time: Duration,
}

/// Whole-network compression report (the raw material of Table 1).
pub struct CompressionReport {
    /// Concrete size: nodes.
    pub concrete_nodes: usize,
    /// Concrete size: undirected links.
    pub concrete_links: usize,
    /// Per-class results, ordered by representative prefix.
    pub per_ec: Vec<EcCompression>,
    /// Wall-clock time of the whole run.
    pub total_time: Duration,
    /// Time spent partitioning the address space into classes.
    pub ec_compute_time: Duration,
    /// Time spent building the shared engine (community scan + arena).
    pub engine_build_time: Duration,
    /// End-of-run statistics of the shared policy-compilation engine:
    /// arena size and cache hit rates across **all** classes.
    pub engine: EngineStats,
    /// The shared engine itself, for downstream consumers (verification
    /// reuses the same manager instead of rescanning the network).
    pub policies: Arc<CompiledPolicies>,
}

impl CompressionReport {
    /// Number of destination equivalence classes.
    pub fn num_ecs(&self) -> usize {
        self.per_ec.len()
    }

    /// Mean abstract node count across classes.
    pub fn mean_abstract_nodes(&self) -> f64 {
        mean(
            self.per_ec
                .iter()
                .map(|e| e.abstraction.abstract_node_count() as f64),
        )
    }

    /// Standard deviation of the abstract node count.
    pub fn std_abstract_nodes(&self) -> f64 {
        std_dev(
            self.per_ec
                .iter()
                .map(|e| e.abstraction.abstract_node_count() as f64),
        )
    }

    /// Mean abstract link count across classes.
    pub fn mean_abstract_links(&self) -> f64 {
        mean(
            self.per_ec
                .iter()
                .map(|e| e.abstract_network.link_count() as f64),
        )
    }

    /// Standard deviation of the abstract link count.
    pub fn std_abstract_links(&self) -> f64 {
        std_dev(
            self.per_ec
                .iter()
                .map(|e| e.abstract_network.link_count() as f64),
        )
    }

    /// Node compression ratio (concrete / mean abstract).
    pub fn node_ratio(&self) -> f64 {
        self.concrete_nodes as f64 / self.mean_abstract_nodes().max(1e-9)
    }

    /// Link compression ratio (concrete / mean abstract).
    pub fn link_ratio(&self) -> f64 {
        self.concrete_links as f64 / self.mean_abstract_links().max(1e-9)
    }

    /// Total BDD-construction time across classes (the paper's "BDD time"
    /// column; our pipeline specializes BDDs per class through the shared
    /// engine, so this is the sum of per-class signature-table builds).
    pub fn bdd_time(&self) -> Duration {
        self.per_ec.iter().map(|e| e.bdd_time).sum()
    }

    /// Mean per-class compression time (the paper's "Compression time
    /// (per EC)" column).
    pub fn compress_time_per_ec(&self) -> Duration {
        if self.per_ec.is_empty() {
            return Duration::ZERO;
        }
        self.per_ec
            .iter()
            .map(|e| e.compress_time)
            .sum::<Duration>()
            / self.per_ec.len() as u32
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

fn std_dev(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.len() < 2 {
        return 0.0;
    }
    let m = v.iter().sum::<f64>() / v.len() as f64;
    (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
}

/// Builds the shared engine a compression run (or an external caller that
/// wants to share one) uses.
pub fn build_engine(network: &NetworkConfig, options: CompressOptions) -> CompiledPolicies {
    let bits = if options.apply_cache_bits == 0 {
        bonsai_bdd::DEFAULT_APPLY_CACHE_BITS
    } else {
        options.apply_cache_bits
    };
    CompiledPolicies::with_cache_bits(network, options.strip_unused_communities, bits)
}

/// Compresses one destination class against a shared engine.
pub fn compress_ec(
    engine: &CompiledPolicies,
    network: &NetworkConfig,
    topo: &BuiltTopology,
    ec: &DestEc,
) -> EcCompression {
    let ec_dest = ec.to_ec_dest();
    let t0 = Instant::now();
    let sigs = build_sig_table(engine, network, topo, &ec_dest);
    let bdd_time = t0.elapsed();

    let t1 = Instant::now();
    let abstraction = find_abstraction(&topo.graph, &ec_dest, &sigs);
    let abstract_network = build_abstract_network(network, topo, &ec_dest, &abstraction);
    let compress_time = t1.elapsed();

    EcCompression {
        ec: ec.clone(),
        abstraction,
        abstract_network,
        bdd_time,
        compress_time,
    }
}

/// The counterexample-guided refinement step of the failure-scenario
/// auditor: isolates the given concrete nodes in an existing abstraction,
/// re-runs refinement to the fixpoint, and rebuilds the abstract network —
/// all through the same shared engine (the signature table is a cache hit).
///
/// Returns the refined abstraction and its materialized network. The
/// result is at least as fine as the input; callers loop this against
/// re-verification until the abstraction is sound for their scenario set
/// (termination: each effective split strictly increases the block count,
/// bounded by the node count, where abstract = concrete and every check
/// passes).
pub fn refine_ec_with_split(
    engine: &CompiledPolicies,
    network: &NetworkConfig,
    topo: &BuiltTopology,
    ec: &bonsai_srp::instance::EcDest,
    abstraction: &crate::algorithm::Abstraction,
    split: &[bonsai_net::NodeId],
) -> (crate::algorithm::Abstraction, AbstractNetwork) {
    let sigs = build_sig_table(engine, network, topo, ec);
    let refined = crate::algorithm::refine_with_split(&topo.graph, ec, &sigs, abstraction, split);
    let abs_net = build_abstract_network(network, topo, ec, &refined);
    (refined, abs_net)
}

/// The unified fan-out driver: workers claim class indices from one atomic
/// counter and collect into worker-local vectors (lock-free; the only
/// shared mutable state is the engine's internal arena lock). `threads: 1`
/// runs the identical worker loop inline. The generic machinery lives in
/// [`crate::fanout::fan_out`], which the failure-scenario sweep engine
/// drives with the same contract.
fn run_workers(
    engine: &CompiledPolicies,
    network: &NetworkConfig,
    topo: &BuiltTopology,
    ecs: &[DestEc],
    threads: usize,
) -> Vec<EcCompression> {
    let (results, _) = crate::fanout::fan_out(
        ecs.len(),
        threads,
        || (),
        |(), i| compress_ec(engine, network, topo, &ecs[i]),
    );
    results
}

/// Compresses a whole network: every destination equivalence class,
/// processed in parallel over one shared policy-compilation engine.
pub fn compress(network: &NetworkConfig, options: CompressOptions) -> CompressionReport {
    let start = Instant::now();
    let topo = BuiltTopology::build(network).expect("network has a consistent topology");

    let t_ecs = Instant::now();
    let ecs = compute_ecs(network, &topo);
    let ec_compute_time = t_ecs.elapsed();

    let t_engine = Instant::now();
    let engine = Arc::new(build_engine(network, options));
    let engine_build_time = t_engine.elapsed();

    let threads = if options.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        options.threads
    }
    .min(ecs.len().max(1));

    let per_ec = run_workers(&engine, network, &topo, &ecs, threads);

    CompressionReport {
        concrete_nodes: topo.graph.node_count(),
        concrete_links: topo.graph.link_count(),
        per_ec,
        total_time: start.elapsed(),
        ec_compute_time,
        engine_build_time,
        engine: engine.stats(),
        policies: engine,
    }
}

/// Result of absorbing a config delta into an existing compression: the
/// new-network report (sharing the old run's engine when the delta was
/// incremental) plus the audit trail of what had to be redone.
pub struct DeltaReport {
    /// The compression of the *new* network, per-class order as
    /// [`compress`] would produce it.
    pub report: CompressionReport,
    /// The classified difference that drove the invalidation.
    pub delta: crate::delta::ConfigDelta,
    /// What [`CompiledPolicies::apply_delta`] evicted (zeroed on a full
    /// rebuild — the old engine was discarded wholesale).
    pub invalidation: crate::engine::DeltaInvalidation,
    /// True when the delta was structural and the result is a fresh full
    /// compression on a fresh engine.
    pub full_rebuild: bool,
    /// Indices into `report.per_ec` whose abstraction had to be
    /// re-derived (new classes, or classes whose signature table changed).
    pub rederived: Vec<usize>,
    /// Classes that kept their old abstraction (table proven equal).
    pub reused: usize,
    /// Classes whose engine fingerprint changed across the delta
    /// (rederived classes, plus kept classes that converged onto another
    /// class's adopted identity).
    pub fingerprints_moved: usize,
    /// Wall-clock time of the whole delta application.
    pub delta_time: Duration,
}

impl DeltaReport {
    /// Number of classes in the new network.
    pub fn ecs_total(&self) -> usize {
        self.report.num_ecs()
    }
}

/// Absorbs the difference between `old_network` (which `old` compressed)
/// and `new_network` into `old`'s warm engine, recompressing **only** the
/// classes the edit actually touched.
///
/// Sequence: classify the delta; on a structural change fall back to a
/// fresh [`compress`]. Otherwise snapshot each old class's fingerprint
/// and table (cache hits), flush the eviction class with
/// [`CompiledPolicies::apply_delta`], recompute the EC partition of the
/// new network, and reconcile class by class: a class matching an old
/// class whose rebuilt table equals the old one re-adopts the old
/// fingerprint and reuses the old abstraction (only the abstract network
/// is re-materialized against the new configs — cheap, no refinement);
/// everything else is recompressed from the warm caches.
///
/// The result is semantically identical to `compress(new_network)` — the
/// delta-equivalence property tests pin this — while doing work
/// proportional to the edit, not the network.
pub fn recompress_delta(
    old: &CompressionReport,
    old_network: &NetworkConfig,
    new_network: &NetworkConfig,
    options: CompressOptions,
) -> DeltaReport {
    let start = Instant::now();
    let delta =
        crate::delta::diff_configs(old_network, new_network, options.strip_unused_communities);

    if delta.structural.is_some() {
        let report = compress(new_network, options);
        let rederived = (0..report.num_ecs()).collect();
        return DeltaReport {
            report,
            delta,
            invalidation: crate::engine::DeltaInvalidation::default(),
            full_rebuild: true,
            rederived,
            reused: 0,
            fingerprints_moved: old.num_ecs(),
            delta_time: start.elapsed(),
        };
    }

    let engine = Arc::clone(&old.policies);
    // The delta is non-structural, so the topology (devices, links,
    // interfaces modulo ACL bindings) is unchanged and the engine's
    // frozen edge statics remain valid for the new network.
    let topo = BuiltTopology::build(new_network).expect("network has a consistent topology");

    // Snapshot the old identities before eviction (warm-cache reads).
    let old_state: HashMap<EcMatchKey, (crate::engine::EcFingerprint, Arc<SigTable>, usize)> = old
        .per_ec
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let ec_dest = c.ec.to_ec_dest();
            let fp = engine.ec_fingerprint(old_network, &topo, &ec_dest);
            let table = engine.sig_table(old_network, &topo, &ec_dest);
            (ec_match_key(&c.ec), (fp, table, i))
        })
        .collect();

    let invalidation = engine.apply_delta(&delta.policy_devices);

    let t_ecs = Instant::now();
    let ecs = compute_ecs(new_network, &topo);
    let ec_compute_time = t_ecs.elapsed();

    let mut per_ec = Vec::with_capacity(ecs.len());
    let mut rederived = Vec::new();
    let mut fingerprints_moved = 0usize;
    for (i, ec) in ecs.iter().enumerate() {
        let ec_dest = ec.to_ec_dest();
        let matched = old_state.get(&ec_match_key(ec));
        let t0 = Instant::now();
        let new_table = engine.sig_table(new_network, &topo, &ec_dest);
        let bdd_time = t0.elapsed();
        match matched {
            Some((old_fp, old_table, old_idx)) if *new_table == **old_table => {
                let adopted = engine.adopt_fingerprint(new_network, &topo, &ec_dest, *old_fp);
                if adopted != *old_fp {
                    fingerprints_moved += 1;
                }
                let t1 = Instant::now();
                let abstraction = old.per_ec[*old_idx].abstraction.clone();
                // The abstraction is provably still the fixpoint (same
                // signature table), but its materialization embeds
                // concrete device configs — rebuild against the new ones.
                let abstract_network =
                    build_abstract_network(new_network, &topo, &ec_dest, &abstraction);
                per_ec.push(EcCompression {
                    ec: ec.clone(),
                    abstraction,
                    abstract_network,
                    bdd_time,
                    compress_time: t1.elapsed(),
                });
            }
            _ => {
                rederived.push(i);
                if matched.is_some() {
                    fingerprints_moved += 1;
                }
                let mut c = compress_ec(&engine, new_network, &topo, ec);
                c.bdd_time += bdd_time;
                per_ec.push(c);
            }
        }
    }
    let reused = per_ec.len() - rederived.len();
    // Old classes the new partition no longer contains also moved.
    fingerprints_moved += old
        .per_ec
        .iter()
        .filter(|c| !ecs.iter().any(|ec| ec_match_key(ec) == ec_match_key(&c.ec)))
        .count();

    let report = CompressionReport {
        concrete_nodes: topo.graph.node_count(),
        concrete_links: topo.graph.link_count(),
        per_ec,
        total_time: start.elapsed(),
        ec_compute_time,
        engine_build_time: Duration::ZERO,
        engine: engine.stats(),
        policies: engine,
    };
    DeltaReport {
        report,
        delta,
        invalidation,
        full_rebuild: false,
        rederived,
        reused,
        fingerprints_moved,
        delta_time: start.elapsed(),
    }
}

/// The identity under which old and new classes are matched across a
/// delta: representative, exact ranges, exact origins. Two classes with
/// equal keys denote the same destination set with the same originators.
type EcMatchKey = (
    bonsai_net::prefix::Prefix,
    Vec<bonsai_net::prefix::Prefix>,
    Vec<(bonsai_net::NodeId, bonsai_srp::instance::OriginProto)>,
);

fn ec_match_key(ec: &DestEc) -> EcMatchKey {
    (ec.rep, ec.ranges.clone(), ec.origins.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_srp::papernets;

    #[test]
    fn gadget_report() {
        let net = papernets::figure2_gadget();
        let report = compress(&net, CompressOptions::default());
        assert_eq!(report.concrete_nodes, 5);
        assert_eq!(report.concrete_links, 6);
        assert_eq!(report.num_ecs(), 1);
        assert_eq!(report.mean_abstract_nodes(), 4.0);
        assert_eq!(report.mean_abstract_links(), 4.0);
        assert!(report.node_ratio() > 1.0);
        assert!(report.link_ratio() > 1.0);
        // The engine saw work even for a single class (the gadget models
        // no communities, so the arena is just the shared terminal).
        assert!(report.engine.arena_nodes >= 1);
        assert!(report.engine.sig_lookups > 0);
    }

    #[test]
    fn multiple_ecs_processed_in_parallel() {
        // Two destinations → two ECs; run with 2 threads.
        let net = bonsai_config::parse_network(
            "
device a
interface i
router bgp 1
 network 10.0.1.0/24
 neighbor i remote-as external
end
device b
interface i
router bgp 2
 network 10.0.2.0/24
 neighbor i remote-as external
end
link a i b i
",
        )
        .unwrap();
        let report = compress(
            &net,
            CompressOptions {
                threads: 2,
                ..Default::default()
            },
        );
        assert_eq!(report.num_ecs(), 2);
        for ec in &report.per_ec {
            assert_eq!(ec.abstraction.abstract_node_count(), 2);
        }
        // Deterministic order by representative prefix.
        assert!(report.per_ec[0].ec.rep < report.per_ec[1].ec.rep);
    }

    /// When an ACL makes two classes differ (different table keys), the
    /// middle cache tier still shares the per-edge BGP signatures, whose
    /// keys depend only on the route-map resolution.
    #[test]
    fn sig_tier_absorbs_acl_only_differences() {
        let net = bonsai_config::parse_network(
            "
device a
interface i
 ip access-group BLOCK out
ip access-list BLOCK deny 10.0.5.0/24
ip access-list BLOCK permit any
router bgp 1
 network 10.0.0.0/16
 neighbor i remote-as external
end
device b
interface i
router bgp 2
 neighbor i remote-as external
end
link a i b i
",
        )
        .unwrap();
        let report = compress(&net, CompressOptions::default());
        assert_eq!(report.num_ecs(), 2);
        let stats = &report.engine;
        // The ACL splits the classes' table keys...
        assert_eq!(stats.table_hits, 0, "{stats:?}");
        // ...but the BGP signatures (no prefix lists involved) are shared.
        assert!(
            stats.sig_hits > 0,
            "acl-only difference must still share BGP signatures: {stats:?}"
        );
        assert!(stats.reuse_observed());
    }

    fn delta_base_net() -> NetworkConfig {
        bonsai_config::parse_network(
            "
device a
interface i
ip prefix-list P10 seq 5 permit 10.0.1.0/24
route-map M permit 10
 match ip address prefix-list P10
 set local-preference 200
route-map M permit 20
router bgp 1
 neighbor i remote-as external
 neighbor i route-map M in
end
device b
interface i
router bgp 2
 network 10.0.1.0/24
 network 10.0.2.0/24
 neighbor i remote-as external
end
link a i b i
",
        )
        .unwrap()
    }

    /// A route-map edit behind a prefix-list match re-derives only the
    /// class the match selects; the other class's rebuilt table proves
    /// equal and its abstraction (and fingerprint) are reused.
    #[test]
    fn delta_rederives_only_touched_classes() {
        let old_net = delta_base_net();
        let old = compress(&old_net, CompressOptions::default());
        assert_eq!(old.num_ecs(), 2);

        let mut new_net = old_net.clone();
        // Clause 10 fires only for 10.0.1.0/24: bump its local-pref.
        new_net.devices[0].route_maps[0].clauses[0].sets =
            vec![bonsai_config::SetAction::LocalPref(300)];

        let d = recompress_delta(&old, &old_net, &new_net, CompressOptions::default());
        assert!(!d.full_rebuild);
        assert_eq!(d.delta.policy_devices, vec![0]);
        assert!(d.invalidation.stages_evicted > 0);
        assert_eq!(d.invalidation.tables_evicted, 2);
        assert_eq!(d.reused, 1);
        let touched: Vec<_> = d
            .rederived
            .iter()
            .map(|&i| d.report.per_ec[i].ec.rep)
            .collect();
        assert_eq!(touched, vec!["10.0.1.0/24".parse().unwrap()]);

        // The delta result is semantically the fresh result.
        let fresh = compress(&new_net, CompressOptions::default());
        assert_eq!(d.report.num_ecs(), fresh.num_ecs());
        for (a, b) in d.report.per_ec.iter().zip(&fresh.per_ec) {
            assert_eq!(a.ec.rep, b.ec.rep);
            assert_eq!(a.abstract_network.network, b.abstract_network.network);
        }
    }

    /// The unchanged class keeps its interned fingerprint across the
    /// delta, so sweep state keyed under it stays valid.
    #[test]
    fn delta_preserves_untouched_fingerprints() {
        let old_net = delta_base_net();
        let old = compress(&old_net, CompressOptions::default());
        let topo = BuiltTopology::build(&old_net).unwrap();
        let untouched = old
            .per_ec
            .iter()
            .find(|c| c.ec.rep == "10.0.2.0/24".parse().unwrap())
            .unwrap()
            .ec
            .to_ec_dest();
        let fp_before = old.policies.ec_fingerprint(&old_net, &topo, &untouched);

        let mut new_net = old_net.clone();
        new_net.devices[0].route_maps[0].clauses[0].sets =
            vec![bonsai_config::SetAction::LocalPref(300)];
        let d = recompress_delta(&old, &old_net, &new_net, CompressOptions::default());
        let fp_after = d
            .report
            .policies
            .ec_fingerprint(&new_net, &topo, &untouched);
        assert_eq!(
            fp_before, fp_after,
            "untouched class re-adopts its identity"
        );
        assert_eq!(d.fingerprints_moved, 1, "only the edited class moved");
    }

    /// A structural edit (here: a session-shape change) falls back to a
    /// fresh full compression on a fresh engine.
    #[test]
    fn structural_delta_falls_back_to_full_rebuild() {
        let old_net = delta_base_net();
        let old = compress(&old_net, CompressOptions::default());
        let mut new_net = old_net.clone();
        new_net.devices[1].bgp.as_mut().unwrap().default_local_pref = 150;
        let d = recompress_delta(&old, &old_net, &new_net, CompressOptions::default());
        assert!(d.full_rebuild);
        assert!(d.delta.structural.is_some());
        assert_eq!(d.rederived.len(), d.report.num_ecs());
        assert!(!Arc::ptr_eq(&d.report.policies, &old.policies));
    }

    /// The acceptance criterion of the shared-engine refactor: on a
    /// multi-EC network the second class reuses the first class's
    /// compiled signatures, visible as nonzero cache hit rates.
    #[test]
    fn engine_is_shared_across_ecs() {
        let more = bonsai_config::parse_network(
            "
device a
interface i
router bgp 1
 network 10.0.1.0/24
 network 10.0.2.0/24
 network 10.0.3.0/24
 neighbor i remote-as external
end
device b
interface i
router bgp 2
 neighbor i remote-as external
end
link a i b i
",
        )
        .unwrap();
        let report = compress(&more, CompressOptions::default());
        assert!(report.num_ecs() >= 3);
        let stats = &report.engine;
        assert!(
            stats.table_hits > 0,
            "multi-EC compression must reuse cached tables: {stats:?}"
        );
        assert!(stats.table_hit_rate() > 0.0);
        assert!(stats.reuse_observed());
        // One arena served every class.
        assert!(stats.arena_nodes >= 1);
        // An identical single-threaded run produces identical results
        // (the unified driver contract at threads: 1).
        let seq = compress(
            &more,
            CompressOptions {
                threads: 1,
                ..Default::default()
            },
        );
        assert_eq!(seq.num_ecs(), report.num_ecs());
        for (a, b) in seq.per_ec.iter().zip(report.per_ec.iter()) {
            assert_eq!(a.ec.rep, b.ec.rep);
            assert_eq!(
                a.abstraction.abstract_node_count(),
                b.abstraction.abstract_node_count()
            );
            assert_eq!(a.abstract_network.network, b.abstract_network.network);
        }
    }
}
