//! Checkers for the effective-abstraction conditions (paper §4.1, §4.3).
//!
//! The refinement algorithm is *supposed* to terminate in a partition
//! satisfying these conditions; this module verifies them independently,
//! both as a test oracle and as a public sanity API for users who hand-
//! craft abstractions. Each check mirrors one line of the Figure 4 cheat
//! sheet:
//!
//! * `dest-equivalence` — origins (and only origins) map to abstract
//!   origins of the same protocol.
//! * `∀∃-abstraction` — every concrete edge has an abstract counterpart,
//!   and every abstract edge is realizable from *every* member of its
//!   source block.
//! * `∀∀-abstraction` — the stronger biconditional form required between
//!   BGP-split blocks and their neighborhoods.
//! * `transfer-equivalence` — edges merged together carry semantically
//!   equal transfer functions (by canonical signature equality; for BGP
//!   this is `transfer-approx`, i.e. equality modulo loop prevention).
//!
//! The remaining Figure 4 conditions (orig-, drop-, rank-equivalence) are
//! properties of the fixed attribute abstraction `h` and hold by
//! construction: `h` preserves ⊥, the origin attribute and all comparison
//! fields (it only renames path nodes and optionally strips never-matched
//! communities).

use crate::signatures::{origin_key, SigTable};
use bonsai_net::{Graph, NodeId, Partition};
use bonsai_srp::instance::EcDest;
use std::collections::BTreeSet;

/// A violated condition, with a human-readable witness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A non-origin shares a block with an origin, or origin protocols mix.
    DestEquivalence(String),
    /// ∀∃-abstraction, direction 2: a member misses an abstract edge.
    ForallExists(String),
    /// ∀∀-abstraction between a split block and a neighbor.
    ForallForall(String),
    /// Two merged edges have different transfer functions.
    TransferEquivalence(String),
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::DestEquivalence(w) => write!(f, "dest-equivalence: {w}"),
            Violation::ForallExists(w) => write!(f, "∀∃-abstraction: {w}"),
            Violation::ForallForall(w) => write!(f, "∀∀-abstraction: {w}"),
            Violation::TransferEquivalence(w) => write!(f, "transfer-equivalence: {w}"),
        }
    }
}

/// Checks every effective-abstraction condition for a partition; returns
/// all violations (empty = effective).
pub fn check_effective(
    graph: &Graph,
    ec: &EcDest,
    sigs: &SigTable,
    partition: &Partition,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    check_dest_equivalence(ec, partition, &mut violations);
    check_forall_exists(graph, partition, &mut violations);
    check_transfer_equivalence(graph, partition, sigs, &mut violations);
    // Blocks that may use several local preferences need ∀∀ neighborhoods.
    for block in partition.blocks() {
        let members = partition.members(block);
        if members.len() > 1 && sigs.prefs_of_block(members) > 1 {
            check_forall_forall(graph, partition, block, &mut violations);
        }
    }
    violations
}

/// `dest-equivalence`: origin blocks contain only origins of one protocol.
fn check_dest_equivalence(ec: &EcDest, partition: &Partition, out: &mut Vec<Violation>) {
    for block in partition.blocks() {
        let keys: BTreeSet<u8> = partition
            .members(block)
            .iter()
            .map(|&m| origin_key(ec, NodeId(m)))
            .collect();
        if keys.len() > 1 {
            out.push(Violation::DestEquivalence(format!(
                "block {:?} mixes origins and non-origins (keys {keys:?})",
                partition.members(block)
            )));
        }
    }
}

/// `∀∃-abstraction`: direction 1 holds for any quotient by construction;
/// direction 2 is checked per (member, abstract edge).
fn check_forall_exists(graph: &Graph, partition: &Partition, out: &mut Vec<Violation>) {
    // Abstract edges: block pairs with at least one concrete edge.
    let mut abs_edges: BTreeSet<(u32, u32)> = BTreeSet::new();
    for e in graph.edges() {
        let (u, v) = graph.endpoints(e);
        abs_edges.insert((partition.block_of(u.0).0, partition.block_of(v.0).0));
    }
    for &(bu, bv) in &abs_edges {
        if bu == bv {
            continue; // intra-block adjacency handled by the ∀∀ check
        }
        for &u in partition.members(bonsai_net::partition::BlockId(bu)) {
            let has = graph
                .successors(NodeId(u))
                .any(|v| partition.block_of(v.0).0 == bv);
            if !has {
                out.push(Violation::ForallExists(format!(
                    "node n{u} (block {bu}) has no edge into block {bv}"
                )));
            }
        }
    }
}

/// `∀∀-abstraction` around one block: every member must link to *every*
/// member of every adjacent block (and adjacency within the block must be
/// all-or-nothing).
fn check_forall_forall(
    graph: &Graph,
    partition: &Partition,
    block: bonsai_net::partition::BlockId,
    out: &mut Vec<Violation>,
) {
    let members = partition.members(block);
    // Adjacent blocks of the block's members.
    let mut adjacent: BTreeSet<u32> = BTreeSet::new();
    for &u in members {
        for v in graph.successors(NodeId(u)) {
            adjacent.insert(partition.block_of(v.0).0);
        }
    }
    for &b in &adjacent {
        let peer = bonsai_net::partition::BlockId(b);
        if peer == block {
            continue;
        }
        for &u in members {
            for &v in partition.members(peer) {
                if !graph.has_edge(NodeId(u), NodeId(v)) {
                    out.push(Violation::ForallForall(format!(
                        "split block {:?}: n{u} lacks an edge to n{v} of adjacent block {b}",
                        members
                    )));
                }
            }
        }
    }
}

/// `transfer-equivalence`: all concrete edges mapped to the same abstract
/// edge must carry the same canonical signature.
fn check_transfer_equivalence(
    graph: &Graph,
    partition: &Partition,
    sigs: &SigTable,
    out: &mut Vec<Violation>,
) {
    let mut sig_of_abs: std::collections::HashMap<(u32, u32), u32> =
        std::collections::HashMap::new();
    for e in graph.edges() {
        let (u, v) = graph.endpoints(e);
        let key = (partition.block_of(u.0).0, partition.block_of(v.0).0);
        let sig = sigs.sig_of_edge[e.index()];
        match sig_of_abs.entry(key) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(sig);
            }
            std::collections::hash_map::Entry::Occupied(slot) => {
                if *slot.get() != sig {
                    out.push(Violation::TransferEquivalence(format!(
                        "edges merged into abstract edge {key:?} have signatures {} and {sig}",
                        slot.get()
                    )));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::find_abstraction;
    use crate::engine::CompiledPolicies;
    use crate::signatures::build_sig_table;
    use bonsai_config::BuiltTopology;
    use bonsai_srp::instance::OriginProto;
    use bonsai_srp::papernets;

    fn setup(
        net: &bonsai_config::NetworkConfig,
        dest: &str,
    ) -> (BuiltTopology, EcDest, std::sync::Arc<SigTable>) {
        let topo = BuiltTopology::build(net).unwrap();
        let d = topo.graph.node_by_name(dest).unwrap();
        let ec = EcDest::new(
            papernets::DEST_PREFIX.parse().unwrap(),
            vec![(d, OriginProto::Bgp)],
        );
        let engine = CompiledPolicies::from_network(net, false);
        let sigs = build_sig_table(&engine, net, &topo, &ec);
        (topo, ec, sigs)
    }

    #[test]
    fn refined_partitions_are_effective() {
        for net in [
            papernets::figure1_rip(),
            papernets::figure2_gadget(),
            papernets::figure5_bgp(),
        ] {
            let (topo, ec, sigs) = setup(&net, "d");
            let abs = find_abstraction(&topo.graph, &ec, &sigs);
            let violations = check_effective(&topo.graph, &ec, &sigs, &abs.partition);
            assert!(
                violations.is_empty(),
                "refined partition not effective: {violations:?}"
            );
        }
    }

    /// Figure 3(a): the coarsest abstraction violates ∀∃ because `a` has
    /// no edge to the destination block.
    #[test]
    fn coarsest_gadget_partition_violates_forall_exists() {
        let net = papernets::figure2_gadget();
        let (topo, ec, sigs) = setup(&net, "d");
        let d = topo.graph.node_by_name("d").unwrap();
        let mut partition = Partition::coarsest(topo.graph.node_count());
        partition.isolate(d.0);
        let violations = check_effective(&topo.graph, &ec, &sigs, &partition);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::ForallExists(_))));
    }

    /// Figure 2(b): merging all three b's *and* a would also break
    /// transfer-equivalence (different policies toward different blocks).
    #[test]
    fn merging_distinct_policies_breaks_transfer_equivalence() {
        let net = papernets::figure5_bgp();
        let (topo, ec, sigs) = setup(&net, "d");
        // Merge b1 and b2, which have different import policies.
        let mut partition = Partition::coarsest(topo.graph.node_count());
        let d = topo.graph.node_by_name("d").unwrap();
        let a = topo.graph.node_by_name("a").unwrap();
        partition.isolate(d.0);
        partition.isolate(a.0);
        let violations = check_effective(&topo.graph, &ec, &sigs, &partition);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::TransferEquivalence(_))));
    }

    /// Mixing the destination with other nodes violates dest-equivalence.
    #[test]
    fn dest_in_shared_block_is_flagged() {
        let net = papernets::figure1_rip();
        let (topo, ec, sigs) = setup(&net, "d");
        let partition = Partition::coarsest(topo.graph.node_count());
        let violations = check_effective(&topo.graph, &ec, &sigs, &partition);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::DestEquivalence(_))));
    }

    /// The gadget's split block {b1,b2,b3} satisfies ∀∀ toward both a and
    /// d; removing one b–d link would break it.
    #[test]
    fn forall_forall_detects_missing_link() {
        let mut net = papernets::figure2_gadget();
        // Remove the b3–d link.
        net.links
            .retain(|l| !(l.a.device == "d" && l.b.device == "b3"));
        let (topo, ec, sigs) = setup(&net, "d");
        // Force b1,b2,b3 into one block despite the asymmetry.
        let mut partition = Partition::coarsest(topo.graph.node_count());
        let d = topo.graph.node_by_name("d").unwrap();
        let a = topo.graph.node_by_name("a").unwrap();
        partition.isolate(d.0);
        partition.isolate(a.0);
        let violations = check_effective(&topo.graph, &ec, &sigs, &partition);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::ForallForall(_))
                    || matches!(v, Violation::ForallExists(_))),
            "expected a topological violation, got {violations:?}"
        );
    }
}
