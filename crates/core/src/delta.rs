//! Config deltas: classifying the difference between two parsed
//! configurations by what it invalidates in a shared
//! [`CompiledPolicies`](crate::engine::CompiledPolicies) engine.
//!
//! The engine's cache tiers are *exact-keyed*: stage keys carry the full
//! prefix-list resolution, signature keys the device indices and session
//! shape, table keys the whole destination-dependent residue. That makes
//! most edits **key-visible** — a prefix-list, ACL, static-route or
//! ACL-binding change produces different keys, so stale entries are simply
//! never probed again and nothing needs evicting. The exceptions are
//! route-map and community-list *content*: the keys name the map but not
//! its clauses, so an edited map can alias a stale entry under an unchanged
//! key. Those devices form the **eviction class** ([`ConfigDelta::policy_devices`])
//! that [`CompiledPolicies::apply_delta`](crate::engine::CompiledPolicies::apply_delta)
//! flushes precisely.
//!
//! Everything the engine treats as *destination-independent* — the device
//! set and order, links, interface addressing/OSPF, BGP session shape,
//! redistribution switches, and the community universe the BDD variables
//! model — is frozen at engine construction (the engine's edge statics
//! and `PolicyCtx`). A change to any of it is
//! **structural** ([`ConfigDelta::structural`]): the delta cannot be
//! absorbed in place and callers fall back to a fresh full compression.

use bonsai_config::{Community, DeviceConfig, MatchCond, NetworkConfig, SetAction};
use std::collections::BTreeSet;

/// The classified difference between two parsed configurations of the
/// same network, from the perspective of a shared compiled-policy engine.
#[derive(Clone, Debug, Default)]
pub struct ConfigDelta {
    /// Devices (by index, ascending) whose route-map or community-list
    /// *content* changed — the eviction class: engine cache keys name
    /// these objects but not their bodies, so same-key entries go stale.
    pub policy_devices: Vec<u32>,
    /// Devices (by index, ascending) whose prefix lists, ACLs, static
    /// routes, ACL bindings, or originated networks changed — key-visible
    /// edits: they shift cache keys and the EC partition, but every stale
    /// entry becomes unreachable by construction, so nothing is evicted.
    pub filter_devices: Vec<u32>,
    /// Hostnames of all changed devices, in index order.
    pub changed_devices: Vec<String>,
    /// Why the delta cannot be applied incrementally, if it cannot: the
    /// edit touches state the engine froze at construction.
    pub structural: Option<String>,
}

impl ConfigDelta {
    /// True when the two configurations are identical.
    pub fn is_empty(&self) -> bool {
        self.structural.is_none()
            && self.policy_devices.is_empty()
            && self.filter_devices.is_empty()
    }

    /// True when the delta can be absorbed by an existing engine (no
    /// structural change).
    pub fn is_incremental(&self) -> bool {
        self.structural.is_none()
    }
}

/// The community universe the engine's `PolicyCtx` models: matched
/// communities, or matched ∪ written without the stripping abstraction.
/// Mirrors the scan in `PolicyCtx::with_cache_bits` — the two must agree,
/// or a delta could silently invalidate the BDD variable model.
fn community_universe(network: &NetworkConfig, strip_unused: bool) -> BTreeSet<Community> {
    let mut matched: BTreeSet<Community> = BTreeSet::new();
    let mut written: BTreeSet<Community> = BTreeSet::new();
    for d in &network.devices {
        for map in &d.route_maps {
            for clause in &map.clauses {
                for m in &clause.matches {
                    if let MatchCond::Community(list) = m {
                        if let Some(cl) = d.community_list(list) {
                            matched.extend(cl.communities.iter().copied());
                        }
                    }
                }
                for s in &clause.sets {
                    match s {
                        SetAction::AddCommunity(c) | SetAction::DeleteCommunity(c) => {
                            written.insert(*c);
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    if strip_unused {
        matched
    } else {
        matched.union(&written).copied().collect()
    }
}

/// Interface comparison with the ACL bindings masked out: bindings are
/// key-visible (packed into every table key's edge outcomes), everything
/// else an interface carries — addressing, OSPF cost/area — is frozen in
/// the engine's edge statics.
fn interfaces_equal_modulo_acls(a: &DeviceConfig, b: &DeviceConfig) -> bool {
    a.interfaces.len() == b.interfaces.len()
        && a.interfaces.iter().zip(&b.interfaces).all(|(x, y)| {
            x.name == y.name
                && x.prefix == y.prefix
                && x.ospf_cost == y.ospf_cost
                && x.ospf_area == y.ospf_area
        })
}

fn acl_bindings_changed(a: &DeviceConfig, b: &DeviceConfig) -> bool {
    a.interfaces.len() != b.interfaces.len()
        || a.interfaces
            .iter()
            .zip(&b.interfaces)
            .any(|(x, y)| x.acl_in != y.acl_in || x.acl_out != y.acl_out)
}

/// BGP comparison with the originated `networks` masked out: network
/// statements only seed the EC partition (key-visible through EC
/// matching); the session shape, ASN, defaults and redistribution
/// switches are frozen in the engine's edge statics.
fn bgp_equal_modulo_networks(a: &DeviceConfig, b: &DeviceConfig) -> bool {
    match (&a.bgp, &b.bgp) {
        (None, None) => true,
        (Some(x), Some(y)) => {
            x.asn == y.asn
                && x.neighbors == y.neighbors
                && x.default_local_pref == y.default_local_pref
                && x.redistribute_static == y.redistribute_static
                && x.redistribute_ospf == y.redistribute_ospf
        }
        _ => false,
    }
}

/// OSPF comparison with the originated `networks` masked out, mirroring
/// [`bgp_equal_modulo_networks`]: `redistribute_static` feeds the frozen
/// edge statics, network statements only the EC partition.
fn ospf_equal_modulo_networks(a: &DeviceConfig, b: &DeviceConfig) -> bool {
    match (&a.ospf, &b.ospf) {
        (None, None) => true,
        (Some(x), Some(y)) => x.redistribute_static == y.redistribute_static,
        _ => false,
    }
}

/// Diffs two parsed configurations of the same network and classifies
/// every change by what it invalidates in a shared engine built with
/// `strip_unused` (which decides the modeled community universe, exactly
/// as compression's `strip_unused_communities` option does).
///
/// The classification is sound by construction: an edit is only placed in
/// the key-visible class when every engine cache key it can influence
/// changes with it, and only outside the structural class when the
/// engine's frozen state (edge statics, community variables, device
/// indexing) provably cannot observe it.
pub fn diff_configs(old: &NetworkConfig, new: &NetworkConfig, strip_unused: bool) -> ConfigDelta {
    let structural = |reason: String| ConfigDelta {
        structural: Some(reason),
        ..ConfigDelta::default()
    };

    if old.devices.len() != new.devices.len() {
        return structural(format!(
            "device count changed: {} -> {}",
            old.devices.len(),
            new.devices.len()
        ));
    }
    for (o, n) in old.devices.iter().zip(&new.devices) {
        if o.name != n.name {
            return structural(format!(
                "device set or order changed: `{}` -> `{}`",
                o.name, n.name
            ));
        }
    }
    if old.links != new.links {
        return structural("physical links changed".to_string());
    }
    if community_universe(old, strip_unused) != community_universe(new, strip_unused) {
        return structural("modeled community universe changed".to_string());
    }

    let mut policy_devices = Vec::new();
    let mut filter_devices = Vec::new();
    let mut changed_devices = Vec::new();
    for (i, (o, n)) in old.devices.iter().zip(&new.devices).enumerate() {
        if o == n {
            continue;
        }
        if !interfaces_equal_modulo_acls(o, n) {
            return structural(format!(
                "device `{}`: interface configuration changed",
                o.name
            ));
        }
        if !bgp_equal_modulo_networks(o, n) {
            return structural(format!("device `{}`: BGP session shape changed", o.name));
        }
        if !ospf_equal_modulo_networks(o, n) {
            return structural(format!("device `{}`: OSPF configuration changed", o.name));
        }
        let policy = o.route_maps != n.route_maps || o.community_lists != n.community_lists;
        let filter = o.prefix_lists != n.prefix_lists
            || o.acls != n.acls
            || o.static_routes != n.static_routes
            || acl_bindings_changed(o, n)
            || o.bgp.as_ref().map(|b| &b.networks) != n.bgp.as_ref().map(|b| &b.networks)
            || o.ospf.as_ref().map(|s| &s.networks) != n.ospf.as_ref().map(|s| &s.networks);
        if policy {
            policy_devices.push(i as u32);
        }
        if filter {
            filter_devices.push(i as u32);
        }
        if policy || filter {
            changed_devices.push(o.name.clone());
        }
    }
    ConfigDelta {
        policy_devices,
        filter_devices,
        changed_devices,
        structural: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_config::parse_network;

    fn base() -> NetworkConfig {
        parse_network(
            "
device a
interface i
ip prefix-list DC seq 5 permit 10.0.0.0/8 le 32
route-map FILTER permit 10
 match ip address prefix-list DC
router bgp 1
 network 10.0.1.0/24
 neighbor i remote-as external
 neighbor i route-map FILTER in
end
device b
interface i
router bgp 2
 network 10.0.2.0/24
 neighbor i remote-as external
end
link a i b i
",
        )
        .unwrap()
    }

    #[test]
    fn identical_configs_diff_empty() {
        let net = base();
        let d = diff_configs(&net, &net.clone(), false);
        assert!(d.is_empty(), "{d:?}");
        assert!(d.is_incremental());
    }

    #[test]
    fn route_map_edit_is_policy_class() {
        let old = base();
        let mut new = old.clone();
        new.devices[0].route_maps[0].clauses[0]
            .sets
            .push(SetAction::LocalPref(200));
        let d = diff_configs(&old, &new, false);
        assert!(d.is_incremental(), "{d:?}");
        assert_eq!(d.policy_devices, vec![0]);
        assert!(d.filter_devices.is_empty());
        assert_eq!(d.changed_devices, vec!["a".to_string()]);
    }

    #[test]
    fn prefix_list_edit_is_filter_class() {
        let old = base();
        let mut new = old.clone();
        new.devices[0].prefix_lists[0].entries[0].le = Some(24);
        let d = diff_configs(&old, &new, false);
        assert!(d.is_incremental(), "{d:?}");
        assert!(d.policy_devices.is_empty());
        assert_eq!(d.filter_devices, vec![0]);
    }

    #[test]
    fn origination_edit_is_filter_class() {
        let old = base();
        let mut new = old.clone();
        new.devices[1]
            .bgp
            .as_mut()
            .unwrap()
            .networks
            .push("10.0.3.0/24".parse().unwrap());
        let d = diff_configs(&old, &new, false);
        assert!(d.is_incremental(), "{d:?}");
        assert_eq!(d.filter_devices, vec![1]);
    }

    #[test]
    fn session_shape_edit_is_structural() {
        let old = base();
        let mut new = old.clone();
        new.devices[1].bgp.as_mut().unwrap().default_local_pref = 150;
        let d = diff_configs(&old, &new, false);
        assert!(d.structural.is_some(), "{d:?}");

        let mut new = old.clone();
        new.devices[0].bgp.as_mut().unwrap().neighbors[0].import_policy = None;
        assert!(diff_configs(&old, &new, false).structural.is_some());
    }

    #[test]
    fn link_and_device_set_edits_are_structural() {
        let old = base();
        let mut new = old.clone();
        new.links.clear();
        assert!(diff_configs(&old, &new, false).structural.is_some());

        let mut new = old.clone();
        new.devices.pop();
        assert!(diff_configs(&old, &new, false).structural.is_some());
    }

    #[test]
    fn community_universe_growth_is_structural() {
        let old = base();
        let mut new = old.clone();
        // A written-only community enters the unstripped universe...
        new.devices[0].route_maps[0].clauses[0]
            .sets
            .push(SetAction::AddCommunity(Community::new(7, 1)));
        assert!(diff_configs(&old, &new, false).structural.is_some());
        // ...but under stripping it is invisible (never matched), so the
        // same edit is an ordinary policy-content change.
        let d = diff_configs(&old, &new, true);
        assert!(d.is_incremental(), "{d:?}");
        assert_eq!(d.policy_devices, vec![0]);
    }

    #[test]
    fn acl_binding_edit_is_filter_class() {
        let old = base();
        let mut new = old.clone();
        new.devices[1].interfaces[0].acl_in = Some("NOPE".to_string());
        let d = diff_configs(&old, &new, false);
        assert!(d.is_incremental(), "{d:?}");
        assert_eq!(d.filter_devices, vec![1]);
    }
}
