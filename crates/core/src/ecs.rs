//! Destination equivalence classes (paper §5.1).
//!
//! Configurations route many destinations at once, but announcements for
//! different destinations do not interact, so Bonsai partitions the
//! address space and builds **one abstraction per class** instead of one
//! per address. Two addresses are equivalent when (a) the same nodes
//! originate them into the same protocols and (b) every prefix-based match
//! construct (prefix lists, ACL entries, static routes) treats them alike.
//!
//! The computation inserts every originated prefix and every match prefix
//! into a [`PrefixTrie`]; the trie's atoms are then grouped by their
//! covering-entry signature. Each group becomes one [`DestEc`].

use bonsai_config::{BuiltTopology, NetworkConfig};
use bonsai_net::prefix::Prefix;
use bonsai_net::{NodeId, PrefixTrie};
use bonsai_srp::instance::{EcDest, OriginProto};
use std::collections::HashMap;

/// What a trie entry records about where a prefix came from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum EntryKind {
    /// Originated by a node into a protocol.
    Origin(NodeId, OriginProto),
    /// Mentioned by a match construct (prefix list, ACL, static route).
    Filter,
}

/// One destination equivalence class.
#[derive(Clone, Debug)]
pub struct DestEc {
    /// Representative destination: the most specific originated prefix
    /// covering the class (policies are specialized against this).
    pub rep: Prefix,
    /// Address ranges belonging to the class.
    pub ranges: Vec<Prefix>,
    /// Originating nodes (deduplicated, sorted) with their protocols.
    pub origins: Vec<(NodeId, OriginProto)>,
}

impl DestEc {
    /// The class as the destination description an SRP instance wants,
    /// carrying **every** address range of the class (a filter that carves
    /// sub-ranges out of an originated prefix leaves classes covering
    /// several disjoint ranges; consumers use the first as representative
    /// and assert the others agree).
    pub fn to_ec_dest(&self) -> EcDest {
        if self.ranges.is_empty() {
            return EcDest::new(self.rep, self.origins.clone());
        }
        EcDest::with_ranges(self.rep, self.ranges.clone(), self.origins.clone())
    }
}

/// Computes the destination equivalence classes of a configured network.
///
/// Only classes someone originates are returned (addresses nobody
/// advertises have no control-plane behavior to compress). Classes are
/// sorted by representative prefix for determinism.
pub fn compute_ecs(network: &NetworkConfig, _topo: &BuiltTopology) -> Vec<DestEc> {
    let mut trie: PrefixTrie<EntryKind> = PrefixTrie::new();

    for (i, device) in network.devices.iter().enumerate() {
        let node = NodeId(i as u32);
        if let Some(bgp) = &device.bgp {
            for &p in &bgp.networks {
                trie.insert(p, EntryKind::Origin(node, OriginProto::Bgp));
            }
        }
        if let Some(ospf) = &device.ospf {
            for &p in &ospf.networks {
                trie.insert(p, EntryKind::Origin(node, OriginProto::Ospf));
            }
        }
        for p in device.match_prefixes() {
            trie.insert(p, EntryKind::Filter);
        }
    }

    // Group atoms by their covering signature (the exact set of entries).
    // Key: sorted covering entry ids. Atoms nobody originates are dropped.
    let mut groups: HashMap<Vec<usize>, Vec<Prefix>> = HashMap::new();
    for atom in trie.atoms() {
        let has_origin = atom
            .covering
            .iter()
            .any(|&id| matches!(trie.entry(id).1, EntryKind::Origin(..)));
        if !has_origin {
            continue;
        }
        groups.entry(atom.covering).or_default().push(atom.prefix);
    }

    let mut ecs: Vec<DestEc> = groups
        .into_iter()
        .map(|(covering, mut ranges)| {
            ranges.sort();
            // Representative: most specific *originated* prefix covering
            // the class — the route object policies are evaluated against.
            let rep = covering
                .iter()
                .filter_map(|&id| {
                    let (p, kind) = trie.entry(id);
                    matches!(kind, EntryKind::Origin(..)).then_some(*p)
                })
                .max_by_key(|p| p.len())
                .expect("group has an origin by construction");
            let mut origins: Vec<(NodeId, OriginProto)> = covering
                .iter()
                .filter_map(|&id| {
                    let (p, kind) = trie.entry(id);
                    match kind {
                        // Only the origins of the representative prefix
                        // itself: a covering /8 origination is a *different*
                        // (less specific) route object than the /24 class.
                        EntryKind::Origin(n, proto) if *p == rep => Some((*n, *proto)),
                        _ => None,
                    }
                })
                .collect();
            origins.sort();
            origins.dedup();
            DestEc {
                rep,
                ranges,
                origins,
            }
        })
        .collect();
    ecs.sort_by_key(|ec| (ec.rep, ec.ranges.first().copied()));
    ecs
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_config::parse_network;

    fn build(text: &str) -> (NetworkConfig, BuiltTopology) {
        let net = parse_network(text).unwrap();
        let topo = BuiltTopology::build(&net).unwrap();
        (net, topo)
    }

    #[test]
    fn one_ec_per_originated_prefix() {
        let (net, topo) = build(
            "
device a
interface i
router bgp 1
 network 10.0.1.0/24
 neighbor i remote-as external
end
device b
interface i
router bgp 2
 network 10.0.2.0/24
 neighbor i remote-as external
end
link a i b i
",
        );
        let ecs = compute_ecs(&net, &topo);
        assert_eq!(ecs.len(), 2);
        assert_eq!(ecs[0].rep, "10.0.1.0/24".parse().unwrap());
        assert_eq!(ecs[0].origins, vec![(NodeId(0), OriginProto::Bgp)]);
        assert_eq!(ecs[1].rep, "10.0.2.0/24".parse().unwrap());
        assert_eq!(ecs[1].origins, vec![(NodeId(1), OriginProto::Bgp)]);
    }

    #[test]
    fn filters_fragment_classes() {
        // One originated /16; an ACL carves out a /24 inside it: two ECs
        // with the same origin but different filter signatures.
        let (net, topo) = build(
            "
device a
interface i
 ip access-group BLOCK out
ip access-list BLOCK deny 10.0.5.0/24
ip access-list BLOCK permit any
router bgp 1
 network 10.0.0.0/16
 neighbor i remote-as external
end
device b
interface i
router bgp 2
 neighbor i remote-as external
end
link a i b i
",
        );
        let ecs = compute_ecs(&net, &topo);
        assert_eq!(ecs.len(), 2);
        // Both classes share the representative /16 (the route object) but
        // cover different ranges.
        for ec in &ecs {
            assert_eq!(ec.rep, "10.0.0.0/16".parse().unwrap());
        }
        let carved: Vec<_> = ecs
            .iter()
            .filter(|ec| ec.ranges == vec!["10.0.5.0/24".parse().unwrap()])
            .collect();
        assert_eq!(carved.len(), 1);
    }

    /// Regression: `to_ec_dest` used to keep only the first range of a
    /// class. A carved /16 leaves a class covering several disjoint
    /// leftover ranges — all of them must survive the conversion.
    #[test]
    fn multi_range_class_carries_all_ranges() {
        let (net, topo) = build(
            "
device a
interface i
 ip access-group BLOCK out
ip access-list BLOCK deny 10.0.5.0/24
ip access-list BLOCK permit any
router bgp 1
 network 10.0.0.0/16
 neighbor i remote-as external
end
device b
interface i
router bgp 2
 neighbor i remote-as external
end
link a i b i
",
        );
        let ecs = compute_ecs(&net, &topo);
        let leftover = ecs
            .iter()
            .find(|ec| ec.ranges != vec!["10.0.5.0/24".parse().unwrap()])
            .expect("the non-carved class exists");
        assert!(
            leftover.ranges.len() > 1,
            "carving a /24 out of a /16 leaves multiple ranges: {:?}",
            leftover.ranges
        );
        let dest = leftover.to_ec_dest();
        assert_eq!(dest.ranges, leftover.ranges, "all ranges must be carried");
        assert_eq!(dest.range(), leftover.ranges[0]);
        // Every carried range agrees on the carving ACL — the invariant
        // the signature builder asserts.
        let acl = net.devices[0].acl("BLOCK").unwrap();
        let outcomes: Vec<bool> = dest
            .ranges
            .iter()
            .map(|&r| bonsai_config::eval::acl_permits(acl, r))
            .collect();
        assert!(outcomes.iter().all(|&o| o == outcomes[0]));
    }

    #[test]
    fn anycast_merges_origins() {
        let (net, topo) = build(
            "
device a
interface i
router bgp 1
 network 10.9.9.0/24
 neighbor i remote-as external
end
device b
interface i
router bgp 2
 network 10.9.9.0/24
 neighbor i remote-as external
end
link a i b i
",
        );
        let ecs = compute_ecs(&net, &topo);
        assert_eq!(ecs.len(), 1);
        assert_eq!(
            ecs[0].origins,
            vec![(NodeId(0), OriginProto::Bgp), (NodeId(1), OriginProto::Bgp)]
        );
    }

    #[test]
    fn nested_originations_stay_separate() {
        let (net, topo) = build(
            "
device a
interface i
router bgp 1
 network 10.0.0.0/8
 neighbor i remote-as external
end
device b
interface i
router bgp 2
 network 10.1.0.0/16
 neighbor i remote-as external
end
link a i b i
",
        );
        let ecs = compute_ecs(&net, &topo);
        assert_eq!(ecs.len(), 2);
        // The /16 class is represented by the /16 (owned by b), not the /8.
        let inner = ecs
            .iter()
            .find(|ec| ec.rep == "10.1.0.0/16".parse().unwrap())
            .unwrap();
        assert_eq!(inner.origins, vec![(NodeId(1), OriginProto::Bgp)]);
        let outer = ecs
            .iter()
            .find(|ec| ec.rep == "10.0.0.0/8".parse().unwrap())
            .unwrap();
        assert_eq!(outer.origins, vec![(NodeId(0), OriginProto::Bgp)]);
    }

    #[test]
    fn ospf_and_bgp_origins_recorded() {
        let (net, topo) = build(
            "
device a
interface i
 ip ospf area 0
router ospf
 network 10.3.0.0/24
end
device b
interface i
 ip ospf area 0
router ospf
end
link a i b i
",
        );
        let ecs = compute_ecs(&net, &topo);
        assert_eq!(ecs.len(), 1);
        assert_eq!(ecs[0].origins, vec![(NodeId(0), OriginProto::Ospf)]);
    }

    #[test]
    fn unoriginated_space_is_skipped() {
        let (net, topo) = build(
            "
device a
interface i
ip route 172.16.0.0/12 i
end
device b
interface i
end
link a i b i
",
        );
        // A static route alone originates nothing.
        let ecs = compute_ecs(&net, &topo);
        assert!(ecs.is_empty());
    }
}
