//! The shared policy-compilation engine: one BDD arena and one set of
//! compiled-policy caches for an **entire compression run**, shared across
//! every destination equivalence class.
//!
//! Bonsai compresses once per EC, and on real configurations the EC count
//! dominates wall-clock time. The destination-*independent* part of policy
//! compilation — the community universe, route-map structure, session
//! kinds — is identical for every class, and even the destination-
//! *dependent* part collapses to a small set of cases: a route map's
//! compiled form depends on the destination only through the boolean
//! outcome of each prefix-list match (paper §5.1, "Specialize(bdds, G.d)").
//! [`CompiledPolicies`] therefore caches compiled stages and whole per-edge
//! BGP signatures keyed by those outcomes, so the second EC that resolves a
//! route map the same way reuses the first EC's work — including the
//! canonical [`Ref`]s, because all classes share one arena.
//!
//! Concurrency: the engine is shared immutably (`Arc<CompiledPolicies>`)
//! across EC workers; the arena and caches live behind one internal mutex.
//! Workers hold the lock only while compiling/looking up a signature — on
//! a warm cache that is a hash probe — and run refinement and abstract-
//! network construction fully outside it.
//!
//! Cross-class canonicity is what makes the sharing sound: two [`Ref`]s
//! from the same arena are equal iff the functions are equal, no matter
//! which class compiled them first (witnessed by
//! `tests/shared_engine.rs`).

use crate::policy_bdd::{compile_stage, PolicyCtx, StageOutput};
use crate::signatures::{BgpSig, LpOut, MedOut, SigTable};
use bonsai_bdd::{BddStats, Ref};
use bonsai_config::eval::{acl_permits, prefix_list_permits};
use bonsai_config::{BuiltTopology, Community, DeviceConfig, MatchCond, NetworkConfig};
use bonsai_net::prefix::Prefix;
use bonsai_srp::instance::EcDest;
use bonsai_srp::protocols::bgp::{BgpEdge, BgpProtocol};
use bonsai_srp::protocols::ospf::OspfProtocol;
use bonsai_srp::protocols::static_route::StaticProtocol;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Per-run statistics of the shared engine: arena health plus hit rates of
/// the stage- and signature-level caches. Exposed on
/// [`CompressionReport`](crate::compress::CompressionReport) so benchmarks
/// (Table 1, `BENCH_compress.json`) can report how much cross-EC reuse a
/// run achieved.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Live nodes in the shared arena.
    pub arena_nodes: usize,
    /// Peak node count (no GC yet, so equal to `arena_nodes`).
    pub arena_peak: usize,
    /// Apply-cache probes inside the arena.
    pub apply_lookups: u64,
    /// Apply-cache hits inside the arena.
    pub apply_hits: u64,
    /// Unique-table probes (hash-consing) inside the arena.
    pub unique_lookups: u64,
    /// Unique-table probes answered by an existing node.
    pub unique_hits: u64,
    /// Route-map stage compilations requested.
    pub stage_lookups: u64,
    /// Stage requests answered from the cross-EC stage cache.
    pub stage_hits: u64,
    /// Per-edge BGP signature assemblies requested.
    pub sig_lookups: u64,
    /// Signature requests answered from the cross-EC signature cache.
    pub sig_hits: u64,
    /// Whole signature tables requested (one per EC).
    pub table_lookups: u64,
    /// Tables answered from the cross-EC table cache (the class resolved
    /// every policy exactly like an earlier class).
    pub table_hits: u64,
}

impl EngineStats {
    /// Fraction of arena apply probes answered from the cache.
    pub fn apply_hit_rate(&self) -> f64 {
        ratio(self.apply_hits, self.apply_lookups)
    }

    /// Fraction of stage compilations served from the cache.
    pub fn stage_hit_rate(&self) -> f64 {
        ratio(self.stage_hits, self.stage_lookups)
    }

    /// Fraction of per-edge BGP signatures served from the cache.
    pub fn sig_hit_rate(&self) -> f64 {
        ratio(self.sig_hits, self.sig_lookups)
    }

    /// Fraction of per-EC signature tables served whole from the cache.
    pub fn table_hit_rate(&self) -> f64 {
        ratio(self.table_hits, self.table_lookups)
    }

    /// True if any cache tier (table, signature, stage) recorded a hit —
    /// the "reuse happened" predicate for multi-EC runs.
    pub fn reuse_observed(&self) -> bool {
        self.table_hits > 0 || self.sig_hits > 0 || self.stage_hits > 0
    }

    /// Publishes this snapshot into the `engine.*` registry metrics.
    /// Engine counters are cumulative for the engine's lifetime, so the
    /// registry mirrors them with `set`.
    pub fn publish(&self) {
        bonsai_obs::set("engine.stage.lookups", self.stage_lookups);
        bonsai_obs::set("engine.stage.hits", self.stage_hits);
        bonsai_obs::set("engine.sig.lookups", self.sig_lookups);
        bonsai_obs::set("engine.sig.hits", self.sig_hits);
        bonsai_obs::set("engine.table.lookups", self.table_lookups);
        bonsai_obs::set("engine.table.hits", self.table_hits);
    }
}

fn ratio(hits: u64, lookups: u64) -> f64 {
    if lookups == 0 {
        0.0
    } else {
        hits as f64 / lookups as f64
    }
}

/// The exact destination-dependent resolution of one (device, map) stage:
/// the only channel through which the destination enters
/// [`compile_stage`]. Stored verbatim in every cache key (no lossy
/// fingerprints), so a cache hit is a proof of identical compilation.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) enum StageResolution {
    /// No map configured: pass everything through unchanged.
    Passthrough,
    /// Dangling map reference: deny all (IOS).
    DenyAll,
    /// The ordered outcome of every prefix-list match the map performs
    /// against the destination.
    Outcomes(Vec<bool>),
}

/// Cache key of one compiled route-map stage: `(device, map, exact
/// prefix-list resolution, symbolic input functions)` — `None` inputs mean
/// the identity (community `i` is variable `i`). Inputs are canonical
/// `Ref`s of the shared arena, so raw values are exact identities.
type StageKey = (u32, Option<String>, StageResolution, Option<Vec<u32>>);

/// Cache key of one assembled per-edge BGP signature:
/// `(exporter, importer, export map, import map, ibgp, exact exporter/
/// importer stage resolutions)`. Device indices cover everything else the
/// assembly reads from the devices (defaults, redistribution switches).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct SigKey {
    exporter: u32,
    importer: u32,
    export_map: Option<String>,
    import_map: Option<String>,
    ibgp: bool,
    export_res: StageResolution,
    import_res: StageResolution,
}

/// Destination-independent facts of every directed edge, computed once per
/// run: session kinds, OSPF facts, redistribution switches, ACL names, and
/// the interned `(device, map)` stage pairs the sessions reference.
pub(crate) struct EdgeStatics {
    /// Per edge: the BGP session, if any.
    pub(crate) sessions: Vec<Option<BgpEdge>>,
    /// Per edge: OSPF `(cost, crosses_area)`.
    pub(crate) ospf: Vec<Option<(u32, bool)>>,
    /// Per edge: exporter redistributes static routes into OSPF.
    pub(crate) ospf_redist_static: Vec<bool>,
    /// Distinct `(device index, map name)` stage pairs used by sessions.
    pub(crate) stage_pairs: Vec<(u32, Option<String>)>,
}

impl EdgeStatics {
    fn build(network: &NetworkConfig, topo: &BuiltTopology) -> Self {
        let mut sessions = Vec::with_capacity(topo.graph.edge_count());
        let mut ospf = Vec::with_capacity(topo.graph.edge_count());
        let mut ospf_redist_static = Vec::with_capacity(topo.graph.edge_count());
        let mut pair_ids: HashMap<(u32, Option<String>), u32> = HashMap::new();
        let mut stage_pairs: Vec<(u32, Option<String>)> = Vec::new();
        let mut intern = |pair: (u32, Option<String>)| {
            if let Some(&id) = pair_ids.get(&pair) {
                return id;
            }
            let id = stage_pairs.len() as u32;
            stage_pairs.push(pair.clone());
            pair_ids.insert(pair, id);
            id
        };
        for e in topo.graph.edges() {
            let (u, v) = topo.graph.endpoints(e);
            let session = BgpProtocol::edge_facts(network, topo, e);
            if let Some(s) = &session {
                intern((v.index() as u32, s.export_map.clone()));
                intern((u.index() as u32, s.import_map.clone()));
            }
            sessions.push(session);
            ospf.push(OspfProtocol::edge_facts(network, topo, e).map(|f| (f.cost, f.crosses_area)));
            ospf_redist_static.push(
                network.devices[v.index()]
                    .ospf
                    .as_ref()
                    .map(|o| o.redistribute_static)
                    .unwrap_or(false),
            );
        }
        EdgeStatics {
            sessions,
            ospf,
            ospf_redist_static,
            stage_pairs,
        }
    }
}

/// The exact destination-dependent residue of one class: everything a
/// signature table can observe beyond the static edge facts. Two classes
/// with equal keys provably compile to the identical table, so the cache
/// carries no hash-collision soundness risk (keys compare by value).
#[derive(Clone, PartialEq, Eq, Hash)]
struct TableKey {
    /// Per stage pair: the exact prefix-list resolution for the class's
    /// route object.
    pair_res: Vec<StageResolution>,
    /// Per edge: packed static-route/ACL outcomes for the class's packet
    /// ranges (see `pack_edge_outcome`).
    edge_outcomes: Vec<u8>,
}

/// The canonical per-EC **policy fingerprint**: an interned identity for
/// the exact destination-dependent residue of a class (`TableKey` — the
/// same value the whole-table cache keys by). Two classes carry equal
/// fingerprints **iff** every prefix list, route map, ACL and static route
/// of the network resolves identically for both, i.e. iff they provably
/// compile to the identical signature table.
///
/// This is the cross-EC sharing handle of the network-level failure sweep:
/// refinements derived for one class transfer to another only when the
/// fingerprints agree (plus the quotient-structure checks layered on top in
/// `bonsai_core::scenarios`). Fingerprints are interned per engine — the
/// numeric value is only meaningful within one engine's lifetime, and only
/// equality is — so they are `Copy` and hash-cheap without any
/// hash-collision soundness risk (the intern table compares full keys).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EcFingerprint(u32);

impl EcFingerprint {
    /// The interned id (diagnostics/serialization; engine-scoped).
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// Packed per-edge destination-dependent outcomes: bit 0 static route,
/// bits 1-2 egress ACL (0 none, 1 deny, 2 permit), bits 3-4 ingress ACL.
pub(crate) fn pack_edge_outcome(
    static_route: bool,
    acl_out: Option<bool>,
    acl_in: Option<bool>,
) -> u8 {
    let enc = |o: Option<bool>| match o {
        None => 0u8,
        Some(false) => 1,
        Some(true) => 2,
    };
    static_route as u8 | (enc(acl_out) << 1) | (enc(acl_in) << 3)
}

/// Inverse of [`pack_edge_outcome`]: `(static_route, acl_out, acl_in)`.
pub(crate) fn unpack_edge_outcome(b: u8) -> (bool, Option<bool>, Option<bool>) {
    let dec = |bits: u8| match bits {
        0 => None,
        1 => Some(false),
        _ => Some(true),
    };
    (b & 1 == 1, dec((b >> 1) & 3), dec((b >> 3) & 3))
}

/// One interned policy residue: the class's fingerprint plus, once some
/// class actually built it, the shared signature table. One entry per
/// distinct [`TableKey`] — fingerprint interning and the whole-table
/// cache share the key storage.
struct TableEntry {
    fingerprint: EcFingerprint,
    table: Option<Arc<SigTable>>,
}

/// Mutable engine state, guarded by the engine's mutex.
struct EngineInner {
    /// The compilation kernel: community variables + the shared arena.
    ctx: PolicyCtx,
    /// Cached identity input functions (community `i` is variable `i`).
    identity: Vec<Ref>,
    stage_cache: HashMap<StageKey, u32>,
    stages: Vec<StageOutput>,
    sig_cache: HashMap<SigKey, BgpSig>,
    table_cache: HashMap<TableKey, TableEntry>,
    /// Monotone fingerprint allocator. Never reset — not even by
    /// [`CompiledPolicies::apply_delta`] — so a fingerprint interned
    /// after a delta can never collide with one issued before it.
    next_fingerprint: u32,
    /// Fingerprints below this were issued before the most recent delta;
    /// only entries at or above it may adopt a pre-delta identity
    /// (see [`CompiledPolicies::adopt_fingerprint`]).
    fingerprint_floor: u32,
    stage_lookups: u64,
    stage_hits: u64,
    sig_lookups: u64,
    sig_hits: u64,
    table_lookups: u64,
    table_hits: u64,
}

impl EngineInner {
    /// Interns a table key, assigning the next fingerprint on first sight.
    fn intern(&mut self, key: TableKey) -> &mut TableEntry {
        match self.table_cache.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                let fp = EcFingerprint(self.next_fingerprint);
                self.next_fingerprint += 1;
                v.insert(TableEntry {
                    fingerprint: fp,
                    table: None,
                })
            }
        }
    }
}

/// What [`CompiledPolicies::apply_delta`] flushed: the precise cost of
/// absorbing a policy-content edit into a warm engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaInvalidation {
    /// Compiled route-map stages evicted (stages of the edited devices).
    pub stages_evicted: usize,
    /// Per-edge BGP signatures evicted (edges importing from or exporting
    /// to an edited device).
    pub sigs_evicted: usize,
    /// Whole per-EC signature tables evicted (every table spans all
    /// edges, so any policy-content edit can stale any table).
    pub tables_evicted: usize,
}

/// The destination-independent compiled-policy engine: built **once** per
/// network and shared immutably (behind an `Arc`) across every EC worker
/// of a compression run. See the module docs for the architecture.
///
/// **Contract:** an engine is bound to the network it was built from;
/// every `network`/`topo` passed to its methods must be that network (the
/// caches key device *indices*, not device contents). The one sanctioned
/// rebind is the incremental-delta path: when
/// [`diff_configs`](crate::delta::diff_configs) classifies an edit as
/// non-structural and [`CompiledPolicies::apply_delta`] has flushed the
/// edit's eviction class, the engine may be used against the *new*
/// network — every frozen input (device indexing, edge statics, the
/// community universe) is provably identical across such a delta.
pub struct CompiledPolicies {
    /// Communities modeled as BDD variables, ascending (lock-free copy).
    communities: Vec<Community>,
    index: HashMap<Community, u32>,
    /// Whether the engine was built under the unused-community-stripping
    /// attribute abstraction `h` (§8).
    strip_unused: bool,
    /// Number of devices of the bound network (cheap misuse tripwire).
    device_count: usize,
    /// Destination-independent edge facts, filled on first table build
    /// (outside the mutex: read-mostly).
    statics: OnceLock<EdgeStatics>,
    inner: Mutex<EngineInner>,
}

impl CompiledPolicies {
    /// Scans the network once and prepares the shared arena. `strip_unused`
    /// applies the attribute abstraction `h` that ignores communities which
    /// are attached but never matched (§8).
    pub fn from_network(network: &NetworkConfig, strip_unused: bool) -> Self {
        Self::with_cache_bits(network, strip_unused, bonsai_bdd::DEFAULT_APPLY_CACHE_BITS)
    }

    /// [`CompiledPolicies::from_network`] with an explicit apply-cache size
    /// (`2^bits` entries) for the shared arena.
    pub fn with_cache_bits(network: &NetworkConfig, strip_unused: bool, bits: u32) -> Self {
        let mut ctx = PolicyCtx::with_cache_bits(network, strip_unused, bits);
        let identity = ctx.identity_inputs();
        let communities = ctx.communities.clone();
        let index = communities
            .iter()
            .enumerate()
            .map(|(i, c)| (*c, i as u32))
            .collect();
        CompiledPolicies {
            communities,
            index,
            strip_unused,
            device_count: network.devices.len(),
            statics: OnceLock::new(),
            inner: Mutex::new(EngineInner {
                ctx,
                identity,
                stage_cache: HashMap::new(),
                stages: Vec::new(),
                sig_cache: HashMap::new(),
                table_cache: HashMap::new(),
                next_fingerprint: 0,
                fingerprint_floor: 0,
                stage_lookups: 0,
                stage_hits: 0,
                sig_lookups: 0,
                sig_hits: 0,
                table_lookups: 0,
                table_hits: 0,
            }),
        }
    }

    /// Communities modeled as variables, ascending (no lock taken).
    pub fn communities(&self) -> &[Community] {
        &self.communities
    }

    /// True if the engine was built under the unused-community-stripping
    /// attribute abstraction `h` (its community universe then contains
    /// only *matched* communities).
    pub fn strips_unused_communities(&self) -> bool {
        self.strip_unused
    }

    /// The variable index of a community, if modeled (no lock taken).
    pub fn var_of(&self, c: Community) -> Option<u32> {
        self.index.get(&c).copied()
    }

    /// A snapshot of the engine statistics. Each snapshot also publishes
    /// the `engine.*` (and, via [`bonsai_bdd::Bdd::stats`], the `bdd.*`)
    /// metrics of the process registry ([`bonsai_obs`]).
    pub fn stats(&self) -> EngineStats {
        let inner = self.inner.lock().unwrap();
        let arena: BddStats = inner.ctx.bdd.stats();
        let stats = EngineStats {
            arena_nodes: arena.nodes,
            arena_peak: arena.peak_nodes,
            apply_lookups: arena.apply_lookups,
            apply_hits: arena.apply_hits,
            unique_lookups: arena.unique_lookups,
            unique_hits: arena.unique_hits,
            stage_lookups: inner.stage_lookups,
            stage_hits: inner.stage_hits,
            sig_lookups: inner.sig_lookups,
            sig_hits: inner.sig_hits,
            table_lookups: inner.table_lookups,
            table_hits: inner.table_hits,
        };
        stats.publish();
        stats
    }

    /// Destination-independent edge facts, built on first use.
    pub(crate) fn edge_statics(
        &self,
        network: &NetworkConfig,
        topo: &BuiltTopology,
    ) -> &EdgeStatics {
        debug_assert_eq!(
            network.devices.len(),
            self.device_count,
            "engine used with a network it was not built from"
        );
        self.statics
            .get_or_init(|| EdgeStatics::build(network, topo))
    }

    /// The exact destination-dependent residue of a class — everything a
    /// signature table (and the per-class SRP behavior the failure sweep
    /// compares) can observe beyond the destination-independent statics.
    fn table_key(&self, network: &NetworkConfig, topo: &BuiltTopology, ec: &EcDest) -> TableKey {
        let statics = self.edge_statics(network, topo);

        let pair_res: Vec<StageResolution> = statics
            .stage_pairs
            .iter()
            .map(|(d, m)| stage_resolution(&network.devices[*d as usize], m.as_deref(), ec.prefix))
            .collect();
        let edge_outcomes: Vec<u8> = topo
            .graph
            .edges()
            .map(|e| {
                let (u, v) = topo.graph.endpoints(e);
                let du = &network.devices[u.index()];
                let dv = &network.devices[v.index()];
                let static_route = StaticProtocol::edge_fact(network, topo, e, ec.range());
                debug_assert!(
                    ec.ranges
                        .iter()
                        .all(|&r| StaticProtocol::edge_fact(network, topo, e, r) == static_route),
                    "EC ranges disagree on a static route — class computation is broken"
                );
                let acl_out = du.interfaces[topo.egress(e)]
                    .acl_out
                    .as_deref()
                    .map(|name| acl_outcome(du, name, ec));
                let acl_in = dv.interfaces[topo.ingress(e)]
                    .acl_in
                    .as_deref()
                    .map(|name| acl_outcome(dv, name, ec));
                pack_edge_outcome(static_route, acl_out, acl_in)
            })
            .collect();
        TableKey {
            pair_res,
            edge_outcomes,
        }
    }

    /// The canonical policy fingerprint of one destination class: the
    /// interned identity of its `TableKey`. See [`EcFingerprint`] for
    /// the equality contract and what it licenses.
    pub fn ec_fingerprint(
        &self,
        network: &NetworkConfig,
        topo: &BuiltTopology,
        ec: &EcDest,
    ) -> EcFingerprint {
        let key = self.table_key(network, topo, ec);
        self.inner.lock().unwrap().intern(key).fingerprint
    }

    /// Absorbs a non-structural config delta into the warm engine by
    /// evicting exactly the cache entries a policy-content edit can
    /// stale. `changed_policy_devices` is the eviction class of
    /// [`diff_configs`](crate::delta::diff_configs) (devices whose
    /// route-map or community-list *content* changed — the objects cache
    /// keys name but do not capture):
    ///
    /// * **stages** compiled for an edited device are dropped. Import
    ///   stages of *unchanged* devices stay: their keys carry the exact
    ///   input `Ref`s the (now re-evicted) export stage produced, so a
    ///   stale composition is unreachable — either the recompiled export
    ///   stage yields the same canonical functions (hit is sound) or
    ///   different ones (key misses).
    /// * **per-edge signatures** with an edited device as importer or
    ///   exporter are dropped.
    /// * **all per-EC tables** are dropped: a table spans every edge, so
    ///   any policy edit can stale any table. Rebuilds are warm — every
    ///   edge not touching an edited device re-hits the signature tier.
    ///
    /// When the eviction class is empty (a purely key-visible edit:
    /// prefix lists, ACLs, static routes, bindings, originations) nothing
    /// is evicted — the keys themselves rout stale entries.
    ///
    /// Either way, the call opens a new fingerprint epoch: freshly
    /// interned table keys may subsequently re-adopt a pre-delta identity
    /// through [`CompiledPolicies::adopt_fingerprint`].
    pub fn apply_delta(&self, changed_policy_devices: &[u32]) -> DeltaInvalidation {
        let mut inner = self.inner.lock().unwrap();
        inner.fingerprint_floor = inner.next_fingerprint;
        if changed_policy_devices.is_empty() {
            return DeltaInvalidation::default();
        }
        let changed: std::collections::HashSet<u32> =
            changed_policy_devices.iter().copied().collect();
        let stages_before = inner.stage_cache.len();
        inner.stage_cache.retain(|key, _| !changed.contains(&key.0));
        let sigs_before = inner.sig_cache.len();
        inner
            .sig_cache
            .retain(|key, _| !changed.contains(&key.exporter) && !changed.contains(&key.importer));
        let tables_evicted = inner.table_cache.len();
        inner.table_cache.clear();
        DeltaInvalidation {
            stages_evicted: stages_before - inner.stage_cache.len(),
            sigs_evicted: sigs_before - inner.sig_cache.len(),
            tables_evicted,
        }
    }

    /// Re-binds the class's post-delta table entry to its pre-delta
    /// fingerprint. The delta driver calls this only after proving the
    /// rebuilt table equals the table `fp` identified before the delta
    /// (semantic equality: `Ref`s are canonical within this engine's
    /// arena), which is exactly the license [`EcFingerprint`] equality
    /// grants — so sweep state keyed under `fp` stays valid.
    ///
    /// First adoption wins: an entry already carrying a pre-epoch
    /// fingerprint keeps it (two classes that converge on one key after
    /// an edit were proven equal to *equal* tables, so either identity
    /// licenses the same sharing). Returns the entry's fingerprint after
    /// the call.
    pub fn adopt_fingerprint(
        &self,
        network: &NetworkConfig,
        topo: &BuiltTopology,
        ec: &EcDest,
        fp: EcFingerprint,
    ) -> EcFingerprint {
        let key = self.table_key(network, topo, ec);
        let mut inner = self.inner.lock().unwrap();
        let floor = inner.fingerprint_floor;
        let entry = inner.intern(key);
        if entry.fingerprint.0 >= floor {
            entry.fingerprint = fp;
        }
        entry.fingerprint
    }

    /// Builds (or recalls, whole) the signature table of one destination
    /// class. The cache key is the class's *exact* destination-dependent
    /// residue — prefix-list outcome fingerprints per referenced route-map
    /// stage, plus per-edge ACL/static outcomes — so two classes share a
    /// table iff they provably compile identically.
    pub fn sig_table(
        &self,
        network: &NetworkConfig,
        topo: &BuiltTopology,
        ec: &EcDest,
    ) -> Arc<SigTable> {
        let statics = self.edge_statics(network, topo);
        let key = self.table_key(network, topo, ec);

        {
            let mut inner = self.inner.lock().unwrap();
            inner.table_lookups += 1;
            if let Some(table) = inner.table_cache.get(&key).and_then(|e| e.table.clone()) {
                inner.table_hits += 1;
                return table;
            }
        }
        // Build outside the engine lock (the per-edge signature path
        // re-acquires it); a racing duplicate build is harmless — the
        // first insert wins. (The entry itself may already exist with no
        // table when only the fingerprint was interned so far.)
        let table = Arc::new(crate::signatures::build_table_data(
            self,
            network,
            topo,
            ec.prefix,
            statics,
            &key.edge_outcomes,
        ));
        let mut inner = self.inner.lock().unwrap();
        Arc::clone(inner.intern(key).table.get_or_insert(table))
    }

    /// Evaluates a compiled function under a community assignment (indexed
    /// like [`CompiledPolicies::communities`]). Test/diagnostic helper.
    pub fn eval(&self, f: Ref, assignment: &[bool]) -> bool {
        self.inner.lock().unwrap().ctx.bdd.eval(f, assignment)
    }

    /// Runs a closure against the locked compilation kernel. Escape hatch
    /// for tests and tools that need raw arena access; production callers
    /// go through [`CompiledPolicies::bgp_edge_sig`].
    pub fn with_ctx<R>(&self, f: impl FnOnce(&mut PolicyCtx) -> R) -> R {
        f(&mut self.inner.lock().unwrap().ctx)
    }

    /// Compiles (or recalls) the full BGP signature of one directed edge —
    /// exporter stage composed with importer stage, local-preference / MED
    /// / prepend case analysis, drop masking — for destination `dest`.
    ///
    /// `importer`/`exporter` are device indices (`u`/`v` of the edge
    /// `u ← v` in signature-table orientation: `u` imports what `v`
    /// exports).
    pub fn bgp_edge_sig(
        &self,
        network: &NetworkConfig,
        dest: Prefix,
        importer: usize,
        exporter: usize,
        session: &BgpEdge,
    ) -> BgpSig {
        let du = &network.devices[importer];
        let dv = &network.devices[exporter];
        let key = SigKey {
            exporter: exporter as u32,
            importer: importer as u32,
            export_map: session.export_map.clone(),
            import_map: session.import_map.clone(),
            ibgp: session.ibgp,
            export_res: stage_resolution(dv, session.export_map.as_deref(), dest),
            import_res: stage_resolution(du, session.import_map.as_deref(), dest),
        };

        let mut inner = self.inner.lock().unwrap();
        inner.sig_lookups += 1;
        if let Some(sig) = inner.sig_cache.get(&key).cloned() {
            inner.sig_hits += 1;
            return sig;
        }
        let sig = assemble_bgp_sig(&mut inner, network, dest, importer, exporter, session);
        inner.sig_cache.insert(key, sig.clone());
        sig
    }
}

/// ACL outcome toward the class: evaluated on the representative range,
/// with a debug check that every range of the class agrees (that is the
/// defining property of a destination equivalence class — see
/// `crate::ecs`).
fn acl_outcome(device: &DeviceConfig, name: &str, ec: &EcDest) -> bool {
    let permits = device
        .acl(name)
        .map(|a| acl_permits(a, ec.range()))
        .unwrap_or(false);
    debug_assert!(
        ec.ranges
            .iter()
            .all(|&r| device.acl(name).map(|a| acl_permits(a, r)).unwrap_or(false) == permits),
        "EC ranges disagree on ACL {name} — class computation is broken"
    );
    permits
}

/// The exact prefix-list resolution a (device, map) pair observes for
/// `dest`: the full destination-dependent input of [`compile_stage`]. Two
/// destinations with equal resolutions provably compile the map to the
/// identical stage (given identical symbolic inputs).
fn stage_resolution(device: &DeviceConfig, map: Option<&str>, dest: Prefix) -> StageResolution {
    let Some(name) = map else {
        return StageResolution::Passthrough;
    };
    let Some(map) = device.route_map(name) else {
        return StageResolution::DenyAll;
    };
    let mut outcomes = Vec::new();
    for clause in &map.clauses {
        for m in &clause.matches {
            if let MatchCond::PrefixList(list) = m {
                outcomes.push(
                    device
                        .prefix_list(list)
                        .map(|pl| prefix_list_permits(pl, dest))
                        .unwrap_or(false),
                );
            }
        }
    }
    StageResolution::Outcomes(outcomes)
}

/// Compiles a route-map stage through the cross-EC stage cache. `inputs`
/// of `None` means the cached identity inputs.
fn cached_stage(
    inner: &mut EngineInner,
    network: &NetworkConfig,
    dest: Prefix,
    device_idx: usize,
    map: Option<&str>,
    inputs: Option<&[Ref]>,
) -> u32 {
    let device = &network.devices[device_idx];
    let key: StageKey = (
        device_idx as u32,
        map.map(str::to_string),
        stage_resolution(device, map, dest),
        inputs.map(|refs| refs.iter().map(|r| r.raw()).collect()),
    );
    inner.stage_lookups += 1;
    if let Some(&i) = inner.stage_cache.get(&key) {
        inner.stage_hits += 1;
        return i;
    }
    let owned_inputs: Vec<Ref> = match inputs {
        None => inner.identity.clone(),
        Some(refs) => refs.to_vec(),
    };
    let out = compile_stage(&mut inner.ctx, device, map, dest, &owned_inputs);
    inner.stages.push(out);
    let id = (inner.stages.len() - 1) as u32;
    inner.stage_cache.insert(key, id);
    id
}

/// The signature assembly formerly inlined in `build_sig_table`: composes
/// the exporter and importer stages and derives the canonical case lists.
fn assemble_bgp_sig(
    inner: &mut EngineInner,
    network: &NetworkConfig,
    dest: Prefix,
    importer: usize,
    exporter: usize,
    session: &BgpEdge,
) -> BgpSig {
    let export_idx = cached_stage(
        inner,
        network,
        dest,
        exporter,
        session.export_map.as_deref(),
        None,
    );
    // The import stage's inputs are the export stage's outputs.
    let export_comm = inner.stages[export_idx as usize].comm.clone();
    let export_drop = inner.stages[export_idx as usize].drop;
    let export_med = inner.stages[export_idx as usize].med.clone();
    let export_prepend = inner.stages[export_idx as usize].prepend.clone();
    let import_idx = cached_stage(
        inner,
        network,
        dest,
        importer,
        session.import_map.as_deref(),
        Some(&export_comm),
    );
    let import = inner.stages[import_idx as usize].clone();

    let ctx = &mut inner.ctx;
    let drop = ctx.bdd.or(export_drop, import.drop);
    let keep = ctx.bdd.not(drop);
    let comm: Vec<Ref> = import.comm.iter().map(|&c| ctx.bdd.and(c, keep)).collect();

    // Local preference cases: explicit sets, then the default.
    let du = &network.devices[importer];
    let bgp_u = du.bgp.as_ref().expect("session implies bgp at importer");
    let mut lp: Vec<(LpOut, Ref)> = Vec::new();
    let mut explicit = Ref::FALSE;
    for &(value, cond) in &import.lp {
        let c = ctx.bdd.and(cond, keep);
        if c != Ref::FALSE {
            lp.push((LpOut::Const(value), c));
            explicit = ctx.bdd.or(explicit, c);
        }
    }
    let not_explicit = ctx.bdd.not(explicit);
    let default_cond = ctx.bdd.and(keep, not_explicit);
    if default_cond != Ref::FALSE {
        let out = if session.ibgp {
            LpOut::Inherit
        } else {
            LpOut::Const(bgp_u.default_local_pref)
        };
        lp.push((out, default_cond));
    }
    lp = merge_cases(ctx, lp);

    // MED: import overrides export overrides default.
    let mut med: Vec<(MedOut, Ref)> = Vec::new();
    let mut covered = Ref::FALSE;
    for &(value, cond) in &import.med {
        let c = ctx.bdd.and(cond, keep);
        if c != Ref::FALSE {
            med.push((MedOut::Const(value), c));
            covered = ctx.bdd.or(covered, c);
        }
    }
    for &(value, cond) in &export_med {
        let not_covered = ctx.bdd.not(covered);
        let c = ctx.bdd.and_all([cond, keep, not_covered]);
        if c != Ref::FALSE {
            med.push((MedOut::Const(value), c));
            covered = ctx.bdd.or(covered, c);
        }
    }
    let not_covered = ctx.bdd.not(covered);
    let default_cond = ctx.bdd.and(keep, not_covered);
    if default_cond != Ref::FALSE {
        let out = if session.ibgp {
            MedOut::Inherit
        } else {
            MedOut::Const(0)
        };
        med.push((out, default_cond));
    }
    med = merge_cases(ctx, med);

    // Prepend: the exporter's outbound map only (mirrors the interpreter
    // in bonsai-srp).
    let mut prepend: Vec<(u8, Ref)> = Vec::new();
    for &(n, cond) in &export_prepend {
        let c = ctx.bdd.and(cond, keep);
        if c != Ref::FALSE {
            prepend.push((n, c));
        }
    }
    prepend = merge_cases(ctx, prepend);

    let dv = &network.devices[exporter];
    let bgp_v = dv.bgp.as_ref().expect("session implies bgp at exporter");
    BgpSig {
        ibgp: session.ibgp,
        drop,
        comm,
        lp,
        med,
        prepend,
        redist_static: bgp_v.redistribute_static,
        redist_ospf: bgp_v.redistribute_ospf,
        exporter_default_lp: bgp_v.default_local_pref,
    }
}

/// Merges duplicate case keys (OR-ing their conditions) and sorts by key,
/// producing the canonical case list.
fn merge_cases<K: Copy + Ord + std::hash::Hash>(
    ctx: &mut PolicyCtx,
    cases: Vec<(K, Ref)>,
) -> Vec<(K, Ref)> {
    let mut map: std::collections::BTreeMap<K, Ref> = std::collections::BTreeMap::new();
    for (k, c) in cases {
        let slot = map.entry(k).or_insert(Ref::FALSE);
        *slot = ctx.bdd.or(*slot, c);
    }
    map.into_iter().filter(|(_, c)| *c != Ref::FALSE).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_config::parse_network;
    use bonsai_srp::protocols::bgp::BgpProtocol;

    fn two_dest_net() -> NetworkConfig {
        parse_network(
            "
device a
interface i
ip community-list tagged permit 7:1
route-map IN permit 10
 match community tagged
 set local-preference 200
route-map IN permit 20
router bgp 1
 network 10.0.1.0/24
 neighbor i remote-as external
 neighbor i route-map IN in
end
device b
interface i
router bgp 2
 network 10.0.2.0/24
 neighbor i remote-as external
end
link a i b i
",
        )
        .unwrap()
    }

    #[test]
    fn sig_cache_shares_across_destinations() {
        let net = two_dest_net();
        let topo = bonsai_config::BuiltTopology::build(&net).unwrap();
        let engine = CompiledPolicies::from_network(&net, false);
        let e = topo.graph.edges().next().unwrap();
        let (u, v) = topo.graph.endpoints(e);
        let session = BgpProtocol::edge_facts(&net, &topo, e).unwrap();

        // Two destinations with identical prefix-list outcomes (no prefix
        // lists at all here) must share one cached signature.
        let d1: Prefix = "10.0.1.0/24".parse().unwrap();
        let d2: Prefix = "10.0.2.0/24".parse().unwrap();
        let s1 = engine.bgp_edge_sig(&net, d1, u.index(), v.index(), &session);
        let s2 = engine.bgp_edge_sig(&net, d2, u.index(), v.index(), &session);
        assert_eq!(s1, s2, "identical plist outcomes must share Refs");
        let stats = engine.stats();
        assert_eq!(stats.sig_lookups, 2);
        assert_eq!(stats.sig_hits, 1, "second class must hit: {stats:?}");
    }

    #[test]
    fn stage_resolution_distinguishes_outcomes() {
        let net = parse_network(
            "
device r
interface i
ip prefix-list TEN seq 5 permit 10.0.0.0/8 le 32
route-map M deny 10
 match ip address prefix-list TEN
route-map M permit 20
router bgp 1
 neighbor i remote-as external
end
device s
interface i
router bgp 2
 network 10.0.0.0/24
 neighbor i remote-as external
end
link r i s i
",
        )
        .unwrap();
        let r = &net.devices[0];
        let inside: Prefix = "10.1.0.0/24".parse().unwrap();
        let outside: Prefix = "192.168.0.0/24".parse().unwrap();
        let also_inside: Prefix = "10.2.0.0/24".parse().unwrap();
        assert_ne!(
            stage_resolution(r, Some("M"), inside),
            stage_resolution(r, Some("M"), outside)
        );
        assert_eq!(
            stage_resolution(r, Some("M"), inside),
            stage_resolution(r, Some("M"), also_inside)
        );
        assert_eq!(
            stage_resolution(r, Some("M"), inside),
            StageResolution::Outcomes(vec![true])
        );
        // Absent and dangling maps resolve destination-independently.
        assert_eq!(
            stage_resolution(r, None, inside),
            StageResolution::Passthrough
        );
        assert_eq!(
            stage_resolution(r, Some("NOPE"), inside),
            StageResolution::DenyAll
        );
    }

    /// Fingerprints intern the exact table key: destinations that resolve
    /// every policy alike share one fingerprint; an ACL that treats them
    /// differently splits it.
    #[test]
    fn fingerprints_intern_by_exact_table_key() {
        use bonsai_net::NodeId;
        use bonsai_srp::instance::{EcDest, OriginProto};

        let net = two_dest_net();
        let topo = bonsai_config::BuiltTopology::build(&net).unwrap();
        let engine = CompiledPolicies::from_network(&net, false);
        let a = topo.graph.node_by_name("a").unwrap();
        let ec = |p: &str, n: NodeId| EcDest::new(p.parse().unwrap(), vec![(n, OriginProto::Bgp)]);
        let f1 = engine.ec_fingerprint(&net, &topo, &ec("10.0.1.0/24", a));
        let f2 = engine.ec_fingerprint(&net, &topo, &ec("10.0.2.0/24", a));
        assert_eq!(f1, f2, "no prefix lists/ACLs: one compiled residue");

        let acl_net = parse_network(
            "
device a
interface i
 ip access-group BLOCK out
ip access-list BLOCK deny 10.0.5.0/24
ip access-list BLOCK permit any
router bgp 1
 network 10.0.0.0/16
 neighbor i remote-as external
end
device b
interface i
router bgp 2
 neighbor i remote-as external
end
link a i b i
",
        )
        .unwrap();
        let topo = bonsai_config::BuiltTopology::build(&acl_net).unwrap();
        let engine = CompiledPolicies::from_network(&acl_net, false);
        let a = topo.graph.node_by_name("a").unwrap();
        let blocked = engine.ec_fingerprint(&acl_net, &topo, &ec("10.0.5.0/24", a));
        let passed = engine.ec_fingerprint(&acl_net, &topo, &ec("10.0.6.0/24", a));
        assert_ne!(blocked, passed, "the ACL splits the table keys");
        // Interning is stable: asking again returns the same id.
        assert_eq!(
            blocked,
            engine.ec_fingerprint(&acl_net, &topo, &ec("10.0.5.0/24", a))
        );
    }

    #[test]
    fn engine_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompiledPolicies>();
    }
}
