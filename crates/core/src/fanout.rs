//! The shared lock-free fan-out driver.
//!
//! Both the compression driver (classes over workers, PR 2) and the
//! failure-scenario sweep engine (scenarios over workers) have the same
//! parallel shape: `n` independent work items, claimed from one atomic
//! counter, processed by workers that keep **worker-local** state (result
//! vectors, refinement caches) and are merged only after the scope joins.
//! No per-slot locks, no channels; the only shared mutable state is the
//! atomic index (and whatever the work closure itself synchronizes on,
//! e.g. the BDD arena lock inside the shared engine).
//!
//! `threads <= 1` runs the identical worker loop inline, so a
//! single-threaded run is byte-for-byte the parallel run with one worker —
//! the determinism tests of both subsystems rest on that.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `work` over the item indices `0..n` with `threads` workers pulling
/// from one atomic counter.
///
/// Each worker owns a state value produced by `init` (a cache, scratch
/// buffers, …) that `work` may mutate freely without synchronization.
/// Returns the per-item results ordered by item index, plus every
/// worker-local state for the caller to merge.
///
/// Panics in `work` propagate (workers run under [`std::thread::scope`]).
pub fn fan_out<R, S>(
    n: usize,
    threads: usize,
    init: impl Fn() -> S + Sync,
    work: impl Fn(&mut S, usize) -> R + Sync,
) -> (Vec<R>, Vec<S>)
where
    R: Send,
    S: Send,
{
    fan_out_ranges(n, 1, threads, init, |state, range| work(state, range.start))
}

/// The chunked generalization of [`fan_out`]: workers claim contiguous
/// ranges of `chunk` indices (the last range may be shorter) from one
/// atomic counter, over an **implicit** index space `0..n` — nothing about
/// the items is materialized here, so `n` may be astronomically larger
/// than memory as long as `work` streams its range.
///
/// Returns the per-chunk results ordered by range start (so concatenating
/// them visits items in index order), plus every worker-local state.
/// `threads <= 1` runs the identical claim loop inline — a
/// single-threaded run is byte-for-byte the parallel run with one worker.
pub fn fan_out_ranges<R, S>(
    n: usize,
    chunk: usize,
    threads: usize,
    init: impl Fn() -> S + Sync,
    work: impl Fn(&mut S, std::ops::Range<usize>) -> R + Sync,
) -> (Vec<R>, Vec<S>)
where
    R: Send,
    S: Send,
{
    let chunk = chunk.max(1);
    let next = AtomicUsize::new(0);
    let worker = || {
        let mut state = init();
        let mut out: Vec<(usize, R)> = Vec::new();
        loop {
            let start = next.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            bonsai_obs::add("fanout.ranges.claimed", 1);
            let range = start..(start.saturating_add(chunk)).min(n);
            out.push((start, work(&mut state, range)));
        }
        (out, state)
    };

    let (mut indexed, states): (Vec<(usize, R)>, Vec<S>) = if threads <= 1 {
        let (out, state) = worker();
        (out, vec![state])
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads).map(|_| scope.spawn(worker)).collect();
            let mut all = Vec::new();
            let mut states = Vec::new();
            for h in handles {
                let (out, state) = h.join().expect("fan-out worker panicked");
                all.extend(out);
                states.push(state);
            }
            (all, states)
        })
    };
    indexed.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(indexed.len(), n.div_ceil(chunk), "every range claimed once");
    (indexed.into_iter().map(|(_, r)| r).collect(), states)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        for threads in [1, 2, 4, 8] {
            let (results, states) = fan_out(
                100,
                threads,
                || 0usize,
                |count, i| {
                    *count += 1;
                    i * 2
                },
            );
            assert_eq!(results, (0..100).map(|i| i * 2).collect::<Vec<_>>());
            assert_eq!(states.len(), threads.max(1));
            // Every item was claimed by exactly one worker.
            assert_eq!(states.iter().sum::<usize>(), 100);
        }
    }

    #[test]
    fn empty_input_returns_one_state_per_worker() {
        let (results, states) = fan_out(0, 4, || (), |_, i| i);
        assert!(results.is_empty());
        assert_eq!(states.len(), 4);
    }

    #[test]
    fn ranges_cover_the_index_space_in_order() {
        for threads in [1, 2, 4] {
            for chunk in [1, 3, 7, 64, 1000] {
                let (ranges, _) = fan_out_ranges(100, chunk, threads, || (), |_, r| r);
                // Concatenated ranges are exactly 0..100 in order.
                let flat: Vec<usize> = ranges.iter().cloned().flatten().collect();
                assert_eq!(flat, (0..100).collect::<Vec<_>>(), "chunk={chunk}");
                assert!(ranges.iter().all(|r| r.len() <= chunk));
            }
        }
    }

    #[test]
    fn chunked_and_per_item_fan_outs_agree() {
        let (per_item, _) = fan_out(50, 2, || (), |_, i| i * i);
        for chunk in [1, 4, 50] {
            let (chunks, _) = fan_out_ranges(
                50,
                chunk,
                2,
                || (),
                |_, r| r.map(|i| i * i).collect::<Vec<_>>(),
            );
            let flat: Vec<usize> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, per_item, "chunk={chunk}");
        }
    }

    #[test]
    fn zero_chunk_is_clamped_to_one() {
        let (ranges, _) = fan_out_ranges(5, 0, 1, || (), |_, r| r);
        assert_eq!(ranges.len(), 5);
    }

    #[test]
    fn worker_local_state_accumulates_without_locks() {
        let (_, states) = fan_out(50, 3, Vec::new, |seen: &mut Vec<usize>, i| {
            seen.push(i);
        });
        let mut all: Vec<usize> = states.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
    }
}
