//! # bonsai-core
//!
//! The primary contribution of *Control Plane Compression* (Beckett, Gupta,
//! Mahajan, Walker — SIGCOMM 2018): an algorithm that compresses a large
//! network into a smaller one with **equivalent control-plane behavior**
//! (a bisimulation on stable routing solutions), so that any analysis —
//! simulation, emulation or verification — can run on the small network
//! instead.
//!
//! Pipeline (paper §5):
//!
//! 1. [`ecs`] — partition the address space into destination equivalence
//!    classes; one abstraction is built per class.
//! 2. [`policy_bdd`] / [`signatures`] — compile every interface policy to
//!    a canonical BDD signature, making transfer-function equality O(1).
//! 3. [`algorithm`] — abstraction refinement (Algorithm 1): split abstract
//!    nodes until the partition satisfies the effective-abstraction
//!    conditions; bound BGP loop-prevention behaviors by `|prefs|` and
//!    split abstract nodes into that many copies.
//! 4. [`abstraction`] — materialize each class's abstract network as
//!    vendor-independent configurations.
//! 5. [`conditions`] — independently check the effective-abstraction
//!    conditions of Figure 4 (test oracle / user sanity API).
//! 6. [`mod@compress`] — the driver: everything above, in parallel across
//!    classes, with the timing breakdown reported in Table 1.
//! 7. [`roles`] — the §8 role analysis (unique transfer functions per
//!    device, with the unused-community-stripping `h`).
//!
//! ```
//! use bonsai_core::compress::{compress, CompressOptions};
//!
//! let net = bonsai_srp::papernets::figure2_gadget();
//! let report = compress(&net, CompressOptions::default());
//! assert_eq!(report.num_ecs(), 1);
//! // 5 concrete nodes compress to 4 abstract ones (Figure 3(c)).
//! assert_eq!(report.mean_abstract_nodes(), 4.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abstraction;
pub mod algorithm;
pub mod compress;
pub mod conditions;
pub mod ecs;
pub mod policy_bdd;
pub mod roles;
pub mod signatures;

pub use abstraction::{build_abstract_network, AbstractNetwork};
pub use algorithm::{find_abstraction, Abstraction};
pub use compress::{compress, compress_ec, CompressOptions, CompressionReport, EcCompression};
pub use conditions::{check_effective, Violation};
pub use ecs::{compute_ecs, DestEc};
pub use roles::{count_roles, role_assignment, RoleOptions};
