//! # bonsai-core
//!
//! The primary contribution of *Control Plane Compression* (Beckett, Gupta,
//! Mahajan, Walker — SIGCOMM 2018): an algorithm that compresses a large
//! network into a smaller one with **equivalent control-plane behavior**
//! (a bisimulation on stable routing solutions), so that any analysis —
//! simulation, emulation or verification — can run on the small network
//! instead.
//!
//! Pipeline (paper §5), on the shared-engine architecture:
//!
//! 1. [`ecs`] — partition the address space into destination equivalence
//!    classes; one abstraction is built per class.
//! 2. [`engine`] — build **one** [`engine::CompiledPolicies`] per network:
//!    the community-variable model, a single BDD arena, and cross-class
//!    caches of compiled route-map stages and per-edge BGP signatures.
//!    Classes share everything destination-independent, and everything
//!    destination-dependent that resolves the same way.
//! 3. [`policy_bdd`] / [`signatures`] — the compilation kernel and the
//!    per-class signature tables built through the engine; canonical BDD
//!    `Ref`s make transfer-function equality O(1).
//! 4. [`algorithm`] — abstraction refinement (Algorithm 1): split abstract
//!    nodes until the partition satisfies the effective-abstraction
//!    conditions; bound BGP loop-prevention behaviors by `|prefs|` and
//!    split abstract nodes into that many copies.
//! 5. [`abstraction`] — materialize each class's abstract network as
//!    vendor-independent configurations.
//! 6. [`conditions`] — independently check the effective-abstraction
//!    conditions of Figure 4 (test oracle / user sanity API).
//! 7. [`mod@compress`] — the driver: classes fanned over scoped workers
//!    against the shared engine, collected lock-free, with the timing and
//!    engine-statistics breakdown reported in Table 1; plus the
//!    counterexample-guided [`compress::refine_ec_with_split`] step the
//!    failure auditor uses to repair an abstraction.
//! 8. [`roles`] — the §8 role analysis (unique transfer functions per
//!    device, with the unused-community-stripping `h`).
//! 9. [`scenarios`] — bounded link-failure scenario enumeration with
//!    symmetry pruning over the abstraction's link orbits (the input to
//!    `bonsai-verify`'s k-failure soundness audit), plus the orbit
//!    *signatures* the per-scenario sweep engine caches refinements by.
//! 10. [`fanout`] — the shared lock-free atomic-index fan-out driver that
//!     both the compression driver and the failure-scenario sweep pull
//!     work items from.
//! 11. [`snapshot`] — the minimal JSON reader/writer and the one
//!     versioned snapshot envelope shared by the bench, CLI, and daemon
//!     serializers.
//!
//! ```
//! use bonsai_core::compress::{compress, CompressOptions};
//!
//! let net = bonsai_srp::papernets::figure2_gadget();
//! let report = compress(&net, CompressOptions::default());
//! assert_eq!(report.num_ecs(), 1);
//! // 5 concrete nodes compress to 4 abstract ones (Figure 3(c)).
//! assert_eq!(report.mean_abstract_nodes(), 4.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abstraction;
pub mod algorithm;
pub mod compress;
pub mod conditions;
pub mod delta;
pub mod ecs;
pub mod engine;
pub mod fanout;
pub mod policy_bdd;
pub mod roles;
pub mod scenarios;
pub mod signatures;
pub mod snapshot;

pub use abstraction::{build_abstract_network, AbstractNetwork};
pub use algorithm::{find_abstraction, find_abstraction_from, refine_with_split, Abstraction};
pub use compress::{
    build_engine, compress, compress_ec, recompress_delta, CompressOptions, CompressionReport,
    DeltaReport, EcCompression,
};
pub use conditions::{check_effective, Violation};
pub use delta::{diff_configs, ConfigDelta};
pub use ecs::{compute_ecs, DestEc};
pub use engine::{CompiledPolicies, DeltaInvalidation, EngineStats};
pub use fanout::{fan_out, fan_out_ranges};
pub use roles::{count_roles, role_assignment, RoleOptions};
pub use scenarios::{
    enumerate_scenarios_pruned, link_orbits, FailureScenario, LinkOrbits, OrbitSignature,
    ScenarioStream,
};
