//! Compiling interface policies to canonical BDD signatures (paper §5.1,
//! Figure 10).
//!
//! For one destination equivalence class, the transfer function along an
//! edge is a function of the incoming advertisement's *communities* only —
//! the destination prefix is fixed, so every prefix-list and ACL match
//! collapses to a constant ("Specialize(bdds, G.d)"). We therefore encode
//! each edge's policy as a set of BDDs over one boolean variable per
//! community:
//!
//! * a **drop** predicate — inputs for which the route is discarded,
//! * per community, an **output function** — whether the community is
//!   attached after the edge,
//! * **case partitions** for local preference, MED and AS-path prepending —
//!   disjoint input conditions mapped to the resulting value.
//!
//! Because the BDD arena hash-conses, two policies are semantically
//! equivalent iff their signatures contain identical [`Ref`]s, making the
//! equality test inside abstraction refinement O(size of signature) with
//! O(1) per component — the paper's central engineering trick.
//!
//! **Lifecycle.** [`PolicyCtx`] is the single-threaded *compilation
//! kernel*: a community-variable model plus an owned arena. Production
//! compression does **not** build one per EC any more — a
//! [`CompiledPolicies`](crate::engine::CompiledPolicies) engine wraps one
//! `PolicyCtx` behind a lock and shares it (with cross-EC stage and
//! signature caches) across every class of a run. Construct a `PolicyCtx`
//! directly only for single-shot compilation: unit tests, the
//! differential interpreter tests, and one-off tooling.
//!
//! The compilation walks the exact same IOS first-match semantics as the
//! interpreter in [`bonsai_config::eval`]; the two are kept in lockstep by
//! differential property tests (`tests/policy_vs_interpreter.rs`).

use bonsai_bdd::{Bdd, Ref};
use bonsai_config::eval::prefix_list_permits;
use bonsai_config::{Action, Community, DeviceConfig, MatchCond, NetworkConfig, SetAction};
use bonsai_net::prefix::Prefix;
use std::collections::{BTreeSet, HashMap};

/// The community-variable compilation kernel: variable `i` of the arena
/// encodes presence of `communities[i]` on the incoming advertisement.
/// One instance backs a whole compression run (inside
/// [`CompiledPolicies`](crate::engine::CompiledPolicies)); standalone
/// instances are for tests and single-shot compilation.
pub struct PolicyCtx {
    /// The shared BDD arena.
    pub bdd: Bdd,
    /// Communities modeled as variables, ascending.
    pub communities: Vec<Community>,
    index: HashMap<Community, u32>,
}

impl PolicyCtx {
    /// Scans a network and allocates one variable per *relevant* community.
    ///
    /// A community is **matched** if some community list referenced by a
    /// route-map `match` contains it, and **written** if some `set
    /// community` adds or deletes it. With `strip_unused` (the attribute
    /// abstraction `h` used for the paper's data-center network, §8), only
    /// matched communities become variables: tags that are attached but
    /// never tested cannot influence any transfer function, so ignoring
    /// them merges otherwise-identical roles.
    pub fn from_network(network: &NetworkConfig, strip_unused: bool) -> Self {
        Self::with_cache_bits(network, strip_unused, bonsai_bdd::DEFAULT_APPLY_CACHE_BITS)
    }

    /// [`PolicyCtx::from_network`] with an explicit apply-cache size
    /// (`2^bits` entries) for the owned arena.
    pub fn with_cache_bits(network: &NetworkConfig, strip_unused: bool, bits: u32) -> Self {
        let mut matched: BTreeSet<Community> = BTreeSet::new();
        let mut written: BTreeSet<Community> = BTreeSet::new();
        for d in &network.devices {
            for map in &d.route_maps {
                for clause in &map.clauses {
                    for m in &clause.matches {
                        if let MatchCond::Community(list) = m {
                            if let Some(cl) = d.community_list(list) {
                                matched.extend(cl.communities.iter().copied());
                            }
                        }
                    }
                    for s in &clause.sets {
                        match s {
                            SetAction::AddCommunity(c) | SetAction::DeleteCommunity(c) => {
                                written.insert(*c);
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
        let communities: Vec<Community> = if strip_unused {
            matched.into_iter().collect()
        } else {
            matched.union(&written).copied().collect()
        };
        let index = communities
            .iter()
            .enumerate()
            .map(|(i, c)| (*c, i as u32))
            .collect();
        PolicyCtx {
            bdd: Bdd::with_apply_cache_bits(bits),
            communities,
            index,
        }
    }

    /// The variable index of a community, if modeled.
    pub fn var_of(&self, c: Community) -> Option<u32> {
        self.index.get(&c).copied()
    }

    /// Identity input functions: community `i` is variable `i`.
    pub fn identity_inputs(&mut self) -> Vec<Ref> {
        (0..self.communities.len() as u32)
            .map(|i| self.bdd.var(i))
            .collect()
    }
}

/// The compiled effect of one route-map stage (an import or an export) on
/// symbolic inputs.
#[derive(Clone, Debug)]
pub struct StageOutput {
    /// Inputs for which the stage drops the route.
    pub drop: Ref,
    /// Per modeled community: its value after the stage (as a function of
    /// the *base* input variables).
    pub comm: Vec<Ref>,
    /// Disjoint conditions under which the stage explicitly sets the local
    /// preference to a value.
    pub lp: Vec<(u32, Ref)>,
    /// Disjoint conditions under which the stage sets the MED.
    pub med: Vec<(u32, Ref)>,
    /// Disjoint conditions for nonzero AS-path prepend counts.
    pub prepend: Vec<(u8, Ref)>,
}

impl StageOutput {
    /// The stage of an absent route map: permit everything unchanged.
    pub fn passthrough(inputs: &[Ref]) -> Self {
        StageOutput {
            drop: Ref::FALSE,
            comm: inputs.to_vec(),
            lp: Vec::new(),
            med: Vec::new(),
            prepend: Vec::new(),
        }
    }

    /// The stage of a dangling route-map reference: deny all (IOS).
    pub fn deny_all(inputs: &[Ref]) -> Self {
        StageOutput {
            drop: Ref::TRUE,
            comm: inputs.to_vec(),
            lp: Vec::new(),
            med: Vec::new(),
            prepend: Vec::new(),
        }
    }
}

/// Compiles one (optional, possibly dangling) route map of `device` for
/// destination `dest`, with community inputs given as functions of the base
/// variables (identity for a first stage; a previous stage's `comm` for
/// composition).
pub fn compile_stage(
    ctx: &mut PolicyCtx,
    device: &DeviceConfig,
    map: Option<&str>,
    dest: Prefix,
    inputs: &[Ref],
) -> StageOutput {
    let map = match map {
        None => return StageOutput::passthrough(inputs),
        Some(name) => match device.route_map(name) {
            Some(m) => m,
            None => return StageOutput::deny_all(inputs),
        },
    };

    // First-match chain: reach[i] = match[i] ∧ ¬match[0..i].
    let mut unmatched = Ref::TRUE;
    let mut drop = Ref::FALSE;
    let mut comm_out = inputs.to_vec();
    // Accumulated "which permit clause applied" conditions with their edits.
    let mut lp_groups: HashMap<u32, Ref> = HashMap::new();
    let mut med_groups: HashMap<u32, Ref> = HashMap::new();
    let mut prepend_groups: HashMap<u8, Ref> = HashMap::new();
    // comm rewrite: out_c = OR_i (reach_i ∧ clause_value_i(c)) ∨ (unmatched ∧ input_c)
    // built incrementally as ite chains.
    let mut comm_cases: Vec<Ref> = vec![Ref::FALSE; inputs.len()];

    for clause in &map.clauses {
        // Conjunction of the clause's match conditions.
        let mut m = Ref::TRUE;
        for cond in &clause.matches {
            let c = match cond {
                MatchCond::Community(list) => match device.community_list(list) {
                    Some(cl) => {
                        let lits: Vec<Ref> = cl
                            .communities
                            .iter()
                            .filter_map(|c| ctx.var_of(*c))
                            .map(|i| inputs[i as usize])
                            .collect();
                        ctx.bdd.or_all(lits)
                    }
                    None => Ref::FALSE, // dangling list never matches
                },
                MatchCond::PrefixList(list) => {
                    let permits = device
                        .prefix_list(list)
                        .map(|pl| prefix_list_permits(pl, dest))
                        .unwrap_or(false);
                    ctx.bdd.constant(permits)
                }
            };
            m = ctx.bdd.and(m, c);
        }
        let reach = ctx.bdd.and(unmatched, m);
        let not_m = ctx.bdd.not(m);
        unmatched = ctx.bdd.and(unmatched, not_m);
        if reach == Ref::FALSE {
            continue;
        }

        match clause.action {
            Action::Deny => {
                drop = ctx.bdd.or(drop, reach);
            }
            Action::Permit => {
                // Replay the clause's set actions like the interpreter:
                // later sets override earlier ones; add/delete cancel.
                let mut added: BTreeSet<Community> = BTreeSet::new();
                let mut deleted: BTreeSet<Community> = BTreeSet::new();
                let mut lp: Option<u32> = None;
                let mut med: Option<u32> = None;
                let mut prepend: u8 = 0;
                for s in &clause.sets {
                    match s {
                        SetAction::LocalPref(v) => lp = Some(*v),
                        SetAction::Metric(v) => med = Some(*v),
                        SetAction::Prepend(n) => prepend = prepend.saturating_add(*n),
                        SetAction::AddCommunity(c) => {
                            deleted.remove(c);
                            added.insert(*c);
                        }
                        SetAction::DeleteCommunity(c) => {
                            added.remove(c);
                            deleted.insert(*c);
                        }
                    }
                }
                for (i, c) in ctx.communities.clone().iter().enumerate() {
                    let value = if added.contains(c) {
                        Ref::TRUE
                    } else if deleted.contains(c) {
                        Ref::FALSE
                    } else {
                        inputs[i]
                    };
                    let piece = ctx.bdd.and(reach, value);
                    comm_cases[i] = ctx.bdd.or(comm_cases[i], piece);
                }
                if let Some(v) = lp {
                    let entry = lp_groups.entry(v).or_insert(Ref::FALSE);
                    *entry = ctx.bdd.or(*entry, reach);
                }
                if let Some(v) = med {
                    let entry = med_groups.entry(v).or_insert(Ref::FALSE);
                    *entry = ctx.bdd.or(*entry, reach);
                }
                if prepend > 0 {
                    let entry = prepend_groups.entry(prepend).or_insert(Ref::FALSE);
                    *entry = ctx.bdd.or(*entry, reach);
                }
            }
        }
    }

    // No clause matched: implicit deny.
    drop = ctx.bdd.or(drop, unmatched);

    // Final community functions: a permit clause's rewrite where one
    // applied; the (dropped) remainder is irrelevant but we keep the input
    // value there so drop-masking happens uniformly in the signature.
    for i in 0..comm_out.len() {
        let keep_input = ctx.bdd.and(drop, inputs[i]);
        comm_out[i] = ctx.bdd.or(comm_cases[i], keep_input);
    }

    let sorted = |groups: HashMap<u32, Ref>| -> Vec<(u32, Ref)> {
        let mut v: Vec<(u32, Ref)> = groups
            .into_iter()
            .filter(|(_, r)| *r != Ref::FALSE)
            .collect();
        v.sort_by_key(|(k, _)| *k);
        v
    };
    let lp = sorted(lp_groups);
    let med = sorted(med_groups);
    let mut prepend: Vec<(u8, Ref)> = prepend_groups
        .into_iter()
        .filter(|(_, r)| *r != Ref::FALSE)
        .collect();
    prepend.sort_by_key(|(k, _)| *k);

    StageOutput {
        drop,
        comm: comm_out,
        lp,
        med,
        prepend,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_config::parse_device;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn ctx_for(device: &DeviceConfig, strip: bool) -> PolicyCtx {
        let mut net = NetworkConfig::default();
        net.devices.push(device.clone());
        PolicyCtx::from_network(&net, strip)
    }

    /// Figure 10: match community → set community + local-preference.
    #[test]
    fn figure_10_bdd() {
        let d = parse_device(
            "
hostname r
ip community-list dept permit 65001:1
ip community-list dept permit 65001:2
route-map M permit 10
 match community dept
 set community 65001:3 additive
 set local-preference 350
",
        )
        .unwrap();
        let mut ctx = ctx_for(&d, false);
        assert_eq!(ctx.communities.len(), 3); // 65001:1, 65001:2, 65001:3
        let inputs = ctx.identity_inputs();
        let out = compile_stage(&mut ctx, &d, Some("M"), p("10.0.0.0/24"), &inputs);

        let c1 = ctx.var_of(Community::new(65001, 1)).unwrap() as usize;
        let c2 = ctx.var_of(Community::new(65001, 2)).unwrap() as usize;
        let c3 = ctx.var_of(Community::new(65001, 3)).unwrap() as usize;

        // Dropped iff neither 65001:1 nor 65001:2 present.
        let mut a = vec![false; 3];
        assert!(ctx.bdd.eval(out.drop, &a));
        a[c1] = true;
        assert!(!ctx.bdd.eval(out.drop, &a));
        // When it matches, 65001:3 is attached and lp = 350.
        assert!(ctx.bdd.eval(out.comm[c3], &a));
        assert_eq!(out.lp.len(), 1);
        assert_eq!(out.lp[0].0, 350);
        assert!(ctx.bdd.eval(out.lp[0].1, &a));
        a[c1] = false;
        a[c2] = true;
        assert!(ctx.bdd.eval(out.comm[c3], &a));
    }

    #[test]
    fn passthrough_and_dangling() {
        let d = parse_device("hostname r").unwrap();
        let mut ctx = ctx_for(&d, false);
        let inputs = ctx.identity_inputs();
        let none = compile_stage(&mut ctx, &d, None, p("10.0.0.0/24"), &inputs);
        assert_eq!(none.drop, Ref::FALSE);
        let dangling = compile_stage(&mut ctx, &d, Some("MISSING"), p("10.0.0.0/24"), &inputs);
        assert_eq!(dangling.drop, Ref::TRUE);
    }

    #[test]
    fn prefix_list_specializes_to_constant() {
        let d = parse_device(
            "
hostname r
ip prefix-list TEN seq 5 permit 10.0.0.0/8 le 32
route-map M deny 10
 match ip address prefix-list TEN
route-map M permit 20
",
        )
        .unwrap();
        let mut ctx = ctx_for(&d, false);
        let inputs = ctx.identity_inputs();
        // Destination inside 10/8: clause 10 denies everything.
        let out = compile_stage(&mut ctx, &d, Some("M"), p("10.1.0.0/24"), &inputs);
        assert_eq!(out.drop, Ref::TRUE);
        // Destination outside: clause 20 permits everything.
        let out = compile_stage(&mut ctx, &d, Some("M"), p("192.168.0.0/24"), &inputs);
        assert_eq!(out.drop, Ref::FALSE);
    }

    /// Identical policies written differently compile to identical Refs —
    /// the canonicity the refinement loop relies on.
    #[test]
    fn semantically_equal_maps_share_refs() {
        let d = parse_device(
            "
hostname r
ip community-list one permit 7:1
ip community-list also_one permit 7:1
route-map A permit 10
 match community one
 set local-preference 200
route-map B permit 10
 match community also_one
 set local-preference 200
",
        )
        .unwrap();
        let mut ctx = ctx_for(&d, false);
        let inputs = ctx.identity_inputs();
        let a = compile_stage(&mut ctx, &d, Some("A"), p("10.0.0.0/24"), &inputs);
        let b = compile_stage(&mut ctx, &d, Some("B"), p("10.0.0.0/24"), &inputs);
        assert_eq!(a.drop, b.drop);
        assert_eq!(a.comm, b.comm);
        assert_eq!(a.lp, b.lp);
    }

    /// strip_unused removes never-matched communities from the model.
    #[test]
    fn strip_unused_communities() {
        let d = parse_device(
            "
hostname r
ip community-list used permit 7:1
route-map M permit 10
 match community used
 set community 9:9 additive
",
        )
        .unwrap();
        let full = ctx_for(&d, false);
        assert_eq!(full.communities.len(), 2);
        let stripped = ctx_for(&d, true);
        assert_eq!(stripped.communities, vec![Community::new(7, 1)]);
    }

    /// Two roles that differ only by an unused tag become equal under h.
    #[test]
    fn unused_tag_difference_vanishes_under_h() {
        let d1 = parse_device(
            "
hostname r1
route-map M permit 10
 set community 9:1 additive
",
        )
        .unwrap();
        let d2 = parse_device(
            "
hostname r2
route-map M permit 10
 set community 9:2 additive
",
        )
        .unwrap();
        let mut net = NetworkConfig::default();
        net.devices.push(d1.clone());
        net.devices.push(d2.clone());
        // Without stripping, the two maps differ.
        let mut ctx = PolicyCtx::from_network(&net, false);
        let inputs = ctx.identity_inputs();
        let a = compile_stage(&mut ctx, &d1, Some("M"), p("10.0.0.0/24"), &inputs);
        let b = compile_stage(&mut ctx, &d2, Some("M"), p("10.0.0.0/24"), &inputs);
        assert_ne!(a.comm, b.comm);
        // With stripping, both are the identity on the (empty) variable set.
        let mut ctx = PolicyCtx::from_network(&net, true);
        assert!(ctx.communities.is_empty());
        let inputs = ctx.identity_inputs();
        let a = compile_stage(&mut ctx, &d1, Some("M"), p("10.0.0.0/24"), &inputs);
        let b = compile_stage(&mut ctx, &d2, Some("M"), p("10.0.0.0/24"), &inputs);
        assert_eq!(a.comm, b.comm);
        assert_eq!(a.drop, b.drop);
    }

    #[test]
    fn first_match_shadows_later_clauses() {
        let d = parse_device(
            "
hostname r
ip community-list x permit 5:5
route-map M permit 10
 set local-preference 111
route-map M permit 20
 match community x
 set local-preference 222
",
        )
        .unwrap();
        let mut ctx = ctx_for(&d, false);
        let inputs = ctx.identity_inputs();
        let out = compile_stage(&mut ctx, &d, Some("M"), p("10.0.0.0/24"), &inputs);
        // Clause 10 matches everything, so lp 222 is unreachable.
        assert_eq!(out.lp.len(), 1);
        assert_eq!(out.lp[0].0, 111);
        assert_eq!(out.lp[0].1, Ref::TRUE);
        assert_eq!(out.drop, Ref::FALSE);
    }
}
