//! Device *role* analysis (paper §8, "Real network results").
//!
//! Before refining per destination class, the paper asks a coarser
//! question: how many devices have identical transfer functions *from
//! their configurations alone*? Each distinct answer is a "role". The
//! datacenter study found 112 roles; after applying the attribute
//! abstraction that ignores communities which are attached but never
//! matched, 26; and ignoring static-route differences as well, just 8.
//!
//! A role signature canonicalizes a device's destination-independent
//! policy surface: route maps are resolved through their named lists
//! (community lists become community sets; prefix lists become their
//! canonical entry vectors) so that naming differences do not create
//! roles, while semantic differences do.

use bonsai_config::{
    Acl, Community, DeviceConfig, MatchCond, NetworkConfig, PrefixListEntry, RouteMap, SetAction,
};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Options controlling which differences count toward a role.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoleOptions {
    /// Ignore communities that no community list in the network matches
    /// (the paper's refined `h`).
    pub strip_unused_communities: bool,
    /// Ignore static-route differences.
    pub ignore_static_routes: bool,
}

/// Counts the distinct roles among the network's devices.
pub fn count_roles(network: &NetworkConfig, options: RoleOptions) -> usize {
    role_assignment(network, options)
        .into_iter()
        .collect::<HashSet<u64>>()
        .len()
}

/// Assigns each device a role id (hash of its canonical signature).
/// Devices with equal ids have semantically equal policy surfaces under
/// the chosen options.
pub fn role_assignment(network: &NetworkConfig, options: RoleOptions) -> Vec<u64> {
    let matched = matched_communities(network);
    network
        .devices
        .iter()
        .map(|d| {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            device_signature(d, &matched, options).hash(&mut h);
            h.finish()
        })
        .collect()
}

/// Communities matched by at least one referenced community list anywhere.
fn matched_communities(network: &NetworkConfig) -> BTreeSet<Community> {
    let mut matched = BTreeSet::new();
    for d in &network.devices {
        for map in &d.route_maps {
            for clause in &map.clauses {
                for m in &clause.matches {
                    if let MatchCond::Community(list) = m {
                        if let Some(cl) = d.community_list(list) {
                            matched.extend(cl.communities.iter().copied());
                        }
                    }
                }
            }
        }
    }
    matched
}

/// A canonical, name-free rendering of one match condition.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
enum CanonMatch {
    Community(Vec<Community>),
    PrefixList(Vec<CanonPrefixEntry>),
    /// Dangling reference (never matches).
    Dangling,
}

#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
struct CanonPrefixEntry {
    permit: bool,
    prefix: (u32, u8),
    ge: Option<u8>,
    le: Option<u8>,
}

fn canon_prefix_entries(entries: &[PrefixListEntry]) -> Vec<CanonPrefixEntry> {
    entries
        .iter()
        .map(|e| CanonPrefixEntry {
            permit: e.action == bonsai_config::Action::Permit,
            prefix: (e.prefix.addr().0, e.prefix.len()),
            ge: e.ge,
            le: e.le,
        })
        .collect()
}

/// A canonical set action (with unused communities optionally erased).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
enum CanonSet {
    LocalPref(u32),
    AddCommunity(Community),
    DeleteCommunity(Community),
    Prepend(u8),
    Metric(u32),
}

type CanonClause = (bool, Vec<CanonMatch>, Vec<CanonSet>);

fn canon_route_map(
    device: &DeviceConfig,
    map: &RouteMap,
    matched: &BTreeSet<Community>,
    options: RoleOptions,
) -> Vec<CanonClause> {
    map.clauses
        .iter()
        .map(|clause| {
            let mut matches: Vec<CanonMatch> = clause
                .matches
                .iter()
                .map(|m| match m {
                    MatchCond::Community(list) => match device.community_list(list) {
                        Some(cl) => {
                            let mut cs: Vec<Community> = cl.communities.clone();
                            cs.sort();
                            cs.dedup();
                            CanonMatch::Community(cs)
                        }
                        None => CanonMatch::Dangling,
                    },
                    MatchCond::PrefixList(list) => match device.prefix_list(list) {
                        Some(pl) => CanonMatch::PrefixList(canon_prefix_entries(&pl.entries)),
                        None => CanonMatch::Dangling,
                    },
                })
                .collect();
            matches.sort();
            let mut sets: Vec<CanonSet> = clause
                .sets
                .iter()
                .filter_map(|s| match s {
                    SetAction::LocalPref(v) => Some(CanonSet::LocalPref(*v)),
                    SetAction::Metric(v) => Some(CanonSet::Metric(*v)),
                    SetAction::Prepend(n) => Some(CanonSet::Prepend(*n)),
                    SetAction::AddCommunity(c) => {
                        if options.strip_unused_communities && !matched.contains(c) {
                            None // attaching a never-matched tag is a no-op
                        } else {
                            Some(CanonSet::AddCommunity(*c))
                        }
                    }
                    SetAction::DeleteCommunity(c) => {
                        if options.strip_unused_communities && !matched.contains(c) {
                            None
                        } else {
                            Some(CanonSet::DeleteCommunity(*c))
                        }
                    }
                })
                .collect();
            sets.sort();
            (
                clause.action == bonsai_config::Action::Permit,
                matches,
                sets,
            )
        })
        .collect()
}

fn canon_acl(acl: &Acl) -> Vec<(bool, (u32, u8))> {
    acl.entries
        .iter()
        .map(|e| {
            (
                e.action == bonsai_config::Action::Permit,
                (e.prefix.addr().0, e.prefix.len()),
            )
        })
        .collect()
}

/// Canonical ACL: per entry, (permit?, prefix).
type CanonAcl = Vec<(bool, (u32, u8))>;
/// Canonical BGP session policy: (ibgp?, import clauses, export clauses).
type CanonBgp = (bool, Option<Vec<CanonClause>>, Option<Vec<CanonClause>>);
/// Canonical per-interface signature: (bgp, acl in, acl out, ospf (cost, area)).
type CanonPort = (
    Option<CanonBgp>,
    Option<CanonAcl>,
    Option<CanonAcl>,
    Option<(u32, u32)>,
);

/// The full canonical signature of one device's policy surface.
#[derive(PartialEq, Eq, Hash, Debug)]
struct DeviceSignature {
    /// Per interface (order-free): BGP session policies and ACLs.
    ports: BTreeSet<CanonPort>,
    default_lp: Option<u32>,
    redistribute: (bool, bool, bool),
    static_routes: BTreeSet<((u32, u8), usize)>, // (prefix, port bucket) — 0 when ignored
    runs_bgp: bool,
    runs_ospf: bool,
}

fn device_signature(
    device: &DeviceConfig,
    matched: &BTreeSet<Community>,
    options: RoleOptions,
) -> DeviceSignature {
    let mut map_cache: HashMap<String, Vec<CanonClause>> = HashMap::new();
    let mut canon_map = |name: &Option<String>| -> Option<Vec<CanonClause>> {
        name.as_ref().map(|n| {
            map_cache
                .entry(n.clone())
                .or_insert_with(|| {
                    device
                        .route_map(n)
                        .map(|m| canon_route_map(device, m, matched, options))
                        .unwrap_or_else(|| vec![(false, vec![CanonMatch::Dangling], vec![])])
                })
                .clone()
        })
    };

    let mut ports = BTreeSet::new();
    for (i, iface) in device.interfaces.iter().enumerate() {
        let bgp = device.bgp.as_ref().and_then(|b| {
            b.neighbors.iter().find(|n| n.iface == iface.name).map(|n| {
                (
                    n.ibgp,
                    canon_map(&n.import_policy),
                    canon_map(&n.export_policy),
                )
            })
        });
        let acl_in = iface
            .acl_in
            .as_deref()
            .map(|n| device.acl(n).map(canon_acl).unwrap_or_default());
        let acl_out = iface
            .acl_out
            .as_deref()
            .map(|n| device.acl(n).map(canon_acl).unwrap_or_default());
        let ospf = iface
            .ospf_area
            .map(|area| (iface.ospf_cost.unwrap_or(1), area));
        let _ = i;
        ports.insert((bgp, acl_in, acl_out, ospf));
    }

    let static_routes = if options.ignore_static_routes {
        BTreeSet::new()
    } else {
        device
            .static_routes
            .iter()
            .map(|s| ((s.prefix.addr().0, s.prefix.len()), 0usize))
            .collect()
    };

    DeviceSignature {
        ports,
        default_lp: device.bgp.as_ref().map(|b| b.default_local_pref),
        redistribute: (
            device
                .bgp
                .as_ref()
                .map(|b| b.redistribute_static)
                .unwrap_or(false),
            device
                .bgp
                .as_ref()
                .map(|b| b.redistribute_ospf)
                .unwrap_or(false),
            device
                .ospf
                .as_ref()
                .map(|o| o.redistribute_static)
                .unwrap_or(false),
        ),
        static_routes,
        runs_bgp: device.bgp.is_some(),
        runs_ospf: device.ospf.is_some(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_config::{parse_device, parse_network};

    fn net_of(devices: Vec<DeviceConfig>) -> NetworkConfig {
        NetworkConfig {
            devices,
            links: vec![],
        }
    }

    #[test]
    fn renamed_lists_do_not_create_roles() {
        let d1 = parse_device(
            "
hostname r1
interface i
ip community-list X permit 7:1
route-map M permit 10
 match community X
 set local-preference 200
router bgp 1
 neighbor i remote-as external
 neighbor i route-map M in
",
        )
        .unwrap();
        let d2 = parse_device(
            "
hostname r2
interface i
ip community-list Y permit 7:1
route-map N permit 10
 match community Y
 set local-preference 200
router bgp 2
 neighbor i remote-as external
 neighbor i route-map N in
",
        )
        .unwrap();
        let net = net_of(vec![d1, d2]);
        assert_eq!(count_roles(&net, RoleOptions::default()), 1);
    }

    #[test]
    fn unused_tags_create_roles_until_stripped() {
        let mk = |name: &str, tag: u16| {
            parse_device(&format!(
                "
hostname {name}
interface i
route-map M permit 10
 set community 9:{tag} additive
router bgp 1
 neighbor i remote-as external
 neighbor i route-map M out
"
            ))
            .unwrap()
        };
        let net = net_of(vec![mk("r1", 1), mk("r2", 2)]);
        assert_eq!(count_roles(&net, RoleOptions::default()), 2);
        assert_eq!(
            count_roles(
                &net,
                RoleOptions {
                    strip_unused_communities: true,
                    ..Default::default()
                }
            ),
            1
        );
    }

    #[test]
    fn static_routes_create_roles_until_ignored() {
        let mk = |name: &str, with_static: bool| {
            let mut text = format!("hostname {name}\ninterface i\n");
            if with_static {
                text.push_str("ip route 10.9.0.0/16 i\n");
            }
            parse_device(&text).unwrap()
        };
        let net = net_of(vec![mk("r1", true), mk("r2", false)]);
        assert_eq!(count_roles(&net, RoleOptions::default()), 2);
        assert_eq!(
            count_roles(
                &net,
                RoleOptions {
                    ignore_static_routes: true,
                    ..Default::default()
                }
            ),
            1
        );
    }

    #[test]
    fn role_assignment_groups_gadget_middles() {
        let net = parse_network(&bonsai_config::print_network(
            &bonsai_srp::papernets::figure2_gadget(),
        ))
        .unwrap();
        let roles = role_assignment(&net, RoleOptions::default());
        let names: Vec<&str> = net.devices.iter().map(|d| d.name.as_str()).collect();
        let idx = |n: &str| names.iter().position(|x| *x == n).unwrap();
        assert_eq!(roles[idx("b1")], roles[idx("b2")]);
        assert_eq!(roles[idx("b2")], roles[idx("b3")]);
        assert_ne!(roles[idx("a")], roles[idx("b1")]);
    }
}
