//! Bounded link-failure scenario enumeration (with symmetry pruning).
//!
//! The paper's guarantee is for the failure-free control plane; §9 notes
//! the abstraction may be **unsound once links fail**, because one
//! abstract link stands for many concrete links and cannot express "one
//! of them is down". Opening the failure workload therefore needs two
//! ingredients: a way to enumerate the `≤ k` link-failure scenarios of a
//! network, and a way to avoid enumerating scenarios the abstraction
//! already proves symmetric.
//!
//! This module provides both:
//!
//! * [`enumerate_scenarios`] — every subset of undirected links of size
//!   `1..=k`, as [`FailureScenario`]s (exhaustive; `C(L,1)+…+C(L,k)`
//!   scenarios).
//! * [`link_orbits`] — groups links into *orbits* by their position in the
//!   abstraction: two links are in the same orbit when their endpoints lie
//!   in the same blocks and both directions carry the same compiled
//!   edge signatures (the [`SigTable`] ids produced by the shared
//!   [`CompiledPolicies`](crate::engine::CompiledPolicies) engine — so
//!   orbit equality is semantic transfer-function equality, not syntactic
//!   config equality).
//! * [`enumerate_scenarios_pruned`] — one representative scenario per
//!   orbit-failure multiset: instead of choosing *which* links of an orbit
//!   fail, only *how many* fail (taking the canonically-first links).
//!
//! Pruning is exact for single failures when the abstraction is sound for
//! the failure-free plane — any two links of an orbit relate to the rest
//! of the network identically, so failing either yields CP-equivalent
//! scenarios. For `k ≥ 2` it is a (well-behaved, clearly documented)
//! heuristic: two chosen links of the *same* orbit may interact with each
//! other differently depending on whether they share an endpoint. The
//! auditor in `bonsai-verify` accepts either enumeration; benchmarks and
//! CI use the pruned one, soundness tests the exhaustive one.

use crate::algorithm::Abstraction;
use crate::signatures::SigTable;
use bonsai_net::{FailureMask, Graph, NodeId};

/// One bounded-failure scenario: a set of failed undirected links, stored
/// as canonical node pairs (as produced by [`Graph::links`]), sorted.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FailureScenario {
    /// The failed links, each in canonical orientation, sorted.
    pub links: Vec<(NodeId, NodeId)>,
}

impl FailureScenario {
    /// A scenario failing the given links (normalized to canonical order).
    pub fn new(mut links: Vec<(NodeId, NodeId)>) -> Self {
        links.sort();
        links.dedup();
        FailureScenario { links }
    }

    /// Number of failed links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True for the failure-free scenario.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// The scenario as a [`FailureMask`] over the graph's directed edges
    /// (both directions of every failed link).
    pub fn mask(&self, graph: &Graph) -> FailureMask {
        let mut mask = FailureMask::for_graph(graph);
        for &(u, v) in &self.links {
            mask.disable_link(graph, u, v);
        }
        mask
    }

    /// Human-readable rendering using the graph's node names, e.g.
    /// `{b1—d, b2—d}`.
    pub fn describe(&self, graph: &Graph) -> String {
        let parts: Vec<String> = self
            .links
            .iter()
            .map(|&(u, v)| format!("{}—{}", graph.name(u), graph.name(v)))
            .collect();
        format!("{{{}}}", parts.join(", "))
    }
}

/// The undirected links of a graph grouped into symmetry orbits induced
/// by an abstraction.
#[derive(Clone, Debug)]
pub struct LinkOrbits {
    /// All undirected links, canonical orientation ([`Graph::links`]).
    pub links: Vec<(NodeId, NodeId)>,
    /// Orbit id of each link (indexes [`LinkOrbits::orbits`]).
    pub orbit_of_link: Vec<u32>,
    /// Members of each orbit, as indices into [`LinkOrbits::links`].
    pub orbits: Vec<Vec<usize>>,
    /// O(1) lookup from a canonical link pair to its index in
    /// [`LinkOrbits::links`] — [`LinkOrbits::signature_of`] runs once per
    /// enumerated scenario, which is `C(L, k)` times on exhaustive sweeps.
    index_of_link: std::collections::HashMap<(NodeId, NodeId), usize>,
}

impl LinkOrbits {
    /// Number of orbits.
    pub fn num_orbits(&self) -> usize {
        self.orbits.len()
    }

    /// Orbit id of a canonical link pair (as stored in
    /// [`LinkOrbits::links`]). `None` when the pair is not a link of the
    /// graph the orbits were computed over.
    pub fn orbit_of(&self, link: (NodeId, NodeId)) -> Option<u32> {
        self.index_of_link
            .get(&link)
            .map(|&i| self.orbit_of_link[i])
    }

    /// The **orbit signature** of a scenario: how many links of each orbit
    /// fail, as a sorted `(orbit, count)` multiset. Two scenarios with the
    /// same signature fail symmetric link sets — the cache key of the
    /// per-scenario sweep engine. Returns `None` when a failed link is
    /// unknown to these orbits (a scenario from a different graph).
    pub fn signature_of(&self, scenario: &FailureScenario) -> Option<OrbitSignature> {
        let mut counts: std::collections::BTreeMap<u32, u32> = std::collections::BTreeMap::new();
        for &link in &scenario.links {
            *counts.entry(self.orbit_of(link)?).or_insert(0) += 1;
        }
        Some(OrbitSignature {
            counts: counts.into_iter().collect(),
        })
    }

    /// The canonical representative scenario of an orbit signature: the
    /// canonically-first `count` links of each orbit — exactly the
    /// representative [`enumerate_scenarios_pruned`] emits for the same
    /// multiset, and the lexicographically smallest scenario with this
    /// signature under the link-index order. Panics if a count exceeds the
    /// orbit's size (no such scenario exists).
    pub fn canonical_scenario(&self, sig: &OrbitSignature) -> FailureScenario {
        let mut links = Vec::new();
        for &(orbit, count) in &sig.counts {
            let members = &self.orbits[orbit as usize];
            assert!(
                (count as usize) <= members.len(),
                "signature asks for {count} failures in orbit {orbit} of size {}",
                members.len()
            );
            for &li in members.iter().take(count as usize) {
                links.push(self.links[li]);
            }
        }
        FailureScenario::new(links)
    }
}

/// A scenario's position in the orbit structure: the multiset of
/// `(orbit, failed-link count)` pairs, sorted by orbit id.
///
/// This is the cache key of the per-scenario sweep engine
/// (`bonsai-verify`'s `sweep` module): scenarios with equal signatures
/// fail symmetric link sets, so one refinement — derived from the
/// [`LinkOrbits::canonical_scenario`] representative — serves them all.
/// The orbit ids come from the interned edge-signature descriptors of
/// [`link_orbits`], so signature equality is semantic, not syntactic.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OrbitSignature {
    /// `(orbit id, failed links of that orbit)`, sorted by orbit id, every
    /// count nonzero.
    pub counts: Vec<(u32, u32)>,
}

impl OrbitSignature {
    /// Total number of failed links the signature stands for.
    pub fn total_failures(&self) -> usize {
        self.counts.iter().map(|&(_, c)| c as usize).sum()
    }
}

/// Groups the links of `graph` into orbits under `abstraction`: links are
/// equivalent when their endpoint blocks coincide and both directed edges
/// carry equal interned signatures from `sigs`.
///
/// Orbit keys are direction-normalized, so `u—v` and `v—u` of a symmetric
/// pair land in the same orbit regardless of canonical orientation.
pub fn link_orbits(graph: &Graph, abstraction: &Abstraction, sigs: &SigTable) -> LinkOrbits {
    /// Directed descriptor of one half of a link: `(block(src),
    /// block(dst), sig(src→dst))`, with a sentinel signature for a
    /// missing reverse edge. Kept unpacked — truncating ids into packed
    /// bit fields could silently merge distinct orbits, which the pruned
    /// audit would turn into unswept scenarios.
    type Descr = (u32, u32, Option<u32>);

    let links = graph.links();
    let mut key_of: std::collections::HashMap<[Descr; 2], u32> = std::collections::HashMap::new();
    let mut orbit_of_link = Vec::with_capacity(links.len());
    let mut orbits: Vec<Vec<usize>> = Vec::new();

    for (i, &(u, v)) in links.iter().enumerate() {
        let descr = |a: NodeId, b: NodeId| -> Descr {
            let sig = graph.find_edge(a, b).map(|e| sigs.sig_of_edge[e.index()]);
            (abstraction.role_of(a).0, abstraction.role_of(b).0, sig)
        };
        let fwd = descr(u, v);
        let rev = descr(v, u);
        let key = if fwd <= rev { [fwd, rev] } else { [rev, fwd] };
        let next = orbits.len() as u32;
        let id = *key_of.entry(key).or_insert_with(|| {
            orbits.push(Vec::new());
            next
        });
        orbits[id as usize].push(i);
        orbit_of_link.push(id);
    }

    let index_of_link = links.iter().enumerate().map(|(i, &l)| (l, i)).collect();
    LinkOrbits {
        links,
        orbit_of_link,
        orbits,
        index_of_link,
    }
}

/// Enumerates every scenario with `1..=k` failed links — exhaustive, no
/// symmetry reduction. Deterministic order: by failure count, then
/// lexicographically by link index.
pub fn enumerate_scenarios(graph: &Graph, k: usize) -> Vec<FailureScenario> {
    let links = graph.links();
    let mut out = Vec::new();
    let mut chosen: Vec<usize> = Vec::new();
    for size in 1..=k.min(links.len()) {
        combinations(links.len(), size, 0, &mut chosen, &mut |c| {
            out.push(FailureScenario::new(c.iter().map(|&i| links[i]).collect()));
        });
    }
    out
}

/// Number of scenarios [`enumerate_scenarios`] would produce (the
/// exhaustive count `C(L,1)+…+C(L,k)`), without materializing them.
/// Saturates at `usize::MAX`.
pub fn exhaustive_scenario_count(num_links: usize, k: usize) -> usize {
    let mut total = 0usize;
    for size in 1..=k.min(num_links) {
        // C(n, size), saturating.
        let mut c = 1usize;
        for i in 0..size {
            c = c.saturating_mul(num_links - i) / (i + 1);
        }
        total = total.saturating_add(c);
    }
    total
}

/// Enumerates scenarios with `1..=k` failed links, pruned by the orbit
/// structure of the abstraction: for each orbit only the *number* of
/// failed links is varied (taking the canonically-first members), so two
/// scenarios differing only in which symmetric link failed collapse to
/// one representative.
///
/// On symmetric topologies this shrinks the sweep by orders of magnitude
/// (a fattree's `C(L,2)` pair scenarios collapse to a handful of orbit
/// multisets). See the module docs for the exactness discussion.
pub fn enumerate_scenarios_pruned(
    graph: &Graph,
    abstraction: &Abstraction,
    sigs: &SigTable,
    k: usize,
) -> Vec<FailureScenario> {
    let orbits = link_orbits(graph, abstraction, sigs);
    let mut out = Vec::new();
    // counts[o] = how many links of orbit o fail (a prefix of its members).
    let mut counts = vec![0usize; orbits.num_orbits()];
    enumerate_orbit_counts(&orbits, k, 0, 0, &mut counts, &mut out);
    // Deterministic, size-major order like the exhaustive enumeration.
    out.sort_by(|a, b| (a.len(), &a.links).cmp(&(b.len(), &b.links)));
    out
}

fn enumerate_orbit_counts(
    orbits: &LinkOrbits,
    k: usize,
    orbit: usize,
    used: usize,
    counts: &mut Vec<usize>,
    out: &mut Vec<FailureScenario>,
) {
    if orbit == orbits.num_orbits() {
        if used > 0 {
            let mut links = Vec::with_capacity(used);
            for (o, &c) in counts.iter().enumerate() {
                for &li in orbits.orbits[o].iter().take(c) {
                    links.push(orbits.links[li]);
                }
            }
            out.push(FailureScenario::new(links));
        }
        return;
    }
    let max_here = orbits.orbits[orbit].len().min(k - used);
    for c in 0..=max_here {
        counts[orbit] = c;
        enumerate_orbit_counts(orbits, k, orbit + 1, used + c, counts, out);
    }
    counts[orbit] = 0;
}

fn combinations(
    n: usize,
    size: usize,
    start: usize,
    chosen: &mut Vec<usize>,
    emit: &mut impl FnMut(&[usize]),
) {
    if chosen.len() == size {
        emit(chosen);
        return;
    }
    let remaining = size - chosen.len();
    for i in start..=n.saturating_sub(remaining) {
        chosen.push(i);
        combinations(n, size, i + 1, chosen, emit);
        chosen.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CompiledPolicies;
    use crate::signatures::build_sig_table;
    use bonsai_config::BuiltTopology;
    use bonsai_srp::instance::{EcDest, OriginProto};
    use bonsai_srp::papernets;

    fn gadget_setup() -> (BuiltTopology, Abstraction, std::sync::Arc<SigTable>) {
        let net = papernets::figure2_gadget();
        let topo = BuiltTopology::build(&net).unwrap();
        let d = topo.graph.node_by_name("d").unwrap();
        let ec = EcDest::new(
            papernets::DEST_PREFIX.parse().unwrap(),
            vec![(d, OriginProto::Bgp)],
        );
        let engine = CompiledPolicies::from_network(&net, false);
        let sigs = build_sig_table(&engine, &net, &topo, &ec);
        let abs = crate::algorithm::find_abstraction(&topo.graph, &ec, &sigs);
        (topo, abs, sigs)
    }

    #[test]
    fn exhaustive_enumeration_counts() {
        let (topo, _, _) = gadget_setup();
        // The gadget has 6 links: C(6,1)=6, C(6,2)=15.
        assert_eq!(topo.graph.link_count(), 6);
        let s1 = enumerate_scenarios(&topo.graph, 1);
        assert_eq!(s1.len(), 6);
        let s2 = enumerate_scenarios(&topo.graph, 2);
        assert_eq!(s2.len(), 21);
        assert_eq!(exhaustive_scenario_count(6, 2), 21);
        // All distinct, all within bounds.
        let set: std::collections::BTreeSet<_> = s2.iter().collect();
        assert_eq!(set.len(), 21);
        assert!(s2.iter().all(|s| (1..=2).contains(&s.len())));
    }

    #[test]
    fn gadget_links_fall_into_two_orbits() {
        // {bi—d} and {bi—a} are each one orbit: identical block pairs and
        // identical compiled signatures both ways.
        let (topo, abs, sigs) = gadget_setup();
        let orbits = link_orbits(&topo.graph, &abs, &sigs);
        assert_eq!(orbits.links.len(), 6);
        assert_eq!(orbits.num_orbits(), 2);
        for o in &orbits.orbits {
            assert_eq!(o.len(), 3);
        }
        // Links of one orbit share endpoint blocks.
        for o in &orbits.orbits {
            let blocks: std::collections::BTreeSet<_> = o
                .iter()
                .map(|&li| {
                    let (u, v) = orbits.links[li];
                    let mut pair = [abs.role_of(u), abs.role_of(v)];
                    pair.sort();
                    pair
                })
                .collect();
            assert_eq!(blocks.len(), 1);
        }
    }

    #[test]
    fn pruned_enumeration_collapses_symmetric_scenarios() {
        let (topo, abs, sigs) = gadget_setup();
        // k=1: 6 exhaustive scenarios collapse to 2 (one per orbit).
        let p1 = enumerate_scenarios_pruned(&topo.graph, &abs, &sigs, 1);
        assert_eq!(p1.len(), 2);
        // k=2: multisets {2+0, 0+2, 1+1} plus the k=1 ones = 5.
        let p2 = enumerate_scenarios_pruned(&topo.graph, &abs, &sigs, 2);
        assert_eq!(p2.len(), 5);
        assert!(p2.len() < enumerate_scenarios(&topo.graph, 2).len());
        // Every pruned scenario is a member of the exhaustive set.
        let all: std::collections::BTreeSet<_> =
            enumerate_scenarios(&topo.graph, 2).into_iter().collect();
        assert!(p2.iter().all(|s| all.contains(s)));
    }

    #[test]
    fn masks_cover_both_directions() {
        let (topo, _, _) = gadget_setup();
        let s = enumerate_scenarios(&topo.graph, 1);
        for sc in &s {
            let mask = sc.mask(&topo.graph);
            assert_eq!(mask.disabled_count(), 2, "{}", sc.describe(&topo.graph));
        }
    }

    #[test]
    fn signatures_collapse_symmetric_scenarios() {
        let (topo, abs, sigs) = gadget_setup();
        let orbits = link_orbits(&topo.graph, &abs, &sigs);
        // Every k=1 scenario of one orbit shares a signature; the two
        // orbits give exactly two distinct signatures.
        let all = enumerate_scenarios(&topo.graph, 1);
        let sigset: std::collections::BTreeSet<OrbitSignature> = all
            .iter()
            .map(|s| orbits.signature_of(s).unwrap())
            .collect();
        assert_eq!(sigset.len(), 2);
        for sig in &sigset {
            assert_eq!(sig.total_failures(), 1);
        }
        // k=2 exhaustive (21 scenarios) collapses to the 5 pruned
        // multisets: signatures and pruned enumeration agree exactly.
        let all2 = enumerate_scenarios(&topo.graph, 2);
        let sigset2: std::collections::BTreeSet<OrbitSignature> = all2
            .iter()
            .map(|s| orbits.signature_of(s).unwrap())
            .collect();
        assert_eq!(sigset2.len(), 5);
        let pruned = enumerate_scenarios_pruned(&topo.graph, &abs, &sigs, 2);
        assert_eq!(pruned.len(), sigset2.len());
    }

    #[test]
    fn canonical_scenario_matches_pruned_representative() {
        let (topo, abs, sigs) = gadget_setup();
        let orbits = link_orbits(&topo.graph, &abs, &sigs);
        // For every pruned representative, round-tripping through its
        // signature reproduces the representative itself.
        for rep in enumerate_scenarios_pruned(&topo.graph, &abs, &sigs, 2) {
            let sig = orbits.signature_of(&rep).unwrap();
            assert_eq!(orbits.canonical_scenario(&sig), rep);
        }
        // Every exhaustive scenario canonicalizes to *some* pruned
        // representative with the same signature.
        let pruned: std::collections::BTreeSet<_> =
            enumerate_scenarios_pruned(&topo.graph, &abs, &sigs, 2)
                .into_iter()
                .collect();
        for s in enumerate_scenarios(&topo.graph, 2) {
            let sig = orbits.signature_of(&s).unwrap();
            let rep = orbits.canonical_scenario(&sig);
            assert!(pruned.contains(&rep), "{}", s.describe(&topo.graph));
            assert_eq!(orbits.signature_of(&rep).unwrap(), sig);
        }
    }

    #[test]
    fn describe_uses_node_names() {
        let (topo, _, _) = gadget_setup();
        let d = topo.graph.node_by_name("d").unwrap();
        let b1 = topo.graph.node_by_name("b1").unwrap();
        let sc = FailureScenario::new(vec![(d, b1)]);
        assert_eq!(sc.describe(&topo.graph), "{d—b1}");
    }
}
