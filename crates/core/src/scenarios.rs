//! Bounded link-failure scenario enumeration (with symmetry pruning) and
//! the signature machinery the per-scenario and network-level sweep
//! engines cache by.
//!
//! The paper's guarantee is for the failure-free control plane; §9 notes
//! the abstraction may be **unsound once links fail**, because one
//! abstract link stands for many concrete links and cannot express "one
//! of them is down". Opening the failure workload therefore needs a way
//! to enumerate the `≤ k` link-failure scenarios of a network, and a way
//! to avoid enumerating (or re-verifying) scenarios the abstraction
//! already proves symmetric.
//!
//! This module provides:
//!
//! * [`ScenarioStream`] — every subset of undirected links of size
//!   `1..=k`, as [`FailureScenario`]s, **lazily**: any rank range of the
//!   canonical enumeration order (size-major, then lexicographic by link
//!   index) materializes via combination unranking without enumerating
//!   its predecessors. (`to_vec` materializes everything — the shape the
//!   retired `enumerate_scenarios` entry point had.)
//! * [`link_orbits`] — groups links into *orbits* by their position in the
//!   abstraction: two links are in the same orbit when their endpoints lie
//!   in the same blocks and both directions carry the same compiled
//!   edge signatures (the [`SigTable`] ids produced by the shared
//!   [`CompiledPolicies`](crate::engine::CompiledPolicies) engine — so
//!   orbit equality is semantic transfer-function equality, not syntactic
//!   config equality).
//! * [`OrbitSignature`] — the cache key of the sweep engines: per-orbit
//!   failure counts **plus the canonical form of the failed subgraph**
//!   (which endpoints the failed links share, their blocks, and their
//!   pairwise distances in the intact network). Two scenarios share a
//!   signature only when their failed link sets are isomorphic as
//!   block-and-orbit-labeled, distance-annotated graphs — this is what
//!   makes `k ≥ 2` caching exact where the old orbit-count multiset
//!   wrongly merged, e.g., two same-orbit failures sharing an endpoint
//!   with two disjoint ones.
//! * [`enumerate_scenarios_pruned`] — one representative scenario (the
//!   enumeration-first, i.e. lexicographically smallest) per signature.
//! * [`quotient_canon`] / [`CanonicalSignature`] — the cross-EC layer:
//!   a canonical labeling of the abstraction's quotient structure that
//!   lets the network-level sweep compare signatures **across destination
//!   classes** whose policy fingerprints
//!   ([`EcFingerprint`](crate::engine::EcFingerprint)) agree.
//!
//! Exactness: pruning by signature is exact for `k = 1` when the
//! abstraction is sound for the failure-free plane — any two links of an
//! orbit relate to the rest of the network identically. For `k ≥ 2` the
//! refined signature removes the historic caveat (same-orbit pairs that
//! share an endpoint versus disjoint pairs now get distinct signatures);
//! the residual assumption is that scenarios with isomorphic labeled,
//! distance-annotated failed subgraphs are related by a network
//! automorphism — which holds whenever the orbit structure itself
//! certifies real symmetry, and is witnessed empirically by the
//! cache-hit ≡ fresh-derivation byte-identity tests.

use crate::algorithm::Abstraction;
use crate::signatures::{origin_key, SigTable};
use bonsai_net::{FailureMask, Graph, NodeId};
use bonsai_srp::instance::EcDest;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// One bounded-failure scenario: a set of failed undirected links, stored
/// as canonical node pairs (as produced by [`Graph::links`]), sorted.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FailureScenario {
    /// The failed links, each in canonical orientation, sorted.
    pub links: Vec<(NodeId, NodeId)>,
}

impl FailureScenario {
    /// A scenario failing the given links (normalized to canonical order).
    pub fn new(mut links: Vec<(NodeId, NodeId)>) -> Self {
        links.sort();
        links.dedup();
        FailureScenario { links }
    }

    /// Number of failed links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True for the failure-free scenario.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// The scenario as a [`FailureMask`] over the graph's directed edges
    /// (both directions of every failed link).
    pub fn mask(&self, graph: &Graph) -> FailureMask {
        let mut mask = FailureMask::for_graph(graph);
        for &(u, v) in &self.links {
            mask.disable_link(graph, u, v);
        }
        mask
    }

    /// Human-readable rendering using the graph's node names, e.g.
    /// `{b1—d, b2—d}`.
    pub fn describe(&self, graph: &Graph) -> String {
        let parts: Vec<String> = self
            .links
            .iter()
            .map(|&(u, v)| format!("{}—{}", graph.name(u), graph.name(v)))
            .collect();
        format!("{{{}}}", parts.join(", "))
    }
}

/// All-pairs shortest-path distances of the intact concrete graph
/// (`u32::MAX` = unreachable). Distances are invariant under every graph
/// automorphism, which is why they may appear in symmetry signatures.
/// Built once and `Arc`-shared across the per-EC orbit structures of a
/// network-level sweep.
#[derive(Debug)]
pub struct NodeDistances {
    n: usize,
    d: Vec<u32>,
}

impl NodeDistances {
    /// Computes all-pairs BFS distances (`O(V·(V+E))` — cheap at our
    /// scales; the 197-router data center costs well under a millisecond).
    pub fn of_graph(graph: &Graph) -> Self {
        let n = graph.node_count();
        let mut d = vec![u32::MAX; n * n];
        for u in graph.nodes() {
            let row = graph.bfs_distances(u);
            for (v, dist) in row.iter().enumerate() {
                if let Some(x) = dist {
                    d[u.index() * n + v] = *x;
                }
            }
        }
        NodeDistances { n, d }
    }

    /// Distance between two nodes (`u32::MAX` = unreachable).
    pub fn get(&self, u: NodeId, v: NodeId) -> u32 {
        self.d[u.index() * self.n + v.index()]
    }
}

/// The canonical form of a scenario's failed subgraph: the structural part
/// of an [`OrbitSignature`] beyond per-orbit counts.
///
/// Endpoints of the failed links become canonically numbered vertices
/// (grouped by their label, minimized over label-preserving
/// permutations); the failed links become labeled edges between them, and
/// the pairwise intact-network distances between all endpoints are
/// recorded. Two scenarios with equal patterns have failed subgraphs that
/// are isomorphic as labeled, distance-annotated graphs.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FailurePattern {
    /// Per canonical vertex: its label (the endpoint's block id in the
    /// per-EC form; the block's canonical color in the cross-EC form; the
    /// raw node id when canonicalization was skipped).
    pub vertex_labels: Vec<u32>,
    /// Failed links as `(vertex, vertex, orbit label)`, each pair
    /// lo-hi ordered, sorted.
    pub edges: Vec<(u32, u32, u32)>,
    /// Upper-triangle pairwise distances between canonical vertices in the
    /// **intact** graph (`i < j`, row-major; `u32::MAX` = disconnected).
    pub distances: Vec<u32>,
    /// False when the permutation search was skipped (more symmetric
    /// endpoints than the search budget): vertex labels are then raw node
    /// ids — strictly finer, so caching stays sound, only sharing is lost.
    pub canonical: bool,
}

/// Budget for the label-preserving permutation search of
/// [`FailurePattern`] canonicalization. Scenarios have at most `2k`
/// endpoints, so this is only ever hit for large `k` over fully symmetric
/// endpoint sets; the fallback is finer, never coarser.
const PATTERN_PERM_BUDGET: usize = 10_080;

/// Builds the canonical pattern of a scenario under the given labelings.
fn failure_pattern(
    scenario: &FailureScenario,
    dist: &NodeDistances,
    label_of: impl Fn(NodeId) -> u32,
    orbit_label_of: impl Fn((NodeId, NodeId)) -> u32,
) -> FailurePattern {
    // Distinct endpoints, in node order.
    let mut endpoints: Vec<NodeId> = scenario.links.iter().flat_map(|&(u, v)| [u, v]).collect();
    endpoints.sort();
    endpoints.dedup();
    let idx_of: HashMap<NodeId, usize> =
        endpoints.iter().enumerate().map(|(i, &n)| (n, i)).collect();

    // Raw edges over endpoint indices, with orbit labels.
    let raw_edges: Vec<(usize, usize, u32)> = scenario
        .links
        .iter()
        .map(|&(u, v)| (idx_of[&u], idx_of[&v], orbit_label_of((u, v))))
        .collect();

    // Initial vertex colors: (label, sorted incident orbit labels).
    let color_of = |i: usize| -> (u32, Vec<u32>) {
        let mut incident: Vec<u32> = raw_edges
            .iter()
            .filter(|&&(a, b, _)| a == i || b == i)
            .map(|&(_, _, o)| o)
            .collect();
        incident.sort_unstable();
        (label_of(endpoints[i]), incident)
    };
    let colors: Vec<(u32, Vec<u32>)> = (0..endpoints.len()).map(color_of).collect();

    // Group endpoint indices by color; groups in color order.
    let mut groups: BTreeMap<(u32, Vec<u32>), Vec<usize>> = BTreeMap::new();
    for (i, c) in colors.iter().enumerate() {
        groups.entry(c.clone()).or_default().push(i);
    }
    let groups: Vec<Vec<usize>> = groups.into_values().collect();
    let perms: usize = groups.iter().map(|g| factorial(g.len())).product();

    if perms > PATTERN_PERM_BUDGET {
        // Fallback: identity order with raw node ids as labels — finer
        // than any canonical form, so never merges what it should not.
        let order: Vec<usize> = (0..endpoints.len()).collect();
        let (edges, distances) = materialize_pattern(&order, &raw_edges, &endpoints, dist);
        return FailurePattern {
            vertex_labels: endpoints.iter().map(|n| n.0).collect(),
            edges,
            distances,
            canonical: false,
        };
    }

    // Search label-preserving assignments for the lexicographically
    // smallest (edges, distances) rendering.
    let base_order: Vec<usize> = groups.iter().flatten().copied().collect();
    let vertex_labels: Vec<u32> = base_order.iter().map(|&i| colors[i].0).collect();
    let mut best: Option<PatternRendering> = None;
    let mut group_perms: Vec<Vec<usize>> = groups.clone();
    permute_groups(&mut group_perms, 0, &mut |assignment: &[Vec<usize>]| {
        let order: Vec<usize> = assignment.iter().flatten().copied().collect();
        let candidate = materialize_pattern(&order, &raw_edges, &endpoints, dist);
        if best.as_ref().map_or(true, |b| candidate < *b) {
            best = Some(candidate);
        }
    });
    let (edges, distances) = best.expect("at least one assignment");
    FailurePattern {
        vertex_labels,
        edges,
        distances,
        canonical: true,
    }
}

/// One rendered pattern candidate: the sorted edge list plus the
/// upper-triangle distance vector of a particular endpoint ordering.
type PatternRendering = (Vec<(u32, u32, u32)>, Vec<u32>);

/// Renders edges and distances for one endpoint ordering. `order[c] = i`
/// maps canonical position `c` to endpoint index `i`.
fn materialize_pattern(
    order: &[usize],
    raw_edges: &[(usize, usize, u32)],
    endpoints: &[NodeId],
    dist: &NodeDistances,
) -> PatternRendering {
    let mut pos = vec![0u32; order.len()];
    for (c, &i) in order.iter().enumerate() {
        pos[i] = c as u32;
    }
    let mut edges: Vec<(u32, u32, u32)> = raw_edges
        .iter()
        .map(|&(a, b, o)| {
            let (x, y) = (pos[a], pos[b]);
            (x.min(y), x.max(y), o)
        })
        .collect();
    edges.sort_unstable();
    let mut distances = Vec::with_capacity(order.len() * (order.len().saturating_sub(1)) / 2);
    for ci in 0..order.len() {
        for cj in ci + 1..order.len() {
            distances.push(dist.get(endpoints[order[ci]], endpoints[order[cj]]));
        }
    }
    (edges, distances)
}

fn factorial(n: usize) -> usize {
    (1..=n).product::<usize>().max(1)
}

/// Visits every sequence of within-group permutations: for each group in
/// turn, every permutation of its elements, crossed with the later groups
/// (original order restored on return).
fn permute_groups(groups: &mut [Vec<usize>], at: usize, visit: &mut impl FnMut(&[Vec<usize>])) {
    fn rec(groups: &mut [Vec<usize>], at: usize, i: usize, visit: &mut impl FnMut(&[Vec<usize>])) {
        if at == groups.len() {
            visit(groups);
            return;
        }
        if i + 1 >= groups[at].len() {
            rec(groups, at + 1, 0, visit);
            return;
        }
        for j in i..groups[at].len() {
            groups[at].swap(i, j);
            rec(groups, at, i + 1, visit);
            groups[at].swap(i, j);
        }
    }
    rec(groups, at, 0, visit);
}

/// A scenario's position in the orbit structure: per-orbit failure counts
/// **plus** the canonical failed-subgraph pattern.
///
/// This is the cache key of the per-scenario sweep engine
/// (`bonsai-verify`'s `sweep` module): scenarios with equal signatures
/// fail symmetric link sets, so one refinement — derived from the
/// [`LinkOrbits::canonical_scenario`] representative — serves them all.
/// The orbit ids come from the interned edge-signature descriptors of
/// [`link_orbits`], so signature equality is semantic, not syntactic; the
/// pattern part keeps `k ≥ 2` exact (see the module docs).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OrbitSignature {
    /// `(orbit id, failed links of that orbit)`, sorted by orbit id, every
    /// count nonzero.
    pub counts: Vec<(u32, u32)>,
    /// Canonical form of the failed subgraph (blocks, sharing structure,
    /// intact-network distances).
    pub pattern: FailurePattern,
}

impl OrbitSignature {
    /// Total number of failed links the signature stands for.
    pub fn total_failures(&self) -> usize {
        self.counts.iter().map(|&(_, c)| c as usize).sum()
    }
}

/// The undirected links of a graph grouped into symmetry orbits induced
/// by an abstraction.
#[derive(Clone, Debug)]
pub struct LinkOrbits {
    /// All undirected links, canonical orientation ([`Graph::links`]).
    pub links: Vec<(NodeId, NodeId)>,
    /// Orbit id of each link (indexes [`LinkOrbits::orbits`]).
    pub orbit_of_link: Vec<u32>,
    /// Members of each orbit, as indices into [`LinkOrbits::links`].
    pub orbits: Vec<Vec<usize>>,
    /// Block id of every node under the abstraction the orbits were
    /// computed from (vertex labels of signature patterns).
    block_of_node: Vec<u32>,
    /// Intact-network all-pairs distances (pattern annotations), shared
    /// across the per-EC orbit structures of a network-level sweep.
    distances: Arc<NodeDistances>,
    /// O(1) lookup from a canonical link pair to its index in
    /// [`LinkOrbits::links`] — [`LinkOrbits::signature_of`] runs once per
    /// enumerated scenario, which is `C(L, k)` times on exhaustive sweeps.
    index_of_link: HashMap<(NodeId, NodeId), usize>,
}

impl LinkOrbits {
    /// Number of orbits.
    pub fn num_orbits(&self) -> usize {
        self.orbits.len()
    }

    /// The shared intact-network distance matrix.
    pub fn distances(&self) -> &Arc<NodeDistances> {
        &self.distances
    }

    /// Orbit id of a canonical link pair (as stored in
    /// [`LinkOrbits::links`]). `None` when the pair is not a link of the
    /// graph the orbits were computed over.
    pub fn orbit_of(&self, link: (NodeId, NodeId)) -> Option<u32> {
        self.index_of_link
            .get(&link)
            .map(|&i| self.orbit_of_link[i])
    }

    /// The **orbit signature** of a scenario: per-orbit failure counts
    /// plus the canonical failed-subgraph pattern. Two scenarios with the
    /// same signature fail symmetric link sets — the cache key of the
    /// per-scenario sweep engine. Returns `None` when a failed link is
    /// unknown to these orbits (a scenario from a different graph).
    pub fn signature_of(&self, scenario: &FailureScenario) -> Option<OrbitSignature> {
        let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
        for &link in &scenario.links {
            *counts.entry(self.orbit_of(link)?).or_insert(0) += 1;
        }
        let pattern = failure_pattern(
            scenario,
            &self.distances,
            |n| self.block_of_node[n.index()],
            |l| self.orbit_of(l).expect("links verified above"),
        );
        Some(OrbitSignature {
            counts: counts.into_iter().collect(),
            pattern,
        })
    }

    /// The canonical representative scenario of an orbit signature: the
    /// **enumeration-first** (smallest in link-index order) scenario with
    /// this signature — exactly the representative
    /// [`enumerate_scenarios_pruned`] emits for it. Found by searching the
    /// combinations of the signature's orbits' member links in
    /// link-index order for the first one whose full signature (counts
    /// **and** pattern) matches.
    ///
    /// # Panics
    ///
    /// Panics when no scenario of this graph realizes the signature (it
    /// came from different orbits).
    pub fn canonical_scenario(&self, sig: &OrbitSignature) -> FailureScenario {
        // Candidate links: the union of the signature's orbits' members,
        // in ascending link-index order (== lexicographic by node pairs,
        // since `Graph::links` is sorted by construction order and we
        // compare final sorted link lists below).
        let mut member_links: Vec<usize> = sig
            .counts
            .iter()
            .flat_map(|&(orbit, _)| self.orbits[orbit as usize].iter().copied())
            .collect();
        member_links.sort_unstable();
        let total: usize = sig.counts.iter().map(|&(_, c)| c as usize).sum();

        let mut found: Option<FailureScenario> = None;
        let mut chosen: Vec<usize> = Vec::new();
        // Combinations in lexicographic index order over the ascending
        // `member_links` — the same link-index order the exhaustive
        // enumeration uses — aborting the walk on the first match, so the
        // result is exactly the representative the pruned enumeration
        // keeps for this signature. Candidates are rejected on the cheap
        // per-orbit counts before the pattern canonicalization runs.
        search_combinations(member_links.len(), total, 0, &mut chosen, &mut |c| {
            let candidate =
                FailureScenario::new(c.iter().map(|&i| self.links[member_links[i]]).collect());
            debug_assert_eq!(candidate.links.len(), total, "member links are distinct");
            let counts_match = {
                let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
                for &link in &candidate.links {
                    *counts
                        .entry(self.orbit_of(link).expect("members of these orbits"))
                        .or_insert(0) += 1;
                }
                counts.into_iter().eq(sig.counts.iter().copied())
            };
            if counts_match && self.signature_of(&candidate).as_ref() == Some(sig) {
                found = Some(candidate);
                return true;
            }
            false
        });
        found.unwrap_or_else(|| panic!("no scenario of this graph realizes signature {sig:?}"))
    }
}

/// Groups the links of `graph` into orbits under `abstraction`: links are
/// equivalent when their endpoint blocks coincide and both directed edges
/// carry equal interned signatures from `sigs`.
///
/// Orbit keys are direction-normalized, so `u—v` and `v—u` of a symmetric
/// pair land in the same orbit regardless of canonical orientation.
///
/// Computes a fresh intact-network distance matrix; use
/// [`link_orbits_with_distances`] to share one across the per-EC orbit
/// structures of a network-level sweep.
pub fn link_orbits(graph: &Graph, abstraction: &Abstraction, sigs: &SigTable) -> LinkOrbits {
    link_orbits_with_distances(
        graph,
        abstraction,
        sigs,
        Arc::new(NodeDistances::of_graph(graph)),
    )
}

/// [`link_orbits`] with a shared, precomputed distance matrix (must have
/// been computed over the same graph).
pub fn link_orbits_with_distances(
    graph: &Graph,
    abstraction: &Abstraction,
    sigs: &SigTable,
    distances: Arc<NodeDistances>,
) -> LinkOrbits {
    let links = graph.links();
    let mut key_of: HashMap<[Descr; 2], u32> = HashMap::new();
    let mut orbit_of_link = Vec::with_capacity(links.len());
    let mut orbits: Vec<Vec<usize>> = Vec::new();

    for (i, &(u, v)) in links.iter().enumerate() {
        let key = orbit_key(graph, abstraction, sigs, u, v);
        let next = orbits.len() as u32;
        let id = *key_of.entry(key).or_insert_with(|| {
            orbits.push(Vec::new());
            next
        });
        orbits[id as usize].push(i);
        orbit_of_link.push(id);
    }

    let index_of_link = links.iter().enumerate().map(|(i, &l)| (l, i)).collect();
    let block_of_node = (0..graph.node_count())
        .map(|n| abstraction.role_of(NodeId(n as u32)).0)
        .collect();
    LinkOrbits {
        links,
        orbit_of_link,
        orbits,
        block_of_node,
        distances,
        index_of_link,
    }
}

/// Directed descriptor of one half of a link: `(block(src), block(dst),
/// sig(src→dst))`, with a sentinel signature for a missing reverse edge.
/// Kept unpacked — truncating ids into packed bit fields could silently
/// merge distinct orbits, which the pruned audit would turn into unswept
/// scenarios.
type Descr = (u32, u32, Option<u32>);

/// The direction-normalized orbit key of one undirected link.
fn orbit_key(
    graph: &Graph,
    abstraction: &Abstraction,
    sigs: &SigTable,
    u: NodeId,
    v: NodeId,
) -> [Descr; 2] {
    let descr = |a: NodeId, b: NodeId| -> Descr {
        let sig = graph.find_edge(a, b).map(|e| sigs.sig_of_edge[e.index()]);
        (abstraction.role_of(a).0, abstraction.role_of(b).0, sig)
    };
    let fwd = descr(u, v);
    let rev = descr(v, u);
    if fwd <= rev {
        [fwd, rev]
    } else {
        [rev, fwd]
    }
}

/// One size band of a [`ScenarioStream`]: all scenarios with exactly
/// `size` failed links occupy ranks `start .. start + count`.
#[derive(Clone, Copy, Debug)]
struct SizeBand {
    size: usize,
    start: u128,
    count: u128,
}

/// The lazy form of the exhaustive enumeration: every `1..=k`-subset of
/// the link list, addressable by **rank** in the canonical enumeration
/// order (by failure count, then lexicographically by link index — the
/// exact order `enumerate_scenarios` produced).
///
/// Any `(start, len)` rank range is materialized without enumerating its
/// predecessors: the start rank is *unranked* into a combination directly
/// (size band lookup + lexicographic combination unranking), and the rest
/// of the range steps through cheap lexicographic successors. This is what
/// lets the network-level sweep hand workers chunked ranges of an implicit
/// scenario space instead of an `Arc<Vec>` of all `C(L, k)` scenarios.
#[derive(Clone, Debug)]
pub struct ScenarioStream {
    links: Vec<(NodeId, NodeId)>,
    k: usize,
    bands: Vec<SizeBand>,
    total: u128,
    /// Canonical link pair → index in `links` (for [`ScenarioStream::rank_of`]).
    index_of_link: HashMap<(NodeId, NodeId), usize>,
}

/// `C(n, k)`, exact in `u128` for every feasible stream (saturating only
/// far beyond any rank a 64-bit machine could iterate).
fn binom(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut c: u128 = 1;
    for i in 0..k {
        // Exact at every step: c holds C(n, i) and C(n, i) * (n - i) is
        // divisible by i + 1.
        c = c.saturating_mul((n - i) as u128) / (i as u128 + 1);
    }
    c
}

impl ScenarioStream {
    /// The stream of every `1..=k` failure scenario of `graph`, in
    /// canonical enumeration order.
    pub fn new(graph: &Graph, k: usize) -> Self {
        Self::over_links(graph.links(), k)
    }

    /// The stream over an explicit canonical link list (as produced by
    /// [`Graph::links`]).
    pub fn over_links(links: Vec<(NodeId, NodeId)>, k: usize) -> Self {
        let mut bands = Vec::new();
        let mut total: u128 = 0;
        for size in 1..=k.min(links.len()) {
            let count = binom(links.len(), size);
            bands.push(SizeBand {
                size,
                start: total,
                count,
            });
            total += count;
        }
        let index_of_link = links.iter().enumerate().map(|(i, &l)| (l, i)).collect();
        ScenarioStream {
            links,
            k,
            bands,
            total,
            index_of_link,
        }
    }

    /// The failure bound.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of links the subsets draw from.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Total scenario count (`C(L,1)+…+C(L,k)`), saturating at
    /// `usize::MAX` like [`exhaustive_scenario_count`].
    pub fn len(&self) -> usize {
        usize::try_from(self.total).unwrap_or(usize::MAX)
    }

    /// True when the stream holds no scenarios (`k == 0` or no links).
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The scenario at `rank` — without enumerating its predecessors.
    ///
    /// # Panics
    ///
    /// Panics when `rank >= len()`.
    pub fn get(&self, rank: usize) -> FailureScenario {
        let mut iter = self.iter_range(rank, 1);
        iter.next()
            .unwrap_or_else(|| panic!("rank {rank} out of range for {} scenarios", self.len()))
    }

    /// The rank of a scenario in this stream, `None` when any of its
    /// links is not a link of the stream (or it is empty / above `k`).
    pub fn rank_of(&self, scenario: &FailureScenario) -> Option<usize> {
        let size = scenario.links.len();
        if size == 0 || size > self.k {
            return None;
        }
        let mut idx: Vec<usize> = scenario
            .links
            .iter()
            .map(|l| self.index_of_link.get(l).copied())
            .collect::<Option<_>>()?;
        idx.sort_unstable();
        let band = self.bands.get(size - 1)?;
        debug_assert_eq!(band.size, size);
        let n = self.links.len();
        let mut within: u128 = 0;
        for (i, &c) in idx.iter().enumerate() {
            let lo = if i == 0 { 0 } else { idx[i - 1] + 1 };
            for x in lo..c {
                within += binom(n - 1 - x, size - 1 - i);
            }
        }
        usize::try_from(band.start + within).ok()
    }

    /// Iterates the scenarios of the rank range `start .. start + len`
    /// (clamped to the stream's end): one combination unranking, then
    /// lexicographic successor stepping.
    pub fn iter_range(&self, start: usize, len: usize) -> ScenarioRangeIter<'_> {
        bonsai_obs::add("scenarios.ranges.unranked", 1);
        let start = (start as u128).min(self.total);
        let end = start.saturating_add(len as u128).min(self.total);
        let remaining = (end - start) as usize;
        let (band_idx, chosen) = if remaining == 0 {
            (self.bands.len(), Vec::new())
        } else {
            let band_idx = self.bands.partition_point(|b| b.start + b.count <= start);
            let band = &self.bands[band_idx];
            (
                band_idx,
                unrank_combination(self.links.len(), band.size, start - band.start),
            )
        };
        ScenarioRangeIter {
            stream: self,
            band: band_idx,
            chosen,
            remaining,
        }
    }

    /// Iterates the whole stream.
    pub fn iter(&self) -> ScenarioRangeIter<'_> {
        self.iter_range(0, self.len())
    }

    /// Materializes the whole stream (the exhaustive enumeration, in
    /// canonical order).
    pub fn to_vec(&self) -> Vec<FailureScenario> {
        self.iter().collect()
    }
}

/// Unranks the `rank`-th (lexicographic) `size`-combination of `0..n`.
fn unrank_combination(n: usize, size: usize, mut rank: u128) -> Vec<usize> {
    let mut chosen = Vec::with_capacity(size);
    let mut x = 0usize;
    let mut remaining = size;
    while remaining > 0 {
        // Combinations that continue with x lead with C(n-1-x, remaining-1)
        // completions.
        let c = binom(n - 1 - x, remaining - 1);
        if rank < c {
            chosen.push(x);
            remaining -= 1;
        } else {
            rank -= c;
        }
        x += 1;
    }
    chosen
}

/// Iterator over a rank range of a [`ScenarioStream`] (see
/// [`ScenarioStream::iter_range`]).
pub struct ScenarioRangeIter<'a> {
    stream: &'a ScenarioStream,
    /// Current size band (index into `stream.bands`).
    band: usize,
    /// Current combination, as ascending link indices.
    chosen: Vec<usize>,
    remaining: usize,
}

impl Iterator for ScenarioRangeIter<'_> {
    type Item = FailureScenario;

    fn next(&mut self) -> Option<FailureScenario> {
        if self.remaining == 0 || self.band >= self.stream.bands.len() {
            return None;
        }
        let scenario =
            FailureScenario::new(self.chosen.iter().map(|&i| self.stream.links[i]).collect());
        self.remaining -= 1;
        if self.remaining > 0 && !advance_combination(&mut self.chosen, self.stream.links.len()) {
            // Band exhausted: restart at the first combination of the next
            // size.
            self.band += 1;
            if let Some(band) = self.stream.bands.get(self.band) {
                self.chosen = (0..band.size).collect();
            }
        }
        Some(scenario)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for ScenarioRangeIter<'_> {}

/// Steps a combination (ascending indices over `0..n`) to its
/// lexicographic successor in place; `false` when it was the last one.
fn advance_combination(chosen: &mut [usize], n: usize) -> bool {
    let size = chosen.len();
    for j in (0..size).rev() {
        if chosen[j] < n - (size - j) {
            chosen[j] += 1;
            for l in j + 1..size {
                chosen[l] = chosen[l - 1] + 1;
            }
            return true;
        }
    }
    false
}

/// Number of scenarios the exhaustive enumeration produces (the
/// count `C(L,1)+…+C(L,k)`), without materializing them.
/// Saturates at `usize::MAX`.
pub fn exhaustive_scenario_count(num_links: usize, k: usize) -> usize {
    let mut total = 0usize;
    for size in 1..=k.min(num_links) {
        // C(n, size), saturating.
        let mut c = 1usize;
        for i in 0..size {
            c = c.saturating_mul(num_links - i) / (i + 1);
        }
        total = total.saturating_add(c);
    }
    total
}

/// Enumerates scenarios with `1..=k` failed links, pruned by signature:
/// one representative — the enumeration-first scenario — per distinct
/// [`OrbitSignature`], so two scenarios differing only in *which*
/// symmetric links failed collapse to one.
///
/// On symmetric topologies this shrinks the sweep by orders of magnitude
/// (a fattree's `C(L,2)` pair scenarios collapse to a handful of
/// signatures). The enumeration itself walks the exhaustive set once and
/// deduplicates by signature — linear in `C(L,k)` signature computations,
/// the price of the `k ≥ 2` exactness discussed in the module docs.
pub fn enumerate_scenarios_pruned(
    graph: &Graph,
    abstraction: &Abstraction,
    sigs: &SigTable,
    k: usize,
) -> Vec<FailureScenario> {
    let orbits = link_orbits(graph, abstraction, sigs);
    enumerate_scenarios_pruned_with(graph, &orbits, k)
        .into_iter()
        .map(|(s, _)| s)
        .collect()
}

/// [`enumerate_scenarios_pruned`] over prebuilt orbits, returning each
/// representative together with its signature — the single home of the
/// "representative = first scenario of its signature in enumeration
/// order" invariant that [`LinkOrbits::canonical_scenario`] reproduces.
pub fn enumerate_scenarios_pruned_with(
    graph: &Graph,
    orbits: &LinkOrbits,
    k: usize,
) -> Vec<(FailureScenario, OrbitSignature)> {
    let mut seen: BTreeSet<OrbitSignature> = BTreeSet::new();
    let mut out = Vec::new();
    // Exhaustive enumeration is size-major then lexicographic, so the
    // first scenario of each signature is the canonical representative.
    // Streamed: only the representatives are ever materialized.
    for scenario in ScenarioStream::new(graph, k).iter() {
        let sig = orbits
            .signature_of(&scenario)
            .expect("scenario links come from this graph");
        if seen.insert(sig.clone()) {
            out.push((scenario, sig));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Cross-EC canonicalization: quotient classes and canonical signatures.
// ---------------------------------------------------------------------------

/// One labeled quotient out-edge: `(edge sig, neighbor canonical block,
/// concrete edge count)`.
pub type QuotientEdge = (u32, u32, u32);

/// One canonical quotient block: `(origin kind, members, copies, labeled
/// out-edges)`.
pub type QuotientBlock = (u8, u32, u32, Vec<QuotientEdge>);

/// The canonical description of an abstraction's quotient structure: per
/// canonical block its origin kind, member count, BGP copy count and
/// labeled out-edge multiset.
///
/// Two destination classes with equal [`QuotientClass`]es (and equal
/// policy fingerprints) have base abstractions that are isomorphic as
/// sig-labeled quotient graphs — the precondition for transferring a
/// derived per-scenario refinement from one class to the other.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct QuotientClass {
    /// Per canonical block: `(origin kind, members, copies, edges)`.
    pub blocks: Vec<QuotientBlock>,
}

/// The canonical labeling of one class's quotient structure: the class
/// value plus the block → canonical color and orbit → canonical rank maps
/// needed to express signatures in class-relative-free coordinates.
#[derive(Clone, Debug)]
pub struct QuotientCanon {
    /// The canonical quotient description (the cross-EC comparison value).
    pub class: QuotientClass,
    /// Canonical color of each block id (dense rank in canonical order).
    color_of_block: Vec<u32>,
    /// Canonical rank of each orbit id.
    canon_orbit_of: Vec<u32>,
}

impl QuotientCanon {
    /// Canonical color of a block id.
    pub fn color_of(&self, block: u32) -> u32 {
        self.color_of_block[block as usize]
    }

    /// Canonical rank of an orbit id.
    pub fn orbit_rank(&self, orbit: u32) -> u32 {
        self.canon_orbit_of[orbit as usize]
    }
}

/// An [`OrbitSignature`] re-expressed in canonical quotient coordinates:
/// orbit ranks instead of per-EC orbit ids, block colors instead of block
/// ids. Comparable across destination classes with equal policy
/// fingerprints and equal [`QuotientClass`]es — the cross-EC cache key of
/// the network-level sweep.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CanonicalSignature {
    /// `(canonical orbit rank, failed links of that orbit)`, sorted.
    pub counts: Vec<(u32, u32)>,
    /// The canonical failed-subgraph pattern with block colors as vertex
    /// labels and orbit ranks as edge labels.
    pub pattern: FailurePattern,
}

/// Computes the canonical labeling of one class's quotient structure, or
/// `None` when color refinement cannot tell two blocks apart (an
/// ambiguous quotient — cross-EC transfer is then disabled for the class,
/// which costs sharing, never soundness).
pub fn quotient_canon(
    graph: &Graph,
    ec: &EcDest,
    abstraction: &Abstraction,
    sigs: &SigTable,
    orbits: &LinkOrbits,
) -> Option<QuotientCanon> {
    let blocks: Vec<u32> = abstraction.partition.blocks().map(|b| b.0).collect();
    let max_block = blocks.iter().copied().max().map_or(0, |m| m as usize + 1);

    // Static per-block facts.
    let mut origin_kind = vec![0u8; max_block];
    let mut size = vec![0u32; max_block];
    for &b in &blocks {
        let members = abstraction
            .partition
            .members(bonsai_net::partition::BlockId(b));
        size[b as usize] = members.len() as u32;
        origin_kind[b as usize] = members
            .iter()
            .map(|&m| origin_key(ec, NodeId(m)))
            .max()
            .unwrap_or(0);
    }

    // Labeled quotient edges: (block u, sig, block v) -> concrete count.
    let mut qedges: BTreeMap<(u32, u32, u32), u32> = BTreeMap::new();
    for e in graph.edges() {
        let (u, v) = graph.endpoints(e);
        let bu = abstraction.role_of(u).0;
        let bv = abstraction.role_of(v).0;
        *qedges
            .entry((bu, sigs.sig_of_edge[e.index()], bv))
            .or_insert(0) += 1;
    }

    // Color refinement until stable.
    let mut color: HashMap<u32, u32> = blocks.iter().map(|&b| (b, 0u32)).collect();
    // Initial key: static facts only.
    type Key = (u32, (u8, u32, u32), Vec<(u32, u32, u32)>);
    loop {
        let mut keys: Vec<(Key, u32)> = blocks
            .iter()
            .map(|&b| {
                let mut edges: Vec<(u32, u32, u32)> = qedges
                    .iter()
                    .filter(|&(&(bu, _, _), _)| bu == b)
                    .map(|(&(_, sig, bv), &count)| (sig, color[&bv], count))
                    .collect();
                edges.sort_unstable();
                (
                    (
                        color[&b],
                        (
                            origin_kind[b as usize],
                            size[b as usize],
                            abstraction.copies[b as usize],
                        ),
                        edges,
                    ),
                    b,
                )
            })
            .collect();
        keys.sort();
        let mut next: HashMap<u32, u32> = HashMap::new();
        let mut rank = 0u32;
        let mut prev: Option<&Key> = None;
        // Iterate by reference so `prev` can point into the vector.
        for (key, b) in &keys {
            if prev.is_some_and(|p| p != key) {
                rank += 1;
            }
            next.insert(*b, rank);
            prev = Some(key);
        }
        let stable = blocks.iter().all(|b| next[b] == color[b]);
        color = next;
        if stable {
            break;
        }
    }

    // Injectivity: every block must have its own color, otherwise the
    // canonical form would conflate distinct roles.
    let distinct: BTreeSet<u32> = blocks.iter().map(|b| color[b]).collect();
    if distinct.len() != blocks.len() {
        return None;
    }

    let mut color_of_block = vec![u32::MAX; max_block];
    for &b in &blocks {
        color_of_block[b as usize] = color[&b];
    }

    // Canonical quotient description, blocks in color order.
    let mut by_color: Vec<(u32, u32)> = blocks.iter().map(|&b| (color[&b], b)).collect();
    by_color.sort_unstable();
    let class_blocks: Vec<QuotientBlock> = by_color
        .iter()
        .map(|&(_, b)| {
            let mut edges: Vec<(u32, u32, u32)> = qedges
                .iter()
                .filter(|&(&(bu, _, _), _)| bu == b)
                .map(|(&(_, sig, bv), &count)| (sig, color[&bv], count))
                .collect();
            edges.sort_unstable();
            (
                origin_kind[b as usize],
                size[b as usize],
                abstraction.copies[b as usize],
                edges,
            )
        })
        .collect();

    // Canonical orbit ranks: orbits sorted by their color-relabeled keys.
    let mut orbit_keys: Vec<([Descr; 2], u32)> = Vec::with_capacity(orbits.num_orbits());
    for (id, members) in orbits.orbits.iter().enumerate() {
        let (u, v) = orbits.links[members[0]];
        let relabel = |d: Descr| -> Descr {
            (
                color_of_block[d.0 as usize],
                color_of_block[d.1 as usize],
                d.2,
            )
        };
        let raw = orbit_key(graph, abstraction, sigs, u, v);
        let a = relabel(raw[0]);
        let b = relabel(raw[1]);
        let key = if a <= b { [a, b] } else { [b, a] };
        orbit_keys.push((key, id as u32));
    }
    orbit_keys.sort();
    debug_assert!(
        orbit_keys.windows(2).all(|w| w[0].0 != w[1].0),
        "injective block colors must keep orbit keys distinct"
    );
    let mut canon_orbit_of = vec![u32::MAX; orbits.num_orbits()];
    for (rank, &(_, id)) in orbit_keys.iter().enumerate() {
        canon_orbit_of[id as usize] = rank as u32;
    }

    Some(QuotientCanon {
        class: QuotientClass {
            blocks: class_blocks,
        },
        color_of_block,
        canon_orbit_of,
    })
}

/// Re-expresses a scenario's signature in canonical quotient coordinates
/// (see [`CanonicalSignature`]). Returns `None` when a failed link is
/// unknown to the orbits, or when the pattern could not be canonicalized
/// (raw node ids would not transfer across classes).
pub fn canonical_signature_of(
    orbits: &LinkOrbits,
    canon: &QuotientCanon,
    scenario: &FailureScenario,
) -> Option<CanonicalSignature> {
    let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
    for &link in &scenario.links {
        *counts
            .entry(canon.orbit_rank(orbits.orbit_of(link)?))
            .or_insert(0) += 1;
    }
    let pattern = failure_pattern(
        scenario,
        &orbits.distances,
        |n| canon.color_of(orbits.block_of_node[n.index()]),
        |l| canon.orbit_rank(orbits.orbit_of(l).expect("links verified above")),
    );
    if !pattern.canonical {
        return None;
    }
    Some(CanonicalSignature {
        counts: counts.into_iter().collect(),
        pattern,
    })
}

/// Recursive combination walk — the independent test oracle the stream's
/// unranking is validated against (production enumeration goes through
/// [`ScenarioStream`]).
#[cfg_attr(not(test), allow(dead_code))]
fn combinations(
    n: usize,
    size: usize,
    start: usize,
    chosen: &mut Vec<usize>,
    emit: &mut impl FnMut(&[usize]),
) {
    if chosen.len() == size {
        emit(chosen);
        return;
    }
    let remaining = size - chosen.len();
    for i in start..=n.saturating_sub(remaining) {
        chosen.push(i);
        combinations(n, size, i + 1, chosen, emit);
        chosen.pop();
    }
}

/// [`combinations`] with an aborting visitor: stops the whole walk as
/// soon as `visit` returns true. Returns whether the walk was aborted.
fn search_combinations(
    n: usize,
    size: usize,
    start: usize,
    chosen: &mut Vec<usize>,
    visit: &mut impl FnMut(&[usize]) -> bool,
) -> bool {
    if chosen.len() == size {
        return visit(chosen);
    }
    let remaining = size - chosen.len();
    for i in start..=n.saturating_sub(remaining) {
        chosen.push(i);
        let stop = search_combinations(n, size, i + 1, chosen, visit);
        chosen.pop();
        if stop {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CompiledPolicies;
    use crate::signatures::build_sig_table;
    use bonsai_config::BuiltTopology;
    use bonsai_srp::instance::{EcDest, OriginProto};
    use bonsai_srp::papernets;

    fn gadget_setup() -> (BuiltTopology, Abstraction, std::sync::Arc<SigTable>, EcDest) {
        let net = papernets::figure2_gadget();
        let topo = BuiltTopology::build(&net).unwrap();
        let d = topo.graph.node_by_name("d").unwrap();
        let ec = EcDest::new(
            papernets::DEST_PREFIX.parse().unwrap(),
            vec![(d, OriginProto::Bgp)],
        );
        let engine = CompiledPolicies::from_network(&net, false);
        let sigs = build_sig_table(&engine, &net, &topo, &ec);
        let abs = crate::algorithm::find_abstraction(&topo.graph, &ec, &sigs);
        (topo, abs, sigs, ec)
    }

    /// The independent enumeration oracle: the recursive combination walk
    /// the stream replaced, over the same link list.
    fn enumerate_oracle(graph: &Graph, k: usize) -> Vec<FailureScenario> {
        let links = graph.links();
        let mut out = Vec::new();
        let mut chosen: Vec<usize> = Vec::new();
        for size in 1..=k.min(links.len()) {
            combinations(links.len(), size, 0, &mut chosen, &mut |c| {
                out.push(FailureScenario::new(c.iter().map(|&i| links[i]).collect()));
            });
        }
        out
    }

    #[test]
    fn exhaustive_enumeration_counts() {
        let (topo, _, _, _) = gadget_setup();
        // The gadget has 6 links: C(6,1)=6, C(6,2)=15.
        assert_eq!(topo.graph.link_count(), 6);
        let s1 = ScenarioStream::new(&topo.graph, 1).to_vec();
        assert_eq!(s1.len(), 6);
        let s2 = ScenarioStream::new(&topo.graph, 2).to_vec();
        assert_eq!(s2.len(), 21);
        assert_eq!(exhaustive_scenario_count(6, 2), 21);
        // All distinct, all within bounds.
        let set: std::collections::BTreeSet<_> = s2.iter().collect();
        assert_eq!(set.len(), 21);
        assert!(s2.iter().all(|s| (1..=2).contains(&s.len())));
    }

    #[test]
    fn stream_matches_recursive_oracle_in_order() {
        let (topo, _, _, _) = gadget_setup();
        for k in 0..=4 {
            let stream = ScenarioStream::new(&topo.graph, k);
            let oracle = enumerate_oracle(&topo.graph, k);
            assert_eq!(stream.len(), oracle.len(), "k={k}");
            assert_eq!(stream.to_vec(), oracle, "k={k}");
        }
    }

    #[test]
    fn stream_ranges_slice_the_full_enumeration() {
        let (topo, _, _, _) = gadget_setup();
        let stream = ScenarioStream::new(&topo.graph, 3);
        let full = stream.to_vec();
        assert_eq!(full.len(), 6 + 15 + 20);
        for start in 0..=full.len() {
            for len in [0, 1, 2, 5, 7, full.len()] {
                let got: Vec<_> = stream.iter_range(start, len).collect();
                let end = (start + len).min(full.len());
                assert_eq!(got, full[start..end], "start={start} len={len}");
            }
        }
        // Past-the-end ranges are empty, not a panic.
        assert_eq!(stream.iter_range(full.len() + 3, 10).count(), 0);
    }

    #[test]
    fn stream_get_and_rank_of_roundtrip() {
        let (topo, _, _, _) = gadget_setup();
        let stream = ScenarioStream::new(&topo.graph, 3);
        for (rank, scenario) in stream.to_vec().into_iter().enumerate() {
            assert_eq!(stream.get(rank), scenario);
            assert_eq!(stream.rank_of(&scenario), Some(rank));
        }
        // A scenario above the bound or off the graph has no rank.
        let four = stream.get(stream.len() - 1); // largest k=3 scenario
        let mut links = four.links.clone();
        links.extend(stream.get(0).links.clone());
        assert_eq!(stream.rank_of(&FailureScenario::new(links)), None);
    }

    #[test]
    fn empty_streams_behave() {
        let (topo, _, _, _) = gadget_setup();
        let stream = ScenarioStream::new(&topo.graph, 0);
        assert!(stream.is_empty());
        assert_eq!(stream.len(), 0);
        assert_eq!(stream.iter().count(), 0);
    }

    #[test]
    fn gadget_links_fall_into_two_orbits() {
        // {bi—d} and {bi—a} are each one orbit: identical block pairs and
        // identical compiled signatures both ways.
        let (topo, abs, sigs, _) = gadget_setup();
        let orbits = link_orbits(&topo.graph, &abs, &sigs);
        assert_eq!(orbits.links.len(), 6);
        assert_eq!(orbits.num_orbits(), 2);
        for o in &orbits.orbits {
            assert_eq!(o.len(), 3);
        }
        // Links of one orbit share endpoint blocks.
        for o in &orbits.orbits {
            let blocks: std::collections::BTreeSet<_> = o
                .iter()
                .map(|&li| {
                    let (u, v) = orbits.links[li];
                    let mut pair = [abs.role_of(u), abs.role_of(v)];
                    pair.sort();
                    pair
                })
                .collect();
            assert_eq!(blocks.len(), 1);
        }
    }

    #[test]
    fn pruned_enumeration_collapses_symmetric_scenarios() {
        let (topo, abs, sigs, _) = gadget_setup();
        // k=1: 6 exhaustive scenarios collapse to 2 (one per orbit).
        let p1 = enumerate_scenarios_pruned(&topo.graph, &abs, &sigs, 1);
        assert_eq!(p1.len(), 2);
        // k=2: the orbit-count multisets {2+0, 0+2, 1+1} split further by
        // sharing structure — the mixed 1+1 class distinguishes "both
        // failures at one b" from "failures at different b's" — plus the
        // two k=1 classes: 6 total.
        let p2 = enumerate_scenarios_pruned(&topo.graph, &abs, &sigs, 2);
        assert_eq!(p2.len(), 6);
        assert!(p2.len() < ScenarioStream::new(&topo.graph, 2).to_vec().len());
        // Every pruned scenario is a member of the exhaustive set.
        let all: std::collections::BTreeSet<_> = ScenarioStream::new(&topo.graph, 2)
            .to_vec()
            .into_iter()
            .collect();
        assert!(p2.iter().all(|s| all.contains(s)));
    }

    #[test]
    fn masks_cover_both_directions() {
        let (topo, _, _, _) = gadget_setup();
        let s = ScenarioStream::new(&topo.graph, 1).to_vec();
        for sc in &s {
            let mask = sc.mask(&topo.graph);
            assert_eq!(mask.disabled_count(), 2, "{}", sc.describe(&topo.graph));
        }
    }

    #[test]
    fn signatures_collapse_symmetric_scenarios() {
        let (topo, abs, sigs, _) = gadget_setup();
        let orbits = link_orbits(&topo.graph, &abs, &sigs);
        // Every k=1 scenario of one orbit shares a signature; the two
        // orbits give exactly two distinct signatures.
        let all = ScenarioStream::new(&topo.graph, 1).to_vec();
        let sigset: std::collections::BTreeSet<OrbitSignature> = all
            .iter()
            .map(|s| orbits.signature_of(s).unwrap())
            .collect();
        assert_eq!(sigset.len(), 2);
        for sig in &sigset {
            assert_eq!(sig.total_failures(), 1);
        }
        // k=2 exhaustive (21 scenarios) collapses to the 6 pruned
        // signatures: signatures and pruned enumeration agree exactly.
        let all2 = ScenarioStream::new(&topo.graph, 2).to_vec();
        let sigset2: std::collections::BTreeSet<OrbitSignature> = all2
            .iter()
            .map(|s| orbits.signature_of(s).unwrap())
            .collect();
        assert_eq!(sigset2.len(), 6);
        let pruned = enumerate_scenarios_pruned(&topo.graph, &abs, &sigs, 2);
        assert_eq!(pruned.len(), sigset2.len());
    }

    /// The k ≥ 2 exactness regression: in the gadget's b—d orbit, failing
    /// a b—d link together with the *same* b's link toward `a` shares an
    /// endpoint, while pairing it with a *different* b's link does not.
    /// The old orbit-count multiset signature merged the two (both are
    /// "one failure in each orbit"); the pattern-refined signature keeps
    /// them apart, and their derived splits genuinely differ (3 vs 4
    /// distinct endpoints).
    #[test]
    fn pattern_distinguishes_shared_endpoint_from_disjoint_pairs() {
        let (topo, abs, sigs, _) = gadget_setup();
        let orbits = link_orbits(&topo.graph, &abs, &sigs);
        let n = |name: &str| topo.graph.node_by_name(name).unwrap();
        let shared = FailureScenario::new(vec![(n("d"), n("b1")), (n("a"), n("b1"))]);
        let disjoint = FailureScenario::new(vec![(n("d"), n("b1")), (n("a"), n("b2"))]);
        let sig_shared = orbits.signature_of(&shared).unwrap();
        let sig_disjoint = orbits.signature_of(&disjoint).unwrap();
        // The old multiset part agrees — this is exactly what the pruned
        // audit used to key by...
        assert_eq!(sig_shared.counts, sig_disjoint.counts);
        // ...but the full signatures differ (the bug this fixes).
        assert_ne!(sig_shared, sig_disjoint);
        // Shared-endpoint scenarios have 3 distinct endpoints, disjoint 4.
        assert_eq!(sig_shared.pattern.vertex_labels.len(), 3);
        assert_eq!(sig_disjoint.pattern.vertex_labels.len(), 4);
        // Symmetric counterparts still collapse onto the representatives.
        let shared2 = FailureScenario::new(vec![(n("d"), n("b3")), (n("a"), n("b3"))]);
        let disjoint2 = FailureScenario::new(vec![(n("d"), n("b3")), (n("a"), n("b2"))]);
        assert_eq!(orbits.signature_of(&shared2).unwrap(), sig_shared);
        assert_eq!(orbits.signature_of(&disjoint2).unwrap(), sig_disjoint);
    }

    #[test]
    fn canonical_scenario_matches_pruned_representative() {
        let (topo, abs, sigs, _) = gadget_setup();
        let orbits = link_orbits(&topo.graph, &abs, &sigs);
        // For every pruned representative, round-tripping through its
        // signature reproduces the representative itself.
        for rep in enumerate_scenarios_pruned(&topo.graph, &abs, &sigs, 2) {
            let sig = orbits.signature_of(&rep).unwrap();
            assert_eq!(orbits.canonical_scenario(&sig), rep);
        }
        // Every exhaustive scenario canonicalizes to *some* pruned
        // representative with the same signature.
        let pruned: std::collections::BTreeSet<_> =
            enumerate_scenarios_pruned(&topo.graph, &abs, &sigs, 2)
                .into_iter()
                .collect();
        for s in ScenarioStream::new(&topo.graph, 2).to_vec() {
            let sig = orbits.signature_of(&s).unwrap();
            let rep = orbits.canonical_scenario(&sig);
            assert!(pruned.contains(&rep), "{}", s.describe(&topo.graph));
            assert_eq!(orbits.signature_of(&rep).unwrap(), sig);
        }
    }

    /// The gadget's quotient canonicalizes (three roles, all colors
    /// distinct) and canonical signatures collapse exactly like per-EC
    /// ones.
    #[test]
    fn quotient_canonicalization_is_injective_on_the_gadget() {
        let (topo, abs, sigs, ec) = gadget_setup();
        let orbits = link_orbits(&topo.graph, &abs, &sigs);
        let canon = quotient_canon(&topo.graph, &ec, &abs, &sigs, &orbits)
            .expect("gadget quotient has distinct roles");
        assert_eq!(canon.class.blocks.len(), 3);
        // The origin block is flagged.
        assert_eq!(
            canon.class.blocks.iter().filter(|b| b.0 != 0).count(),
            1,
            "{:?}",
            canon.class
        );
        // Canonical signatures collapse the k=2 exhaustive set to the same
        // 6 classes as the per-EC signatures.
        let canonical: std::collections::BTreeSet<CanonicalSignature> =
            ScenarioStream::new(&topo.graph, 2)
                .to_vec()
                .iter()
                .map(|s| canonical_signature_of(&orbits, &canon, s).unwrap())
                .collect();
        assert_eq!(canonical.len(), 6);
    }

    #[test]
    fn describe_uses_node_names() {
        let (topo, _, _, _) = gadget_setup();
        let d = topo.graph.node_by_name("d").unwrap();
        let b1 = topo.graph.node_by_name("b1").unwrap();
        let sc = FailureScenario::new(vec![(d, b1)]);
        assert_eq!(sc.describe(&topo.graph), "{d—b1}");
    }
}
