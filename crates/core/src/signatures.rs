//! Canonical per-edge transfer-function signatures.
//!
//! Algorithm 1 refines the abstraction by grouping nodes whose edges carry
//! equal policies toward equal neighbors. The "equal policies" test is the
//! hot operation: this module compiles, for every directed edge and one
//! destination equivalence class, an [`EdgeSig`] — a small hashable value
//! combining
//!
//! * the BGP import∘export BDD signature (drop predicate, community
//!   rewrites, local-preference / MED / prepend cases, session kind),
//! * the OSPF edge facts (cost, area crossing),
//! * static-route presence,
//! * ACL behavior toward the destination on both interfaces (paper §6),
//! * the exporter-side redistribution switches.
//!
//! Since BDD `Ref`s are canonical within the shared arena, `EdgeSig`
//! equality is semantic transfer-function equality (modulo BGP loop
//! prevention — `transfer-approx`, paper §4.3), and hashing an `EdgeSig`
//! is O(signature length).
//!
//! The BGP part of every signature is compiled through the run-wide
//! [`CompiledPolicies`] engine, so classes that resolve the same route
//! maps the same way share both the compilation work and the resulting
//! canonical `Ref`s; only the cheap per-class facts (ACL/static outcomes
//! for the class's packet ranges) are recomputed here.

use crate::engine::CompiledPolicies;
use bonsai_bdd::Ref;
use bonsai_config::{BuiltTopology, NetworkConfig};
use bonsai_net::NodeId;
use bonsai_srp::instance::EcDest;

/// Resulting local preference of an import: an explicit value, or the
/// session default (receiver's configured default for eBGP, inherited from
/// the sender for iBGP).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum LpOut {
    /// `set local-preference` fired (or the receiver default applied).
    Const(u32),
    /// iBGP: local preference carried over from the neighbor's attribute.
    Inherit,
}

/// Resulting MED, mirroring [`LpOut`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum MedOut {
    /// Explicit or defaulted constant.
    Const(u32),
    /// iBGP: carried over.
    Inherit,
}

/// The BGP part of an edge signature (present iff a session runs on it).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct BgpSig {
    /// iBGP session.
    pub ibgp: bool,
    /// Inputs (community sets) for which the route is dropped.
    pub drop: Ref,
    /// Per modeled community: presence after the edge, masked by ¬drop.
    pub comm: Vec<Ref>,
    /// Disjoint, covering local-preference cases (sorted).
    pub lp: Vec<(LpOut, Ref)>,
    /// Disjoint, covering MED cases (sorted).
    pub med: Vec<(MedOut, Ref)>,
    /// Disjoint prepend-count cases for nonzero counts (sorted).
    pub prepend: Vec<(u8, Ref)>,
    /// Exporter redistributes static routes into BGP.
    pub redist_static: bool,
    /// Exporter redistributes OSPF into BGP.
    pub redist_ospf: bool,
    /// Exporter's default local preference (seed of redistributed routes,
    /// inherited over iBGP).
    pub exporter_default_lp: u32,
}

/// The full canonical signature of one directed edge for one destination
/// equivalence class.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct EdgeSig {
    /// BGP session signature.
    pub bgp: Option<BgpSig>,
    /// OSPF facts: `(cost, crosses_area)`.
    pub ospf: Option<(u32, bool)>,
    /// Receiver has a matching static route out of this edge.
    pub static_route: bool,
    /// Exporter redistributes static routes into OSPF.
    pub ospf_redist_static: bool,
    /// The receiver's egress ACL permits traffic to the destination
    /// (None = no ACL configured).
    pub acl_out: Option<bool>,
    /// The sender's ingress ACL permits traffic to the destination.
    pub acl_in: Option<bool>,
}

/// All edge signatures of one (network, EC) pair, interned to dense ids so
/// the refinement loop compares plain integers.
///
/// `PartialEq` compares the full interned content. Because signature ids
/// are assigned in deterministic edge order and `Ref`s are canonical
/// within one arena, equality of two tables **built through the same
/// engine** is semantic transfer-function equality edge by edge — the
/// proof obligation of post-delta fingerprint adoption
/// ([`CompiledPolicies::adopt_fingerprint`]). Comparing tables from
/// different engines is meaningless (`Ref`s are arena-scoped).
#[derive(PartialEq, Eq)]
pub struct SigTable {
    /// Interned signature id per edge.
    pub sig_of_edge: Vec<u32>,
    /// The distinct signatures, indexed by id.
    pub sigs: Vec<EdgeSig>,
    /// Per node: the set of local-preference values its import policies can
    /// assign for this EC, plus its default (paper's `prefs(v)`).
    pub prefs: Vec<Vec<u32>>,
}

impl SigTable {
    /// Number of distinct signatures.
    pub fn distinct(&self) -> usize {
        self.sigs.len()
    }

    /// `|prefs(û)|` for a set of concrete nodes: size of the union.
    pub fn prefs_of_block(&self, members: &[u32]) -> usize {
        let mut union: Vec<u32> = Vec::new();
        for &m in members {
            union.extend_from_slice(&self.prefs[m as usize]);
        }
        union.sort_unstable();
        union.dedup();
        union.len()
    }
}

/// Compiles every edge's signature for one destination class, through the
/// run-wide shared engine. Classes with identical destination-dependent
/// residues (prefix-list outcomes, ACL/static outcomes) share one cached
/// table wholesale — see [`CompiledPolicies::sig_table`].
pub fn build_sig_table(
    engine: &CompiledPolicies,
    network: &NetworkConfig,
    topo: &BuiltTopology,
    ec: &EcDest,
) -> std::sync::Arc<SigTable> {
    engine.sig_table(network, topo, ec)
}

/// Constructs the table data for one class (called by the engine on a
/// table-cache miss). `outcomes` carries the already-evaluated per-edge
/// static/ACL bits; `statics` the destination-independent edge facts.
pub(crate) fn build_table_data(
    engine: &CompiledPolicies,
    network: &NetworkConfig,
    topo: &BuiltTopology,
    dest: bonsai_net::prefix::Prefix,
    statics: &crate::engine::EdgeStatics,
    outcomes: &[u8],
) -> SigTable {
    let mut interner: std::collections::HashMap<EdgeSig, u32> = std::collections::HashMap::new();
    let mut sigs: Vec<EdgeSig> = Vec::new();
    let mut sig_of_edge = Vec::with_capacity(topo.graph.edge_count());

    for e in topo.graph.edges() {
        let (u, v) = topo.graph.endpoints(e);

        // BGP signature: exporter stage at v, importer stage at u —
        // compiled (or recalled) by the shared engine.
        let bgp = statics.sessions[e.index()]
            .as_ref()
            .map(|session| engine.bgp_edge_sig(network, dest, u.index(), v.index(), session));

        let ospf = statics.ospf[e.index()];
        let ospf_redist_static = statics.ospf_redist_static[e.index()];
        let (static_route, acl_out, acl_in) =
            crate::engine::unpack_edge_outcome(outcomes[e.index()]);

        let sig = EdgeSig {
            bgp,
            ospf,
            static_route,
            ospf_redist_static,
            acl_out,
            acl_in,
        };
        let next = sigs.len() as u32;
        let id = *interner.entry(sig.clone()).or_insert_with(|| {
            sigs.push(sig);
            next
        });
        sig_of_edge.push(id);
    }

    // prefs(v): union of feasible Const local preferences over the node's
    // learning edges, plus its own default.
    let mut prefs: Vec<Vec<u32>> = vec![Vec::new(); topo.graph.node_count()];
    for u in topo.graph.nodes() {
        let mut set: Vec<u32> = Vec::new();
        if let Some(bgp) = &network.devices[u.index()].bgp {
            set.push(bgp.default_local_pref);
        }
        for e in topo.graph.out(u) {
            if let Some(bgp_sig) = &sigs[sig_of_edge[e.index()] as usize].bgp {
                for &(out, cond) in &bgp_sig.lp {
                    if cond != Ref::FALSE {
                        if let LpOut::Const(v) = out {
                            set.push(v);
                        }
                    }
                }
            }
        }
        set.sort_unstable();
        set.dedup();
        prefs[u.index()] = set;
    }

    SigTable {
        sig_of_edge,
        sigs,
        prefs,
    }
}

/// Per-node refinement facts that are not edge-local: whether the node is
/// an origin of the class (and into which protocol).
pub fn origin_key(ec: &EcDest, u: NodeId) -> u8 {
    match ec.origins.iter().find(|(n, _)| *n == u) {
        None => 0,
        Some((_, bonsai_srp::instance::OriginProto::Bgp)) => 1,
        Some((_, bonsai_srp::instance::OriginProto::Ospf)) => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_config::parse_network;
    use bonsai_srp::instance::OriginProto;

    fn setup(text: &str) -> (NetworkConfig, BuiltTopology) {
        let net = parse_network(text).unwrap();
        let topo = BuiltTopology::build(&net).unwrap();
        (net, topo)
    }

    /// In the Figure 2 gadget, the three b-routers' edges toward `a` must
    /// share one signature, and their edges toward `d` another.
    #[test]
    fn gadget_edges_share_signatures() {
        let net = bonsai_srp::papernets::figure2_gadget();
        let topo = BuiltTopology::build(&net).unwrap();
        let d = topo.graph.node_by_name("d").unwrap();
        let ec = EcDest::new("10.0.0.0/24".parse().unwrap(), vec![(d, OriginProto::Bgp)]);
        let engine = CompiledPolicies::from_network(&net, false);
        let table = build_sig_table(&engine, &net, &topo, &ec);

        let a = topo.graph.node_by_name("a").unwrap();
        let sig_to_a: Vec<u32> = ["b1", "b2", "b3"]
            .iter()
            .map(|n| {
                let b = topo.graph.node_by_name(n).unwrap();
                let e = topo.graph.find_edge(b, a).unwrap();
                table.sig_of_edge[e.index()]
            })
            .collect();
        assert_eq!(sig_to_a[0], sig_to_a[1]);
        assert_eq!(sig_to_a[1], sig_to_a[2]);

        let sig_to_d: Vec<u32> = ["b1", "b2", "b3"]
            .iter()
            .map(|n| {
                let b = topo.graph.node_by_name(n).unwrap();
                let e = topo.graph.find_edge(b, d).unwrap();
                table.sig_of_edge[e.index()]
            })
            .collect();
        assert_eq!(sig_to_d[0], sig_to_d[1]);
        assert_eq!(sig_to_d[1], sig_to_d[2]);
        // Toward a (lp 200 import) differs from toward d (default).
        assert_ne!(sig_to_a[0], sig_to_d[0]);

        // prefs: each b can use {100, 200}; a and d only {100}.
        let b1 = topo.graph.node_by_name("b1").unwrap();
        assert_eq!(table.prefs[b1.index()], vec![100, 200]);
        assert_eq!(table.prefs[a.index()], vec![100]);
        assert_eq!(table.prefs_of_block(&[b1.0]), 2);
    }

    /// Different export policies at the far end yield different signatures
    /// even when the import side is identical.
    #[test]
    fn exporter_policy_distinguishes_edges() {
        let (net, topo) = setup(
            "
device x1
interface i
route-map OUT permit 10
 set as-path prepend 3
router bgp 1
 network 10.0.0.0/24
 neighbor i remote-as external
 neighbor i route-map OUT out
end
device x2
interface i
router bgp 2
 network 10.0.0.0/24
 neighbor i remote-as external
end
device y
interface a
interface b
router bgp 3
 neighbor a remote-as external
 neighbor b remote-as external
end
link x1 i y a
link x2 i y b
",
        );
        let y = topo.graph.node_by_name("y").unwrap();
        let x1 = topo.graph.node_by_name("x1").unwrap();
        let x2 = topo.graph.node_by_name("x2").unwrap();
        let ec = EcDest::new(
            "10.0.0.0/24".parse().unwrap(),
            vec![(x1, OriginProto::Bgp), (x2, OriginProto::Bgp)],
        );
        let engine = CompiledPolicies::from_network(&net, false);
        let table = build_sig_table(&engine, &net, &topo, &ec);
        let e1 = topo.graph.find_edge(y, x1).unwrap();
        let e2 = topo.graph.find_edge(y, x2).unwrap();
        assert_ne!(table.sig_of_edge[e1.index()], table.sig_of_edge[e2.index()]);
        let s1 = &table.sigs[table.sig_of_edge[e1.index()] as usize];
        assert_eq!(s1.bgp.as_ref().unwrap().prepend, vec![(3, Ref::TRUE)]);
    }

    /// ACLs toward the destination are part of the signature (paper §6).
    #[test]
    fn acls_fold_into_signatures() {
        let (net, topo) = setup(
            "
device x
interface i
router bgp 1
 network 10.0.0.0/24
 neighbor i remote-as external
end
device y1
interface i
 ip access-group BLOCK out
ip access-list BLOCK deny 10.0.0.0/24
ip access-list BLOCK permit any
router bgp 2
 neighbor i remote-as external
end
link x i y1 i
",
        );
        let x = topo.graph.node_by_name("x").unwrap();
        let y1 = topo.graph.node_by_name("y1").unwrap();
        let ec = EcDest::new("10.0.0.0/24".parse().unwrap(), vec![(x, OriginProto::Bgp)]);
        let engine = CompiledPolicies::from_network(&net, false);
        let table = build_sig_table(&engine, &net, &topo, &ec);
        let e = topo.graph.find_edge(y1, x).unwrap();
        let sig = &table.sigs[table.sig_of_edge[e.index()] as usize];
        assert_eq!(sig.acl_out, Some(false)); // y1's ACL blocks the dest
                                              // For a different destination the same ACL permits.
        let ec2 = EcDest::new("10.7.0.0/24".parse().unwrap(), vec![(x, OriginProto::Bgp)]);
        let engine2 = CompiledPolicies::from_network(&net, false);
        let table2 = build_sig_table(&engine2, &net, &topo, &ec2);
        let sig2 = &table2.sigs[table2.sig_of_edge[e.index()] as usize];
        assert_eq!(sig2.acl_out, Some(true));
    }

    #[test]
    fn origin_key_distinguishes_protocols() {
        let ec = EcDest::new(
            "10.0.0.0/24".parse().unwrap(),
            vec![
                (NodeId(1), OriginProto::Bgp),
                (NodeId(2), OriginProto::Ospf),
            ],
        );
        assert_eq!(origin_key(&ec, NodeId(0)), 0);
        assert_eq!(origin_key(&ec, NodeId(1)), 1);
        assert_eq!(origin_key(&ec, NodeId(2)), 2);
    }
}
