//! The shared snapshot serializer: a minimal JSON reader/writer plus the
//! one versioned **envelope** every persisted artifact in the workspace
//! uses.
//!
//! The workspace is offline (no serde); snapshots are *written* with the
//! hand-rolled helpers here and in `bonsai-bench`, and *read back* by the
//! CI perf-regression gate and the daemon with the hand-rolled
//! recursive-descent parser below. It supports exactly the JSON the
//! snapshots use — objects, arrays, strings (with the escapes our writer
//! emits), finite numbers, booleans and null — and rejects anything
//! malformed with a byte offset.
//!
//! # The envelope (`bonsai/envelope-v1`)
//!
//! Historically each producer invented its own top-level schema
//! (`bonsai-bench/compress-v1`, `bonsai-bench/failures-v3`,
//! `bonsai-cli/failures-v1`). Every snapshot now shares one envelope:
//!
//! ```json
//! {
//!   "schema": "bonsai/envelope-v1",
//!   "kind": "bench/failures",
//!   "version": 4,
//!   "git_sha": "…",
//!   "toolchain": "…",
//!   "payload": { … }
//! }
//! ```
//!
//! * `schema` is always the literal [`ENVELOPE_SCHEMA`].
//! * `kind` names the payload family (`"bench/compress"`,
//!   `"bench/failures"`, `"cli/failures"`, `"bonsai/session"` …).
//! * `version` is the payload's own schema version; readers bump it when
//!   the payload shape changes incompatibly.
//! * `payload` is the kind-specific document.
//!
//! [`Envelope::parse`] recognizes the pre-envelope dialects and fails
//! with an explicit "legacy snapshot" message telling the caller to
//! regenerate, rather than a confusing field-missing error.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`, which covers every value the
    /// snapshot writers emit).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the last value on
    /// lookup, like most readers).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing garbage after document"));
        }
        Ok(v)
    }

    /// Object field lookup (last occurrence wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset into the document.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// An ordered single-line JSON object builder: fields render in
/// insertion order, exactly once, with no trailing whitespace — the
/// byte-deterministic shape the daemon's line protocol and the snapshot
/// writers both promise. Build with the typed `field_*` methods and
/// [`JsonObj::finish`]:
///
/// ```
/// use bonsai_core::snapshot::JsonObj;
///
/// let mut obj = JsonObj::new();
/// obj.field_bool("ok", true);
/// obj.field_str("op", "ping");
/// obj.field_u64("queries", 3);
/// assert_eq!(obj.finish(), r#"{"ok": true, "op": "ping", "queries": 3}"#);
/// ```
#[derive(Clone, Debug, Default)]
pub struct JsonObj {
    buf: String,
}

impl JsonObj {
    /// An empty object (`{}` if finished immediately).
    pub fn new() -> JsonObj {
        JsonObj { buf: String::new() }
    }

    fn key(&mut self, name: &str) {
        if !self.buf.is_empty() {
            self.buf.push_str(", ");
        }
        self.buf.push('"');
        self.buf.push_str(&json_escape(name));
        self.buf.push_str("\": ");
    }

    /// Appends an unsigned integer field.
    pub fn field_u64(&mut self, name: &str, value: u64) -> &mut JsonObj {
        self.key(name);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Appends a boolean field.
    pub fn field_bool(&mut self, name: &str, value: bool) -> &mut JsonObj {
        self.key(name);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Appends a string field, escaping the value.
    pub fn field_str(&mut self, name: &str, value: &str) -> &mut JsonObj {
        self.key(name);
        self.buf.push('"');
        self.buf.push_str(&json_escape(value));
        self.buf.push('"');
        self
    }

    /// Appends a field whose value is already-rendered JSON (a nested
    /// object, array, or number the caller formatted).
    pub fn field_raw(&mut self, name: &str, value: &str) -> &mut JsonObj {
        self.key(name);
        self.buf.push_str(value);
        self
    }

    /// Closes the object and returns the rendered line.
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// The one top-level schema identifier shared by every snapshot.
pub const ENVELOPE_SCHEMA: &str = "bonsai/envelope-v1";

/// A decoded snapshot envelope: the common header plus the kind-specific
/// payload document.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// Payload family, e.g. `"bench/failures"` or `"bonsai/session"`.
    pub kind: String,
    /// Payload schema version within the kind.
    pub version: u32,
    /// Producing commit (`"unknown"` outside a git checkout).
    pub git_sha: String,
    /// Producing `rustc -V` line (`"unknown"` if unavailable).
    pub toolchain: String,
    /// The kind-specific document.
    pub payload: Json,
}

impl Envelope {
    /// Parses and validates an enveloped snapshot.
    ///
    /// Pre-envelope snapshots (top-level `"schema"` of the
    /// `bonsai-bench/...` / `bonsai-cli/...` families) are detected and
    /// rejected with an explicit message asking the caller to regenerate
    /// them with the current writers.
    pub fn parse(text: &str) -> Result<Envelope, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| "snapshot has no top-level \"schema\" field".to_string())?;
        if schema != ENVELOPE_SCHEMA {
            if schema.starts_with("bonsai-bench/") || schema.starts_with("bonsai-cli/") {
                return Err(format!(
                    "legacy snapshot schema \"{schema}\": pre-envelope snapshots are no \
                     longer readable — regenerate it with the current writers \
                     (expected \"{ENVELOPE_SCHEMA}\")"
                ));
            }
            return Err(format!(
                "unknown snapshot schema \"{schema}\" (expected \"{ENVELOPE_SCHEMA}\")"
            ));
        }
        let kind = doc
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| "envelope has no \"kind\" field".to_string())?
            .to_string();
        let version = doc
            .get("version")
            .and_then(Json::as_f64)
            .ok_or_else(|| "envelope has no numeric \"version\" field".to_string())?
            as u32;
        let git_sha = doc
            .get("git_sha")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();
        let toolchain = doc
            .get("toolchain")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();
        let payload = doc
            .get("payload")
            .cloned()
            .ok_or_else(|| "envelope has no \"payload\" field".to_string())?;
        Ok(Envelope {
            kind,
            version,
            git_sha,
            toolchain,
            payload,
        })
    }

    /// Like [`Envelope::parse`], but additionally checks the payload
    /// family and version, with explicit mismatch messages.
    pub fn parse_expecting(text: &str, kind: &str, version: u32) -> Result<Envelope, String> {
        let env = Envelope::parse(text)?;
        if env.kind != kind {
            return Err(format!(
                "snapshot kind mismatch: got \"{}\", expected \"{kind}\"",
                env.kind
            ));
        }
        if env.version != version {
            return Err(format!(
                "snapshot version mismatch for kind \"{kind}\": got v{}, expected v{version} \
                 — regenerate the snapshot with the current writers",
                env.version
            ));
        }
        Ok(env)
    }
}

/// Wraps an already-serialized JSON payload in the versioned envelope.
///
/// `payload` must be a complete JSON document (typically an object); it
/// is embedded verbatim.
pub fn write_envelope(
    kind: &str,
    version: u32,
    git_sha: &str,
    toolchain: &str,
    payload: &str,
) -> String {
    format!(
        "{{\n  \"schema\": \"{ENVELOPE_SCHEMA}\",\n  \"kind\": \"{}\",\n  \"version\": {version},\n  \"git_sha\": \"{}\",\n  \"toolchain\": \"{}\",\n  \"payload\": {payload}\n}}\n",
        json_escape(kind),
        json_escape(git_sha),
        json_escape(toolchain),
    )
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{text}'")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            // The snapshot writer only escapes control
                            // characters (< 0x20); surrogate pairs are out
                            // of scope and rejected.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("\\u escape is not a scalar"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let start = self.pos;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_snapshot_shaped_document() {
        let doc = r#"{
          "schema": "bonsai/envelope-v1",
          "rows": [
            {"label": "Fattree4", "times": {"total_s": 0.012500, "bdd_s": 0.000800}},
            {"label": "Ring20", "times": {"total_s": 0.002000, "bdd_s": 0.000100}}
          ],
          "ok": true, "missing": null, "neg": -1.5e-3
        }"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("bonsai/envelope-v1")
        );
        let rows = v.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0].get("label").and_then(Json::as_str),
            Some("Fattree4")
        );
        let t = rows[0].get("times").unwrap();
        assert_eq!(t.get("total_s").and_then(Json::as_f64), Some(0.0125));
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("missing"), Some(&Json::Null));
        assert_eq!(v.get("neg").and_then(Json::as_f64), Some(-0.0015));
    }

    #[test]
    fn roundtrips_writer_escapes() {
        let doc = "{\"s\": \"a\\\"b\\\\c\\nd\\u0007e\"}";
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("a\"b\\c\nd\u{7}e"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1} extra",
            "\"unterminated",
            "{\"a\" 1}",
            "nulll",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn envelope_roundtrips() {
        let doc = write_envelope("bench/failures", 4, "abc123", "rustc 1.0", "{\"rows\": []}");
        let env = Envelope::parse(&doc).unwrap();
        assert_eq!(env.kind, "bench/failures");
        assert_eq!(env.version, 4);
        assert_eq!(env.git_sha, "abc123");
        assert_eq!(env.toolchain, "rustc 1.0");
        assert_eq!(
            env.payload.get("rows").and_then(Json::as_arr),
            Some(&[][..])
        );
        Envelope::parse_expecting(&doc, "bench/failures", 4).unwrap();
    }

    #[test]
    fn legacy_schemas_fail_with_explicit_message() {
        for legacy in [
            "bonsai-bench/compress-v1",
            "bonsai-bench/failures-v3",
            "bonsai-cli/failures-v1",
        ] {
            let doc = format!("{{\"schema\": \"{legacy}\", \"rows\": []}}");
            let err = Envelope::parse(&doc).unwrap_err();
            assert!(
                err.contains("legacy snapshot schema") && err.contains("regenerate"),
                "unexpected error for {legacy}: {err}"
            );
        }
        let err = Envelope::parse("{\"rows\": []}").unwrap_err();
        assert!(err.contains("no top-level"), "{err}");
    }

    #[test]
    fn kind_and_version_mismatches_are_explicit() {
        let doc = write_envelope("bench/compress", 1, "x", "y", "{}");
        let err = Envelope::parse_expecting(&doc, "bench/failures", 4).unwrap_err();
        assert!(err.contains("kind mismatch"), "{err}");
        let err = Envelope::parse_expecting(&doc, "bench/compress", 2).unwrap_err();
        assert!(err.contains("version mismatch"), "{err}");
    }

    #[test]
    fn json_obj_renders_in_insertion_order_and_roundtrips() {
        let mut obj = JsonObj::new();
        obj.field_bool("ok", false)
            .field_str("code", "bad_request")
            .field_str("error", "tab\there \"quoted\"")
            .field_u64("n", 42)
            .field_raw("nested", "{\"a\": 1}");
        let line = obj.finish();
        assert_eq!(
            line,
            "{\"ok\": false, \"code\": \"bad_request\", \
             \"error\": \"tab\\there \\\"quoted\\\"\", \"n\": 42, \"nested\": {\"a\": 1}}"
        );
        let parsed = Json::parse(&line).unwrap();
        assert_eq!(
            parsed.get("error").and_then(Json::as_str),
            Some("tab\there \"quoted\"")
        );
        assert_eq!(parsed.get("n").and_then(Json::as_f64), Some(42.0));
        assert_eq!(JsonObj::new().finish(), "{}");
    }
}
