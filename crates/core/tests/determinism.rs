//! Compression is deterministic across thread counts: `threads: 1` and
//! `threads: N` must produce **byte-identical** abstractions and reports.
//!
//! The unified fan-out driver's contract is that parallelism only changes
//! *who* computes a class, never *what* is computed: workers share one
//! engine whose caches are keyed by everything the result depends on, and
//! results are re-ordered by class index after the scope joins. This test
//! pins the contract on the fattree k=8 (80 nodes, 32 destination
//! classes — enough classes for real interleaving).
//!
//! "Byte-identical" is checked on a canonical serialization of everything
//! semantically meaningful: the partition, the BGP copy vector, the
//! refinement iteration count, the class description and the printed
//! abstract configurations, plus the structural report fields. Wall-clock
//! times and engine cache *hit counters* are excluded by construction —
//! two racing workers may both miss the same cache entry, which changes
//! the statistics but never the results.

use bonsai_core::compress::{compress, CompressOptions, CompressionReport};
use bonsai_topo::{fattree, FattreePolicy};

/// Canonical byte serialization of every semantic output of a run.
fn canonical_bytes(report: &CompressionReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "concrete {} nodes {} links, {} ecs\n",
        report.concrete_nodes,
        report.concrete_links,
        report.num_ecs()
    ));
    out.push_str(&format!(
        "abs {:.6}±{:.6} nodes {:.6}±{:.6} links ratios {:.6}/{:.6}\n",
        report.mean_abstract_nodes(),
        report.std_abstract_nodes(),
        report.mean_abstract_links(),
        report.std_abstract_links(),
        report.node_ratio(),
        report.link_ratio(),
    ));
    for ec in &report.per_ec {
        out.push_str(&format!(
            "ec {} ranges {:?} origins {:?}\n",
            ec.ec.rep, ec.ec.ranges, ec.ec.origins
        ));
        out.push_str(&format!(
            "partition {:?} copies {:?} iterations {}\n",
            ec.abstraction.partition.as_sets(),
            ec.abstraction.copies,
            ec.abstraction.iterations
        ));
        out.push_str(&bonsai_config::print_network(&ec.abstract_network.network));
        out.push_str(&format!("abs_ec {:?}\n", ec.abstract_network.ec));
    }
    out
}

#[test]
fn fattree8_compression_is_thread_count_invariant() {
    let net = fattree(8, FattreePolicy::ShortestPath);

    let sequential = compress(
        &net,
        CompressOptions {
            threads: 1,
            ..Default::default()
        },
    );
    assert_eq!(sequential.num_ecs(), 32, "fattree-8 has 32 edge prefixes");

    for threads in [2, 4, 8] {
        let parallel = compress(
            &net,
            CompressOptions {
                threads,
                ..Default::default()
            },
        );
        assert_eq!(
            canonical_bytes(&sequential),
            canonical_bytes(&parallel),
            "threads: 1 vs threads: {threads} diverged"
        );
    }
}

/// The same contract holds with the unused-community-stripping `h` (a
/// different engine configuration exercising the community scan).
#[test]
fn fattree8_policy_compression_is_thread_count_invariant() {
    let net = fattree(8, FattreePolicy::PreferBottom);
    let sequential = compress(
        &net,
        CompressOptions {
            threads: 1,
            strip_unused_communities: true,
            ..Default::default()
        },
    );
    let parallel = compress(
        &net,
        CompressOptions {
            threads: 4,
            strip_unused_communities: true,
            ..Default::default()
        },
    );
    assert_eq!(canonical_bytes(&sequential), canonical_bytes(&parallel));
}
