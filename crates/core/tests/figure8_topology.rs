//! Figure 8: valid vs invalid ∀∃-abstractions, as an executable test.
//!
//! Concrete network: d — b1 — a1, d — b2 — a2, d — c, with c having *no*
//! edge to any a. Merging {b1, b2} is a valid ∀∃-abstraction; merging
//! {b1, b2, c} is invalid because c lacks an edge into the â block —
//! exactly the violation drawn in Figure 8(b).

use bonsai_config::{parse_network, BuiltTopology};
use bonsai_core::conditions::{check_effective, Violation};
use bonsai_core::engine::CompiledPolicies;
use bonsai_core::signatures::build_sig_table;
use bonsai_net::{NodeId, Partition};
use bonsai_srp::instance::{EcDest, OriginProto};

fn figure8() -> (bonsai_config::NetworkConfig, BuiltTopology) {
    let mut text = String::new();
    for (name, asn) in [
        ("d", 100),
        ("b1", 1),
        ("b2", 2),
        ("c", 3),
        ("a1", 4),
        ("a2", 5),
    ] {
        let ifaces = if name == "d" { 3 } else { 2 };
        text.push_str(&format!("device {name}\n"));
        for i in 0..ifaces {
            text.push_str(&format!("interface i{i}\n"));
        }
        text.push_str(&format!("router bgp {asn}\n"));
        if name == "d" {
            text.push_str(" network 10.0.0.0/24\n");
        }
        for i in 0..ifaces {
            text.push_str(&format!(" neighbor i{i} remote-as external\n"));
        }
        text.push_str("end\n");
    }
    text.push_str(
        "link d i0 b1 i0\nlink d i1 b2 i0\nlink d i2 c i0\nlink b1 i1 a1 i0\nlink b2 i1 a2 i0\n",
    );
    let net = parse_network(&text).unwrap();
    let topo = BuiltTopology::build(&net).unwrap();
    (net, topo)
}

fn setup(
    net: &bonsai_config::NetworkConfig,
    topo: &BuiltTopology,
) -> (EcDest, std::sync::Arc<bonsai_core::signatures::SigTable>) {
    let d = topo.graph.node_by_name("d").unwrap();
    let ec = EcDest::new("10.0.0.0/24".parse().unwrap(), vec![(d, OriginProto::Bgp)]);
    let engine = CompiledPolicies::from_network(net, false);
    let sigs = build_sig_table(&engine, net, topo, &ec);
    (ec, sigs)
}

#[test]
fn merging_b1_b2_is_valid() {
    let (net, topo) = figure8();
    let (ec, sigs) = setup(&net, &topo);
    let idx = |n: &str| topo.graph.node_by_name(n).unwrap().0;
    // Partition: {d}, {b1,b2}, {c}, {a1,a2}.
    let mut p = Partition::coarsest(topo.graph.node_count());
    p.isolate(idx("d"));
    p.split(&[idx("b1"), idx("b2")]);
    p.split(&[idx("c")]);
    let violations = check_effective(&topo.graph, &ec, &sigs, &p);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn merging_bc_is_invalid() {
    let (net, topo) = figure8();
    let (ec, sigs) = setup(&net, &topo);
    let idx = |n: &str| topo.graph.node_by_name(n).unwrap().0;
    // Partition: {d}, {b1,b2,c}, {a1,a2} — Figure 8(b)'s unsound merge.
    let mut p = Partition::coarsest(topo.graph.node_count());
    p.isolate(idx("d"));
    p.split(&[idx("b1"), idx("b2"), idx("c")]);
    let violations = check_effective(&topo.graph, &ec, &sigs, &p);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, Violation::ForallExists(w)
            if w.contains(&format!("n{}", idx("c"))))),
        "expected a ∀∃ violation witnessed by c, got {violations:?}"
    );
}

/// The refinement algorithm finds exactly the valid partition on its own.
#[test]
fn refinement_discovers_figure8a() {
    let (net, topo) = figure8();
    let (ec, sigs) = setup(&net, &topo);
    let abs = bonsai_core::algorithm::find_abstraction(&topo.graph, &ec, &sigs);
    let n = |s: &str| NodeId(topo.graph.node_by_name(s).unwrap().0);
    assert_eq!(abs.role_of(n("b1")), abs.role_of(n("b2")));
    assert_eq!(abs.role_of(n("a1")), abs.role_of(n("a2")));
    assert_ne!(abs.role_of(n("c")), abs.role_of(n("b1")));
    assert_eq!(abs.partition.block_count(), 4);
}
