//! Compression of pure-OSPF networks: costs and areas drive refinement,
//! and the OSPF fields (cost, inter-area flag) are preserved across the
//! abstraction.

use bonsai_config::{parse_network, BuiltTopology, NetworkConfig};
use bonsai_core::compress::{compress, CompressOptions};
use bonsai_net::NodeId;
use bonsai_srp::instance::{MultiProtocol, RibAttr};
use bonsai_srp::{solve, Srp};

/// A two-armed OSPF star: the destination root with two identical arms of
/// three routers each, all in area 0 except the last hop (area 1).
fn ospf_star() -> NetworkConfig {
    let mut text = String::from(
        "
device root
interface arm0
 ip ospf cost 1
 ip ospf area 0
interface arm1
 ip ospf cost 1
 ip ospf area 0
router ospf
 network 10.0.0.0/24
end
",
    );
    for arm in 0..2 {
        for i in 0..3 {
            let area = if i == 2 { 1 } else { 0 };
            text.push_str(&format!(
                "
device a{arm}_{i}
interface up
 ip ospf cost {cost}
 ip ospf area {up_area}
interface down
 ip ospf cost {cost}
 ip ospf area {area}
router ospf
end
",
                cost = 5 + i,
                up_area = if i == 2 { 1 } else { 0 },
            ));
        }
    }
    text.push_str("link root arm0 a0_0 up\nlink root arm1 a1_0 up\n");
    for arm in 0..2 {
        for i in 0..2 {
            text.push_str(&format!("link a{arm}_{i} down a{arm}_{} up\n", i + 1));
        }
    }
    parse_network(&text).unwrap()
}

#[test]
fn symmetric_arms_merge() {
    let net = ospf_star();
    let report = compress(&net, CompressOptions::default());
    assert_eq!(report.num_ecs(), 1);
    let ec = &report.per_ec[0];
    // 7 concrete nodes -> 4 abstract (root + one merged arm of 3).
    assert_eq!(ec.abstraction.abstract_node_count(), 4);

    // Both arm tips share a role with each other, not with mid-arm nodes.
    let topo = BuiltTopology::build(&net).unwrap();
    let n = |s: &str| topo.graph.node_by_name(s).unwrap();
    assert_eq!(
        ec.abstraction.role_of(n("a0_2")),
        ec.abstraction.role_of(n("a1_2"))
    );
    assert_ne!(
        ec.abstraction.role_of(n("a0_1")),
        ec.abstraction.role_of(n("a0_2"))
    );
}

#[test]
fn ospf_costs_and_areas_preserved() {
    let net = ospf_star();
    let topo = BuiltTopology::build(&net).unwrap();
    let report = compress(&net, CompressOptions::default());
    let ec = &report.per_ec[0];

    // Concrete solution.
    let ec_dest = ec.ec.to_ec_dest();
    let origins: Vec<NodeId> = ec_dest.origins.iter().map(|(o, _)| *o).collect();
    let proto = MultiProtocol::build(&net, &topo, &ec_dest);
    let srp = Srp::with_origins(&topo.graph, origins.clone(), proto);
    let concrete = solve(&srp).unwrap();

    // Abstract solution.
    let abs = &ec.abstract_network;
    let abs_proto = MultiProtocol::build(&abs.network, &abs.topo, &abs.ec);
    let abs_origins: Vec<NodeId> = abs.ec.origins.iter().map(|(o, _)| *o).collect();
    let abs_srp = Srp::with_origins(&abs.topo.graph, abs_origins, abs_proto);
    let abstract_sol = solve(&abs_srp).unwrap();

    for name in ["a0_0", "a0_1", "a0_2"] {
        let u = topo.graph.node_by_name(name).unwrap();
        let copies = abs.candidates_of(&ec.abstraction, u);
        let (Some(RibAttr::Ospf(c)), Some(RibAttr::Ospf(a))) =
            (concrete.label(u), abstract_sol.label(copies[0]))
        else {
            panic!("expected OSPF labels at {name}");
        };
        assert_eq!(c.cost, a.cost, "cost at {name}");
        assert_eq!(c.inter_area, a.inter_area, "area flag at {name}");
    }
    // The tip is inter-area (crossed into area 1), the rest intra.
    let tip = topo.graph.node_by_name("a0_2").unwrap();
    match concrete.label(tip) {
        Some(RibAttr::Ospf(o)) => assert!(o.inter_area),
        other => panic!("unexpected {other:?}"),
    }
}
