//! Differential property test: the BDD compilation of a route map
//! (`bonsai_core::policy_bdd`) computes exactly what the interpreter
//! (`bonsai_config::eval`) computes, on random policies and random
//! advertisements. This is the lockstep that justifies using canonical
//! BDD equality as transfer-function equality.

use bonsai_config::eval::{eval_route_map, PolicyInput, PolicyResult};
use bonsai_config::{
    Action, Community, CommunityList, DeviceConfig, MatchCond, NetworkConfig, PrefixList,
    PrefixListEntry, RouteMap, RouteMapClause, SetAction,
};
use bonsai_core::policy_bdd::{compile_stage, PolicyCtx};
use bonsai_net::prefix::{Ipv4Addr, Prefix};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// The community universe for generated policies.
const COMMS: [Community; 4] = [
    Community::new(9, 1),
    Community::new(9, 2),
    Community::new(9, 3),
    Community::new(9, 4),
];

/// The destination universe (three nested prefixes).
fn dests() -> [Prefix; 3] {
    [
        Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 8),
        Prefix::new(Ipv4Addr::new(10, 1, 0, 0), 16),
        Prefix::new(Ipv4Addr::new(192, 168, 0, 0), 16),
    ]
}

fn arb_match() -> impl Strategy<Value = MatchCond> {
    prop_oneof![
        (0..3usize).prop_map(|i| MatchCond::Community(format!("CL{i}"))),
        (0..3usize).prop_map(|i| MatchCond::PrefixList(format!("PL{i}"))),
    ]
}

fn arb_set() -> impl Strategy<Value = SetAction> {
    prop_oneof![
        (0..4usize).prop_map(|i| SetAction::AddCommunity(COMMS[i])),
        (0..4usize).prop_map(|i| SetAction::DeleteCommunity(COMMS[i])),
        prop_oneof![Just(100u32), Just(200), Just(350)].prop_map(SetAction::LocalPref),
        (1..4u8).prop_map(SetAction::Prepend),
        (0..3u32).prop_map(|m| SetAction::Metric(m * 50)),
    ]
}

fn arb_clause(seq: u32) -> impl Strategy<Value = RouteMapClause> {
    (
        any::<bool>(),
        prop::collection::vec(arb_match(), 0..3),
        prop::collection::vec(arb_set(), 0..4),
    )
        .prop_map(move |(permit, matches, sets)| RouteMapClause {
            seq,
            action: if permit { Action::Permit } else { Action::Deny },
            matches,
            sets: if permit { sets } else { vec![] },
        })
}

fn arb_device() -> impl Strategy<Value = DeviceConfig> {
    prop::collection::vec(arb_clause(0), 1..5).prop_map(|mut clauses| {
        for (i, c) in clauses.iter_mut().enumerate() {
            c.seq = (i as u32 + 1) * 10;
        }
        let mut d = DeviceConfig::new("r");
        // Fixed lists the random clauses reference.
        d.community_lists = vec![
            CommunityList {
                name: "CL0".into(),
                communities: vec![COMMS[0]],
            },
            CommunityList {
                name: "CL1".into(),
                communities: vec![COMMS[1], COMMS[2]],
            },
            CommunityList {
                name: "CL2".into(),
                communities: vec![COMMS[3]],
            },
        ];
        d.prefix_lists = vec![
            PrefixList {
                name: "PL0".into(),
                entries: vec![PrefixListEntry {
                    seq: 5,
                    action: Action::Permit,
                    prefix: Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 8),
                    ge: None,
                    le: Some(32),
                }],
            },
            PrefixList {
                name: "PL1".into(),
                entries: vec![
                    PrefixListEntry {
                        seq: 5,
                        action: Action::Deny,
                        prefix: Prefix::new(Ipv4Addr::new(10, 1, 0, 0), 16),
                        ge: None,
                        le: Some(32),
                    },
                    PrefixListEntry {
                        seq: 10,
                        action: Action::Permit,
                        prefix: Prefix::DEFAULT,
                        ge: None,
                        le: Some(32),
                    },
                ],
            },
            PrefixList {
                name: "PL2".into(),
                entries: vec![PrefixListEntry {
                    seq: 5,
                    action: Action::Permit,
                    prefix: Prefix::new(Ipv4Addr::new(192, 168, 0, 0), 16),
                    ge: None,
                    le: Some(32),
                }],
            },
        ];
        d.route_maps = vec![RouteMap {
            name: "M".into(),
            clauses,
        }];
        d
    })
}

/// Evaluates the compiled stage on a concrete community set and compares
/// every output against the interpreter.
fn check_agreement(
    device: &DeviceConfig,
    dest: Prefix,
    input_comms: &BTreeSet<Community>,
) -> Result<(), TestCaseError> {
    let mut net = NetworkConfig::default();
    net.devices.push(device.clone());
    let mut ctx = PolicyCtx::from_network(&net, false);
    let inputs = ctx.identity_inputs();
    let stage = compile_stage(&mut ctx, device, Some("M"), dest, &inputs);

    // The assignment encoding the concrete input communities.
    let assignment: Vec<bool> = ctx
        .communities
        .iter()
        .map(|c| input_comms.contains(c))
        .collect();

    let interp: PolicyResult = eval_route_map(
        device,
        device.route_map("M").unwrap(),
        &PolicyInput {
            dest,
            communities: input_comms.clone(),
        },
    );

    // Drop agreement.
    prop_assert_eq!(ctx.bdd.eval(stage.drop, &assignment), !interp.permit);
    if !interp.permit {
        return Ok(());
    }

    // Community outputs.
    let mut expect = input_comms.clone();
    interp.apply_communities(&mut expect);
    for (i, c) in ctx.communities.iter().enumerate() {
        prop_assert_eq!(
            ctx.bdd.eval(stage.comm[i], &assignment),
            expect.contains(c),
            "community {} for input {:?}",
            c,
            input_comms
        );
    }

    // Local preference cases: exactly one case condition holds iff the
    // interpreter set a value.
    let lp_hit: Vec<u32> = stage
        .lp
        .iter()
        .filter(|(_, cond)| ctx.bdd.eval(*cond, &assignment))
        .map(|(v, _)| *v)
        .collect();
    match interp.local_pref {
        Some(v) => prop_assert_eq!(lp_hit, vec![v]),
        None => prop_assert!(lp_hit.is_empty()),
    }

    // MED cases.
    let med_hit: Vec<u32> = stage
        .med
        .iter()
        .filter(|(_, cond)| ctx.bdd.eval(*cond, &assignment))
        .map(|(v, _)| *v)
        .collect();
    match interp.metric {
        Some(v) => prop_assert_eq!(med_hit, vec![v]),
        None => prop_assert!(med_hit.is_empty()),
    }

    // Prepend cases.
    let prepend_hit: u8 = stage
        .prepend
        .iter()
        .filter(|(_, cond)| ctx.bdd.eval(*cond, &assignment))
        .map(|(v, _)| *v)
        .sum();
    prop_assert_eq!(prepend_hit, interp.prepend);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bdd_matches_interpreter(
        device in arb_device(),
        dest_idx in 0..3usize,
        comm_bits in 0..16u32,
    ) {
        let input: BTreeSet<Community> = COMMS
            .iter()
            .enumerate()
            .filter(|(i, _)| comm_bits >> i & 1 == 1)
            .map(|(_, c)| *c)
            .collect();
        check_agreement(&device, dests()[dest_idx], &input)?;
    }

    /// Canonicity across devices: two random devices whose maps agree on
    /// every (destination, community-set) input compile to equal
    /// signatures, and vice versa.
    #[test]
    fn signature_equality_is_semantic_equality(
        d1 in arb_device(),
        d2 in arb_device(),
        dest_idx in 0..3usize,
    ) {
        let dest = dests()[dest_idx];
        let mut net = NetworkConfig::default();
        net.devices.push(d1.clone());
        net.devices.push(d2.clone());
        let mut ctx = PolicyCtx::from_network(&net, false);
        let inputs = ctx.identity_inputs();
        let s1 = compile_stage(&mut ctx, &d1, Some("M"), dest, &inputs);
        let s2 = compile_stage(&mut ctx, &d2, Some("M"), dest, &inputs);
        let sig_equal = s1.drop == s2.drop
            && s1.comm == s2.comm
            && s1.lp == s2.lp
            && s1.med == s2.med
            && s1.prepend == s2.prepend;

        // Brute-force semantic comparison over all community subsets.
        let mut sem_equal = true;
        for bits in 0..(1u32 << COMMS.len()) {
            let input: BTreeSet<Community> = COMMS
                .iter()
                .enumerate()
                .filter(|(i, _)| bits >> i & 1 == 1)
                .map(|(_, c)| *c)
                .collect();
            let pi = PolicyInput { dest, communities: input };
            let r1 = eval_route_map(&d1, d1.route_map("M").unwrap(), &pi);
            let r2 = eval_route_map(&d2, d2.route_map("M").unwrap(), &pi);
            // Compare observable outcomes (communities via application).
            let obs = |r: &bonsai_config::eval::PolicyResult| {
                if !r.permit {
                    None
                } else {
                    let mut cs = pi.communities.clone();
                    r.apply_communities(&mut cs);
                    Some((cs, r.local_pref, r.metric, r.prepend))
                }
            };
            if obs(&r1) != obs(&r2) {
                sem_equal = false;
                break;
            }
        }
        prop_assert_eq!(sig_equal, sem_equal);
    }
}
