//! Cross-EC sharing is sound: compressing with one `CompiledPolicies`
//! shared across every destination class must yield exactly the
//! abstractions that per-class engine rebuilds produce.
//!
//! This is the load-bearing guarantee of the shared-engine refactor: the
//! caches are keyed by everything the compilation depends on (device,
//! map, prefix-list outcomes, symbolic inputs), so a cache hit can never
//! smuggle one class's specialization into another class — and the shared
//! arena's canonicity means signature equality is still semantic equality
//! no matter which class compiled a `Ref` first.

use bonsai_config::BuiltTopology;
use bonsai_core::compress::{compress, CompressOptions};
use bonsai_core::ecs::compute_ecs;
use bonsai_core::engine::CompiledPolicies;
use bonsai_core::signatures::build_sig_table;
use bonsai_core::{build_abstract_network, find_abstraction};
use bonsai_topo::{fattree, FattreePolicy};

/// Compresses `net` twice — once through the production shared-engine
/// driver, once rebuilding a fresh engine per EC — and asserts identical
/// abstractions, copies and materialized abstract networks.
fn assert_shared_matches_rebuilt(net: &bonsai_config::NetworkConfig, strip: bool) {
    let options = CompressOptions {
        strip_unused_communities: strip,
        threads: 1,
        ..Default::default()
    };
    let shared = compress(net, options);

    let topo = BuiltTopology::build(net).unwrap();
    let ecs = compute_ecs(net, &topo);
    assert_eq!(shared.num_ecs(), ecs.len());

    for (result, ec) in shared.per_ec.iter().zip(ecs.iter()) {
        // Rebuild from scratch: a fresh arena per class, as the
        // pre-refactor pipeline did.
        let fresh = CompiledPolicies::from_network(net, strip);
        let ec_dest = ec.to_ec_dest();
        let sigs = build_sig_table(&fresh, net, &topo, &ec_dest);
        let abstraction = find_abstraction(&topo.graph, &ec_dest, &sigs);
        let abstract_network = build_abstract_network(net, &topo, &ec_dest, &abstraction);

        // Same partition into roles...
        let blocks_of = |a: &bonsai_core::Abstraction| -> Vec<Vec<u32>> {
            let mut bs: Vec<Vec<u32>> = a
                .partition
                .blocks()
                .map(|b| a.partition.members(b).to_vec())
                .collect();
            bs.sort();
            bs
        };
        assert_eq!(
            blocks_of(&result.abstraction),
            blocks_of(&abstraction),
            "partition mismatch for EC {}",
            ec.rep
        );
        // ...same BGP copy counts...
        assert_eq!(
            result.abstraction.abstract_node_count(),
            abstraction.abstract_node_count(),
            "copy-count mismatch for EC {}",
            ec.rep
        );
        // ...and the same materialized configurations, byte for byte.
        assert_eq!(
            result.abstract_network.network, abstract_network.network,
            "abstract network mismatch for EC {}",
            ec.rep
        );
        assert_eq!(result.abstract_network.ec, abstract_network.ec);
    }
}

#[test]
fn figure2_gadget_shared_equals_rebuilt() {
    let net = bonsai_srp::papernets::figure2_gadget();
    assert_shared_matches_rebuilt(&net, false);
}

#[test]
fn fattree_shared_equals_rebuilt() {
    let net = fattree(4, FattreePolicy::ShortestPath);
    assert_shared_matches_rebuilt(&net, false);
}

/// A multi-EC network whose route maps *match communities*, so compiled
/// signatures are non-constant BDD functions — the sharing guarantee must
/// hold for real `Ref`s, not just the constants the prefix-list-only
/// topologies produce.
fn community_policy_net() -> bonsai_config::NetworkConfig {
    bonsai_config::parse_network(
        "
device edge
interface i
ip community-list prio permit 7:1
ip community-list drop permit 9:9
route-map IN permit 10
 match community prio
 set local-preference 300
 set community 7:2 additive
route-map IN deny 20
 match community drop
route-map IN permit 30
router bgp 1
 network 10.0.1.0/24
 network 10.0.2.0/24
 network 10.0.3.0/24
 neighbor i remote-as external
 neighbor i route-map IN in
end
device core
interface i
route-map OUT permit 10
 set community 7:1 additive
router bgp 2
 network 10.1.0.0/24
 neighbor i remote-as external
 neighbor i route-map OUT out
end
link edge i core i
",
    )
    .unwrap()
}

#[test]
fn community_policies_shared_equals_rebuilt() {
    let net = community_policy_net();
    assert_shared_matches_rebuilt(&net, false);
    let report = compress(
        &net,
        CompressOptions {
            threads: 1,
            ..Default::default()
        },
    );
    assert!(report.num_ecs() > 1);
    // The community matches force real (non-constant) functions into the
    // shared arena, and later classes reuse them.
    assert!(
        report.engine.arena_nodes > 1,
        "community matching must allocate arena nodes: {:?}",
        report.engine
    );
    assert!(report.engine.reuse_observed());
}

#[test]
fn fattree_policy_shared_equals_rebuilt() {
    // PreferBottom's maps resolve through prefix lists, exercising the
    // destination-dependent (table-key) side of the cache tiers.
    let net = fattree(4, FattreePolicy::PreferBottom);
    assert_shared_matches_rebuilt(&net, false);
    let report = compress(
        &net,
        CompressOptions {
            threads: 1,
            ..Default::default()
        },
    );
    assert!(report.num_ecs() > 1);
    assert!(
        report.engine.table_hits > 0,
        "multi-EC fattree must reuse whole tables: {:?}",
        report.engine
    );
    assert!(report.engine.reuse_observed());
    // Stage compilations happened for the first class of each residue.
    assert!(report.engine.stage_lookups > 0);
}

#[test]
fn stripped_communities_shared_equals_rebuilt() {
    let net = fattree(4, FattreePolicy::PreferBottom);
    assert_shared_matches_rebuilt(&net, true);
}
