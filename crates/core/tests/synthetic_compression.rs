//! End-to-end compression shapes on the Table 1(a) topologies.
//!
//! The paper's headline numbers: a shortest-path eBGP fattree compresses
//! to 6 abstract nodes / 5 links per destination class regardless of
//! scale; a ring to `n/2 + 1` nodes; a full mesh to 2 nodes / 1 link.

use bonsai_core::compress::{compress, CompressOptions};
use bonsai_topo::{fattree, full_mesh, ring, FattreePolicy};

#[test]
fn fattree_compresses_to_six_nodes_five_links() {
    for k in [4usize, 8] {
        let net = fattree(k, FattreePolicy::ShortestPath);
        let report = compress(&net, CompressOptions::default());
        assert_eq!(report.num_ecs(), k * k / 2, "k={k}");
        for ec in &report.per_ec {
            assert_eq!(
                ec.abstraction.abstract_node_count(),
                6,
                "k={k}, ec={} (roles: {:?})",
                ec.ec.rep,
                ec.abstraction.partition.as_sets()
            );
            assert_eq!(
                ec.abstract_network.link_count(),
                5,
                "k={k}, ec={}",
                ec.ec.rep
            );
        }
    }
}

#[test]
fn fattree_policy_variant_grows_abstraction() {
    let k = 4;
    let plain = compress(
        &fattree(k, FattreePolicy::ShortestPath),
        CompressOptions::default(),
    );
    let policy = compress(
        &fattree(k, FattreePolicy::PreferBottom),
        CompressOptions::default(),
    );
    // Figure 11: the prefer-bottom abstraction is strictly larger.
    assert!(
        policy.mean_abstract_nodes() > plain.mean_abstract_nodes(),
        "policy {} vs plain {}",
        policy.mean_abstract_nodes(),
        plain.mean_abstract_nodes()
    );
}

#[test]
fn ring_compresses_to_half_plus_one() {
    for n in [10usize, 17] {
        let net = ring(n);
        let report = compress(&net, CompressOptions::default());
        assert_eq!(report.num_ecs(), n);
        for ec in &report.per_ec {
            assert_eq!(
                ec.abstraction.abstract_node_count(),
                n / 2 + 1,
                "n={n}, ec={}",
                ec.ec.rep
            );
        }
    }
}

#[test]
fn mesh_compresses_to_two_nodes_one_link() {
    for n in [5usize, 12] {
        let net = full_mesh(n);
        let report = compress(&net, CompressOptions::default());
        assert_eq!(report.num_ecs(), n);
        for ec in &report.per_ec {
            assert_eq!(ec.abstraction.abstract_node_count(), 2, "n={n}");
            assert_eq!(ec.abstract_network.link_count(), 1, "n={n}");
        }
    }
}
