//! `bonsaid` — the resident verification service.
//!
//! The paper's workflow is batch: compress, verify, exit. But the
//! artifacts that make verification fast — the compiled policy engine,
//! the per-class abstractions, the sweep's refinement cache with its
//! canonical solutions — are exactly the things worth keeping resident.
//! This crate wraps a [`Session`] in a Unix-socket server speaking a
//! line-delimited JSON protocol, so operators ask reachability questions
//! at interactive latency while the control-plane model stays warm.
//!
//! # Protocol
//!
//! One JSON object per line in each direction. Requests carry an `"op"`;
//! responses always lead with `"ok"` and echo the `"op"`. Key order in
//! responses is **fixed** — two identical requests yield byte-identical
//! response lines, which the integration tests and the CI smoke test
//! assert with a plain `diff`.
//!
//! | op | request fields | response fields |
//! |----|----------------|-----------------|
//! | `ping` | — | `classes`, `k` |
//! | `stats` | — | counters + `sweep` object ([`Session::stats`]) |
//! | `reach` | `src`, `dst`, `links?` | `answers`: `{prefix, delivered}` |
//! | `sweep` | `src`, `dst` | `answers`: `{prefix, delivered, scenarios}` |
//! | `all_pairs` | `links?` | `delivered`, `unreachable` |
//! | `batch` | `queries`: array of the three query ops | `answers`: one response object each |
//! | `snapshot` | `path` | `path`, `bytes` |
//! | `shutdown` | — | — (server stops accepting) |
//!
//! `links` is an array of `[endpoint, endpoint]` name pairs (either
//! orientation). Failures are reported as `{"ok": false, "error": ...}`
//! without closing the connection. An example session:
//!
//! ```text
//! -> {"op": "reach", "src": "edge0_0", "dst": "edge1_1", "links": [["agg0_0", "core0"]]}
//! <- {"ok": true, "op": "reach", "answers": [{"prefix": "70.0.1.0/24", "delivered": true}]}
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bonsai_core::snapshot::{json_escape, Json};
use bonsai_verify::session::{QueryAnswer, QueryRequest, Session, SessionError, SessionStats};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Parses one request line's query portion into a [`QueryRequest`].
///
/// Shared by the single-query ops and the entries of a `batch`.
pub fn parse_query(doc: &Json) -> Result<QueryRequest, String> {
    let op = doc
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| "request has no \"op\"".to_string())?;
    let field = |name: &str| -> Result<String, String> {
        doc.get(name)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("op \"{op}\" needs a string \"{name}\" field"))
    };
    match op {
        "reach" => Ok(QueryRequest::Reach {
            src: field("src")?,
            dst: field("dst")?,
            links: parse_links(doc)?,
        }),
        "sweep" => Ok(QueryRequest::Sweep {
            src: field("src")?,
            dst: field("dst")?,
        }),
        "all_pairs" => Ok(QueryRequest::AllPairs {
            links: parse_links(doc)?,
        }),
        other => Err(format!("unknown query op \"{other}\"")),
    }
}

fn parse_links(doc: &Json) -> Result<Vec<(String, String)>, String> {
    let Some(v) = doc.get("links") else {
        return Ok(Vec::new());
    };
    let arr = v
        .as_arr()
        .ok_or_else(|| "\"links\" must be an array of [name, name] pairs".to_string())?;
    let mut out = Vec::with_capacity(arr.len());
    for pair in arr {
        let p = pair
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| "\"links\" must be an array of [name, name] pairs".to_string())?;
        let name = |j: &Json| {
            j.as_str()
                .map(str::to_string)
                .ok_or_else(|| "link endpoints must be strings".to_string())
        };
        out.push((name(&p[0])?, name(&p[1])?));
    }
    Ok(out)
}

/// Renders a query result as one response object with fixed key order.
pub fn render_result(result: &Result<QueryAnswer, SessionError>) -> String {
    match result {
        Err(e) => render_error(&e.to_string()),
        Ok(QueryAnswer::Reach(answers)) => {
            let rows: Vec<String> = answers
                .iter()
                .map(|a| {
                    format!(
                        "{{\"prefix\": \"{}\", \"delivered\": {}}}",
                        json_escape(&a.prefix),
                        a.delivered
                    )
                })
                .collect();
            format!(
                "{{\"ok\": true, \"op\": \"reach\", \"answers\": [{}]}}",
                rows.join(", ")
            )
        }
        Ok(QueryAnswer::Sweep(answers)) => {
            let rows: Vec<String> = answers
                .iter()
                .map(|a| {
                    format!(
                        "{{\"prefix\": \"{}\", \"delivered\": {}, \"scenarios\": {}}}",
                        json_escape(&a.prefix),
                        a.delivered,
                        a.scenarios
                    )
                })
                .collect();
            format!(
                "{{\"ok\": true, \"op\": \"sweep\", \"answers\": [{}]}}",
                rows.join(", ")
            )
        }
        Ok(QueryAnswer::AllPairs(a)) => format!(
            "{{\"ok\": true, \"op\": \"all_pairs\", \"delivered\": {}, \"unreachable\": {}}}",
            a.delivered, a.unreachable
        ),
    }
}

/// Renders [`Session::stats`] as the `stats` response object.
pub fn render_stats(s: &SessionStats) -> String {
    format!(
        "{{\"ok\": true, \"op\": \"stats\", \"classes\": {}, \"k\": {}, \"scenarios\": {}, \
         \"queries\": {}, \"verdict_cache_hits\": {}, \"abstract_solves\": {}, \
         \"concrete_solves\": {}, \"solver_updates\": {}, \"cached_answers\": {}, \
         \"sweep\": {{\"scenarios_swept\": {}, \"derivations\": {}, \"exact_transfers\": {}, \
         \"symmetric_transfers\": {}, \"refinements\": {}, \"restored\": {}}}}}",
        s.classes,
        s.k,
        s.scenarios,
        s.queries,
        s.verdict_cache_hits,
        s.abstract_solves,
        s.concrete_solves,
        s.solver_updates,
        s.cached_answers,
        s.sweep.scenarios_swept,
        s.sweep.derivations,
        s.sweep.exact_transfers,
        s.sweep.symmetric_transfers,
        s.sweep.refinements,
        s.sweep.restored,
    )
}

fn render_error(message: &str) -> String {
    format!("{{\"ok\": false, \"error\": \"{}\"}}", json_escape(message))
}

/// Answers one request line. Returns the response line and whether the
/// server should shut down after sending it.
pub fn answer_line(session: &Session, line: &str) -> (String, bool) {
    let doc = match Json::parse(line) {
        Ok(d) => d,
        Err(e) => return (render_error(&format!("bad request: {e}")), false),
    };
    let op = doc.get("op").and_then(Json::as_str).unwrap_or("");
    match op {
        "ping" => (
            format!(
                "{{\"ok\": true, \"op\": \"ping\", \"classes\": {}, \"k\": {}}}",
                session.classes(),
                session.max_failures()
            ),
            false,
        ),
        "stats" => (render_stats(&session.stats()), false),
        "reach" | "sweep" | "all_pairs" => match parse_query(&doc) {
            Ok(req) => (render_result(&session.query(&req)), false),
            Err(e) => (render_error(&e), false),
        },
        "batch" => {
            let Some(entries) = doc.get("queries").and_then(Json::as_arr) else {
                return (
                    render_error("op \"batch\" needs a \"queries\" array"),
                    false,
                );
            };
            let mut requests = Vec::with_capacity(entries.len());
            for entry in entries {
                match parse_query(entry) {
                    Ok(req) => requests.push(req),
                    Err(e) => return (render_error(&e), false),
                }
            }
            let results = session.batch(&requests);
            let rows: Vec<String> = results.iter().map(render_result).collect();
            (
                format!(
                    "{{\"ok\": true, \"op\": \"batch\", \"answers\": [{}]}}",
                    rows.join(", ")
                ),
                false,
            )
        }
        "snapshot" => {
            let Some(path) = doc.get("path").and_then(Json::as_str) else {
                return (render_error("op \"snapshot\" needs a \"path\""), false);
            };
            match session.save_snapshot(Path::new(path)) {
                Ok(bytes) => (
                    format!(
                        "{{\"ok\": true, \"op\": \"snapshot\", \"path\": \"{}\", \"bytes\": {bytes}}}",
                        json_escape(path)
                    ),
                    false,
                ),
                Err(e) => (render_error(&format!("writing {path}: {e}")), false),
            }
        }
        "shutdown" => ("{\"ok\": true, \"op\": \"shutdown\"}".to_string(), true),
        "" => (render_error("request has no \"op\""), false),
        other => (render_error(&format!("unknown op \"{other}\"")), false),
    }
}

/// The `bonsaid` server: a [`Session`] behind a Unix socket.
pub struct Server {
    session: Arc<Session>,
    listener: UnixListener,
    path: PathBuf,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds the socket (replacing a stale socket file at `path`).
    pub fn bind(session: Session, path: &Path) -> std::io::Result<Server> {
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        let listener = UnixListener::bind(path)?;
        Ok(Server {
            session: Arc::new(session),
            listener,
            path: path.to_path_buf(),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The served session (the integration tests read its counters
    /// directly while talking to the socket).
    pub fn session(&self) -> Arc<Session> {
        self.session.clone()
    }

    /// Serves until a `shutdown` request arrives: accepts connections,
    /// one handler thread each, every handler sharing the one session.
    /// Removes the socket file on the way out.
    pub fn run(self) -> std::io::Result<()> {
        for conn in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = conn?;
            let session = self.session.clone();
            let stop = self.stop.clone();
            let path = self.path.clone();
            std::thread::spawn(move || {
                let _ = handle_connection(stream, &session, &stop, &path);
            });
        }
        let _ = std::fs::remove_file(&self.path);
        Ok(())
    }

    /// [`Server::run`] on a background thread — what the integration
    /// tests use. Join the handle after sending `shutdown`.
    pub fn spawn(self) -> JoinHandle<std::io::Result<()>> {
        std::thread::spawn(move || self.run())
    }
}

fn handle_connection(
    stream: UnixStream,
    session: &Session,
    stop: &AtomicBool,
    path: &Path,
) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = answer_line(session, &line);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if shutdown {
            stop.store(true, Ordering::SeqCst);
            // Wake the accept loop so it observes the flag.
            let _ = UnixStream::connect(path);
            break;
        }
    }
    Ok(())
}

/// A line-oriented client for the `bonsaid` socket — used by
/// `bonsai query` and the tests.
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: BufWriter<UnixStream>,
}

impl Client {
    /// Connects to a running server's socket.
    pub fn connect(path: &Path) -> std::io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request line and returns the raw response line.
    pub fn call(&mut self, request: &str) -> std::io::Result<String> {
        self.writer.write_all(request.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_verify::session::Session;

    fn tmp_socket(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("bonsaid-test-{name}-{}.sock", std::process::id()))
    }

    fn gadget_server(name: &str) -> (PathBuf, Arc<Session>, JoinHandle<std::io::Result<()>>) {
        let session = Session::builder(bonsai_srp::papernets::figure2_gadget())
            .max_failures(1)
            .threads(2)
            .build()
            .expect("session builds");
        let path = tmp_socket(name);
        let server = Server::bind(session, &path).expect("socket binds");
        let handle_session = server.session();
        let join = server.spawn();
        (path, handle_session, join)
    }

    #[test]
    fn protocol_round_trip_and_shutdown() {
        let (path, _session, join) = gadget_server("roundtrip");
        let mut client = Client::connect(&path).expect("connects");
        let pong = client.call("{\"op\": \"ping\"}").unwrap();
        assert!(pong.contains("\"ok\": true"), "{pong}");
        let reach = client
            .call("{\"op\": \"reach\", \"src\": \"a\", \"dst\": \"d\"}")
            .unwrap();
        assert!(reach.contains("\"delivered\": true"), "{reach}");
        let err = client.call("{\"op\": \"nope\"}").unwrap();
        assert!(err.contains("\"ok\": false"), "{err}");
        // Unknown devices answer an error without killing the connection.
        let err = client
            .call("{\"op\": \"reach\", \"src\": \"zz\", \"dst\": \"d\"}")
            .unwrap();
        assert!(err.contains("unknown device"), "{err}");
        let bye = client.call("{\"op\": \"shutdown\"}").unwrap();
        assert!(bye.contains("shutdown"), "{bye}");
        join.join().unwrap().unwrap();
        assert!(!path.exists(), "socket file removed on shutdown");
    }

    #[test]
    fn identical_batches_answer_identically_with_zero_solves() {
        let (path, session, join) = gadget_server("batch");
        let mut client = Client::connect(&path).expect("connects");
        let batch = "{\"op\": \"batch\", \"queries\": [\
            {\"op\": \"sweep\", \"src\": \"a\", \"dst\": \"d\"}, \
            {\"op\": \"all_pairs\"}]}";
        let first = client.call(batch).unwrap();
        let stats_mid = session.stats();
        let second = client.call(batch).unwrap();
        let stats_end = session.stats();
        assert_eq!(first, second, "byte-identical answers");
        assert_eq!(
            stats_end.solver_updates, stats_mid.solver_updates,
            "second batch performed zero solver updates"
        );
        client.call("{\"op\": \"shutdown\"}").unwrap();
        join.join().unwrap().unwrap();
    }
}
