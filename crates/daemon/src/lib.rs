//! `bonsaid` — the resident verification service.
//!
//! The paper's workflow is batch: compress, verify, exit. But the
//! artifacts that make verification fast — the compiled policy engine,
//! the per-class abstractions, the sweep's refinement cache with its
//! canonical solutions — are exactly the things worth keeping resident.
//! This crate wraps a [`Session`] in a server speaking a line-delimited
//! JSON protocol over a Unix socket and/or a TCP listener, so operators
//! ask reachability questions at interactive latency while the
//! control-plane model stays warm.
//!
//! The wire protocol is a written contract: see `docs/PROTOCOL.md` at the
//! repository root for the full reference (every op, key order, the
//! byte-determinism guarantee, limits, and the versioning policy). The
//! tables below are the summary.
//!
//! # Protocol
//!
//! One JSON object per line in each direction. Requests carry an `"op"`;
//! responses always lead with `"ok"` and echo the `"op"`. Key order in
//! responses is **fixed** — two identical requests yield byte-identical
//! response lines, which the integration tests and the CI smoke test
//! assert with a plain `diff`.
//!
//! | op | request fields | response fields |
//! |----|----------------|-----------------|
//! | `ping` | — | `classes`, `k` |
//! | `stats` | — | counters + `sweep` object ([`Session::stats`]) |
//! | `metrics` | — | `content_type`, `body`: Prometheus text exposition |
//! | `reach` | `src`, `dst`, `links?` | `answers`: `{prefix, delivered}` |
//! | `sweep` | `src`, `dst` | `answers`: `{prefix, delivered, scenarios}` |
//! | `all_pairs` | `links?` | `delivered`, `unreachable` |
//! | `path` | `src`, `dst`, `links?`, `waypoints?` | `answers`: `{prefix, lengths, waypointed}` |
//! | `batch` | `queries`: array of the query ops | `answers`: one response object each |
//! | `snapshot` | `path` | `path`, `bytes` |
//! | `reload` | `config` or `path` | delta/reuse counters ([`render_reload`]) |
//! | `shutdown` | — | — (server drains and stops) |
//!
//! `links` is an array of `[endpoint, endpoint]` name pairs (either
//! orientation); `waypoints` is an array of device names. Failures are
//! reported as `{"ok": false, "code": ..., "error": ...}` without closing
//! the connection:
//!
//! | code | meaning |
//! |------|---------|
//! | `bad_request` | unparsable line or missing/mistyped field |
//! | `unknown_op` | the `"op"` is not in [`PROTOCOL_OPS`] |
//! | `too_large` | request line or batch over the configured limit |
//! | `overloaded` | the in-flight query gate is full — retry later |
//! | `connection_limit` | per-connection request budget spent (connection closes) |
//! | `query` | the session rejected the query (unknown device, solve failure) |
//! | `io` | a filesystem side effect (snapshot write) failed |
//!
//! # Hardening
//!
//! The server is built for untrusted clients: request lines are read
//! through a bounded reader (oversized lines are discarded and answered
//! with `too_large`, the connection survives), query work is admitted
//! through a [`Gate`] bounding global in-flight queries (excess load is
//! shed immediately with `overloaded` instead of queueing behind the
//! solver), idle connections are reaped by a read timeout, and
//! `shutdown` drains gracefully: in-flight requests complete and write
//! their responses, read sides close, accept loops refuse new work, and
//! the socket file is removed. All knobs live in [`ServerOptions`].
//!
//! # Example
//!
//! ```
//! use bonsai_daemon::{Client, Server};
//! use bonsai_verify::session::Session;
//!
//! let session = Session::builder(bonsai_srp::papernets::figure2_gadget())
//!     .max_failures(1)
//!     .threads(1)
//!     .build()
//!     .expect("gadget session builds");
//! let path = std::env::temp_dir().join(format!("bonsaid-doc-{}.sock", std::process::id()));
//! let server = Server::bind(session, &path).expect("socket binds");
//! let join = server.spawn();
//!
//! let mut client = Client::connect(&path).expect("connects");
//! let pong = client.call("{\"op\": \"ping\"}").expect("answers");
//! assert!(pong.starts_with("{\"ok\": true"));
//! client.call("{\"op\": \"shutdown\"}").expect("drains");
//! join.join().unwrap().expect("clean exit");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bonsai_core::snapshot::{json_escape, Json, JsonObj};
use bonsai_verify::session::{
    QueryAnswer, QueryRequest, ReloadOutcome, Session, SessionError, SessionStats,
};
use std::io::{BufRead, BufReader, BufWriter, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Every op the daemon accepts. `docs/PROTOCOL.md` must document each;
/// `tests/protocol_docs.rs` fails if one is missing there.
pub const PROTOCOL_OPS: &[&str] = &[
    "ping",
    "stats",
    "metrics",
    "reach",
    "sweep",
    "all_pairs",
    "path",
    "batch",
    "snapshot",
    "reload",
    "shutdown",
];

/// Every `code` an error response can carry — same documentation
/// contract as [`PROTOCOL_OPS`].
pub const ERROR_CODES: &[&str] = &[
    "bad_request",
    "unknown_op",
    "too_large",
    "overloaded",
    "connection_limit",
    "query",
    "io",
];

/// Serving limits and timeouts of a [`Server`].
#[derive(Clone, Copy, Debug)]
pub struct ServerOptions {
    /// Longest accepted request line in bytes; longer lines are
    /// discarded and answered with `too_large` (default 1 MiB).
    pub max_request_bytes: usize,
    /// Most entries in one `batch` request (default 4096).
    pub max_batch: usize,
    /// Global bound on concurrently-executing query ops; excess
    /// requests are shed with `overloaded` (default 64).
    pub max_inflight: usize,
    /// Requests served per connection before it is closed with
    /// `connection_limit`; 0 = unlimited (default 0).
    pub max_requests_per_conn: usize,
    /// Reap a connection that sends nothing for this long
    /// (default 300 s; `None` = never).
    pub idle_timeout: Option<Duration>,
    /// Give up writing a response to a stuck client after this long
    /// (default 30 s; `None` = never).
    pub write_timeout: Option<Duration>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            max_request_bytes: 1 << 20,
            max_batch: 4096,
            max_inflight: 64,
            max_requests_per_conn: 0,
            idle_timeout: Some(Duration::from_secs(300)),
            write_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// The in-flight query gate: a non-blocking permit counter. Query ops
/// must hold a permit while executing; when none is free the request is
/// answered `overloaded` immediately — the daemon never queues work
/// behind the solver.
pub struct Gate {
    permits: AtomicUsize,
}

impl Gate {
    /// A gate with `n` permits.
    pub fn new(n: usize) -> Gate {
        Gate {
            permits: AtomicUsize::new(n),
        }
    }

    /// Takes a permit if one is free; never blocks. The permit returns
    /// on drop.
    pub fn try_acquire(&self) -> Option<GatePermit<'_>> {
        let mut cur = self.permits.load(Ordering::Acquire);
        loop {
            if cur == 0 {
                return None;
            }
            match self.permits.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(GatePermit { gate: self }),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Permits currently free.
    pub fn available(&self) -> usize {
        self.permits.load(Ordering::Acquire)
    }
}

/// An RAII permit from a [`Gate`].
pub struct GatePermit<'a> {
    gate: &'a Gate,
}

impl Drop for GatePermit<'_> {
    fn drop(&mut self) {
        self.gate.permits.fetch_add(1, Ordering::AcqRel);
    }
}

/// The swappable resident session behind a server: every request clones
/// the current [`Arc`] cheaply and answers against it, while a `reload`
/// builds the successor session **off-lock** (queries keep flowing
/// against the old one) and swaps it in atomically. In-flight queries
/// finish on the session they started with; the next request sees the
/// new one.
pub struct SessionSlot {
    slot: RwLock<Arc<Session>>,
    /// Serializes reloads: two concurrent `reload` ops would otherwise
    /// both derive from the same predecessor and silently drop one
    /// edit's work.
    reload_lock: Mutex<()>,
}

impl SessionSlot {
    /// Wraps a freshly built session.
    pub fn new(session: Session) -> SessionSlot {
        SessionSlot {
            slot: RwLock::new(Arc::new(session)),
            reload_lock: Mutex::new(()),
        }
    }

    /// The session serving right now.
    pub fn current(&self) -> Arc<Session> {
        self.slot.read().unwrap().clone()
    }

    /// Warm-reloads onto `network` through [`Session::reload`] and swaps
    /// the result in, serialized against concurrent reloads.
    pub fn reload(
        &self,
        network: bonsai_config::NetworkConfig,
    ) -> Result<ReloadOutcome, SessionError> {
        let _guard = self.reload_lock.lock().unwrap();
        let current = self.current();
        let (next, outcome) = current.reload(network)?;
        *self.slot.write().unwrap() = Arc::new(next);
        Ok(outcome)
    }
}

/// Parses one request line's query portion into a [`QueryRequest`].
///
/// Shared by the single-query ops and the entries of a `batch`.
pub fn parse_query(doc: &Json) -> Result<QueryRequest, String> {
    let op = doc
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| "request has no \"op\"".to_string())?;
    let field = |name: &str| -> Result<String, String> {
        doc.get(name)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("op \"{op}\" needs a string \"{name}\" field"))
    };
    match op {
        "reach" => Ok(QueryRequest::Reach {
            src: field("src")?,
            dst: field("dst")?,
            links: parse_links(doc)?,
        }),
        "sweep" => Ok(QueryRequest::Sweep {
            src: field("src")?,
            dst: field("dst")?,
        }),
        "all_pairs" => Ok(QueryRequest::AllPairs {
            links: parse_links(doc)?,
        }),
        "path" => Ok(QueryRequest::Path {
            src: field("src")?,
            dst: field("dst")?,
            links: parse_links(doc)?,
            waypoints: parse_waypoints(doc)?,
        }),
        other => Err(format!("unknown query op \"{other}\"")),
    }
}

fn parse_links(doc: &Json) -> Result<Vec<(String, String)>, String> {
    let Some(v) = doc.get("links") else {
        return Ok(Vec::new());
    };
    let arr = v
        .as_arr()
        .ok_or_else(|| "\"links\" must be an array of [name, name] pairs".to_string())?;
    let mut out = Vec::with_capacity(arr.len());
    for pair in arr {
        let p = pair
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| "\"links\" must be an array of [name, name] pairs".to_string())?;
        let name = |j: &Json| {
            j.as_str()
                .map(str::to_string)
                .ok_or_else(|| "link endpoints must be strings".to_string())
        };
        out.push((name(&p[0])?, name(&p[1])?));
    }
    Ok(out)
}

fn parse_waypoints(doc: &Json) -> Result<Vec<String>, String> {
    let Some(v) = doc.get("waypoints") else {
        return Ok(Vec::new());
    };
    let arr = v
        .as_arr()
        .ok_or_else(|| "\"waypoints\" must be an array of device names".to_string())?;
    arr.iter()
        .map(|j| {
            j.as_str()
                .map(str::to_string)
                .ok_or_else(|| "\"waypoints\" must be an array of device names".to_string())
        })
        .collect()
}

/// Renders a query result as one response object with fixed key order.
pub fn render_result(result: &Result<QueryAnswer, SessionError>) -> String {
    match result {
        Err(e) => render_error("query", &e.to_string()),
        Ok(QueryAnswer::Reach(answers)) => {
            let rows: Vec<String> = answers
                .iter()
                .map(|a| {
                    format!(
                        "{{\"prefix\": \"{}\", \"delivered\": {}}}",
                        json_escape(&a.prefix),
                        a.delivered
                    )
                })
                .collect();
            format!(
                "{{\"ok\": true, \"op\": \"reach\", \"answers\": [{}]}}",
                rows.join(", ")
            )
        }
        Ok(QueryAnswer::Sweep(answers)) => {
            let rows: Vec<String> = answers
                .iter()
                .map(|a| {
                    format!(
                        "{{\"prefix\": \"{}\", \"delivered\": {}, \"scenarios\": {}}}",
                        json_escape(&a.prefix),
                        a.delivered,
                        a.scenarios
                    )
                })
                .collect();
            format!(
                "{{\"ok\": true, \"op\": \"sweep\", \"answers\": [{}]}}",
                rows.join(", ")
            )
        }
        Ok(QueryAnswer::AllPairs(a)) => format!(
            "{{\"ok\": true, \"op\": \"all_pairs\", \"delivered\": {}, \"unreachable\": {}}}",
            a.delivered, a.unreachable
        ),
        Ok(QueryAnswer::Path(answers)) => {
            let rows: Vec<String> = answers
                .iter()
                .map(|a| {
                    let lengths = match &a.lengths {
                        Some(ls) => format!(
                            "[{}]",
                            ls.iter()
                                .map(|l| l.to_string())
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                        None => "null".to_string(),
                    };
                    let waypointed = match a.waypointed {
                        Some(w) => w.to_string(),
                        None => "null".to_string(),
                    };
                    format!(
                        "{{\"prefix\": \"{}\", \"lengths\": {}, \"waypointed\": {}}}",
                        json_escape(&a.prefix),
                        lengths,
                        waypointed
                    )
                })
                .collect();
            format!(
                "{{\"ok\": true, \"op\": \"path\", \"answers\": [{}]}}",
                rows.join(", ")
            )
        }
    }
}

/// Renders [`Session::stats`] as the `stats` response object. Key order
/// is the wire contract: the memo-size gauges are *trailing* fields per
/// the protocol's additive-evolution policy.
pub fn render_stats(s: &SessionStats) -> String {
    let mut sweep = JsonObj::new();
    sweep
        .field_u64("scenarios_swept", s.sweep.scenarios_swept as u64)
        .field_u64("derivations", s.sweep.derivations as u64)
        .field_u64("exact_transfers", s.sweep.exact_transfers as u64)
        .field_u64("symmetric_transfers", s.sweep.symmetric_transfers as u64)
        .field_u64("refinements", s.sweep.refinements as u64)
        .field_u64("restored", s.sweep.restored as u64)
        .field_u64("restored_answers", s.sweep.restored_answers as u64);
    let mut obj = JsonObj::new();
    obj.field_bool("ok", true)
        .field_str("op", "stats")
        .field_u64("classes", s.classes as u64)
        .field_u64("k", s.k as u64)
        .field_u64("scenarios", s.scenarios as u64)
        .field_u64("queries", s.queries as u64)
        .field_u64("verdict_cache_hits", s.verdict_cache_hits as u64)
        .field_u64("abstract_solves", s.abstract_solves as u64)
        .field_u64("concrete_solves", s.concrete_solves as u64)
        .field_u64("solver_updates", s.solver_updates as u64)
        .field_u64("cached_answers", s.cached_answers as u64)
        .field_raw("sweep", &sweep.finish())
        .field_u64("verdict_memo", s.verdict_memo as u64)
        .field_u64("path_memo", s.path_memo as u64);
    obj.finish()
}

/// Renders the `metrics` response: the whole process-wide registry as
/// Prometheus text exposition, carried as one escaped `body` string
/// (the line protocol cannot carry raw newlines).
pub fn render_metrics() -> String {
    let mut obj = JsonObj::new();
    obj.field_bool("ok", true)
        .field_str("op", "metrics")
        .field_str("content_type", bonsai_obs::PROMETHEUS_CONTENT_TYPE)
        .field_str("body", &bonsai_obs::render_prometheus());
    obj.finish()
}

/// Renders a [`ReloadOutcome`] as the `reload` response object with
/// fixed key order.
pub fn render_reload(o: &ReloadOutcome, elapsed: Duration) -> String {
    let devices: Vec<String> = o
        .changed_devices
        .iter()
        .map(|d| format!("\"{}\"", json_escape(d)))
        .collect();
    let structural = match &o.structural {
        Some(why) => format!("\"{}\"", json_escape(why)),
        None => "null".to_string(),
    };
    let mut obj = JsonObj::new();
    obj.field_bool("ok", true)
        .field_str("op", "reload")
        .field_bool("full_rebuild", o.full_rebuild)
        .field_raw("structural", &structural)
        .field_raw("changed_devices", &format!("[{}]", devices.join(", ")))
        .field_u64("classes", o.classes as u64)
        .field_u64("rederived", o.rederived as u64)
        .field_u64("reused", o.reused as u64)
        .field_u64("fingerprints_moved", o.fingerprints_moved as u64)
        .field_u64("refinements_replayed", o.refinements_replayed as u64)
        .field_u64("verdicts_kept", o.verdicts_kept as u64)
        .field_u64("verdicts_dropped", o.verdicts_dropped as u64)
        .field_u64("paths_kept", o.paths_kept as u64)
        .field_u64("paths_dropped", o.paths_dropped as u64)
        .field_u64("stages_evicted", o.invalidation.stages_evicted as u64)
        .field_u64("sigs_evicted", o.invalidation.sigs_evicted as u64)
        .field_u64("tables_evicted", o.invalidation.tables_evicted as u64)
        .field_u64("reload_us", elapsed.as_micros() as u64);
    obj.finish()
}

/// Renders a structured error response (the connection stays open unless
/// the code says otherwise). `code` must be one of [`ERROR_CODES`].
pub fn render_error(code: &str, message: &str) -> String {
    debug_assert!(ERROR_CODES.contains(&code), "undeclared error code {code}");
    bonsai_obs::add("daemon.errors.total", 1);
    let mut obj = JsonObj::new();
    obj.field_bool("ok", false)
        .field_str("code", code)
        .field_str("error", message);
    obj.finish()
}

/// Answers one request line. Returns the response line and whether the
/// server should drain and stop after sending it.
///
/// Query-bearing ops (`reach`/`sweep`/`all_pairs`/`path`/`batch`) must
/// take a permit from `gate` for the duration of the work; when the gate
/// is full the request is answered `overloaded` without blocking.
/// Control ops (`ping`/`stats`/`metrics`/`snapshot`/`reload`/`shutdown`)
/// bypass the gate — they stay answerable under full query load.
pub fn answer_line(
    sessions: &SessionSlot,
    line: &str,
    options: &ServerOptions,
    gate: &Gate,
) -> (String, bool) {
    bonsai_obs::add("daemon.requests.total", 1);
    let session = sessions.current();
    if line.len() > options.max_request_bytes {
        return (
            render_error(
                "too_large",
                &format!("request exceeds {} bytes", options.max_request_bytes),
            ),
            false,
        );
    }
    let doc = match Json::parse(line) {
        Ok(d) => d,
        Err(e) => {
            return (
                render_error("bad_request", &format!("bad request: {e}")),
                false,
            )
        }
    };
    let op = doc.get("op").and_then(Json::as_str).unwrap_or("");
    match op {
        "ping" => (
            format!(
                "{{\"ok\": true, \"op\": \"ping\", \"classes\": {}, \"k\": {}}}",
                session.classes(),
                session.max_failures()
            ),
            false,
        ),
        "stats" => (render_stats(&session.stats()), false),
        "metrics" => {
            // Refresh the mirrored session.* counters and the in-flight
            // gauge so the scrape reflects this instant, then render.
            session.stats();
            let cap = options.max_inflight.max(1);
            bonsai_obs::set(
                "daemon.inflight",
                cap.saturating_sub(gate.available()) as u64,
            );
            (render_metrics(), false)
        }
        "reach" | "sweep" | "all_pairs" | "path" => {
            let Some(_permit) = gate.try_acquire() else {
                return (overloaded_response(options), false);
            };
            let start = std::time::Instant::now();
            let out = match parse_query(&doc) {
                Ok(req) => (render_result(&session.query(&req)), false),
                Err(e) => (render_error("bad_request", &e), false),
            };
            bonsai_obs::observe(
                "daemon.query.latency_us",
                start.elapsed().as_micros() as u64,
            );
            out
        }
        "batch" => {
            let Some(entries) = doc.get("queries").and_then(Json::as_arr) else {
                return (
                    render_error("bad_request", "op \"batch\" needs a \"queries\" array"),
                    false,
                );
            };
            if entries.len() > options.max_batch {
                return (
                    render_error(
                        "too_large",
                        &format!(
                            "batch of {} exceeds the {}-query limit",
                            entries.len(),
                            options.max_batch
                        ),
                    ),
                    false,
                );
            }
            let Some(_permit) = gate.try_acquire() else {
                return (overloaded_response(options), false);
            };
            let start = std::time::Instant::now();
            let mut requests = Vec::with_capacity(entries.len());
            for entry in entries {
                match parse_query(entry) {
                    Ok(req) => requests.push(req),
                    Err(e) => return (render_error("bad_request", &e), false),
                }
            }
            let results = session.batch(&requests);
            let rows: Vec<String> = results.iter().map(render_result).collect();
            bonsai_obs::observe(
                "daemon.query.latency_us",
                start.elapsed().as_micros() as u64,
            );
            (
                format!(
                    "{{\"ok\": true, \"op\": \"batch\", \"answers\": [{}]}}",
                    rows.join(", ")
                ),
                false,
            )
        }
        "snapshot" => {
            let Some(path) = doc.get("path").and_then(Json::as_str) else {
                return (
                    render_error("bad_request", "op \"snapshot\" needs a \"path\""),
                    false,
                );
            };
            match session.save_snapshot(Path::new(path)) {
                Ok(bytes) => (
                    format!(
                        "{{\"ok\": true, \"op\": \"snapshot\", \"path\": \"{}\", \"bytes\": {bytes}}}",
                        json_escape(path)
                    ),
                    false,
                ),
                Err(e) => (render_error("io", &format!("writing {path}: {e}")), false),
            }
        }
        "reload" => {
            let inline = doc.get("config").and_then(Json::as_str);
            let file = doc.get("path").and_then(Json::as_str);
            let text = match (inline, file) {
                (Some(text), None) => text.to_string(),
                (None, Some(p)) => match std::fs::read_to_string(p) {
                    Ok(t) => t,
                    Err(e) => return (render_error("io", &format!("reading {p}: {e}")), false),
                },
                _ => {
                    return (
                        render_error(
                            "bad_request",
                            "op \"reload\" needs exactly one of \"config\" or \"path\"",
                        ),
                        false,
                    )
                }
            };
            let network = match bonsai_config::parse_network(&text) {
                Ok(n) => n,
                Err(e) => {
                    return (
                        render_error("bad_request", &format!("config does not parse: {e}")),
                        false,
                    )
                }
            };
            let start = std::time::Instant::now();
            match sessions.reload(network) {
                Ok(outcome) => {
                    bonsai_obs::add("daemon.reloads.total", 1);
                    (render_reload(&outcome, start.elapsed()), false)
                }
                Err(e) => (render_error("query", &format!("reload failed: {e}")), false),
            }
        }
        "shutdown" => ("{\"ok\": true, \"op\": \"shutdown\"}".to_string(), true),
        "" => (render_error("bad_request", "request has no \"op\""), false),
        other => (
            render_error("unknown_op", &format!("unknown op \"{other}\"")),
            false,
        ),
    }
}

fn overloaded_response(options: &ServerOptions) -> String {
    bonsai_obs::add("daemon.query.shed", 1);
    render_error(
        "overloaded",
        &format!(
            "all {} in-flight query slots are busy, retry",
            options.max_inflight
        ),
    )
}

/// A connection the generic accept/serve loop can run over — implemented
/// for [`UnixStream`] and [`TcpStream`].
pub trait Conn: Read + Write + Send + Sync + Sized + 'static {
    /// An independent handle onto the same connection.
    fn try_clone_conn(&self) -> std::io::Result<Self>;
    /// Applies read (idle) and write timeouts.
    fn set_conn_timeouts(
        &self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> std::io::Result<()>;
    /// Closes the read side: a blocked reader observes EOF, pending
    /// writes still flush — the drain primitive.
    fn shutdown_read(&self) -> std::io::Result<()>;
}

impl Conn for UnixStream {
    fn try_clone_conn(&self) -> std::io::Result<Self> {
        self.try_clone()
    }
    fn set_conn_timeouts(
        &self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> std::io::Result<()> {
        self.set_read_timeout(read)?;
        self.set_write_timeout(write)
    }
    fn shutdown_read(&self) -> std::io::Result<()> {
        self.shutdown(std::net::Shutdown::Read)
    }
}

impl Conn for TcpStream {
    fn try_clone_conn(&self) -> std::io::Result<Self> {
        self.try_clone()
    }
    fn set_conn_timeouts(
        &self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> std::io::Result<()> {
        self.set_read_timeout(read)?;
        self.set_write_timeout(write)
    }
    fn shutdown_read(&self) -> std::io::Result<()> {
        self.shutdown(std::net::Shutdown::Read)
    }
}

/// Outcome of one bounded line read.
enum LineRead {
    /// A complete line is in the buffer (without the newline).
    Line,
    /// The line exceeded the limit; it was consumed and discarded.
    TooLong,
    /// The peer closed cleanly.
    Eof,
}

/// Reads one `\n`-terminated line of at most `max` bytes into `out`.
/// Oversized lines are consumed to their newline and reported as
/// [`LineRead::TooLong`] so one hostile line cannot wedge or kill the
/// connection.
fn read_line_bounded<R: BufRead>(
    reader: &mut R,
    max: usize,
    out: &mut Vec<u8>,
) -> std::io::Result<LineRead> {
    out.clear();
    loop {
        let available = match reader.fill_buf() {
            Ok(b) => b,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return Ok(if out.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line
            });
        }
        if let Some(pos) = available.iter().position(|&b| b == b'\n') {
            if out.len() + pos > max {
                reader.consume(pos + 1);
                return Ok(LineRead::TooLong);
            }
            out.extend_from_slice(&available[..pos]);
            reader.consume(pos + 1);
            return Ok(LineRead::Line);
        }
        let n = available.len();
        if out.len() + n > max {
            reader.consume(n);
            discard_to_newline(reader)?;
            return Ok(LineRead::TooLong);
        }
        out.extend_from_slice(available);
        reader.consume(n);
    }
}

fn discard_to_newline<R: BufRead>(reader: &mut R) -> std::io::Result<()> {
    loop {
        let available = match reader.fill_buf() {
            Ok(b) => b,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return Ok(());
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                reader.consume(pos + 1);
                return Ok(());
            }
            None => {
                let n = available.len();
                reader.consume(n);
            }
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Where a listener can be poked to wake its blocked `accept` call.
enum Wake {
    Unix(PathBuf),
    Tcp(SocketAddr),
}

impl Wake {
    fn poke(&self) {
        match self {
            Wake::Unix(path) => {
                let _ = UnixStream::connect(path);
            }
            Wake::Tcp(addr) => {
                let _ = TcpStream::connect_timeout(addr, Duration::from_secs(1));
            }
        }
    }
}

/// A per-connection read-shutdown hook, invoked during drain.
type ConnCloser = Box<dyn Fn() + Send + Sync>;

/// State shared by every accept loop and connection handler.
struct Shared {
    session: SessionSlot,
    options: ServerOptions,
    gate: Arc<Gate>,
    stop: AtomicBool,
    /// Per-connection read-shutdown hooks, slot-indexed; `None` after
    /// the connection exits.
    conns: Mutex<Vec<Option<ConnCloser>>>,
    /// Live handler threads, joined during drain.
    handlers: Mutex<Vec<JoinHandle<()>>>,
    /// One poke target per listener.
    wakes: Mutex<Vec<Wake>>,
}

impl Shared {
    fn register_conn(&self, close: ConnCloser) -> usize {
        let mut conns = self.conns.lock().unwrap();
        if let Some(slot) = conns.iter().position(Option::is_none) {
            conns[slot] = Some(close);
            slot
        } else {
            conns.push(Some(close));
            conns.len() - 1
        }
    }

    fn unregister_conn(&self, slot: usize) {
        self.conns.lock().unwrap()[slot] = None;
    }

    /// The drain: refuse new work, close every connection's read side so
    /// in-flight requests finish and blocked readers see EOF.
    fn drain(&self) {
        self.stop.store(true, Ordering::SeqCst);
        for close in self.conns.lock().unwrap().iter().flatten() {
            close();
        }
        for wake in self.wakes.lock().unwrap().iter() {
            wake.poke();
        }
    }
}

/// The `bonsaid` server: a [`Session`] behind a Unix socket and/or a TCP
/// listener, shared by every connection.
pub struct Server {
    shared: Arc<Shared>,
    unix: Option<UnixListener>,
    path: Option<PathBuf>,
    tcp: Option<TcpListener>,
}

impl Server {
    fn new(session: Session, options: ServerOptions) -> Server {
        Server {
            shared: Arc::new(Shared {
                session: SessionSlot::new(session),
                gate: Arc::new(Gate::new(options.max_inflight.max(1))),
                options,
                stop: AtomicBool::new(false),
                conns: Mutex::new(Vec::new()),
                handlers: Mutex::new(Vec::new()),
                wakes: Mutex::new(Vec::new()),
            }),
            unix: None,
            path: None,
            tcp: None,
        }
    }

    /// Binds a Unix socket (replacing a stale socket file at `path`)
    /// with default [`ServerOptions`].
    pub fn bind(session: Session, path: &Path) -> std::io::Result<Server> {
        Server::bind_with(session, path, ServerOptions::default())
    }

    /// [`Server::bind`] with explicit limits.
    pub fn bind_with(
        session: Session,
        path: &Path,
        options: ServerOptions,
    ) -> std::io::Result<Server> {
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        let listener = UnixListener::bind(path)?;
        let mut server = Server::new(session, options);
        server
            .shared
            .wakes
            .lock()
            .unwrap()
            .push(Wake::Unix(path.to_path_buf()));
        server.unix = Some(listener);
        server.path = Some(path.to_path_buf());
        Ok(server)
    }

    /// Binds a TCP-only server (no Unix socket) with default options.
    pub fn bind_tcp(session: Session, addr: &str) -> std::io::Result<Server> {
        Server::bind_tcp_with(session, addr, ServerOptions::default())
    }

    /// [`Server::bind_tcp`] with explicit limits.
    pub fn bind_tcp_with(
        session: Session,
        addr: &str,
        options: ServerOptions,
    ) -> std::io::Result<Server> {
        Server::new(session, options).with_tcp(addr)
    }

    /// Adds a TCP listener beside whatever is already bound. Bind to
    /// port 0 and read [`Server::tcp_addr`] for an ephemeral port.
    pub fn with_tcp(mut self, addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        self.shared.wakes.lock().unwrap().push(Wake::Tcp(local));
        self.tcp = Some(listener);
        Ok(self)
    }

    /// The served session (the integration tests read its counters
    /// directly while talking to the socket).
    pub fn session(&self) -> Arc<Session> {
        self.shared.session.current()
    }

    /// The in-flight query gate (tests hold permits to force
    /// deterministic `overloaded` responses).
    pub fn gate(&self) -> Arc<Gate> {
        self.shared.gate.clone()
    }

    /// The bound TCP address, if a TCP listener was added.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// Serves until a `shutdown` request arrives: accepts connections on
    /// every bound listener, one handler thread each, every handler
    /// sharing the one session. On shutdown the server drains — in-flight
    /// requests complete, new accepts are refused, handler threads are
    /// joined — and the socket file is removed on the way out.
    pub fn run(self) -> std::io::Result<()> {
        let mut accepts: Vec<JoinHandle<()>> = Vec::new();
        if let Some(listener) = self.unix {
            let shared = self.shared.clone();
            accepts.push(std::thread::spawn(move || {
                accept_loop(|| listener.accept().map(|(s, _)| s), &shared);
            }));
        }
        if let Some(listener) = self.tcp {
            let shared = self.shared.clone();
            accepts.push(std::thread::spawn(move || {
                accept_loop(|| listener.accept().map(|(s, _)| s), &shared);
            }));
        }
        for a in accepts {
            let _ = a.join();
        }
        let handlers: Vec<JoinHandle<()>> =
            self.shared.handlers.lock().unwrap().drain(..).collect();
        for h in handlers {
            let _ = h.join();
        }
        if let Some(path) = &self.path {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }

    /// [`Server::run`] on a background thread — what the integration
    /// tests use. Join the handle after sending `shutdown`.
    pub fn spawn(self) -> JoinHandle<std::io::Result<()>> {
        std::thread::spawn(move || self.run())
    }
}

fn accept_loop<C: Conn>(mut accept: impl FnMut() -> std::io::Result<C>, shared: &Arc<Shared>) {
    loop {
        let stream = match accept() {
            Ok(s) => s,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            // The wake poke, or a client racing the drain: refuse.
            break;
        }
        let shared_conn = shared.clone();
        let handle = std::thread::spawn(move || {
            let _ = handle_connection(stream, &shared_conn);
        });
        shared.handlers.lock().unwrap().push(handle);
    }
}

fn handle_connection<C: Conn>(stream: C, shared: &Arc<Shared>) -> std::io::Result<()> {
    bonsai_obs::add("daemon.connections.total", 1);
    let options = shared.options;
    stream.set_conn_timeouts(options.idle_timeout, options.write_timeout)?;
    let closer = stream.try_clone_conn()?;
    let slot = shared.register_conn(Box::new(move || {
        let _ = closer.shutdown_read();
    }));
    let result = serve_connection(stream, shared, &options);
    shared.unregister_conn(slot);
    result
}

fn serve_connection<C: Conn>(
    stream: C,
    shared: &Arc<Shared>,
    options: &ServerOptions,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone_conn()?);
    let mut writer = BufWriter::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    let mut served = 0usize;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let read = match read_line_bounded(&mut reader, options.max_request_bytes, &mut buf) {
            Ok(r) => r,
            // Idle connection: reap it quietly.
            Err(e) if is_timeout(&e) => break,
            Err(e) => return Err(e),
        };
        let line = match read {
            LineRead::Eof => break,
            LineRead::TooLong => {
                let response = render_error(
                    "too_large",
                    &format!("request exceeds {} bytes", options.max_request_bytes),
                );
                writer.write_all(response.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                continue;
            }
            LineRead::Line => String::from_utf8_lossy(&buf),
        };
        if line.trim().is_empty() {
            continue;
        }
        if options.max_requests_per_conn > 0 && served >= options.max_requests_per_conn {
            let response = render_error(
                "connection_limit",
                &format!(
                    "connection served its {} requests, reconnect",
                    options.max_requests_per_conn
                ),
            );
            writer.write_all(response.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
            break;
        }
        served += 1;
        let (response, shutdown) = answer_line(&shared.session, &line, options, &shared.gate);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if shutdown {
            shared.drain();
            break;
        }
    }
    Ok(())
}

/// A line-oriented client for the `bonsaid` socket or TCP listener —
/// used by `bonsai query` and the tests.
pub struct Client {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: BufWriter<Box<dyn Write + Send>>,
}

impl Client {
    /// Connects to a running server's Unix socket.
    pub fn connect(path: &Path) -> std::io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        let reader = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(Box::new(reader)),
            writer: BufWriter::new(Box::new(stream)),
        })
    }

    /// Connects to a running server's TCP listener.
    pub fn connect_tcp(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let reader = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(Box::new(reader)),
            writer: BufWriter::new(Box::new(stream)),
        })
    }

    /// Sends one request line and returns the raw response line.
    pub fn call(&mut self, request: &str) -> std::io::Result<String> {
        self.writer.write_all(request.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_verify::session::Session;

    fn tmp_socket(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("bonsaid-test-{name}-{}.sock", std::process::id()))
    }

    fn gadget_session() -> Session {
        Session::builder(bonsai_srp::papernets::figure2_gadget())
            .max_failures(1)
            .threads(2)
            .build()
            .expect("session builds")
    }

    fn gadget_server(name: &str) -> (PathBuf, Arc<Session>, JoinHandle<std::io::Result<()>>) {
        let path = tmp_socket(name);
        let server = Server::bind(gadget_session(), &path).expect("socket binds");
        let handle_session = server.session();
        let join = server.spawn();
        (path, handle_session, join)
    }

    #[test]
    fn protocol_round_trip_and_shutdown() {
        let (path, _session, join) = gadget_server("roundtrip");
        let mut client = Client::connect(&path).expect("connects");
        let pong = client.call("{\"op\": \"ping\"}").unwrap();
        assert!(pong.contains("\"ok\": true"), "{pong}");
        let reach = client
            .call("{\"op\": \"reach\", \"src\": \"a\", \"dst\": \"d\"}")
            .unwrap();
        assert!(reach.contains("\"delivered\": true"), "{reach}");
        let err = client.call("{\"op\": \"nope\"}").unwrap();
        assert!(err.contains("\"code\": \"unknown_op\""), "{err}");
        // Unknown devices answer an error without killing the connection.
        let err = client
            .call("{\"op\": \"reach\", \"src\": \"zz\", \"dst\": \"d\"}")
            .unwrap();
        assert!(err.contains("\"code\": \"query\""), "{err}");
        assert!(err.contains("unknown device"), "{err}");
        let bye = client.call("{\"op\": \"shutdown\"}").unwrap();
        assert!(bye.contains("shutdown"), "{bye}");
        join.join().unwrap().unwrap();
        assert!(!path.exists(), "socket file removed on shutdown");
    }

    #[test]
    fn identical_batches_answer_identically_with_zero_solves() {
        let (path, session, join) = gadget_server("batch");
        let mut client = Client::connect(&path).expect("connects");
        let batch = "{\"op\": \"batch\", \"queries\": [\
            {\"op\": \"sweep\", \"src\": \"a\", \"dst\": \"d\"}, \
            {\"op\": \"all_pairs\"}]}";
        let first = client.call(batch).unwrap();
        let stats_mid = session.stats();
        let second = client.call(batch).unwrap();
        let stats_end = session.stats();
        assert_eq!(first, second, "byte-identical answers");
        assert_eq!(
            stats_end.solver_updates, stats_mid.solver_updates,
            "second batch performed zero solver updates"
        );
        client.call("{\"op\": \"shutdown\"}").unwrap();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn path_op_round_trips() {
        let (path, _session, join) = gadget_server("pathop");
        let mut client = Client::connect(&path).expect("connects");
        let answer = client
            .call(
                "{\"op\": \"path\", \"src\": \"a\", \"dst\": \"d\", \
                 \"waypoints\": [\"b1\", \"b2\", \"b3\"]}",
            )
            .unwrap();
        assert!(answer.contains("\"op\": \"path\""), "{answer}");
        assert!(answer.contains("\"lengths\": [2]"), "{answer}");
        assert!(answer.contains("\"waypointed\": true"), "{answer}");
        let plain = client
            .call("{\"op\": \"path\", \"src\": \"a\", \"dst\": \"d\"}")
            .unwrap();
        assert!(plain.contains("\"waypointed\": null"), "{plain}");
        client.call("{\"op\": \"shutdown\"}").unwrap();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn tcp_listener_round_trips() {
        let server = Server::bind_tcp(gadget_session(), "127.0.0.1:0").expect("tcp listener binds");
        let addr = server.tcp_addr().expect("has an address");
        let join = server.spawn();
        let mut client = Client::connect_tcp(&addr.to_string()).expect("connects");
        let pong = client.call("{\"op\": \"ping\"}").unwrap();
        assert!(pong.contains("\"ok\": true"), "{pong}");
        let reach = client
            .call("{\"op\": \"reach\", \"src\": \"a\", \"dst\": \"d\"}")
            .unwrap();
        assert!(reach.contains("\"delivered\": true"), "{reach}");
        client.call("{\"op\": \"shutdown\"}").unwrap();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn oversized_lines_are_shed_not_fatal() {
        let path = tmp_socket("toolarge");
        let options = ServerOptions {
            max_request_bytes: 256,
            ..Default::default()
        };
        let server = Server::bind_with(gadget_session(), &path, options).expect("binds");
        let join = server.spawn();
        let mut client = Client::connect(&path).expect("connects");
        let huge = format!("{{\"op\": \"ping\", \"pad\": \"{}\"}}", "x".repeat(512));
        let shed = client.call(&huge).unwrap();
        assert!(shed.contains("\"code\": \"too_large\""), "{shed}");
        // The connection survives the oversized line.
        let pong = client.call("{\"op\": \"ping\"}").unwrap();
        assert!(pong.contains("\"ok\": true"), "{pong}");
        client.call("{\"op\": \"shutdown\"}").unwrap();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn oversized_batches_are_rejected() {
        let path = tmp_socket("bigbatch");
        let options = ServerOptions {
            max_batch: 2,
            ..Default::default()
        };
        let server = Server::bind_with(gadget_session(), &path, options).expect("binds");
        let join = server.spawn();
        let mut client = Client::connect(&path).expect("connects");
        let batch = "{\"op\": \"batch\", \"queries\": [\
            {\"op\": \"all_pairs\"}, {\"op\": \"all_pairs\"}, {\"op\": \"all_pairs\"}]}";
        let shed = client.call(batch).unwrap();
        assert!(shed.contains("\"code\": \"too_large\""), "{shed}");
        client.call("{\"op\": \"shutdown\"}").unwrap();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn full_gate_sheds_queries_but_keeps_control_ops() {
        let path = tmp_socket("overload");
        let options = ServerOptions {
            max_inflight: 1,
            ..Default::default()
        };
        let server = Server::bind_with(gadget_session(), &path, options).expect("binds");
        let gate = server.gate();
        let join = server.spawn();
        let mut client = Client::connect(&path).expect("connects");
        // Deterministically exhaust the gate, as a stuck query would.
        let held = gate.try_acquire().expect("permit free");
        assert_eq!(gate.available(), 0);
        let shed_before = bonsai_obs::value("daemon.query.shed");
        let shed = client
            .call("{\"op\": \"reach\", \"src\": \"a\", \"dst\": \"d\"}")
            .unwrap();
        assert!(shed.contains("\"code\": \"overloaded\""), "{shed}");
        // Registry counters are process-global, so other tests may shed
        // concurrently — assert the floor, not equality.
        assert!(
            bonsai_obs::value("daemon.query.shed") > shed_before,
            "shed counter moved"
        );
        // Control ops stay answerable under full query load.
        let pong = client.call("{\"op\": \"ping\"}").unwrap();
        assert!(pong.contains("\"ok\": true"), "{pong}");
        drop(held);
        let ok = client
            .call("{\"op\": \"reach\", \"src\": \"a\", \"dst\": \"d\"}")
            .unwrap();
        assert!(ok.contains("\"delivered\": true"), "recovers: {ok}");
        client.call("{\"op\": \"shutdown\"}").unwrap();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn metrics_op_serves_prometheus_exposition() {
        let (path, _session, join) = gadget_server("metrics");
        let mut client = Client::connect(&path).expect("connects");
        // A query first, so the scrape has non-zero session counters.
        let reach = client
            .call("{\"op\": \"reach\", \"src\": \"a\", \"dst\": \"d\"}")
            .unwrap();
        assert!(reach.contains("\"delivered\": true"), "{reach}");
        let answer = client.call("{\"op\": \"metrics\"}").unwrap();
        let doc = Json::parse(&answer).expect("metrics answer parses");
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("op").and_then(Json::as_str), Some("metrics"));
        assert_eq!(
            doc.get("content_type").and_then(Json::as_str),
            Some(bonsai_obs::PROMETHEUS_CONTENT_TYPE)
        );
        let body = doc.get("body").and_then(Json::as_str).expect("has body");
        // The unescaped body is a full exposition: every inventoried
        // metric appears with HELP and TYPE lines.
        for def in bonsai_obs::METRICS {
            let prom = bonsai_obs::prom_name(def.name);
            assert!(
                body.contains(&format!("# TYPE {prom} ")),
                "missing TYPE for {prom}"
            );
        }
        assert!(
            body.contains("daemon_requests_total"),
            "request counter scraped"
        );
        assert!(
            body.contains("daemon_query_latency_us_bucket"),
            "latency histogram scraped"
        );
        // Byte-determinism: the gadget is idle between scrapes, but the
        // histogram sum could shift if another op ran — so only assert
        // the response stays parseable and shaped, not byte-equal.
        let again = client.call("{\"op\": \"metrics\"}").unwrap();
        Json::parse(&again).expect("second scrape parses");
        client.call("{\"op\": \"shutdown\"}").unwrap();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn per_connection_request_budget_closes_connection() {
        let path = tmp_socket("connlimit");
        let options = ServerOptions {
            max_requests_per_conn: 2,
            ..Default::default()
        };
        let server = Server::bind_with(gadget_session(), &path, options).expect("binds");
        let join = server.spawn();
        let mut client = Client::connect(&path).expect("connects");
        for _ in 0..2 {
            let pong = client.call("{\"op\": \"ping\"}").unwrap();
            assert!(pong.contains("\"ok\": true"), "{pong}");
        }
        let cut = client.call("{\"op\": \"ping\"}").unwrap();
        assert!(cut.contains("\"code\": \"connection_limit\""), "{cut}");
        // A fresh connection gets a fresh budget.
        let mut fresh = Client::connect(&path).expect("reconnects");
        let pong = fresh.call("{\"op\": \"ping\"}").unwrap();
        assert!(pong.contains("\"ok\": true"), "{pong}");
        fresh.call("{\"op\": \"shutdown\"}").unwrap();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn shutdown_drains_other_connections() {
        let (path, _session, join) = gadget_server("drain");
        let mut idle = Client::connect(&path).expect("idle client connects");
        let pong = idle.call("{\"op\": \"ping\"}").unwrap();
        assert!(pong.contains("\"ok\": true"), "{pong}");
        let mut closer = Client::connect(&path).expect("closer connects");
        closer.call("{\"op\": \"shutdown\"}").unwrap();
        join.join().unwrap().unwrap();
        // The idle connection was read-shutdown by the drain: its next
        // call observes EOF (empty line) or a broken pipe, not a hang.
        if let Ok(line) = idle.call("{\"op\": \"ping\"}") {
            assert!(line.is_empty(), "drained, got {line}");
        }
        assert!(!path.exists(), "socket file removed on shutdown");
    }
}
