//! Link-failure masks: which directed edges of a [`Graph`] are down.
//!
//! The paper proves CP-equivalence for the *failure-free* control plane
//! and notes (§9) that an abstraction can become **unsound once links
//! fail**: one concrete link failing breaks the symmetry the abstraction
//! relies on, while the corresponding abstract link stands for *many*
//! concrete links at once. The failure-scenario subsystem therefore needs
//! to re-solve SRP instances with some edges disabled — cheaply, and
//! without cloning or rebuilding the instance.
//!
//! A [`FailureMask`] is a plain bitset over [`EdgeId`]s. Solvers and
//! stability checks take an `Option<&FailureMask>` and simply skip
//! disabled edges when collecting a node's choices; everything else
//! (labels, transfer functions, compiled policies) is untouched. Failing
//! an undirected *link* disables both directed edges.
//!
//! The mask is deliberately dumb: it knows edge ids, not topology. Helper
//! constructors that speak in terms of links or device names live next to
//! the graph ([`Graph::find_edge`]) and in `bonsai-topo`.

use crate::graph::{EdgeId, Graph, NodeId};
use std::fmt;

/// A set of disabled (failed) directed edges, as a bitset over edge ids.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct FailureMask {
    words: Vec<u64>,
    disabled: usize,
}

impl FailureMask {
    /// An empty mask (no failures) sized for a graph with `edge_count`
    /// directed edges.
    pub fn new(edge_count: usize) -> Self {
        FailureMask {
            words: vec![0u64; edge_count.div_ceil(64)],
            disabled: 0,
        }
    }

    /// An empty mask sized for `graph`.
    pub fn for_graph(graph: &Graph) -> Self {
        Self::new(graph.edge_count())
    }

    /// Number of disabled directed edges.
    pub fn disabled_count(&self) -> usize {
        self.disabled
    }

    /// True if no edge is disabled.
    pub fn is_empty(&self) -> bool {
        self.disabled == 0
    }

    /// Disables a single directed edge. Idempotent.
    pub fn disable(&mut self, e: EdgeId) {
        let (w, b) = (e.index() / 64, e.index() % 64);
        assert!(w < self.words.len(), "edge {e:?} out of range for mask");
        if self.words[w] & (1 << b) == 0 {
            self.words[w] |= 1 << b;
            self.disabled += 1;
        }
    }

    /// Disables the undirected link `u — v`: both directed edges, where
    /// present. Returns how many directed edges were newly disabled (0 if
    /// the nodes are not adjacent).
    pub fn disable_link(&mut self, graph: &Graph, u: NodeId, v: NodeId) -> usize {
        let before = self.disabled;
        if let Some(e) = graph.find_edge(u, v) {
            self.disable(e);
        }
        if let Some(e) = graph.find_edge(v, u) {
            self.disable(e);
        }
        self.disabled - before
    }

    /// True if the directed edge is disabled.
    #[inline]
    pub fn is_disabled(&self, e: EdgeId) -> bool {
        let (w, b) = (e.index() / 64, e.index() % 64);
        w < self.words.len() && self.words[w] & (1 << b) != 0
    }

    /// Iterator over the disabled edge ids, ascending.
    pub fn iter_disabled(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1u64 << b) != 0)
                .map(move |b| EdgeId((wi * 64 + b) as u32))
        })
    }
}

impl fmt::Debug for FailureMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter_disabled()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn triangle() -> Graph {
        let mut gb = GraphBuilder::new();
        let a = gb.add_node("a");
        let b = gb.add_node("b");
        let c = gb.add_node("c");
        gb.add_link(a, b);
        gb.add_link(b, c);
        gb.add_link(c, a);
        gb.build()
    }

    #[test]
    fn empty_mask_disables_nothing() {
        let g = triangle();
        let m = FailureMask::for_graph(&g);
        assert!(m.is_empty());
        assert_eq!(m.disabled_count(), 0);
        for e in g.edges() {
            assert!(!m.is_disabled(e));
        }
    }

    #[test]
    fn disable_link_hits_both_directions() {
        let g = triangle();
        let mut m = FailureMask::for_graph(&g);
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        assert_eq!(m.disable_link(&g, a, b), 2);
        assert!(m.is_disabled(g.find_edge(a, b).unwrap()));
        assert!(m.is_disabled(g.find_edge(b, a).unwrap()));
        assert_eq!(m.disabled_count(), 2);
        // Idempotent.
        assert_eq!(m.disable_link(&g, b, a), 0);
        assert_eq!(m.disabled_count(), 2);
    }

    #[test]
    fn disable_link_on_non_adjacent_pair_is_noop() {
        let mut gb = GraphBuilder::new();
        let a = gb.add_node("a");
        let b = gb.add_node("b");
        let c = gb.add_node("c");
        gb.add_link(a, b);
        let g = gb.build();
        let mut m = FailureMask::for_graph(&g);
        assert_eq!(m.disable_link(&g, a, c), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn iter_disabled_is_sorted() {
        let g = triangle();
        let mut m = FailureMask::for_graph(&g);
        m.disable(EdgeId(5));
        m.disable(EdgeId(0));
        m.disable(EdgeId(3));
        let ids: Vec<u32> = m.iter_disabled().map(|e| e.0).collect();
        assert_eq!(ids, vec![0, 3, 5]);
    }

    #[test]
    fn one_directional_edge_masks_once() {
        let mut gb = GraphBuilder::new();
        let a = gb.add_node("a");
        let b = gb.add_node("b");
        gb.add_edge(a, b); // no reverse
        let g = gb.build();
        let mut m = FailureMask::for_graph(&g);
        assert_eq!(m.disable_link(&g, a, b), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn disable_out_of_range_panics() {
        let g = triangle();
        let mut m = FailureMask::for_graph(&g);
        m.disable(EdgeId(99));
    }
}
