//! Directed graph used as the SRP topology.
//!
//! The paper models a network as a graph `G = (V, E, d)` with a set of
//! vertices (routers), a set of *directed* edges (links, one per direction)
//! and a distinguished destination vertex. This module provides a compact
//! adjacency representation tuned for the access patterns of the compression
//! algorithm: iterate the out-edges of a node, iterate the in-edges of a
//! node, look up whether `(u, v)` is an edge, and map an edge to a dense
//! index usable as a table key.
//!
//! Node and edge identifiers are dense `u32` newtypes so they can index
//! `Vec` tables without hashing.

use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a node (router) in a [`Graph`].
///
/// Node ids are dense: a graph with `n` nodes uses ids `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize`, for indexing per-node tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a directed edge in a [`Graph`].
///
/// Edge ids are dense: a graph with `m` edges uses ids `0..m`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The id as a `usize`, for indexing per-edge tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Builder for [`Graph`].
///
/// Edges may be added in any order; duplicate directed edges are rejected
/// (the SRP model has at most one edge per ordered pair), as are self loops
/// (well-formed SRPs are self-loop-free, paper §3.1).
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    names: Vec<String>,
    edges: Vec<(NodeId, NodeId)>,
    seen: BTreeSet<(u32, u32)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node with the given display name, returning its id.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.names.len() as u32);
        self.names.push(name.into());
        id
    }

    /// Adds `n` nodes named `prefix0..prefix{n-1}`, returning their ids.
    pub fn add_nodes(&mut self, prefix: &str, n: usize) -> Vec<NodeId> {
        (0..n)
            .map(|i| self.add_node(format!("{prefix}{i}")))
            .collect()
    }

    /// Adds a directed edge `u -> v`.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` (self loop), if either endpoint is out of range,
    /// or if the edge already exists.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> EdgeId {
        assert!(
            u != v,
            "SRP graphs are self-loop-free (tried {u:?} -> {v:?})"
        );
        assert!(
            (u.index()) < self.names.len() && (v.index()) < self.names.len(),
            "edge endpoint out of range"
        );
        assert!(
            self.seen.insert((u.0, v.0)),
            "duplicate directed edge {u:?} -> {v:?}"
        );
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push((u, v));
        id
    }

    /// Adds both directed edges `u -> v` and `v -> u`.
    pub fn add_link(&mut self, u: NodeId, v: NodeId) -> (EdgeId, EdgeId) {
        (self.add_edge(u, v), self.add_edge(v, u))
    }

    /// Returns true if the directed edge `u -> v` has been added.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.seen.contains(&(u.0, v.0))
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Finalizes the builder into an immutable [`Graph`].
    pub fn build(self) -> Graph {
        let n = self.names.len();
        let m = self.edges.len();

        // Counting sort of edges into per-source and per-target adjacency.
        let mut out_start = vec![0u32; n + 1];
        let mut in_start = vec![0u32; n + 1];
        for &(u, v) in &self.edges {
            out_start[u.index() + 1] += 1;
            in_start[v.index() + 1] += 1;
        }
        for i in 0..n {
            out_start[i + 1] += out_start[i];
            in_start[i + 1] += in_start[i];
        }
        let mut out_edges = vec![EdgeId(0); m];
        let mut in_edges = vec![EdgeId(0); m];
        let mut out_cursor = out_start.clone();
        let mut in_cursor = in_start.clone();
        for (i, &(u, v)) in self.edges.iter().enumerate() {
            out_edges[out_cursor[u.index()] as usize] = EdgeId(i as u32);
            out_cursor[u.index()] += 1;
            in_edges[in_cursor[v.index()] as usize] = EdgeId(i as u32);
            in_cursor[v.index()] += 1;
        }

        Graph {
            names: self.names,
            edges: self.edges,
            edge_set: self.seen,
            out_start,
            out_edges,
            in_start,
            in_edges,
        }
    }
}

/// An immutable directed graph: the topology of an SRP instance.
///
/// Build one with [`GraphBuilder`]. All queries are O(1) or O(degree) except
/// [`Graph::has_edge`], which is O(log m).
#[derive(Clone, Debug)]
pub struct Graph {
    names: Vec<String>,
    edges: Vec<(NodeId, NodeId)>,
    edge_set: BTreeSet<(u32, u32)>,
    out_start: Vec<u32>,
    out_edges: Vec<EdgeId>,
    in_start: Vec<u32>,
    in_edges: Vec<EdgeId>,
}

impl Graph {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of undirected links (pairs of antiparallel directed edges are
    /// counted once; a directed edge without its reverse counts as one).
    pub fn link_count(&self) -> usize {
        let mut links = 0usize;
        for &(u, v) in &self.edges {
            if u.0 < v.0 || !self.has_edge(v, u) {
                links += 1;
            }
        }
        links
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.names.len() as u32).map(NodeId)
    }

    /// Iterator over all edge ids.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// The display name of a node.
    pub fn name(&self, u: NodeId) -> &str {
        &self.names[u.index()]
    }

    /// Looks a node up by display name (O(n); intended for tests/examples).
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| NodeId(i as u32))
    }

    /// The `(source, target)` pair of a directed edge.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e.index()]
    }

    /// The source node of a directed edge.
    #[inline]
    pub fn source(&self, e: EdgeId) -> NodeId {
        self.edges[e.index()].0
    }

    /// The target node of a directed edge.
    #[inline]
    pub fn target(&self, e: EdgeId) -> NodeId {
        self.edges[e.index()].1
    }

    /// True if the directed edge `u -> v` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_set.contains(&(u.0, v.0))
    }

    /// Finds the id of the directed edge `u -> v`, if present (O(degree)).
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.out(u).find(|&e| self.target(e) == v)
    }

    /// Iterator over the out-edges of `u`.
    pub fn out(&self, u: NodeId) -> impl ExactSizeIterator<Item = EdgeId> + '_ {
        let lo = self.out_start[u.index()] as usize;
        let hi = self.out_start[u.index() + 1] as usize;
        self.out_edges[lo..hi].iter().copied()
    }

    /// Iterator over the in-edges of `u`.
    pub fn inn(&self, u: NodeId) -> impl ExactSizeIterator<Item = EdgeId> + '_ {
        let lo = self.in_start[u.index()] as usize;
        let hi = self.in_start[u.index() + 1] as usize;
        self.in_edges[lo..hi].iter().copied()
    }

    /// Iterator over the out-neighbors of `u`.
    pub fn successors(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out(u).map(|e| self.target(e))
    }

    /// Iterator over the in-neighbors of `u`.
    pub fn predecessors(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.inn(u).map(|e| self.source(e))
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out(u).len()
    }

    /// The undirected links of the graph as canonical node pairs: one
    /// `(u, v)` per antiparallel edge pair with `u < v`, plus one pair per
    /// directed edge without a reverse (in source-first orientation).
    /// Deterministic order (by the canonical edge's id); the basis of
    /// link-failure scenario enumeration.
    pub fn links(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(self.link_count());
        for &(u, v) in &self.edges {
            if u.0 < v.0 || !self.has_edge(v, u) {
                out.push((u, v));
            }
        }
        out
    }

    /// Unweighted BFS distances from `src` following *out*-edges.
    /// Unreachable nodes get `None`.
    pub fn bfs_distances(&self, src: NodeId) -> Vec<Option<u32>> {
        let mut dist = vec![None; self.node_count()];
        let mut queue = std::collections::VecDeque::new();
        dist[src.index()] = Some(0);
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()].unwrap();
            for v in self.successors(u) {
                if dist[v.index()].is_none() {
                    dist[v.index()] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // a -> b1 -> d, a -> b2 -> d (bidirectional links)
        let mut g = GraphBuilder::new();
        let a = g.add_node("a");
        let b1 = g.add_node("b1");
        let b2 = g.add_node("b2");
        let d = g.add_node("d");
        g.add_link(a, b1);
        g.add_link(a, b2);
        g.add_link(b1, d);
        g.add_link(b2, d);
        g.build()
    }

    #[test]
    fn counts() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 8);
        assert_eq!(g.link_count(), 4);
    }

    #[test]
    fn adjacency_is_consistent_with_edge_list() {
        let g = diamond();
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            assert!(g.out(u).any(|x| x == e));
            assert!(g.inn(v).any(|x| x == e));
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn neighbors() {
        let g = diamond();
        let a = g.node_by_name("a").unwrap();
        let d = g.node_by_name("d").unwrap();
        let succ: Vec<_> = g.successors(a).map(|n| g.name(n).to_string()).collect();
        assert_eq!(succ, vec!["b1", "b2"]);
        let pred: Vec<_> = g.predecessors(d).map(|n| g.name(n).to_string()).collect();
        assert_eq!(pred, vec!["b1", "b2"]);
    }

    #[test]
    fn find_edge_and_endpoints() {
        let g = diamond();
        let a = g.node_by_name("a").unwrap();
        let b1 = g.node_by_name("b1").unwrap();
        let e = g.find_edge(a, b1).unwrap();
        assert_eq!(g.source(e), a);
        assert_eq!(g.target(e), b1);
        assert!(g.find_edge(a, g.node_by_name("d").unwrap()).is_none());
    }

    #[test]
    fn bfs() {
        let g = diamond();
        let a = g.node_by_name("a").unwrap();
        let dist = g.bfs_distances(a);
        assert_eq!(dist[a.index()], Some(0));
        assert_eq!(dist[g.node_by_name("b1").unwrap().index()], Some(1));
        assert_eq!(dist[g.node_by_name("d").unwrap().index()], Some(2));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        let mut g = GraphBuilder::new();
        let a = g.add_node("a");
        g.add_edge(a, a);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicate_edge() {
        let mut g = GraphBuilder::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b);
        g.add_edge(a, b);
    }

    #[test]
    fn directed_edge_without_reverse_counts_as_link() {
        let mut g = GraphBuilder::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b);
        let g = g.build();
        assert_eq!(g.link_count(), 1);
    }
}
