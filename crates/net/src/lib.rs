//! # bonsai-net
//!
//! Foundation types for the Bonsai control-plane compression library:
//!
//! * [`graph`] — a compact directed graph used as the SRP topology
//!   `G = (V, E, d)` from the paper. Nodes are routers, directed edges are
//!   (half-) links between them.
//! * [`prefix`] — IPv4 prefixes and prefix sets, used to describe
//!   destinations, route filters and ACL match conditions.
//! * [`trie`] — a binary prefix trie used to carve the IPv4 space into
//!   *destination equivalence classes* (paper §5.1).
//! * [`partition`] — the union-split-find structure that Algorithm 1 uses to
//!   maintain the abstraction function `f` as a partition of concrete nodes.
//! * [`failures`] — bitset masks of failed (disabled) edges, the substrate
//!   of bounded link-failure scenario analysis.
//!
//! The crate has no dependencies and follows the smoltcp school of design:
//! plain data structures, explicit invariants, extensive documentation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod failures;
pub mod graph;
pub mod partition;
pub mod prefix;
pub mod trie;

pub use failures::FailureMask;
pub use graph::{EdgeId, Graph, GraphBuilder, NodeId};
pub use partition::Partition;
pub use prefix::{Ipv4Addr, Prefix};
pub use trie::PrefixTrie;
