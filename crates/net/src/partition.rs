//! Union-split-find: the partition-refinement structure behind Algorithm 1.
//!
//! The compression algorithm (paper §5.2) maintains the topology abstraction
//! `f` as a partition of the concrete nodes: each *block* of the partition
//! is one abstract node. The algorithm only ever **splits** blocks — it
//! starts from the coarsest partition (destination alone, everything else
//! together) and refines until the partition induces an effective
//! abstraction. The paper calls the structure a *union-split-find*; since no
//! unions happen after initialization, what is required in practice is an
//! efficient *split-find*.
//!
//! Blocks are identified by dense [`BlockId`]s. Splitting assigns fresh ids
//! to the carved-off sub-blocks and never reuses ids, so a `BlockId` held
//! across a split still refers to the (possibly shrunk) original block.
//! All operations are deterministic: members are kept in ascending order
//! and new block ids are assigned in a fixed order, which keeps the whole
//! compression pipeline reproducible.

use std::collections::HashMap;
use std::hash::Hash;

/// Identifier of a partition block (an abstract node).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The id as a `usize`, for indexing per-block tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A partition of the elements `0..n` supporting block lookup and splits.
#[derive(Clone, Debug)]
pub struct Partition {
    /// element -> block id
    block_of: Vec<BlockId>,
    /// block id -> sorted members. Never empty once created.
    members: Vec<Vec<u32>>,
}

impl Partition {
    /// Creates the coarsest partition of `0..n`: a single block.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn coarsest(n: usize) -> Self {
        assert!(n > 0, "cannot partition zero elements");
        Partition {
            block_of: vec![BlockId(0); n],
            members: vec![(0..n as u32).collect()],
        }
    }

    /// Creates the discrete partition of `0..n`: every element alone.
    pub fn discrete(n: usize) -> Self {
        assert!(n > 0, "cannot partition zero elements");
        Partition {
            block_of: (0..n as u32).map(BlockId).collect(),
            members: (0..n as u32).map(|i| vec![i]).collect(),
        }
    }

    /// Number of elements being partitioned.
    pub fn len(&self) -> usize {
        self.block_of.len()
    }

    /// Always false; partitions are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.members.iter().filter(|m| !m.is_empty()).count()
    }

    /// The block containing element `x`.
    #[inline]
    pub fn block_of(&self, x: u32) -> BlockId {
        self.block_of[x as usize]
    }

    /// The sorted members of a block.
    pub fn members(&self, b: BlockId) -> &[u32] {
        &self.members[b.index()]
    }

    /// Iterator over the ids of all (non-empty) blocks.
    pub fn blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.members
            .iter()
            .enumerate()
            .filter(|(_, m)| !m.is_empty())
            .map(|(i, _)| BlockId(i as u32))
    }

    /// True if `x` and `y` are in the same block.
    pub fn same_block(&self, x: u32, y: u32) -> bool {
        self.block_of(x) == self.block_of(y)
    }

    /// Splits every block `B` into `B ∩ S` and `B \ S` where `S` is the
    /// given element set. Blocks entirely inside or outside `S` are left
    /// untouched. Returns the ids of the freshly created blocks (the
    /// `B ∩ S` parts that were carved off).
    ///
    /// This is the `Split(f, us)` operation of Algorithm 1.
    pub fn split(&mut self, subset: &[u32]) -> Vec<BlockId> {
        // Group the subset by current block.
        let mut by_block: HashMap<BlockId, Vec<u32>> = HashMap::new();
        for &x in subset {
            assert!((x as usize) < self.block_of.len(), "element out of range");
            by_block.entry(self.block_of(x)).or_default().push(x);
        }
        // Deterministic processing order.
        let mut touched: Vec<_> = by_block.into_iter().collect();
        touched.sort_by_key(|(b, _)| *b);

        let mut created = Vec::new();
        for (b, mut part) in touched {
            part.sort_unstable();
            part.dedup();
            if part.len() == self.members[b.index()].len() {
                continue; // whole block selected: nothing to split
            }
            let new_id = BlockId(self.members.len() as u32);
            for &x in &part {
                self.block_of[x as usize] = new_id;
            }
            self.members[b.index()].retain(|x| self.block_of[*x as usize] == b);
            self.members.push(part);
            created.push(new_id);
        }
        created
    }

    /// Refines a single block by a key function: members with distinct keys
    /// end up in distinct blocks. The members sharing the key of the block's
    /// smallest element stay in the original block; every other key group
    /// gets a fresh block. Returns the ids of the freshly created blocks.
    ///
    /// This implements the `GroupKeysByValue` + `Split` step of `Refine`
    /// (Algorithm 1, lines 21-22).
    pub fn refine_block_by_key<K, F>(&mut self, b: BlockId, mut key: F) -> Vec<BlockId>
    where
        K: Hash + Eq,
        F: FnMut(u32) -> K,
    {
        let members = self.members[b.index()].clone();
        if members.len() <= 1 {
            return Vec::new();
        }
        // Group members by key, preserving first-seen order of groups so the
        // result does not depend on the hash function's iteration order.
        let mut group_of: HashMap<K, usize> = HashMap::new();
        let mut groups: Vec<Vec<u32>> = Vec::new();
        for &x in &members {
            let k = key(x);
            let idx = *group_of.entry(k).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            groups[idx].push(x);
        }
        if groups.len() <= 1 {
            return Vec::new();
        }
        let mut created = Vec::new();
        // Keep group 0 (containing the smallest member) in place; split off
        // the rest one at a time.
        for g in &groups[1..] {
            created.extend(self.split(g));
        }
        created
    }

    /// Isolates an element into its own (possibly fresh) block; used to give
    /// the destination its own abstract node at the start of Algorithm 1.
    pub fn isolate(&mut self, x: u32) -> BlockId {
        self.split(&[x]);
        self.block_of(x)
    }

    /// The blocks as a sorted list of sorted member lists (for tests and
    /// golden comparisons).
    pub fn as_sets(&self) -> Vec<Vec<u32>> {
        let mut sets: Vec<Vec<u32>> = self
            .members
            .iter()
            .filter(|m| !m.is_empty())
            .cloned()
            .collect();
        sets.sort();
        sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarsest_and_discrete() {
        let p = Partition::coarsest(5);
        assert_eq!(p.block_count(), 1);
        assert!(p.same_block(0, 4));
        let d = Partition::discrete(3);
        assert_eq!(d.block_count(), 3);
        assert!(!d.same_block(0, 1));
    }

    #[test]
    fn split_carves_subset() {
        let mut p = Partition::coarsest(6);
        let created = p.split(&[1, 3, 5]);
        assert_eq!(created.len(), 1);
        assert_eq!(p.block_count(), 2);
        assert_eq!(p.as_sets(), vec![vec![0, 2, 4], vec![1, 3, 5]]);
        assert!(p.same_block(1, 3));
        assert!(!p.same_block(0, 1));
    }

    #[test]
    fn split_whole_block_is_noop() {
        let mut p = Partition::coarsest(4);
        let created = p.split(&[0, 1, 2, 3]);
        assert!(created.is_empty());
        assert_eq!(p.block_count(), 1);
    }

    #[test]
    fn split_across_blocks() {
        let mut p = Partition::coarsest(6);
        p.split(&[0, 1, 2]); // {0,1,2} {3,4,5}
        let created = p.split(&[2, 3]); // splits both blocks
        assert_eq!(created.len(), 2);
        assert_eq!(p.as_sets(), vec![vec![0, 1], vec![2], vec![3], vec![4, 5]]);
    }

    #[test]
    fn stale_block_id_still_points_at_remainder() {
        let mut p = Partition::coarsest(4);
        let b = p.block_of(0);
        p.split(&[2, 3]);
        // Original id keeps the untouched part.
        assert_eq!(p.members(b), &[0, 1]);
    }

    #[test]
    fn refine_by_key_groups() {
        let mut p = Partition::coarsest(6);
        let b = p.block_of(0);
        // key = parity
        let created = p.refine_block_by_key(b, |x| x % 2);
        assert_eq!(created.len(), 1);
        assert_eq!(p.as_sets(), vec![vec![0, 2, 4], vec![1, 3, 5]]);
        // Refining again with the same key changes nothing.
        for blk in p.blocks().collect::<Vec<_>>() {
            assert!(p.refine_block_by_key(blk, |x| x % 2).is_empty());
        }
    }

    #[test]
    fn refine_singleton_is_noop() {
        let mut p = Partition::discrete(3);
        for b in p.blocks().collect::<Vec<_>>() {
            assert!(p.refine_block_by_key(b, |x| x).is_empty());
        }
    }

    #[test]
    fn isolate() {
        let mut p = Partition::coarsest(5);
        let b = p.isolate(3);
        assert_eq!(p.members(b), &[3]);
        assert_eq!(p.block_count(), 2);
        // Isolating again is a no-op.
        let b2 = p.isolate(3);
        assert_eq!(b, b2);
        assert_eq!(p.block_count(), 2);
    }

    #[test]
    fn members_stay_sorted() {
        let mut p = Partition::coarsest(8);
        p.split(&[7, 1, 5]);
        for b in p.blocks() {
            let m = p.members(b);
            assert!(m.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn block_count_matches_as_sets() {
        let mut p = Partition::coarsest(10);
        p.split(&[0, 1]);
        p.split(&[5]);
        p.split(&[9, 8]);
        assert_eq!(p.block_count(), p.as_sets().len());
        // Every element is in exactly one block.
        let mut seen = [false; 10];
        for b in p.blocks() {
            for &x in p.members(b) {
                assert!(!seen[x as usize]);
                seen[x as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
