//! IPv4 addresses and prefixes.
//!
//! Bonsai partitions the IPv4 address space into *destination equivalence
//! classes* (paper §5.1): maximal ranges of addresses for which every
//! configuration construct (originated network, prefix list, route filter,
//! ACL) behaves identically. This module provides the `Prefix` type those
//! classes are built from.
//!
//! We deliberately implement our own tiny address type rather than using
//! `std::net::Ipv4Addr` so that bit-level operations (mask, containment,
//! child derivation in the trie) stay explicit and allocation-free.

use std::fmt;
use std::str::FromStr;

/// An IPv4 address as a plain `u32` in host order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ipv4Addr(pub u32);

impl Ipv4Addr {
    /// Builds an address from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// The four octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl fmt::Debug for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Error returned when parsing an address or prefix fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid address or prefix: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

impl FromStr for Ipv4Addr {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split('.');
        let mut value = 0u32;
        for _ in 0..4 {
            let part = parts.next().ok_or_else(|| ParseError(s.to_string()))?;
            let octet: u8 = part.parse().map_err(|_| ParseError(s.to_string()))?;
            value = (value << 8) | octet as u32;
        }
        if parts.next().is_some() {
            return Err(ParseError(s.to_string()));
        }
        Ok(Ipv4Addr(value))
    }
}

/// An IPv4 prefix `addr/len` in canonical form (host bits zero).
///
/// The canonical-form invariant is enforced by the constructor, so two
/// prefixes covering the same range always compare equal.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prefix {
    addr: Ipv4Addr,
    len: u8,
}

impl Prefix {
    /// The full address space `0.0.0.0/0`.
    pub const DEFAULT: Prefix = Prefix {
        addr: Ipv4Addr(0),
        len: 0,
    };

    /// Creates a prefix, masking off any host bits.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} > 32");
        Prefix {
            addr: Ipv4Addr(addr.0 & Self::mask(len)),
            len,
        }
    }

    /// A /32 host route for `addr`.
    pub fn host(addr: Ipv4Addr) -> Self {
        Prefix::new(addr, 32)
    }

    /// The network mask for a given prefix length.
    #[inline]
    pub fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The network address.
    #[inline]
    pub fn addr(self) -> Ipv4Addr {
        self.addr
    }

    /// The prefix length.
    // Not a container: `len` is the CIDR mask length, so `is_empty` would
    // be meaningless (a /0 covers the whole address space).
    #[allow(clippy::len_without_is_empty)]
    #[inline]
    pub fn len(self) -> u8 {
        self.len
    }

    /// True for `0.0.0.0/0`.
    pub fn is_default(self) -> bool {
        self.len == 0
    }

    /// First address covered by the prefix.
    pub fn first(self) -> Ipv4Addr {
        self.addr
    }

    /// Last address covered by the prefix.
    pub fn last(self) -> Ipv4Addr {
        Ipv4Addr(self.addr.0 | !Self::mask(self.len))
    }

    /// True if `self` covers `addr`.
    pub fn contains_addr(self, addr: Ipv4Addr) -> bool {
        (addr.0 & Self::mask(self.len)) == self.addr.0
    }

    /// True if `self` covers every address of `other`
    /// (i.e. `other` is equal to or more specific than `self`).
    pub fn contains(self, other: Prefix) -> bool {
        self.len <= other.len && self.contains_addr(other.addr)
    }

    /// True if the two prefixes share any address.
    pub fn overlaps(self, other: Prefix) -> bool {
        self.contains(other) || other.contains(self)
    }

    /// The two halves of this prefix, or `None` for a /32.
    pub fn children(self) -> Option<(Prefix, Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let len = self.len + 1;
        let bit = 1u32 << (32 - len);
        Some((
            Prefix {
                addr: self.addr,
                len,
            },
            Prefix {
                addr: Ipv4Addr(self.addr.0 | bit),
                len,
            },
        ))
    }

    /// The bit of `addr` at depth `level` (0 = most significant).
    #[inline]
    pub fn bit(addr: Ipv4Addr, level: u8) -> bool {
        debug_assert!(level < 32);
        (addr.0 >> (31 - level)) & 1 == 1
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for Prefix {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s.split_once('/').ok_or_else(|| ParseError(s.to_string()))?;
        let addr: Ipv4Addr = addr.parse()?;
        let len: u8 = len.parse().map_err(|_| ParseError(s.to_string()))?;
        if len > 32 {
            return Err(ParseError(s.to_string()));
        }
        Ok(Prefix::new(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "192.168.1.0/24", "1.2.3.4/32"] {
            let p: Prefix = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn canonicalizes_host_bits() {
        let p: Prefix = "10.1.2.3/8".parse().unwrap();
        assert_eq!(p.to_string(), "10.0.0.0/8");
        let q: Prefix = "10.0.0.0/8".parse().unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn containment() {
        let p8: Prefix = "10.0.0.0/8".parse().unwrap();
        let p24: Prefix = "10.1.2.0/24".parse().unwrap();
        let other: Prefix = "11.0.0.0/8".parse().unwrap();
        assert!(p8.contains(p24));
        assert!(!p24.contains(p8));
        assert!(p8.contains(p8));
        assert!(!p8.contains(other));
        assert!(p8.overlaps(p24));
        assert!(p24.overlaps(p8));
        assert!(!p8.overlaps(other));
    }

    #[test]
    fn first_last() {
        let p: Prefix = "192.168.1.0/24".parse().unwrap();
        assert_eq!(p.first().to_string(), "192.168.1.0");
        assert_eq!(p.last().to_string(), "192.168.1.255");
        let all = Prefix::DEFAULT;
        assert_eq!(all.first().to_string(), "0.0.0.0");
        assert_eq!(all.last().to_string(), "255.255.255.255");
    }

    #[test]
    fn children_split_range_exactly() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        let (lo, hi) = p.children().unwrap();
        assert_eq!(lo.first(), p.first());
        assert_eq!(hi.last(), p.last());
        assert_eq!(lo.last().0 + 1, hi.first().0);
        assert!(Prefix::host(Ipv4Addr::new(1, 2, 3, 4)).children().is_none());
    }

    #[test]
    fn parse_errors() {
        assert!("10.0.0.0".parse::<Prefix>().is_err());
        assert!("10.0.0/8".parse::<Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("10.0.0.256/8".parse::<Prefix>().is_err());
        assert!("1.2.3.4.5".parse::<Ipv4Addr>().is_err());
    }

    #[test]
    fn bit_extraction() {
        let a = Ipv4Addr::new(0b1000_0000, 0, 0, 1);
        assert!(Prefix::bit(a, 0));
        assert!(!Prefix::bit(a, 1));
        assert!(Prefix::bit(a, 31));
    }
}
