//! A binary prefix trie that carves the IPv4 space into *atoms*.
//!
//! Bonsai builds one abstraction per *destination equivalence class* rather
//! than one per destination address (paper §5.1). An equivalence class is a
//! set of address ranges that every configuration construct treats
//! identically: the same nodes originate them and the same route filters,
//! prefix lists and ACL entries match them.
//!
//! To compute the classes we insert every prefix that appears anywhere in
//! the network's configurations into a [`PrefixTrie`], tagged with a value
//! describing where it came from. The trie then yields **atoms**: a
//! partition of the address space into prefix-shaped ranges such that all
//! addresses inside one atom are covered by exactly the same set of inserted
//! prefixes. Atoms with the same covering set are later merged into one
//! equivalence class by the caller.

use crate::prefix::{Ipv4Addr, Prefix};

/// Index of an inserted `(Prefix, T)` entry.
pub type EntryId = usize;

#[derive(Clone, Debug, Default)]
struct Node {
    /// Entries whose prefix ends exactly at this node.
    entries: Vec<EntryId>,
    children: [Option<Box<Node>>; 2],
}

impl Node {
    fn is_leaf(&self) -> bool {
        self.children[0].is_none() && self.children[1].is_none()
    }
}

/// A binary trie over IPv4 prefixes carrying values of type `T`.
///
/// See the module docs for the atom semantics. Duplicate prefixes may be
/// inserted with different values; they end at the same trie node.
#[derive(Clone, Debug)]
pub struct PrefixTrie<T> {
    root: Node,
    entries: Vec<(Prefix, T)>,
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// One atom of the address space: a prefix-shaped range plus the ids of all
/// inserted entries whose prefix covers the whole range.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Atom {
    /// The range covered by the atom.
    pub prefix: Prefix,
    /// Ids of inserted entries covering the atom, in insertion order.
    pub covering: Vec<EntryId>,
}

impl<T> PrefixTrie<T> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            root: Node::default(),
            entries: Vec::new(),
        }
    }

    /// Number of inserted entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a prefix with an associated value, returning its entry id.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> EntryId {
        let id = self.entries.len();
        self.entries.push((prefix, value));
        let mut node = &mut self.root;
        for level in 0..prefix.len() {
            let bit = Prefix::bit(prefix.addr(), level) as usize;
            node = node.children[bit].get_or_insert_with(Box::default);
        }
        node.entries.push(id);
        id
    }

    /// The `(prefix, value)` pair of an entry id.
    pub fn entry(&self, id: EntryId) -> (&Prefix, &T) {
        let (p, v) = &self.entries[id];
        (p, v)
    }

    /// All entries whose prefix covers `addr`, shortest (least specific)
    /// first — i.e. the values on the trie path for `addr`.
    pub fn matches(&self, addr: Ipv4Addr) -> Vec<EntryId> {
        let mut out = Vec::new();
        let mut node = &self.root;
        out.extend_from_slice(&node.entries);
        for level in 0..32u8 {
            let bit = Prefix::bit(addr, level) as usize;
            match &node.children[bit] {
                Some(child) => {
                    node = child;
                    out.extend_from_slice(&node.entries);
                }
                None => break,
            }
        }
        out
    }

    /// The most specific entry covering `addr`, if any
    /// (ties broken toward later insertion).
    pub fn longest_match(&self, addr: Ipv4Addr) -> Option<EntryId> {
        self.matches(addr).into_iter().last()
    }

    /// Computes the atoms of the inserted prefix set.
    ///
    /// The atoms partition `0.0.0.0/0`. Every address in one atom is covered
    /// by exactly the entries listed in [`Atom::covering`]. Atoms covered by
    /// *no* entry are included too (with an empty covering set) so the
    /// result is always a complete partition; callers that only care about
    /// configured destinations can skip them.
    pub fn atoms(&self) -> Vec<Atom> {
        let mut out = Vec::new();
        let mut covering = Vec::new();
        Self::walk(&self.root, Prefix::DEFAULT, &mut covering, &mut out);
        out
    }

    fn walk(node: &Node, prefix: Prefix, covering: &mut Vec<EntryId>, out: &mut Vec<Atom>) {
        let pushed = node.entries.len();
        covering.extend_from_slice(&node.entries);

        if node.is_leaf() {
            out.push(Atom {
                prefix,
                covering: covering.clone(),
            });
        } else {
            let (lo, hi) = prefix
                .children()
                .expect("trie depth bounded by prefix length 32");
            for (half, child) in [(lo, &node.children[0]), (hi, &node.children[1])] {
                match child {
                    Some(child) => Self::walk(child, half, covering, out),
                    None => out.push(Atom {
                        prefix: half,
                        covering: covering.clone(),
                    }),
                }
            }
        }

        covering.truncate(covering.len() - pushed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn empty_trie_has_one_atom() {
        let trie: PrefixTrie<()> = PrefixTrie::new();
        let atoms = trie.atoms();
        assert_eq!(atoms.len(), 1);
        assert_eq!(atoms[0].prefix, Prefix::DEFAULT);
        assert!(atoms[0].covering.is_empty());
    }

    #[test]
    fn single_prefix_produces_covered_atom() {
        let mut trie = PrefixTrie::new();
        let id = trie.insert(p("10.0.0.0/8"), "ten");
        let atoms = trie.atoms();
        // Exactly one atom equals 10.0.0.0/8 and is covered by the entry.
        let hit: Vec<_> = atoms.iter().filter(|a| !a.covering.is_empty()).collect();
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].prefix, p("10.0.0.0/8"));
        assert_eq!(hit[0].covering, vec![id]);
    }

    #[test]
    fn nested_prefixes_fragment() {
        let mut trie = PrefixTrie::new();
        let a = trie.insert(p("10.0.0.0/8"), "outer");
        let b = trie.insert(p("10.1.0.0/16"), "inner");
        let atoms = trie.atoms();
        // The /16 atom is covered by both entries.
        let inner = atoms.iter().find(|x| x.prefix == p("10.1.0.0/16")).unwrap();
        assert_eq!(inner.covering, vec![a, b]);
        // Some atom inside /8 but outside /16 is covered only by the outer.
        let outer_only: Vec<_> = atoms.iter().filter(|x| x.covering == vec![a]).collect();
        assert!(!outer_only.is_empty());
        for at in outer_only {
            assert!(p("10.0.0.0/8").contains(at.prefix));
            assert!(!p("10.1.0.0/16").overlaps(at.prefix));
        }
    }

    #[test]
    fn atoms_partition_the_space() {
        let mut trie = PrefixTrie::new();
        for s in [
            "10.0.0.0/8",
            "10.1.0.0/16",
            "10.1.2.0/24",
            "192.168.0.0/16",
            "0.0.0.0/0",
        ] {
            trie.insert(p(s), s.to_string());
        }
        let atoms = trie.atoms();
        // Disjoint and complete: total size must be 2^32 and no overlap.
        let mut total: u64 = 0;
        for (i, a) in atoms.iter().enumerate() {
            total += (a.prefix.last().0 as u64 - a.prefix.first().0 as u64) + 1;
            for b in &atoms[i + 1..] {
                assert!(
                    !a.prefix.overlaps(b.prefix),
                    "{} overlaps {}",
                    a.prefix,
                    b.prefix
                );
            }
        }
        assert_eq!(total, 1u64 << 32);
    }

    #[test]
    fn covering_matches_containment() {
        let mut trie = PrefixTrie::new();
        let ps = ["10.0.0.0/8", "10.128.0.0/9", "172.16.0.0/12", "0.0.0.0/1"];
        for s in ps {
            trie.insert(p(s), ());
        }
        for atom in trie.atoms() {
            for (i, s) in ps.iter().enumerate() {
                let contains = p(s).contains(atom.prefix);
                assert_eq!(
                    atom.covering.contains(&i),
                    contains,
                    "atom {} vs {}",
                    atom.prefix,
                    s
                );
            }
        }
    }

    #[test]
    fn matches_and_longest_match() {
        let mut trie = PrefixTrie::new();
        let a = trie.insert(p("0.0.0.0/0"), "default");
        let b = trie.insert(p("10.0.0.0/8"), "ten");
        let c = trie.insert(p("10.1.0.0/16"), "ten-one");
        let addr = Ipv4Addr::new(10, 1, 2, 3);
        assert_eq!(trie.matches(addr), vec![a, b, c]);
        assert_eq!(trie.longest_match(addr), Some(c));
        assert_eq!(trie.longest_match(Ipv4Addr::new(11, 0, 0, 1)), Some(a));
        let empty: PrefixTrie<()> = PrefixTrie::new();
        assert_eq!(empty.longest_match(addr), None);
    }

    #[test]
    fn duplicate_prefixes_share_an_atom() {
        let mut trie = PrefixTrie::new();
        let a = trie.insert(p("10.0.0.0/8"), 1);
        let b = trie.insert(p("10.0.0.0/8"), 2);
        let atoms = trie.atoms();
        let hit = atoms.iter().find(|x| x.prefix == p("10.0.0.0/8")).unwrap();
        assert_eq!(hit.covering, vec![a, b]);
    }
}
