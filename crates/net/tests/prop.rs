//! Property-based tests for the bonsai-net substrate.

use bonsai_net::prefix::{Ipv4Addr, Prefix};
use bonsai_net::{GraphBuilder, Partition, PrefixTrie};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Prefix::new(Ipv4Addr(addr), len))
}

proptest! {
    /// Prefix parsing round-trips through Display.
    #[test]
    fn prefix_display_roundtrip(p in arb_prefix()) {
        let s = p.to_string();
        let q: Prefix = s.parse().unwrap();
        prop_assert_eq!(p, q);
    }

    /// first()..=last() is exactly the set of contained addresses, sampled.
    #[test]
    fn prefix_range_agrees_with_contains(p in arb_prefix(), probe in any::<u32>()) {
        let a = Ipv4Addr(probe);
        let in_range = p.first().0 <= probe && probe <= p.last().0;
        prop_assert_eq!(p.contains_addr(a), in_range);
    }

    /// Containment is a partial order consistent with range inclusion.
    #[test]
    fn prefix_containment_is_range_inclusion(a in arb_prefix(), b in arb_prefix()) {
        let by_range = a.first().0 <= b.first().0 && b.last().0 <= a.last().0;
        prop_assert_eq!(a.contains(b), by_range);
        if a.contains(b) && b.contains(a) {
            prop_assert_eq!(a, b);
        }
    }

    /// Children of a prefix tile it exactly.
    #[test]
    fn prefix_children_tile(p in arb_prefix()) {
        if let Some((lo, hi)) = p.children() {
            prop_assert_eq!(lo.first(), p.first());
            prop_assert_eq!(hi.last(), p.last());
            prop_assert_eq!(lo.last().0.wrapping_add(1), hi.first().0);
            prop_assert!(p.contains(lo) && p.contains(hi));
            prop_assert!(!lo.overlaps(hi));
        } else {
            prop_assert_eq!(p.len(), 32);
        }
    }

    /// Trie atoms form a partition: disjoint, complete, and the covering
    /// sets agree with plain containment checks.
    #[test]
    fn trie_atoms_partition(prefixes in prop::collection::vec(arb_prefix(), 0..12)) {
        let mut trie = PrefixTrie::new();
        for &p in &prefixes {
            trie.insert(p, ());
        }
        let atoms = trie.atoms();
        let mut total: u64 = 0;
        for atom in &atoms {
            total += (atom.prefix.last().0 as u64 - atom.prefix.first().0 as u64) + 1;
            for (i, &p) in prefixes.iter().enumerate() {
                prop_assert_eq!(atom.covering.contains(&i), p.contains(atom.prefix));
            }
        }
        prop_assert_eq!(total, 1u64 << 32);
    }

    /// longest_match returns the most specific covering prefix.
    #[test]
    fn trie_longest_match(prefixes in prop::collection::vec(arb_prefix(), 1..12), probe in any::<u32>()) {
        let mut trie = PrefixTrie::new();
        for &p in &prefixes {
            trie.insert(p, ());
        }
        let addr = Ipv4Addr(probe);
        let expect = prefixes
            .iter()
            .enumerate()
            .filter(|(_, p)| p.contains_addr(addr))
            .max_by_key(|(i, p)| (p.len(), *i))
            .map(|(i, _)| i);
        let got = trie.longest_match(addr);
        match (expect, got) {
            (None, None) => {}
            (Some(e), Some(g)) => {
                let (pe, _) = trie.entry(e);
                let (pg, _) = trie.entry(g);
                prop_assert_eq!(pe.len(), pg.len());
                prop_assert!(pg.contains_addr(addr));
            }
            other => prop_assert!(false, "mismatch: {:?}", other),
        }
    }

    /// Splitting preserves the partition invariants: every element in
    /// exactly one block, blocks sorted, same_block consistent.
    #[test]
    fn partition_split_invariants(
        n in 1usize..40,
        subsets in prop::collection::vec(prop::collection::vec(any::<u32>(), 0..10), 0..8),
    ) {
        let mut p = Partition::coarsest(n);
        for subset in subsets {
            let subset: Vec<u32> = subset.into_iter().map(|x| x % n as u32).collect();
            p.split(&subset);
        }
        let mut seen = vec![false; n];
        for b in p.blocks() {
            let m = p.members(b);
            prop_assert!(!m.is_empty());
            prop_assert!(m.windows(2).all(|w| w[0] < w[1]));
            for &x in m {
                prop_assert!(!seen[x as usize]);
                seen[x as usize] = true;
                prop_assert_eq!(p.block_of(x), b);
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Refining by key separates exactly the distinct keys.
    #[test]
    fn partition_refine_by_key(n in 2usize..40, modulus in 1u32..6) {
        let mut p = Partition::coarsest(n);
        let b = p.block_of(0);
        p.refine_block_by_key(b, |x| x % modulus);
        for x in 0..n as u32 {
            for y in 0..n as u32 {
                prop_assert_eq!(p.same_block(x, y), x % modulus == y % modulus);
            }
        }
    }

    /// A graph built from random links reports consistent adjacency.
    #[test]
    fn graph_adjacency_consistent(n in 2usize..20, pairs in prop::collection::vec((any::<u32>(), any::<u32>()), 0..60)) {
        let mut gb = GraphBuilder::new();
        let nodes = gb.add_nodes("r", n);
        for (a, b) in pairs {
            let u = nodes[(a % n as u32) as usize];
            let v = nodes[(b % n as u32) as usize];
            if u != v && !gb.has_edge(u, v) {
                gb.add_edge(u, v);
            }
        }
        let g = gb.build();
        let out_sum: usize = g.nodes().map(|u| g.out(u).len()).sum();
        let in_sum: usize = g.nodes().map(|u| g.inn(u).len()).sum();
        prop_assert_eq!(out_sum, g.edge_count());
        prop_assert_eq!(in_sum, g.edge_count());
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            prop_assert!(g.has_edge(u, v));
            prop_assert_eq!(g.find_edge(u, v), Some(e));
        }
    }
}
