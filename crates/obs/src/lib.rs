//! # bonsai-obs
//!
//! The workspace telemetry spine: one process-wide registry of counters,
//! gauges and latency histograms behind stable dotted names, plus a
//! structured span/event tracer with a JSONL sink.
//!
//! Observability in this workspace used to be fragmented — `BddStats`,
//! `EngineStats`, `SweepSummary`, `SessionStats` and the daemon's
//! hand-rolled `stats` rendering each carried their own counters with no
//! shared surface. This crate is the one place they all land:
//!
//! * **Registry** — every metric is declared once in [`METRICS`], the
//!   inventory `docs/OBSERVABILITY.md` is pinned to (the same contract
//!   `tests/protocol_docs.rs` enforces for the wire protocol). Cells are
//!   plain `AtomicU64`s; the hot-path cost of an update is one atomic
//!   RMW. Layers either increment directly at the site
//!   ([`add`]/[`observe`]) or publish a point-in-time stats struct into
//!   the registry at their natural snapshot points ([`set`]).
//! * **Exposition** — [`render_prometheus`] renders the whole registry
//!   as Prometheus text exposition format v0 (dotted names become
//!   underscore names: `bdd.apply.hits` → `bdd_apply_hits`). The daemon
//!   serves it as the `metrics` op; `bonsai metrics` prints it.
//! * **Tracer** — [`span!`]/[`event!`] emit JSONL records (monotonic
//!   `ts_us` since the sink was installed) to the file given to
//!   [`trace_to`], behind `--trace <path>` on the CLI. When no sink is
//!   installed the macros cost one relaxed atomic load — tracing is
//!   zero-cost-when-disabled and never touches computed results, so
//!   traced runs stay byte-identical to untraced ones.
//!
//! ```
//! bonsai_obs::add("daemon.requests.total", 1);
//! bonsai_obs::observe("daemon.query.latency_us", 42);
//! let text = bonsai_obs::render_prometheus();
//! assert!(text.contains("# TYPE daemon_requests_total counter"));
//! assert!(text.contains("daemon_query_latency_us_bucket{le=\"64\"} 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Inventory
// ---------------------------------------------------------------------------

/// What a metric measures (and how it renders in the exposition).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// A monotonically nondecreasing count.
    Counter,
    /// A point-in-time level that can move both ways.
    Gauge,
    /// A log-bucketed distribution (microsecond latencies).
    Histogram,
}

impl MetricKind {
    /// The exposition `# TYPE` keyword.
    pub fn as_str(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One declared metric: the stable dotted name, its kind, and the help
/// line the exposition carries.
#[derive(Clone, Copy, Debug)]
pub struct MetricDef {
    /// Stable dotted name (`layer.subsystem.what`).
    pub name: &'static str,
    /// Counter, gauge, or histogram.
    pub kind: MetricKind,
    /// One-line description (the exposition `# HELP` text).
    pub help: &'static str,
}

const fn counter(name: &'static str, help: &'static str) -> MetricDef {
    MetricDef {
        name,
        kind: MetricKind::Counter,
        help,
    }
}

const fn gauge(name: &'static str, help: &'static str) -> MetricDef {
    MetricDef {
        name,
        kind: MetricKind::Gauge,
        help,
    }
}

const fn histogram(name: &'static str, help: &'static str) -> MetricDef {
    MetricDef {
        name,
        kind: MetricKind::Histogram,
        help,
    }
}

/// Every metric the workspace can report, in exposition order.
///
/// This is the code-pinned inventory: `docs/OBSERVABILITY.md` must
/// document every entry (and nothing else) — `tests/obs_inventory.rs`
/// fails the build otherwise, exactly like the protocol-docs pin. Update
/// both together.
pub const METRICS: &[MetricDef] = &[
    // --- bdd: the shared ROBDD arena --------------------------------------
    gauge("bdd.arena.nodes", "Live nodes stored in the BDD arena"),
    gauge("bdd.arena.peak_nodes", "High-water mark of arena nodes"),
    counter("bdd.apply.lookups", "Apply-cache probes"),
    counter("bdd.apply.hits", "Apply-cache probes answered from cache"),
    counter("bdd.unique.lookups", "Unique-table (hash-cons) probes"),
    counter(
        "bdd.unique.hits",
        "Unique-table probes answered by an existing node",
    ),
    // --- engine: the CompiledPolicies cache tiers -------------------------
    counter("engine.stage.lookups", "Route-map stage cache probes"),
    counter("engine.stage.hits", "Route-map stage cache hits"),
    counter("engine.sig.lookups", "Per-edge BGP signature cache probes"),
    counter("engine.sig.hits", "Per-edge BGP signature cache hits"),
    counter(
        "engine.table.lookups",
        "Whole per-EC signature-table probes",
    ),
    counter("engine.table.hits", "Whole per-EC signature-table hits"),
    // --- core plumbing ----------------------------------------------------
    counter(
        "fanout.ranges.claimed",
        "Work ranges claimed by fan-out workers",
    ),
    counter(
        "scenarios.ranges.unranked",
        "Rank ranges materialized from scenario streams",
    ),
    // --- sweep: the (scenario x EC) verification plane --------------------
    counter(
        "sweep.derivations",
        "Full per-scenario refinement derivations performed",
    ),
    counter(
        "sweep.transfer.exact",
        "Cross-EC refinement transfers from same-origin donors",
    ),
    counter(
        "sweep.transfer.symmetric",
        "Cross-EC refinement transfers from symmetric donors",
    ),
    counter(
        "sweep.transfer.verified",
        "Symmetric transfers re-verified per receiving class",
    ),
    counter(
        "sweep.scenarios.streamed",
        "Scenario instances generated through streamed enumeration",
    ),
    counter(
        "sweep.scenarios.swept",
        "(scenario, class) pairs verified by network sweeps",
    ),
    counter(
        "sweep.chunks.completed",
        "Scheduling chunks completed by sweep workers",
    ),
    gauge(
        "sweep.resident.peak",
        "High-water mark of concurrently resident scenarios",
    ),
    // --- session: the resident query layer --------------------------------
    counter(
        "session.queries",
        "Queries answered by the resident session",
    ),
    counter(
        "session.verdict.hits",
        "Queries answered from the verdict memo",
    ),
    counter(
        "session.answers.cached",
        "Solves avoided via cached canonical solutions",
    ),
    counter(
        "session.solver.updates",
        "Label updates performed by session solver runs",
    ),
    counter(
        "session.answers.restored",
        "Memoized answers reloaded from a snapshot",
    ),
    gauge("session.memo.verdicts", "Entries in the verdict memo"),
    gauge("session.memo.paths", "Entries in the path-answer memo"),
    gauge(
        "session.memo.bytes",
        "Estimated resident bytes across both answer memos",
    ),
    counter(
        "session.memo.evictions",
        "Answer-memo entries evicted by the byte cap",
    ),
    // --- daemon: bonsaid serving ------------------------------------------
    counter("daemon.requests.total", "Request lines answered"),
    counter("daemon.errors.total", "Error responses rendered"),
    counter("daemon.reloads.total", "Warm config reloads applied"),
    counter(
        "daemon.query.shed",
        "Query ops shed with `overloaded` by the in-flight gate",
    ),
    counter("daemon.connections.total", "Connections accepted"),
    gauge("daemon.inflight", "Query permits currently held"),
    histogram(
        "daemon.query.latency_us",
        "Latency of query ops (reach/sweep/all_pairs/path/batch), microseconds",
    ),
];

/// The dotted name rendered for exposition: dots become underscores.
pub fn prom_name(dotted: &str) -> String {
    dotted.replace('.', "_")
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Histogram bucket upper bounds: powers of two, 1 µs .. ~1 s.
const BUCKET_POW2_MAX: u32 = 20;
const BUCKETS: usize = (BUCKET_POW2_MAX + 1) as usize;

struct Hist {
    /// Counts per finite bucket (`le = 2^i`), plus the overflow bucket.
    buckets: [AtomicU64; BUCKETS],
    overflow: AtomicU64,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Hist {
    fn new() -> Hist {
        Hist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    fn observe(&self, value: u64) {
        let idx = if value <= 1 {
            0
        } else {
            (64 - (value - 1).leading_zeros()) as usize
        };
        match self.buckets.get(idx) {
            Some(b) => b.fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

enum Slot {
    Scalar(usize),
    Hist(usize),
}

struct Registry {
    scalars: Vec<AtomicU64>,
    hists: Vec<Hist>,
    index: HashMap<&'static str, Slot>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut scalars = Vec::new();
        let mut hists = Vec::new();
        let mut index = HashMap::with_capacity(METRICS.len());
        for def in METRICS {
            let slot = match def.kind {
                MetricKind::Histogram => {
                    hists.push(Hist::new());
                    Slot::Hist(hists.len() - 1)
                }
                _ => {
                    scalars.push(AtomicU64::new(0));
                    Slot::Scalar(scalars.len() - 1)
                }
            };
            assert!(
                index.insert(def.name, slot).is_none(),
                "duplicate metric name {}",
                def.name
            );
        }
        Registry {
            scalars,
            hists,
            index,
        }
    })
}

fn scalar(name: &str) -> &'static AtomicU64 {
    let reg = registry();
    match reg.index.get(name) {
        Some(Slot::Scalar(i)) => &reg.scalars[*i],
        Some(Slot::Hist(_)) => panic!("metric {name} is a histogram; use observe()"),
        None => panic!("metric {name} is not in bonsai_obs::METRICS"),
    }
}

fn hist(name: &str) -> &'static Hist {
    let reg = registry();
    match reg.index.get(name) {
        Some(Slot::Hist(i)) => &reg.hists[*i],
        Some(Slot::Scalar(_)) => panic!("metric {name} is not a histogram; use add()/set()"),
        None => panic!("metric {name} is not in bonsai_obs::METRICS"),
    }
}

/// Adds to a counter (or gauge). Panics on a name missing from
/// [`METRICS`] — typos fail loudly in tests rather than dropping data.
pub fn add(name: &str, delta: u64) {
    scalar(name).fetch_add(delta, Ordering::Relaxed);
}

/// Sets a gauge (or publishes a mirrored cumulative counter snapshot —
/// the value must come from a source that is itself monotone).
pub fn set(name: &str, value: u64) {
    scalar(name).store(value, Ordering::Relaxed);
}

/// Sets a gauge to `max(current, value)` — for high-water marks fed from
/// per-run peaks.
pub fn set_max(name: &str, value: u64) {
    scalar(name).fetch_max(value, Ordering::Relaxed);
}

/// Records one observation into a histogram.
pub fn observe(name: &str, value: u64) {
    hist(name).observe(value);
}

/// Current value of a counter or gauge (tests assert increments here).
pub fn value(name: &str) -> u64 {
    scalar(name).load(Ordering::Relaxed)
}

/// Number of observations a histogram has absorbed.
pub fn hist_count(name: &str) -> u64 {
    hist(name).count.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Prometheus exposition
// ---------------------------------------------------------------------------

/// The `Content-Type` of [`render_prometheus`] output.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Renders the whole registry as Prometheus text exposition format v0,
/// every inventory metric present (zeros included), in [`METRICS`] order.
pub fn render_prometheus() -> String {
    let reg = registry();
    let mut out = String::with_capacity(4096);
    for def in METRICS {
        let name = prom_name(def.name);
        out.push_str(&format!("# HELP {name} {}\n", def.help));
        out.push_str(&format!("# TYPE {name} {}\n", def.kind.as_str()));
        match reg.index.get(def.name) {
            Some(Slot::Scalar(i)) => {
                let v = reg.scalars[*i].load(Ordering::Relaxed);
                out.push_str(&format!("{name} {v}\n"));
            }
            Some(Slot::Hist(i)) => {
                let h = &reg.hists[*i];
                let mut cumulative = 0u64;
                for (b, bucket) in h.buckets.iter().enumerate() {
                    cumulative += bucket.load(Ordering::Relaxed);
                    out.push_str(&format!(
                        "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                        1u64 << b
                    ));
                }
                cumulative += h.overflow.load(Ordering::Relaxed);
                out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
                out.push_str(&format!("{name}_sum {}\n", h.sum.load(Ordering::Relaxed)));
                out.push_str(&format!(
                    "{name}_count {}\n",
                    h.count.load(Ordering::Relaxed)
                ));
            }
            None => unreachable!("registry is built from METRICS"),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

/// A field value attached to a span or event.
#[derive(Clone, Debug)]
pub enum FieldVal {
    /// An unsigned integer, emitted as a JSON number.
    U64(u64),
    /// A string, emitted JSON-escaped.
    Str(String),
}

impl From<u64> for FieldVal {
    fn from(v: u64) -> FieldVal {
        FieldVal::U64(v)
    }
}

impl From<usize> for FieldVal {
    fn from(v: usize) -> FieldVal {
        FieldVal::U64(v as u64)
    }
}

impl From<u32> for FieldVal {
    fn from(v: u32) -> FieldVal {
        FieldVal::U64(u64::from(v))
    }
}

impl From<&str> for FieldVal {
    fn from(v: &str) -> FieldVal {
        FieldVal::Str(v.to_string())
    }
}

impl From<String> for FieldVal {
    fn from(v: String) -> FieldVal {
        FieldVal::Str(v)
    }
}

struct Tracer {
    sink: Mutex<BufWriter<File>>,
    epoch: Instant,
}

static TRACER: OnceLock<Tracer> = OnceLock::new();
static TRACE_ON: AtomicBool = AtomicBool::new(false);

/// Installs the JSONL trace sink. The first call wins for the lifetime
/// of the process (the tracer is a process-global); later calls fail.
pub fn trace_to(path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    let tracer = Tracer {
        sink: Mutex::new(BufWriter::new(file)),
        epoch: Instant::now(),
    };
    if TRACER.set(tracer).is_err() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::AlreadyExists,
            "a trace sink is already installed for this process",
        ));
    }
    TRACE_ON.store(true, Ordering::Release);
    Ok(())
}

/// Whether a trace sink is installed (one relaxed load — the disabled
/// fast path of [`span!`]/[`event!`]).
pub fn trace_enabled() -> bool {
    TRACE_ON.load(Ordering::Relaxed)
}

fn trace_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn write_record(kind: &str, name: &str, dur_us: Option<u64>, fields: &[(&str, FieldVal)]) {
    let Some(tracer) = TRACER.get() else {
        return;
    };
    let ts_us = tracer.epoch.elapsed().as_micros() as u64;
    let mut line = format!(
        "{{\"ts_us\": {ts_us}, \"kind\": \"{kind}\", \"name\": \"{}\"",
        trace_escape(name)
    );
    if let Some(d) = dur_us {
        line.push_str(&format!(", \"dur_us\": {d}"));
    }
    for (k, v) in fields {
        match v {
            FieldVal::U64(n) => line.push_str(&format!(", \"{}\": {n}", trace_escape(k))),
            FieldVal::Str(s) => line.push_str(&format!(
                ", \"{}\": \"{}\"",
                trace_escape(k),
                trace_escape(s)
            )),
        }
    }
    line.push('}');
    let mut sink = tracer.sink.lock().unwrap();
    let _ = writeln!(sink, "{line}");
    let _ = sink.flush();
}

/// A live span; emits one `"kind": "span"` record with its duration when
/// dropped. Obtain through [`span!`] (or [`span_guard`]).
pub struct Span {
    name: &'static str,
    start: Instant,
    fields: Vec<(&'static str, FieldVal)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur_us = self.start.elapsed().as_micros() as u64;
        let fields: Vec<(&str, FieldVal)> =
            self.fields.iter().map(|(k, v)| (*k, v.clone())).collect();
        write_record("span", self.name, Some(dur_us), &fields);
    }
}

/// Starts a span when tracing is enabled (`None` otherwise — the guard
/// binding is a no-op). Prefer the [`span!`] macro.
pub fn span_guard(name: &'static str, fields: Vec<(&'static str, FieldVal)>) -> Option<Span> {
    if !trace_enabled() {
        return None;
    }
    Some(Span {
        name,
        start: Instant::now(),
        fields,
    })
}

/// Emits one `"kind": "event"` record when tracing is enabled. Prefer
/// the [`event!`] macro.
pub fn emit_event(name: &str, fields: Vec<(&'static str, FieldVal)>) {
    if !trace_enabled() {
        return;
    }
    let fields: Vec<(&str, FieldVal)> = fields.iter().map(|(k, v)| (*k, v.clone())).collect();
    write_record("event", name, None, &fields);
}

/// Opens a span: `let _g = obs::span!("sweep.chunk", start = s, len = n);`
/// The record (with `dur_us`) is written when the guard drops. Costs one
/// relaxed atomic load when no trace sink is installed.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        $crate::span_guard(
            $name,
            if $crate::trace_enabled() {
                vec![$((stringify!($key), $crate::FieldVal::from($val))),*]
            } else {
                Vec::new()
            },
        )
    };
}

/// Emits an instantaneous event: `obs::event!("daemon.request", op = op);`
#[macro_export]
macro_rules! event {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::trace_enabled() {
            $crate::emit_event(
                $name,
                vec![$((stringify!($key), $crate::FieldVal::from($val))),*],
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_names_are_unique_dotted_and_layered() {
        let mut seen = std::collections::BTreeSet::new();
        for def in METRICS {
            assert!(seen.insert(def.name), "duplicate metric {}", def.name);
            assert!(def.name.contains('.'), "{} is not dotted", def.name);
            assert!(
                def.name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
                "{} has characters outside [a-z0-9._]",
                def.name
            );
            assert!(!def.help.is_empty(), "{} has no help text", def.name);
        }
        // The acceptance bar: at least 20 metrics spanning the four layers.
        assert!(METRICS.len() >= 20, "only {} metrics", METRICS.len());
        for layer in ["bdd.", "engine.", "sweep.", "daemon."] {
            assert!(
                METRICS.iter().any(|d| d.name.starts_with(layer)),
                "no metric in layer {layer}"
            );
        }
    }

    #[test]
    fn counters_and_gauges_roundtrip() {
        add("sweep.derivations", 3);
        add("sweep.derivations", 2);
        assert!(value("sweep.derivations") >= 5);
        set("sweep.resident.peak", 7);
        set_max("sweep.resident.peak", 3);
        assert!(value("sweep.resident.peak") >= 7);
    }

    #[test]
    #[should_panic(expected = "not in bonsai_obs::METRICS")]
    fn unknown_names_fail_loudly() {
        add("no.such.metric", 1);
    }

    #[test]
    fn histogram_buckets_are_log_spaced_and_cumulative() {
        observe("daemon.query.latency_us", 1);
        observe("daemon.query.latency_us", 3);
        observe("daemon.query.latency_us", 1_000);
        observe("daemon.query.latency_us", u64::MAX / 2);
        let text = render_prometheus();
        assert!(text.contains("# TYPE daemon_query_latency_us histogram"));
        // The +Inf bucket equals the count, and buckets are cumulative.
        let count = hist_count("daemon.query.latency_us");
        assert!(text.contains(&format!(
            "daemon_query_latency_us_bucket{{le=\"+Inf\"}} {count}"
        )));
        assert!(text.contains(&format!("daemon_query_latency_us_count {count}")));
    }

    #[test]
    fn exposition_covers_every_metric_and_is_parseable() {
        let text = render_prometheus();
        for def in METRICS {
            let name = prom_name(def.name);
            assert!(
                text.contains(&format!("# TYPE {name} {}\n", def.kind.as_str())),
                "exposition lacks {name}"
            );
        }
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("sample has a value");
            value
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("bad sample value in {line}"));
        }
    }

    #[test]
    fn tracer_macros_are_inert_without_a_sink_and_record_with_one() {
        // Without a sink: no-ops.
        {
            let _g = span!("test.span", n = 1usize);
            event!("test.event", label = "x");
        }
        // With one (installed for the whole test process from here on).
        let path = std::env::temp_dir().join(format!("obs-test-{}.jsonl", std::process::id()));
        if trace_to(&path).is_ok() {
            assert!(trace_enabled());
        }
        {
            let _g = span!("test.span", n = 2usize, label = "inner");
            event!("test.event", label = "y");
        }
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.lines().count() >= 2, "{body}");
        for line in body.lines() {
            assert!(line.starts_with("{\"ts_us\": "), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
        assert!(body.contains("\"kind\": \"span\""), "{body}");
        assert!(body.contains("\"dur_us\": "), "{body}");
        assert!(body.contains("\"kind\": \"event\""), "{body}");
        let _ = std::fs::remove_file(&path);
    }
}
