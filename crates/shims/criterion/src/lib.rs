//! Offline stand-in for the subset of the `criterion` crate this workspace
//! uses. The build environment has no access to crates.io, so this crate
//! provides the same entry points (`criterion_group!`, `criterion_main!`,
//! [`Criterion::benchmark_group`], [`Bencher::iter`], [`BenchmarkId`]) with
//! a simple measurement loop: per benchmark it runs a short warm-up, then
//! `sample_size` timed samples, and prints min/median/mean wall-clock time
//! per iteration. No statistics engine, plots, or baseline comparison —
//! enough to spot order-of-magnitude regressions and to keep
//! `cargo bench` working end to end.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter positionally; flags
        // like `--bench` are injected by cargo and ignored here.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        self.run_one(name.to_string(), sample_size, f);
        self
    }

    fn matches(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }

    fn run_one<F>(&mut self, id: String, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.matches(&id) {
            return;
        }
        let mut samples = Vec::with_capacity(sample_size);
        // Warm-up pass, then timed samples.
        for i in 0..=sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if i > 0 && b.iters > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        if samples.is_empty() {
            println!("{id:<40} no samples");
            return;
        }
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{id:<40} min {:>12} med {:>12} mean {:>12} ({} samples)",
            fmt_time(samples[0]),
            fmt_time(median),
            fmt_time(mean),
            samples.len()
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks `f` under `<group>/<name>`.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{name}", self.name);
        let n = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(id, n, f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `<group>/<id>`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{id}", self.name);
        let n = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(id, n, |b| f(b, input));
        self
    }

    /// Ends the group (accepted for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// A function + parameter benchmark identifier, shown as `function/param`.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{parameter}", function.into()),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`, black-boxing its output.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // A fixed small batch keeps total bench time bounded without the
        // real criterion's adaptive iteration planning.
        const BATCH: u64 = 3;
        let start = Instant::now();
        for _ in 0..BATCH {
            std_black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += BATCH;
    }
}

/// Declares a benchmark group function list, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
