//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Things convertible to a size range for [`vec`].
pub trait IntoSizeRange {
    /// Returns the inclusive `(min, max)` length bounds.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

/// Strategy for `Vec<T>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min_len, max_len) = size.bounds();
    VecStrategy {
        element,
        min_len,
        max_len,
    }
}

/// See [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    min_len: usize,
    max_len: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.max_len - self.min_len + 1) as u64;
        let len = self.min_len + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
