//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses. The build environment has no access to crates.io, so this crate
//! reimplements the strategy combinators, macros, and test runner the seed
//! tests call — with the same paths and signatures, so swapping in the real
//! `proptest` later requires no source changes.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its seed and case index; the
//!   run is deterministic (seeded from the test name), so failures
//!   reproduce exactly, they just aren't minimized.
//! * **No persistence.** There is no `proptest-regressions/` machinery;
//!   determinism plays that role (same corpus every run).
//! * **Regex strategies** (`"pat" : Strategy<Value = String>`) support the
//!   tiny dialect the tests use (`\PC{m,n}`-style char-class repetitions),
//!   not full regex syntax.

#![forbid(unsafe_code)]

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// Defines property tests.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(N))]   // optional
///     #[test]
///     fn name(arg in strategy_expr, ...) { body }
///     ...
/// }
/// ```
///
/// Each generated test runs `cases` deterministic cases (seeded from the
/// test's name). `prop_assert*` failures report the case index; re-running
/// reproduces the identical corpus, which substitutes for shrinking and
/// regression persistence.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.resolved_cases() {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            case + 1,
                            config.resolved_cases(),
                            stringify!($name),
                            e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Like `assert!`, but returns a [`test_runner::TestCaseError`] so the
/// runner can report the failing case. Only valid inside `proptest!` bodies
/// (or functions returning `Result<_, TestCaseError>`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Like `assert_eq!`, for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
            rhs,
            format!($($fmt)+)
        );
    }};
}

/// Like `assert_ne!`, for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop` module alias (`prop::collection::vec`, `prop::option::of`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}
