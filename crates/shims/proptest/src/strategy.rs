//! Value-generation strategies: the `Strategy` trait, combinators, and the
//! primitive strategies (`any`, `Just`, integer ranges, tuples, string
//! patterns, unions).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating random values of type [`Strategy::Value`].
///
/// Unlike real proptest there is no shrinking and no value tree: a strategy
/// is simply a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `self` is the leaf; `recurse` builds one more
    /// layer on top of an inner strategy, up to `depth` layers.
    ///
    /// `desired_size` and `expected_branch_size` are accepted for API
    /// parity with real proptest and ignored (depth alone bounds size).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let make: Rc<MakeFn<Self::Value>> = Rc::new(move |inner| recurse(inner).boxed());
        Recursive {
            leaf: self.boxed(),
            make,
            depth,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen_fn: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// A clonable, type-erased strategy.
pub struct BoxedStrategy<T> {
    #[allow(clippy::type_complexity)]
    gen_fn: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen_fn: Rc::clone(&self.gen_fn),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen_fn)(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

type MakeFn<T> = dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>;

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    leaf: BoxedStrategy<T>,
    make: Rc<MakeFn<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            leaf: self.leaf.clone(),
            make: Rc::clone(&self.make),
            depth: self.depth,
        }
    }
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        // Stop early 1 time in 8 even with depth budget left, so the corpus
        // contains shallow values (including bare leaves at top level) —
        // mirroring real proptest's probabilistic recursion, which would
        // otherwise never be exercised because unconditional recursion pins
        // every generated value at exactly `depth` levels.
        if self.depth == 0 || rng.below(8) == 0 {
            self.leaf.generate(rng)
        } else {
            let inner = Recursive {
                leaf: self.leaf.clone(),
                make: Rc::clone(&self.make),
                depth: self.depth - 1,
            }
            .boxed();
            (self.make)(inner).generate(rng)
        }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-valued strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Union<T> {
    /// Builds a union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Types with a canonical "generate any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The `any::<T>()` entry point.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<A>(std::marker::PhantomData<A>);

impl<A> Clone for Any<A> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A `Vec` of strategies generates a `Vec` of values, element-wise
/// (matching real proptest's blanket impl).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// String-pattern strategies: a `&str` is a strategy for `String`.
///
/// Real proptest interprets the string as a full regex. This shim supports
/// the dialect the workspace's tests actually use — `\PC{m,n}` ("any
/// printable char, m..=n times") and the degenerate plain-literal case —
/// and falls back to "printable chars, length 0..=64" for anything else.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = match parse_repetition(self) {
            Some(bounds) => bounds,
            None => (0, 64),
        };
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len).map(|_| printable_char(rng)).collect()
    }
}

/// Parses `\PC{m,n}` / `.{m,n}`-style patterns; returns the length bounds.
fn parse_repetition(pat: &str) -> Option<(usize, usize)> {
    let rest = pat.strip_prefix("\\PC").or_else(|| pat.strip_prefix('.'))?;
    let body = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (m, n) = body.split_once(',')?;
    Some((m.trim().parse().ok()?, n.trim().parse().ok()?))
}

/// A printable character: mostly ASCII, sometimes multibyte, to exercise
/// UTF-8 handling in parsers.
fn printable_char(rng: &mut TestRng) -> char {
    match rng.below(20) {
        0..=15 => (0x20 + rng.below(0x5f) as u8) as char, // printable ASCII
        16 => '\t',
        17 => 'λ',
        18 => 'é',
        _ => '→',
    }
}
