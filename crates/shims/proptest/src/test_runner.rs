//! The miniature test runner: config, RNG, and case errors.

use std::fmt;

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Resolves the case count, honoring the `PROPTEST_CASES` env override
    /// (useful to dial CI time up or down without touching sources).
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single test case failed.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion inside the case body failed.
    Fail(String),
    /// The case asked to be discarded (unused here, kept for API parity).
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
        }
    }
}

/// `Result` alias matching real proptest's per-case result.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic SplitMix64 RNG driving generation.
///
/// Each `proptest!`-generated test seeds one from its own name, so every
/// test runs the same corpus on every machine and every run.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a string (the test name).
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name gives a stable, well-mixed seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}
