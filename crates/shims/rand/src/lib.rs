//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! an API-compatible implementation of exactly what the workspace calls:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer ranges,
//! [`Rng::gen_bool`], and [`rngs::SmallRng`]. The generator is xoshiro256++
//! seeded through SplitMix64 — deterministic for a given seed, which is all
//! the topology generators need (they want reproducible pseudo-random
//! networks, not cryptographic randomness).
//!
//! Swap this for the real `rand` crate by deleting the `[patch]`-free path
//! entry in the workspace `Cargo.toml` once a registry is reachable; the
//! call sites compile unchanged.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random number generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                // wrapping_sub: with signed types, `lo as u128` sign-extends,
                // so a plain subtraction would underflow for negative bounds.
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        // 53 random bits → uniform f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, the algorithm the real `SmallRng` uses on 64-bit
    /// targets. Not cryptographically secure; excellent for simulation.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..9u8);
            assert!((3..9).contains(&x));
            let y = rng.gen_range(10..=12usize);
            assert!((10..=12).contains(&y));
        }
    }

    #[test]
    fn signed_inclusive_range() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen_neg = false;
        for _ in 0..1000 {
            let x = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&x));
            seen_neg |= x < 0;
        }
        assert!(seen_neg);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!(0..100).map(|_| rng.gen_bool(0.0)).any(|b| b));
        assert!((0..100).map(|_| rng.gen_bool(1.0)).all(|b| b));
    }
}
