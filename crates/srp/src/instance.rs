//! The multi-protocol SRP instance: BGP + OSPF + static + the main RIB.
//!
//! Real devices run several protocols at once. Following the paper (§6),
//! the combined SRP tracks, per node, the best route in the *main RIB*,
//! chosen by administrative distance across protocols; route
//! redistribution is folded into the transfer function. The attribute set
//! is the tagged union [`RibAttr`] with IOS administrative distances:
//! static 1, eBGP 20, OSPF 110, iBGP 200.
//!
//! One [`MultiProtocol`] is built per **destination equivalence class**
//! ([`EcDest`]): the class's representative prefix specializes every prefix
//! list, ACL and static route (paper §5.1 "Specialize(bdds, G.d)").

use crate::model::Protocol;
use crate::protocols::bgp::{BgpAttr, BgpEdge, BgpProtocol};
use crate::protocols::ospf::{OspfAttr, OspfEdge, OspfProtocol};
use crate::protocols::static_route::StaticProtocol;
use bonsai_config::{BuiltTopology, NetworkConfig};
use bonsai_net::prefix::Prefix;
use bonsai_net::{EdgeId, NodeId};
use std::cmp::Ordering;

/// Which protocol a node originates a destination into.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum OriginProto {
    /// `network` statement under `router bgp`.
    Bgp,
    /// `network` statement under `router ospf`.
    Ospf,
}

/// A destination equivalence class, reduced to what an SRP needs: a
/// representative prefix, the packet ranges the class covers, and the
/// nodes that originate it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EcDest {
    /// Representative destination prefix (the most specific originated
    /// prefix of the class) — the *route object* that prefix lists and
    /// route maps match against.
    pub prefix: Prefix,
    /// The *packet ranges* of the class — what ACLs and static routes
    /// (which see packets, not advertisements) match against. Often the
    /// single prefix itself, but a filter carving sub-ranges out of an
    /// originated prefix leaves a class covering several disjoint ranges.
    /// Non-empty; by the defining property of a destination equivalence
    /// class, every filter construct treats all ranges alike, so
    /// [`EcDest::range`] is a sound representative (asserted in debug
    /// builds wherever a range is consumed).
    pub ranges: Vec<Prefix>,
    /// Originating nodes and the protocol they inject the prefix into.
    pub origins: Vec<(NodeId, OriginProto)>,
}

impl EcDest {
    /// A class whose packet range coincides with its route prefix.
    pub fn new(prefix: Prefix, origins: Vec<(NodeId, OriginProto)>) -> Self {
        EcDest {
            prefix,
            ranges: vec![prefix],
            origins,
        }
    }

    /// A class covering explicit packet ranges.
    ///
    /// # Panics
    ///
    /// Panics if `ranges` is empty.
    pub fn with_ranges(
        prefix: Prefix,
        ranges: Vec<Prefix>,
        origins: Vec<(NodeId, OriginProto)>,
    ) -> Self {
        assert!(!ranges.is_empty(), "an EC must cover at least one range");
        EcDest {
            prefix,
            ranges,
            origins,
        }
    }

    /// The representative packet range (the class's first range; all
    /// ranges are filter-equivalent by construction).
    pub fn range(&self) -> Prefix {
        self.ranges[0]
    }
}

/// A route in the main RIB: best route per protocol family.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum RibAttr {
    /// A statically configured route.
    Static,
    /// A BGP-learned route.
    Bgp(BgpAttr),
    /// An OSPF-learned route.
    Ospf(OspfAttr),
}

impl RibAttr {
    /// IOS administrative distance: lower wins across protocols.
    pub fn admin_distance(&self) -> u8 {
        match self {
            RibAttr::Static => 1,
            RibAttr::Bgp(a) if !a.from_ibgp => 20,
            RibAttr::Bgp(_) => 200,
            RibAttr::Ospf(_) => 110,
        }
    }
}

/// The multi-protocol SRP for one destination equivalence class.
pub struct MultiProtocol<'a> {
    bgp: BgpProtocol<'a>,
    ospf: OspfProtocol,
    static_: StaticProtocol,
    network: &'a NetworkConfig,
    /// Per-origin protocol, indexed by node (None = not an origin).
    origin_proto: Vec<Option<OriginProto>>,
}

impl<'a> MultiProtocol<'a> {
    /// Builds the combined protocol for one destination class.
    pub fn build(network: &'a NetworkConfig, topo: &BuiltTopology, ec: &EcDest) -> Self {
        let mut origin_proto = vec![None; topo.graph.node_count()];
        for &(n, proto) in &ec.origins {
            origin_proto[n.index()] = Some(proto);
        }
        MultiProtocol {
            bgp: BgpProtocol::from_network(network, topo, ec.prefix),
            ospf: OspfProtocol::from_network(network, topo),
            static_: StaticProtocol::from_network(network, topo, ec.range()),
            network,
            origin_proto,
        }
    }

    /// The BGP sub-protocol (for session introspection).
    pub fn bgp(&self) -> &BgpProtocol<'a> {
        &self.bgp
    }

    /// The OSPF facts of one edge.
    pub fn ospf_edge(&self, e: EdgeId) -> Option<OspfEdge> {
        self.ospf.edge(e)
    }

    /// The BGP session of one edge.
    pub fn bgp_session(&self, e: EdgeId) -> Option<&BgpEdge> {
        self.bgp.session(e)
    }

    /// True if the edge carries a matching static route.
    pub fn static_on_edge(&self, e: EdgeId) -> bool {
        self.static_.on_edge(e)
    }

    /// The BGP route `v` would advertise given its RIB label — its own BGP
    /// route, or a freshly originated one if it redistributes the label's
    /// protocol into BGP.
    fn bgp_advertisable(&self, v: NodeId, label: &RibAttr) -> Option<BgpAttr> {
        let dv = &self.network.devices[v.index()];
        let bgp_cfg = dv.bgp.as_ref()?;
        match label {
            RibAttr::Bgp(a) => Some(a.clone()),
            RibAttr::Static if bgp_cfg.redistribute_static => {
                Some(BgpAttr::origin(bgp_cfg.default_local_pref))
            }
            RibAttr::Ospf(_) if bgp_cfg.redistribute_ospf => {
                Some(BgpAttr::origin(bgp_cfg.default_local_pref))
            }
            _ => None,
        }
    }

    /// The OSPF route `v` would flood given its RIB label.
    fn ospf_advertisable(&self, v: NodeId, label: &RibAttr) -> Option<OspfAttr> {
        let dv = &self.network.devices[v.index()];
        let ospf_cfg = dv.ospf.as_ref()?;
        match label {
            RibAttr::Ospf(a) => Some(*a),
            RibAttr::Static if ospf_cfg.redistribute_static => Some(OspfAttr {
                cost: 0,
                inter_area: false,
            }),
            _ => None,
        }
    }

    /// Transfer with a switch for BGP loop prevention (the compression
    /// layer needs the loop-blind variant for `transfer-approx`).
    pub fn transfer_with(
        &self,
        e: EdgeId,
        a: Option<&RibAttr>,
        check_loops: bool,
    ) -> Option<RibAttr> {
        let mut best: Option<RibAttr> = None;
        let mut consider = |cand: RibAttr, this: &Self| {
            let better = match &best {
                None => true,
                Some(b) => this.compare(&cand, b) == Some(Ordering::Less),
            };
            if better {
                best = Some(cand);
            }
        };

        // Static candidate: spontaneous, independent of the neighbor.
        if self.static_.on_edge(e) {
            consider(RibAttr::Static, self);
        }

        if let Some(label) = a {
            // BGP candidate (with redistribution into BGP at v).
            if let Some(adv) = {
                let v = self.edge_target(e);
                self.bgp_advertisable(v, label)
            } {
                let transferred = if check_loops {
                    self.bgp.transfer(e, Some(&adv))
                } else {
                    self.bgp.transfer_ignoring_loops(e, Some(&adv))
                };
                if let Some(b) = transferred {
                    consider(RibAttr::Bgp(b), self);
                }
            }
            // OSPF candidate (with redistribution into OSPF at v).
            if let Some(adv) = {
                let v = self.edge_target(e);
                self.ospf_advertisable(v, label)
            } {
                if let Some(o) = self.ospf.transfer(e, Some(&adv)) {
                    consider(RibAttr::Ospf(o), self);
                }
            }
        }

        best
    }

    fn edge_target(&self, e: EdgeId) -> NodeId {
        self.bgp.edge_endpoints(e).1
    }
}

impl Protocol for MultiProtocol<'_> {
    type Attr = RibAttr;

    fn origin(&self, origin: NodeId) -> RibAttr {
        match self.origin_proto[origin.index()] {
            Some(OriginProto::Bgp) => RibAttr::Bgp(self.bgp.origin(origin)),
            Some(OriginProto::Ospf) => RibAttr::Ospf(OspfAttr {
                cost: 0,
                inter_area: false,
            }),
            None => panic!("origin() called on a non-origin node"),
        }
    }

    fn compare(&self, a: &RibAttr, b: &RibAttr) -> Option<Ordering> {
        let by_distance = a.admin_distance().cmp(&b.admin_distance());
        if by_distance != Ordering::Equal {
            return Some(by_distance);
        }
        match (a, b) {
            (RibAttr::Static, RibAttr::Static) => Some(Ordering::Equal),
            (RibAttr::Bgp(x), RibAttr::Bgp(y)) => self.bgp.compare(x, y),
            (RibAttr::Ospf(x), RibAttr::Ospf(y)) => self.ospf.compare(x, y),
            _ => Some(Ordering::Equal), // equal distance, different families
        }
    }

    fn transfer(&self, e: EdgeId, a: Option<&RibAttr>) -> Option<RibAttr> {
        self.transfer_with(e, a, true)
    }
}
