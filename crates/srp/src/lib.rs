//! # bonsai-srp
//!
//! The **Stable Routing Problem** (SRP) of the Bonsai paper (§3), as an
//! executable model:
//!
//! * [`model`] — the SRP tuple `(G, A, a_d, ≺, trans)` as a [`Protocol`]
//!   trait plus the [`Solution`] type and the local-stability checker that
//!   mirrors the constraints of Figure 4.
//! * [`solver`] — an asynchronous-activation fixpoint solver that computes
//!   stable solutions (one per activation order) and detects divergence.
//!   This doubles as the control-plane simulator that Batfish provides in
//!   the paper's toolchain.
//! * [`protocols`] — the concrete protocol models of §3.2 and §6:
//!   RIP (distance vector), OSPF (link state with areas), eBGP/iBGP
//!   (path vector with local preference, communities and loop prevention),
//!   static routes, and the multi-protocol RIB with administrative distance
//!   and route redistribution.
//! * [`instance`] — builds the multi-protocol SRP for one destination
//!   equivalence class straight from a vendor-independent configuration.
//!
//! Attributes carry *node* paths (`list(V)`, exactly as in the paper's
//! Figure 5) rather than AS numbers; in the networks studied each router is
//! its own AS, so the two coincide.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod instance;
pub mod model;
pub mod papernets;
pub mod protocols;
pub mod solver;

pub use instance::{EcDest, MultiProtocol, OriginProto};
pub use model::{Protocol, Solution, Srp};
pub use solver::{
    solve, solve_masked, solve_warm_masked, solve_with_order, solve_with_order_masked, SolveError,
    SolverOptions,
};
