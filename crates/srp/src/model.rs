//! The SRP model: protocols, instances, solutions, stability.
//!
//! An SRP instance is the tuple `(G, A, a_d, ≺, trans)` of the paper's
//! Figure 4. Here the attribute set `A`, comparison relation `≺` and
//! transfer function `trans` are bundled into a [`Protocol`] implementation,
//! while the graph and destination live in [`Srp`].
//!
//! A [`Solution`] is a labeling `L : V → A⊥` together with the forwarding
//! relation it induces. [`Srp::check_stable`] checks the defining constraints
//! locally, exactly as written in the paper:
//!
//! ```text
//! L(d) = a_d
//! L(u) = ⊥                          if attrs_L(u) = ∅
//! L(u) = some ≺-minimal a ∈ attrs_L(u)  otherwise
//! fwd_L(u) = { e | (e,a) ∈ choices_L(u), a ≈ L(u) }
//! ```

use bonsai_net::{EdgeId, FailureMask, Graph, NodeId};
use std::cmp::Ordering;
use std::fmt::Debug;
use std::hash::Hash;

/// A routing protocol: attribute set, comparison relation and transfer
/// function. One value of the implementing type models one *configured*
/// network (the transfer function embeds the device configurations).
pub trait Protocol {
    /// Routing message attributes (`A` in the paper). `Option<Attr>`
    /// plays the role of `A⊥`.
    type Attr: Clone + Eq + Hash + Debug;

    /// The initial attribute `a_d` advertised by an origin node.
    fn origin(&self, origin: NodeId) -> Self::Attr;

    /// The comparison relation `≺`, as a partial order:
    /// `Some(Less)` means `a` is preferred over `b`, `Some(Equal)` means
    /// the attributes are equally good (`≈`), `None` means incomparable.
    fn compare(&self, a: &Self::Attr, b: &Self::Attr) -> Option<Ordering>;

    /// The transfer function `trans(e, a)`.
    ///
    /// `e = (u, v)` is an edge of the graph and `a` the label of the
    /// neighbor `v` across it (`None` = ⊥, no route). Returns the attribute
    /// `u` obtains through `e`, or `None` if the route is dropped.
    ///
    /// Non-spontaneous protocols return `None` for `a = None`; static
    /// routing is the (paper-sanctioned) exception.
    fn transfer(&self, e: EdgeId, a: Option<&Self::Attr>) -> Option<Self::Attr>;
}

/// An SRP instance: a graph, a set of origin (destination) nodes, and a
/// protocol. The paper's single destination `d` generalizes to a set of
/// origins to support anycast destination equivalence classes; a singleton
/// set recovers the paper's definition exactly.
pub struct Srp<'a, P: Protocol> {
    /// The network topology.
    pub graph: &'a Graph,
    /// Nodes that originate the destination. Their labels are pinned to
    /// [`Protocol::origin`]. Must be non-empty.
    pub origins: Vec<NodeId>,
    /// The protocol (with configurations baked into its transfer function).
    pub protocol: P,
}

/// A solution to an SRP: the label of every node plus the induced
/// forwarding relation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Solution<A> {
    /// `labels[u] = L(u)`; `None` is ⊥ (no route).
    pub labels: Vec<Option<A>>,
    /// `fwd[u]` = edges `u` forwards on (all ≈-minimal choices).
    pub fwd: Vec<Vec<EdgeId>>,
}

impl<A> Solution<A> {
    /// The label of a node.
    pub fn label(&self, u: NodeId) -> Option<&A> {
        self.labels[u.index()].as_ref()
    }

    /// The forwarding edges of a node.
    pub fn fwd(&self, u: NodeId) -> &[EdgeId] {
        &self.fwd[u.index()]
    }

    /// Number of nodes with a route.
    pub fn routed_count(&self) -> usize {
        self.labels.iter().filter(|l| l.is_some()).count()
    }
}

impl<'a, P: Protocol> Srp<'a, P> {
    /// Creates an instance with a single destination (the paper's form).
    pub fn new(graph: &'a Graph, dest: NodeId, protocol: P) -> Self {
        Srp {
            graph,
            origins: vec![dest],
            protocol,
        }
    }

    /// Creates an instance with several origin nodes (anycast EC).
    pub fn with_origins(graph: &'a Graph, origins: Vec<NodeId>, protocol: P) -> Self {
        assert!(!origins.is_empty(), "an SRP needs at least one origin");
        Srp {
            graph,
            origins,
            protocol,
        }
    }

    /// True if `u` is an origin of this instance.
    pub fn is_origin(&self, u: NodeId) -> bool {
        self.origins.contains(&u)
    }

    /// `choices_L(u)`: the non-⊥ attributes offered to `u` by its
    /// neighbors under the given labels.
    pub fn choices(&self, labels: &[Option<P::Attr>], u: NodeId) -> Vec<(EdgeId, P::Attr)> {
        self.choices_masked(labels, u, None)
    }

    /// [`Srp::choices`] under a link-failure mask: offers across disabled
    /// edges do not exist (the SRP semantics of removing the edge from
    /// `E`, without rebuilding the instance).
    pub fn choices_masked(
        &self,
        labels: &[Option<P::Attr>],
        u: NodeId,
        mask: Option<&FailureMask>,
    ) -> Vec<(EdgeId, P::Attr)> {
        let mut out = Vec::new();
        for e in self.graph.out(u) {
            if mask.is_some_and(|m| m.is_disabled(e)) {
                continue;
            }
            let v = self.graph.target(e);
            if let Some(a) = self.protocol.transfer(e, labels[v.index()].as_ref()) {
                out.push((e, a));
            }
        }
        out
    }

    /// A ≺-minimal element of a non-empty choice set (first minimal in
    /// edge order — deterministic). Returns its index.
    pub fn pick_minimal(&self, choices: &[(EdgeId, P::Attr)]) -> usize {
        let mut best = 0;
        for i in 1..choices.len() {
            if self.protocol.compare(&choices[i].1, &choices[best].1) == Some(Ordering::Less) {
                best = i;
            }
        }
        best
    }

    /// `a ≈ b`: neither attribute is preferred over the other.
    pub fn equally_good(&self, a: &P::Attr, b: &P::Attr) -> bool {
        !matches!(self.protocol.compare(a, b), Some(Ordering::Less))
            && !matches!(self.protocol.compare(b, a), Some(Ordering::Less))
    }

    /// Computes the forwarding relation induced by a labeling.
    pub fn forwarding(&self, labels: &[Option<P::Attr>]) -> Vec<Vec<EdgeId>> {
        self.forwarding_masked(labels, None)
    }

    /// [`Srp::forwarding`] under a link-failure mask: disabled edges are
    /// never forwarded on.
    pub fn forwarding_masked(
        &self,
        labels: &[Option<P::Attr>],
        mask: Option<&FailureMask>,
    ) -> Vec<Vec<EdgeId>> {
        let n = self.graph.node_count();
        let mut fwd = vec![Vec::new(); n];
        for u in self.graph.nodes() {
            fwd[u.index()] = self.node_forwarding_masked(labels, u, mask);
        }
        fwd
    }

    /// The forwarding edges of a single node under the given labels (and
    /// mask): its ≈-minimal surviving choices. Origins consume traffic and
    /// forward nowhere.
    pub fn node_forwarding_masked(
        &self,
        labels: &[Option<P::Attr>],
        u: NodeId,
        mask: Option<&FailureMask>,
    ) -> Vec<EdgeId> {
        if self.is_origin(u) {
            return Vec::new();
        }
        let Some(lu) = &labels[u.index()] else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (e, a) in self.choices_masked(labels, u, mask) {
            if self.equally_good(&a, lu) {
                out.push(e);
            }
        }
        out
    }

    /// Checks the SRP solution constraints locally at every node.
    ///
    /// Returns `Ok(())` or the first violated constraint, described.
    pub fn check_stable(&self, labels: &[Option<P::Attr>]) -> Result<(), String> {
        self.check_stable_masked(labels, None)
    }

    /// [`Srp::check_stable`] for the instance with the masked edges
    /// removed: stability is judged against the *surviving* choice sets.
    pub fn check_stable_masked(
        &self,
        labels: &[Option<P::Attr>],
        mask: Option<&FailureMask>,
    ) -> Result<(), String> {
        if labels.len() != self.graph.node_count() {
            return Err("label vector length mismatch".into());
        }
        for u in self.graph.nodes() {
            self.check_node_stable_masked(labels, u, mask)?;
        }
        Ok(())
    }

    /// The per-node constraint behind [`Srp::check_stable_masked`]:
    /// validates the solution conditions at `u` alone. The warm-started
    /// solver uses this to re-validate only the region a failure actually
    /// touched (untouched nodes keep inputs identical to an
    /// already-validated solution).
    pub fn check_node_stable_masked(
        &self,
        labels: &[Option<P::Attr>],
        u: NodeId,
        mask: Option<&FailureMask>,
    ) -> Result<(), String> {
        let lu = &labels[u.index()];
        if self.is_origin(u) {
            return match lu {
                Some(a) if *a == self.protocol.origin(u) => Ok(()),
                _ => Err(format!("origin {u:?} not labeled with a_d")),
            };
        }
        let choices = self.choices_masked(labels, u, mask);
        match lu {
            None => {
                if !choices.is_empty() {
                    return Err(format!("{u:?} labeled ⊥ but has {} choices", choices.len()));
                }
            }
            Some(a) => {
                // The label must be one of the offered attributes...
                if !choices.iter().any(|(_, c)| c == a) {
                    return Err(format!("{u:?} label {a:?} is not among its choices"));
                }
                // ...and no choice may be strictly preferred over it.
                for (e, c) in &choices {
                    if self.protocol.compare(c, a) == Some(Ordering::Less) {
                        return Err(format!(
                            "{u:?} prefers {c:?} (via {e:?}) over its label {a:?}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Builds a [`Solution`] from labels (computing forwarding), after
    /// validating stability.
    pub fn solution_from_labels(
        &self,
        labels: Vec<Option<P::Attr>>,
    ) -> Result<Solution<P::Attr>, String> {
        self.solution_from_labels_masked(labels, None)
    }

    /// [`Srp::solution_from_labels`] for the masked instance.
    pub fn solution_from_labels_masked(
        &self,
        labels: Vec<Option<P::Attr>>,
        mask: Option<&FailureMask>,
    ) -> Result<Solution<P::Attr>, String> {
        self.check_stable_masked(&labels, mask)?;
        let fwd = self.forwarding_masked(&labels, mask);
        Ok(Solution { labels, fwd })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_net::GraphBuilder;

    /// Hop-count protocol for tests (RIP without the 16 limit).
    struct Hops;
    impl Protocol for Hops {
        type Attr = u32;
        fn origin(&self, _: NodeId) -> u32 {
            0
        }
        fn compare(&self, a: &u32, b: &u32) -> Option<Ordering> {
            Some(a.cmp(b))
        }
        fn transfer(&self, _e: EdgeId, a: Option<&u32>) -> Option<u32> {
            a.map(|x| x + 1)
        }
    }

    fn line3() -> Graph {
        // n0 -- n1 -- n2
        let mut g = GraphBuilder::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_link(a, b);
        g.add_link(b, c);
        g.build()
    }

    #[test]
    fn stable_labeling_accepted() {
        let g = line3();
        let srp = Srp::new(&g, NodeId(2), Hops);
        let labels = vec![Some(2), Some(1), Some(0)];
        assert!(srp.check_stable(&labels).is_ok());
        let sol = srp.solution_from_labels(labels).unwrap();
        // n0 forwards to n1, n1 to n2, the destination nowhere.
        assert_eq!(sol.fwd(NodeId(0)).len(), 1);
        assert_eq!(g.target(sol.fwd(NodeId(0))[0]), NodeId(1));
        assert_eq!(sol.fwd(NodeId(2)), &[] as &[EdgeId]);
        assert_eq!(sol.routed_count(), 3);
    }

    #[test]
    fn unstable_labeling_rejected() {
        let g = line3();
        let srp = Srp::new(&g, NodeId(2), Hops);
        // n0 claims distance 5; its choice through n1 would be 2.
        let labels = vec![Some(5), Some(1), Some(0)];
        assert!(srp.check_stable(&labels).is_err());
        // Destination mislabeled.
        let labels = vec![Some(2), Some(1), Some(7)];
        assert!(srp.check_stable(&labels).is_err());
        // ⊥ despite available choice.
        let labels = vec![None, Some(1), Some(0)];
        assert!(srp.check_stable(&labels).is_err());
    }

    #[test]
    fn choices_and_minimal() {
        let g = line3();
        let srp = Srp::new(&g, NodeId(2), Hops);
        let labels = vec![Some(2), Some(1), Some(0)];
        let ch = srp.choices(&labels, NodeId(1));
        // Offers from both neighbors: via n0 (3 hops) and via n2 (1 hop).
        assert_eq!(ch.len(), 2);
        let best = srp.pick_minimal(&ch);
        assert_eq!(ch[best].1, 1);
    }

    #[test]
    fn multi_origin_pins_all_origins() {
        let g = line3();
        let srp = Srp::with_origins(&g, vec![NodeId(0), NodeId(2)], Hops);
        let labels = vec![Some(0), Some(1), Some(0)];
        assert!(srp.check_stable(&labels).is_ok());
        let fwd = srp.forwarding(&labels);
        // The middle node load-balances to both origins (1 hop each).
        assert_eq!(fwd[1].len(), 2);
    }
}
