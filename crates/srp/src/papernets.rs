//! The worked examples of the paper, as ready-made networks.
//!
//! These small configurations appear throughout the paper's exposition and
//! are used by unit tests, integration tests and the runnable examples:
//!
//! * [`figure1_rip`] — the RIP diamond of Figure 1.
//! * [`figure2_gadget`] — the BGP loop-prevention gadget of Figures 2/3/9.
//! * [`figure5_bgp`] — the tag/local-preference BGP chain of Figure 5.
//! * [`figure6_static`] — the static-routing chain of Figure 6.

use bonsai_config::{parse_network, NetworkConfig};

/// Destination prefix used by all paper networks.
pub const DEST_PREFIX: &str = "10.0.0.0/24";

/// Figure 1: the RIP diamond `a — {b1, b2} — d`. The destination `d`
/// originates; labels settle to `a=2, b1=b2=1, d=0`.
///
/// RIP itself is configuration-free; this network is expressed with BGP
/// shortest-path routing, which computes the same tree, or can be run with
/// [`crate::protocols::Rip`] on the raw graph.
pub fn figure1_rip() -> NetworkConfig {
    parse_network(
        "
device d
interface to_b1
interface to_b2
router bgp 100
 network 10.0.0.0/24
 neighbor to_b1 remote-as external
 neighbor to_b2 remote-as external
end
device b1
interface to_d
interface to_a
router bgp 1
 neighbor to_d remote-as external
 neighbor to_a remote-as external
end
device b2
interface to_d
interface to_a
router bgp 2
 neighbor to_d remote-as external
 neighbor to_a remote-as external
end
device a
interface to_b1
interface to_b2
router bgp 50
 neighbor to_b1 remote-as external
 neighbor to_b2 remote-as external
end
link d to_b1 b1 to_d
link d to_b2 b2 to_d
link a to_b1 b1 to_a
link a to_b2 b2 to_a
",
    )
    .expect("figure 1 network parses")
}

/// Figure 2 (and the refinement walk-through of Figures 3 and 9): `a` on
/// top, `b1 b2 b3` in the middle — all with *identical* configurations
/// preferring routes via `a` (local preference 200) — and the destination
/// `d` at the bottom. Loop prevention forces exactly one `bi` onto its
/// direct route in every stable solution, so the sound abstraction must
/// split the `b` role in two.
pub fn figure2_gadget() -> NetworkConfig {
    let mut text = String::from(
        "
device d
interface to_b1
interface to_b2
interface to_b3
router bgp 100
 network 10.0.0.0/24
 neighbor to_b1 remote-as external
 neighbor to_b2 remote-as external
 neighbor to_b3 remote-as external
end
device a
interface to_b1
interface to_b2
interface to_b3
router bgp 50
 neighbor to_b1 remote-as external
 neighbor to_b2 remote-as external
 neighbor to_b3 remote-as external
end
",
    );
    for i in 1..=3 {
        text.push_str(&format!(
            "
device b{i}
interface to_a
interface to_d
route-map UP permit 10
 set local-preference 200
router bgp {i}
 neighbor to_a remote-as external
 neighbor to_a route-map UP in
 neighbor to_d remote-as external
end
"
        ));
    }
    text.push_str(
        "
link d to_b1 b1 to_d
link d to_b2 b2 to_d
link d to_b3 b3 to_d
link a to_b1 b1 to_a
link a to_b2 b2 to_a
link a to_b3 b3 to_a
",
    );
    parse_network(&text).expect("figure 2 network parses")
}

/// Figure 5: the BGP modeling example. `a` tags routes exported to `b2`
/// with community 65001:1; `b2` raises the local preference of tagged
/// routes to 200 and therefore routes through `a` despite the longer path.
pub fn figure5_bgp() -> NetworkConfig {
    parse_network(
        "
device d
interface to_b1
interface to_b2
router bgp 4
 network 10.0.0.0/24
 neighbor to_b1 remote-as external
 neighbor to_b2 remote-as external
end
device b1
interface to_d
interface to_a
router bgp 2
 neighbor to_d remote-as external
 neighbor to_a remote-as external
end
device a
interface to_b1
interface to_b2
route-map TAG permit 10
 set community 65001:1 additive
router bgp 1
 neighbor to_b1 remote-as external
 neighbor to_b2 remote-as external
 neighbor to_b2 route-map TAG out
end
device b2
interface to_a
interface to_d
ip community-list tagged permit 65001:1
route-map PREF permit 10
 match community tagged
 set local-preference 200
route-map PREF permit 20
router bgp 3
 neighbor to_a remote-as external
 neighbor to_a route-map PREF in
 neighbor to_d remote-as external
end
link d to_b1 b1 to_d
link b1 to_a a to_b1
link a to_b2 b2 to_a
link b2 to_d d to_b2
",
    )
    .expect("figure 5 network parses")
}

/// Figure 6: static routing on the chain `a — b1 — b2 — d`. `a` and `b2`
/// have static routes toward the destination, `b1` has none — so `a`
/// forwards into a black hole, the behavior the abstraction must preserve.
pub fn figure6_static() -> NetworkConfig {
    parse_network(
        "
device a
interface right
ip route 10.0.0.0/24 right
end
device b1
interface left
interface right
end
device b2
interface left
interface right
ip route 10.0.0.0/24 right
end
device d
interface left
end
link a right b1 left
link b1 right b2 left
link b2 right d left
",
    )
    .expect("figure 6 network parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_config::BuiltTopology;

    #[test]
    fn all_paper_networks_build() {
        for net in [
            figure1_rip(),
            figure2_gadget(),
            figure5_bgp(),
            figure6_static(),
        ] {
            let topo = BuiltTopology::build(&net).unwrap();
            assert!(topo.graph.node_count() >= 4);
        }
    }
}
