//! BGP: policy-rich path-vector routing (paper §3.2, Figure 5; §4.3; §6).
//!
//! Attributes are `(local-pref, communities, node path)` tuples — the
//! paper's `A = N × 2^N × list(V)`, where paths record *nodes* (each router
//! in the studied networks is its own AS, so node paths and AS paths
//! coincide). The comparison prefers higher local preference, then shorter
//! paths, then lower MED. The transfer function applies the exporter's
//! outbound route map, prepends the exporter to the path, performs **loop
//! prevention** (the receiver rejects any path it already appears on), and
//! applies the receiver's inbound route map, which decides the new local
//! preference.
//!
//! Loop prevention is what breaks transfer-equivalence for BGP and forces
//! the ∀∀-abstraction + `transfer-approx` conditions of §4.3; this module
//! therefore also exposes [`BgpProtocol::transfer_ignoring_loops`] so the
//! compression layer can reason about the loop-free part of the function.

use crate::model::Protocol;
use bonsai_config::eval::{eval_optional_route_map, PolicyInput};
use bonsai_config::{BuiltTopology, Community, NetworkConfig};
use bonsai_net::prefix::Prefix;
use bonsai_net::{EdgeId, NodeId};
use std::cmp::Ordering;
use std::collections::BTreeSet;

/// A BGP route attribute.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct BgpAttr {
    /// Local preference (assigned by the receiving router on import).
    pub lp: u32,
    /// Attached communities.
    pub comms: BTreeSet<Community>,
    /// Node path, nearest hop first. Empty at the origin.
    pub path: Vec<NodeId>,
    /// MED (metric), set by route maps; lower preferred, compared last.
    pub med: u32,
    /// True if the route was learned over an iBGP session (affects
    /// re-advertisement and administrative distance).
    pub from_ibgp: bool,
}

impl BgpAttr {
    /// The attribute an origin router injects: default preference, no
    /// communities, empty path.
    pub fn origin(default_lp: u32) -> Self {
        BgpAttr {
            lp: default_lp,
            comms: BTreeSet::new(),
            path: Vec::new(),
            med: 0,
            from_ibgp: false,
        }
    }
}

/// Facts about one directed edge's BGP session, if any.
#[derive(Clone, Debug)]
pub struct BgpEdge {
    /// iBGP session (both neighbor statements `remote-as internal`).
    pub ibgp: bool,
    /// Name of the exporter's outbound route map, if configured.
    pub export_map: Option<String>,
    /// Name of the importer's inbound route map, if configured.
    pub import_map: Option<String>,
}

/// The BGP protocol for one network and destination prefix.
///
/// Holds per-edge session facts plus indices back into the configuration
/// for route-map evaluation.
pub struct BgpProtocol<'a> {
    network: &'a NetworkConfig,
    dest: Prefix,
    graph_edges: Vec<(NodeId, NodeId)>,
    sessions: Vec<Option<BgpEdge>>,
}

impl<'a> BgpProtocol<'a> {
    /// Extracts BGP session facts from a configured network.
    ///
    /// A session exists on edge `(u, v)` iff *both* devices run BGP and
    /// have a `neighbor` statement on the respective interface. The session
    /// is iBGP iff both sides declare `remote-as internal`.
    pub fn from_network(network: &'a NetworkConfig, topo: &BuiltTopology, dest: Prefix) -> Self {
        let mut sessions = Vec::with_capacity(topo.graph.edge_count());
        let mut graph_edges = Vec::with_capacity(topo.graph.edge_count());
        for e in topo.graph.edges() {
            graph_edges.push(topo.graph.endpoints(e));
            sessions.push(Self::edge_facts(network, topo, e));
        }
        BgpProtocol {
            network,
            dest,
            graph_edges,
            sessions,
        }
    }

    /// The session facts of one edge (shared with the compression layer).
    pub fn edge_facts(network: &NetworkConfig, topo: &BuiltTopology, e: EdgeId) -> Option<BgpEdge> {
        let (u, v) = topo.graph.endpoints(e);
        let du = &network.devices[u.index()];
        let dv = &network.devices[v.index()];
        let bgp_u = du.bgp.as_ref()?;
        let bgp_v = dv.bgp.as_ref()?;
        let iface_u = &du.interfaces[topo.egress(e)].name;
        let iface_v = &dv.interfaces[topo.ingress(e)].name;
        let nb_u = bgp_u.neighbors.iter().find(|n| n.iface == *iface_u)?;
        let nb_v = bgp_v.neighbors.iter().find(|n| n.iface == *iface_v)?;
        Some(BgpEdge {
            ibgp: nb_u.ibgp && nb_v.ibgp,
            export_map: nb_v.export_policy.clone(),
            import_map: nb_u.import_policy.clone(),
        })
    }

    /// The session of one edge, if present.
    pub fn session(&self, e: EdgeId) -> Option<&BgpEdge> {
        self.sessions[e.index()].as_ref()
    }

    /// The `(source, target)` endpoints of an edge (cached from the graph).
    pub fn edge_endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.graph_edges[e.index()]
    }

    /// The destination prefix this instance routes toward.
    pub fn dest(&self) -> Prefix {
        self.dest
    }

    /// The transfer function *without* the receiver's loop-prevention check
    /// (`transfer-approx` in the paper: both sides agree whenever the
    /// receiver is not on the incoming path).
    pub fn transfer_ignoring_loops(&self, e: EdgeId, a: Option<&BgpAttr>) -> Option<BgpAttr> {
        self.transfer_inner(e, a, false)
    }

    fn transfer_inner(&self, e: EdgeId, a: Option<&BgpAttr>, check_loop: bool) -> Option<BgpAttr> {
        let session = self.sessions[e.index()].as_ref()?;
        let a = a?;
        let (u, v) = self.graph_edges[e.index()];
        let du = &self.network.devices[u.index()];
        let dv = &self.network.devices[v.index()];

        // Rule: routes learned over iBGP are not re-advertised to other
        // iBGP peers (paper §6 relies on this to merge iBGP neighbors).
        if a.from_ibgp && session.ibgp {
            return None;
        }

        // 1. Exporter's outbound policy.
        let export = eval_optional_route_map(
            dv,
            session.export_map.as_deref(),
            &PolicyInput {
                dest: self.dest,
                communities: a.comms.clone(),
            },
        );
        if !export.permit {
            return None;
        }
        let mut comms = a.comms.clone();
        export.apply_communities(&mut comms);

        // 2. Path: the exporter prepends itself (plus any as-path prepend).
        let mut path = Vec::with_capacity(a.path.len() + 1 + export.prepend as usize);
        for _ in 0..=export.prepend {
            path.push(v);
        }
        path.extend_from_slice(&a.path);

        // 3. Loop prevention at the receiver.
        if check_loop && path.contains(&u) {
            return None;
        }

        // 4. Importer's inbound policy; it decides the local preference.
        let import = eval_optional_route_map(
            du,
            session.import_map.as_deref(),
            &PolicyInput {
                dest: self.dest,
                communities: comms.clone(),
            },
        );
        if !import.permit {
            return None;
        }
        import.apply_communities(&mut comms);
        let default_lp = du.bgp.as_ref().map(|b| b.default_local_pref).unwrap_or(100);
        let lp = import.local_pref.unwrap_or(if session.ibgp {
            a.lp // local preference is carried across iBGP
        } else {
            default_lp
        });
        let med = import
            .metric
            .or(export.metric)
            .unwrap_or(if session.ibgp { a.med } else { 0 });

        Some(BgpAttr {
            lp,
            comms,
            path,
            med,
            from_ibgp: session.ibgp,
        })
    }
}

impl Protocol for BgpProtocol<'_> {
    type Attr = BgpAttr;

    fn origin(&self, origin: NodeId) -> BgpAttr {
        let default_lp = self.network.devices[origin.index()]
            .bgp
            .as_ref()
            .map(|b| b.default_local_pref)
            .unwrap_or(100);
        BgpAttr::origin(default_lp)
    }

    fn compare(&self, a: &BgpAttr, b: &BgpAttr) -> Option<Ordering> {
        // Higher local preference first, then shorter path, then lower MED.
        // Distinct paths of equal length are equally good (≈) — that is
        // BGP multipath and the source of solution multiplicity.
        Some(
            b.lp.cmp(&a.lp)
                .then(a.path.len().cmp(&b.path.len()))
                .then(a.med.cmp(&b.med)),
        )
    }

    fn transfer(&self, e: EdgeId, a: Option<&BgpAttr>) -> Option<BgpAttr> {
        self.transfer_inner(e, a, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Srp;
    use crate::solver::{solve_with_order, SolverOptions};
    use bonsai_config::parse_network;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// Figure 5: a — b1 — d chain plus b2 — d and a — b2? The paper's
    /// Figure 5 network is a — b1 — d with b2 attached to both a and d;
    /// a adds tag 1 on export, b2 raises local preference on tagged
    /// routes, so b2 routes through a despite the longer path.
    fn figure5() -> NetworkConfig {
        parse_network(
            "
device d
interface to_b1
interface to_b2
router bgp 4
 network 10.0.0.0/24
 neighbor to_b1 remote-as external
 neighbor to_b2 remote-as external
end
device b1
interface to_d
interface to_a
router bgp 2
 neighbor to_d remote-as external
 neighbor to_a remote-as external
end
device a
interface to_b1
interface to_b2
route-map TAG permit 10
 set community 65001:1 additive
router bgp 1
 neighbor to_b1 remote-as external
 neighbor to_b2 remote-as external
 neighbor to_b2 route-map TAG out
end
device b2
interface to_a
interface to_d
ip community-list tagged permit 65001:1
route-map PREF permit 10
 match community tagged
 set local-preference 200
route-map PREF permit 20
router bgp 3
 neighbor to_a remote-as external
 neighbor to_a route-map PREF in
 neighbor to_d remote-as external
end
link d to_b1 b1 to_d
link b1 to_a a to_b1
link a to_b2 b2 to_a
link b2 to_d d to_b2
",
        )
        .unwrap()
    }

    #[test]
    fn figure_5_policy_routing() {
        let net = figure5();
        let topo = BuiltTopology::build(&net).unwrap();
        let bgp = BgpProtocol::from_network(&net, &topo, p("10.0.0.0/24"));
        let d = topo.graph.node_by_name("d").unwrap();
        let srp = Srp::new(&topo.graph, d, bgp);
        let order: Vec<NodeId> = topo.graph.nodes().collect();
        let sol = solve_with_order(&srp, &order, SolverOptions::default()).unwrap();

        let a = topo.graph.node_by_name("a").unwrap();
        let b1 = topo.graph.node_by_name("b1").unwrap();
        let b2 = topo.graph.node_by_name("b2").unwrap();

        // b1 takes the direct route to d.
        let lb1 = sol.label(b1).unwrap();
        assert_eq!(lb1.path, vec![d]);
        assert_eq!(lb1.lp, 100);

        // a routes through b1 (path [b1, d]).
        let la = sol.label(a).unwrap();
        assert_eq!(la.path, vec![b1, d]);

        // b2 prefers the tagged route through a (lp 200, path [a, b1, d])
        // over its direct route to d (lp 100, path [d]).
        let lb2 = sol.label(b2).unwrap();
        assert_eq!(lb2.lp, 200);
        assert_eq!(lb2.path, vec![a, b1, d]);
        assert!(lb2.comms.contains(&Community::new(65001, 1)));
        assert_eq!(topo.graph.target(sol.fwd(b2)[0]), a);
    }

    /// The Figure 2 gadget: a connected to b1, b2, b3; each bi connected
    /// to d. All bi prefer routes via a (lp 200). One bi must fall back to
    /// its direct route because of loop prevention.
    pub(crate) fn figure2() -> NetworkConfig {
        let mut text = String::from(
            "
device d
interface to_b1
interface to_b2
interface to_b3
router bgp 100
 network 10.0.0.0/24
 neighbor to_b1 remote-as external
 neighbor to_b2 remote-as external
 neighbor to_b3 remote-as external
end
device a
interface to_b1
interface to_b2
interface to_b3
router bgp 50
 neighbor to_b1 remote-as external
 neighbor to_b2 remote-as external
 neighbor to_b3 remote-as external
end
",
        );
        for i in 1..=3 {
            text.push_str(&format!(
                "
device b{i}
interface to_a
interface to_d
route-map UP permit 10
 set local-preference 200
router bgp {i}
 neighbor to_a remote-as external
 neighbor to_a route-map UP in
 neighbor to_d remote-as external
end
"
            ));
        }
        text.push_str(
            "
link d to_b1 b1 to_d
link d to_b2 b2 to_d
link d to_b3 b3 to_d
link a to_b1 b1 to_a
link a to_b2 b2 to_a
link a to_b3 b3 to_a
",
        );
        parse_network(&text).unwrap()
    }

    #[test]
    fn figure_2_loop_prevention_splits_behaviors() {
        let net = figure2();
        let topo = BuiltTopology::build(&net).unwrap();
        let bgp = BgpProtocol::from_network(&net, &topo, p("10.0.0.0/24"));
        let d = topo.graph.node_by_name("d").unwrap();
        let a = topo.graph.node_by_name("a").unwrap();
        let srp = Srp::new(&topo.graph, d, bgp);
        let sol = crate::solver::solve(&srp).unwrap();

        // Exactly one of b1, b2, b3 routes directly to d (lp 100); the
        // other two route via a (lp 200). That is the paper's point:
        // identical configurations, different behaviors.
        let mut direct = 0;
        let mut via_a = 0;
        for name in ["b1", "b2", "b3"] {
            let b = topo.graph.node_by_name(name).unwrap();
            let l = sol.label(b).unwrap();
            if l.lp == 100 {
                direct += 1;
                assert_eq!(l.path, vec![d]);
            } else {
                via_a += 1;
                assert_eq!(l.lp, 200);
                assert_eq!(l.path.first(), Some(&a));
            }
        }
        assert_eq!(direct, 1);
        assert_eq!(via_a, 2);
        // `a` routes through the direct router.
        let la = sol.label(a).unwrap();
        assert_eq!(la.path.len(), 2);
    }

    #[test]
    fn different_orders_find_different_gadget_solutions() {
        let net = figure2();
        let topo = BuiltTopology::build(&net).unwrap();
        let d = topo.graph.node_by_name("d").unwrap();
        let mut direct_routers = std::collections::BTreeSet::new();
        let nodes: Vec<NodeId> = topo.graph.nodes().collect();
        // Try rotations of the activation order; collect which router ends
        // up with the direct route. The gadget has 3 stable solutions.
        for rot in 0..nodes.len() {
            let bgp = BgpProtocol::from_network(&net, &topo, p("10.0.0.0/24"));
            let srp = Srp::new(&topo.graph, d, bgp);
            let mut order = nodes.clone();
            order.rotate_left(rot);
            let sol = solve_with_order(&srp, &order, SolverOptions::default()).unwrap();
            for name in ["b1", "b2", "b3"] {
                let b = topo.graph.node_by_name(name).unwrap();
                if sol.label(b).unwrap().lp == 100 {
                    direct_routers.insert(name);
                }
            }
        }
        assert!(
            direct_routers.len() >= 2,
            "expected multiple distinct stable solutions, saw {direct_routers:?}"
        );
    }

    #[test]
    fn loop_prevention_rejects_own_node() {
        let net = figure5();
        let topo = BuiltTopology::build(&net).unwrap();
        let bgp = BgpProtocol::from_network(&net, &topo, p("10.0.0.0/24"));
        let b1 = topo.graph.node_by_name("b1").unwrap();
        let a = topo.graph.node_by_name("a").unwrap();
        let d = topo.graph.node_by_name("d").unwrap();
        let e = topo.graph.find_edge(b1, a).unwrap();
        // a's route already goes through b1: b1 must reject it...
        let attr = BgpAttr {
            lp: 100,
            comms: BTreeSet::new(),
            path: vec![b1, d],
            med: 0,
            from_ibgp: false,
        };
        assert_eq!(bgp.transfer(e, Some(&attr)), None);
        // ...but the loop-ignoring transfer accepts it (transfer-approx).
        assert!(bgp.transfer_ignoring_loops(e, Some(&attr)).is_some());
    }

    #[test]
    fn ebgp_resets_local_pref_ibgp_carries_it() {
        let net = parse_network(
            "
device x
interface i
router bgp 1
 network 10.0.0.0/24
 neighbor i remote-as internal
end
device y
interface i
router bgp 1
 neighbor i remote-as internal
end
link x i y i
",
        )
        .unwrap();
        let topo = BuiltTopology::build(&net).unwrap();
        let bgp = BgpProtocol::from_network(&net, &topo, p("10.0.0.0/24"));
        let x = topo.graph.node_by_name("x").unwrap();
        let y = topo.graph.node_by_name("y").unwrap();
        let e = topo.graph.find_edge(y, x).unwrap();
        let mut attr = BgpAttr::origin(100);
        attr.lp = 777;
        let out = bgp.transfer(e, Some(&attr)).unwrap();
        assert_eq!(out.lp, 777, "iBGP must carry local preference");
        assert!(out.from_ibgp);
        // And an iBGP-learned route is not re-advertised over iBGP.
        let e_back = topo.graph.find_edge(x, y).unwrap();
        assert_eq!(bgp.transfer(e_back, Some(&out)), None);
    }

    #[test]
    fn no_session_no_route() {
        let net = parse_network(
            "
device x
interface i
router bgp 1
 network 10.0.0.0/24
 neighbor i remote-as external
end
device y
interface i
end
link x i y i
",
        )
        .unwrap();
        let topo = BuiltTopology::build(&net).unwrap();
        let bgp = BgpProtocol::from_network(&net, &topo, p("10.0.0.0/24"));
        let y = topo.graph.node_by_name("y").unwrap();
        let x = topo.graph.node_by_name("x").unwrap();
        let e = topo.graph.find_edge(y, x).unwrap();
        assert_eq!(bgp.transfer(e, Some(&BgpAttr::origin(100))), None);
    }

    #[test]
    fn export_deny_drops_route() {
        let net = parse_network(
            "
device x
interface i
route-map NONE deny 10
router bgp 1
 network 10.0.0.0/24
 neighbor i remote-as external
 neighbor i route-map NONE out
end
device y
interface i
router bgp 2
 neighbor i remote-as external
end
link x i y i
",
        )
        .unwrap();
        let topo = BuiltTopology::build(&net).unwrap();
        let bgp = BgpProtocol::from_network(&net, &topo, p("10.0.0.0/24"));
        let y = topo.graph.node_by_name("y").unwrap();
        let x = topo.graph.node_by_name("x").unwrap();
        let e = topo.graph.find_edge(y, x).unwrap();
        assert_eq!(bgp.transfer(e, Some(&BgpAttr::origin(100))), None);
    }

    #[test]
    fn prepend_lengthens_path() {
        let net = parse_network(
            "
device x
interface i
route-map PAD permit 10
 set as-path prepend 2
router bgp 1
 network 10.0.0.0/24
 neighbor i remote-as external
 neighbor i route-map PAD out
end
device y
interface i
router bgp 2
 neighbor i remote-as external
end
link x i y i
",
        )
        .unwrap();
        let topo = BuiltTopology::build(&net).unwrap();
        let bgp = BgpProtocol::from_network(&net, &topo, p("10.0.0.0/24"));
        let y = topo.graph.node_by_name("y").unwrap();
        let x = topo.graph.node_by_name("x").unwrap();
        let e = topo.graph.find_edge(y, x).unwrap();
        let out = bgp.transfer(e, Some(&BgpAttr::origin(100))).unwrap();
        assert_eq!(out.path, vec![x, x, x]); // 1 natural + 2 prepended
    }
}
