//! Concrete protocol models (paper §3.2).
//!
//! Each submodule instantiates the [`crate::Protocol`] trait for one
//! routing protocol, with device configurations baked into the transfer
//! function:
//!
//! * [`rip`] — distance vector with a 16-hop horizon.
//! * [`ospf`] — link state: configured link costs, areas, intra-area
//!   preference.
//! * [`bgp`] — path vector: local preference, communities, node paths and
//!   loop prevention; import/export route maps from configurations.
//! * [`static_route`] — statically configured next hops (spontaneous
//!   transfer, may form loops).
//!
//! The multi-protocol RIB combining these (administrative distance +
//! redistribution, §6) lives in [`crate::instance`].

pub mod bgp;
pub mod ospf;
pub mod rip;
pub mod static_route;

pub use bgp::{BgpAttr, BgpProtocol};
pub use ospf::{OspfAttr, OspfProtocol};
pub use rip::{Rip, RipAttr};
pub use static_route::StaticProtocol;
