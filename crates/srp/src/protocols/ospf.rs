//! OSPF: link-state routing with configured costs and areas (paper §3.2).
//!
//! Attributes are `(cost, inter_area)` pairs. The comparison prefers
//! intra-area routes, then lower cost — the paper's two-component model of
//! OSPF areas. The transfer function adds the egress interface's configured
//! cost and sets the inter-area bit when a route crosses an area boundary.

use crate::model::Protocol;
use bonsai_config::{BuiltTopology, NetworkConfig};
use bonsai_net::{EdgeId, NodeId};
use std::cmp::Ordering;

/// An OSPF route attribute.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct OspfAttr {
    /// Accumulated path cost.
    pub cost: u32,
    /// True once the route has crossed an area boundary.
    pub inter_area: bool,
}

/// Per-edge OSPF facts extracted from configurations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OspfEdge {
    /// Cost of the egress interface at the receiving router.
    pub cost: u32,
    /// True if the edge joins interfaces in different areas.
    pub crosses_area: bool,
}

/// The OSPF protocol for one network: per-edge costs and area crossings.
#[derive(Clone, Debug)]
pub struct OspfProtocol {
    /// `edges[e]` is `None` when OSPF is not enabled on both sides.
    edges: Vec<Option<OspfEdge>>,
}

impl OspfProtocol {
    /// Extracts OSPF edge facts from a configured network.
    ///
    /// OSPF runs over an edge `(u, v)` iff both endpoint interfaces carry
    /// an `ip ospf area` setting and both devices run an OSPF process.
    pub fn from_network(network: &NetworkConfig, topo: &BuiltTopology) -> Self {
        let edges = topo
            .graph
            .edges()
            .map(|e| Self::edge_facts(network, topo, e))
            .collect();
        OspfProtocol { edges }
    }

    /// The OSPF facts of one edge (public so the compression layer uses the
    /// identical extraction when building transfer-function signatures).
    pub fn edge_facts(
        network: &NetworkConfig,
        topo: &BuiltTopology,
        e: EdgeId,
    ) -> Option<OspfEdge> {
        let (u, v) = topo.graph.endpoints(e);
        let du = &network.devices[u.index()];
        let dv = &network.devices[v.index()];
        du.ospf.as_ref()?;
        dv.ospf.as_ref()?;
        let iu = &du.interfaces[topo.egress(e)];
        let iv = &dv.interfaces[topo.ingress(e)];
        let area_u = iu.ospf_area?;
        let area_v = iv.ospf_area?;
        Some(OspfEdge {
            cost: iu.ospf_cost.unwrap_or(1),
            crosses_area: area_u != area_v,
        })
    }

    /// The facts of one edge, if OSPF-enabled.
    pub fn edge(&self, e: EdgeId) -> Option<OspfEdge> {
        self.edges[e.index()]
    }
}

impl Protocol for OspfProtocol {
    type Attr = OspfAttr;

    fn origin(&self, _: NodeId) -> OspfAttr {
        OspfAttr {
            cost: 0,
            inter_area: false,
        }
    }

    fn compare(&self, a: &OspfAttr, b: &OspfAttr) -> Option<Ordering> {
        // Intra-area first, then cost.
        Some((a.inter_area, a.cost).cmp(&(b.inter_area, b.cost)))
    }

    fn transfer(&self, e: EdgeId, a: Option<&OspfAttr>) -> Option<OspfAttr> {
        let edge = self.edges[e.index()]?;
        let a = a?;
        Some(OspfAttr {
            cost: a.cost.saturating_add(edge.cost),
            inter_area: a.inter_area || edge.crosses_area,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Srp;
    use crate::solver::solve;
    use bonsai_config::{DeviceConfig, Interface, Link, NetworkConfig, OspfConfig};
    use bonsai_net::NodeId;

    /// Builds a line network r0 — r1 — … with the given per-link costs and
    /// areas (cost/area apply to both interfaces of link i, except area is
    /// per interface pair: `(area_left, area_right)`).
    fn line(costs: &[u32], areas: &[(u32, u32)]) -> (NetworkConfig, BuiltTopology) {
        assert_eq!(costs.len(), areas.len());
        let n = costs.len() + 1;
        let mut net = NetworkConfig::default();
        for i in 0..n {
            let mut d = DeviceConfig::new(format!("r{i}"));
            d.ospf = Some(OspfConfig::default());
            // left iface connects to previous node, right to next
            for name in ["left", "right"] {
                d.interfaces.push(Interface::named(name));
            }
            net.devices.push(d);
        }
        for (i, (&cost, &(al, ar))) in costs.iter().zip(areas).enumerate() {
            // link between r_i (right) and r_{i+1} (left)
            net.links.push(Link::new(
                (format!("r{i}"), "right"),
                (format!("r{}", i + 1), "left"),
            ));
            let right = net.devices[i].interface_index("right").unwrap();
            net.devices[i].interfaces[right].ospf_cost = Some(cost);
            net.devices[i].interfaces[right].ospf_area = Some(al);
            let left = net.devices[i + 1].interface_index("left").unwrap();
            net.devices[i + 1].interfaces[left].ospf_cost = Some(cost);
            net.devices[i + 1].interfaces[left].ospf_area = Some(ar);
        }
        let topo = BuiltTopology::build(&net).unwrap();
        (net, topo)
    }

    #[test]
    fn accumulates_costs_toward_destination() {
        let (net, topo) = line(&[3, 5], &[(0, 0), (0, 0)]);
        let ospf = OspfProtocol::from_network(&net, &topo);
        let srp = Srp::new(&topo.graph, NodeId(0), ospf);
        let sol = solve(&srp).unwrap();
        assert_eq!(sol.label(NodeId(1)).unwrap().cost, 3);
        assert_eq!(sol.label(NodeId(2)).unwrap().cost, 8);
        assert!(!sol.label(NodeId(2)).unwrap().inter_area);
    }

    #[test]
    fn area_crossing_marks_routes_inter_area() {
        let (net, topo) = line(&[1, 1], &[(0, 0), (0, 1)]);
        let ospf = OspfProtocol::from_network(&net, &topo);
        let srp = Srp::new(&topo.graph, NodeId(0), ospf);
        let sol = solve(&srp).unwrap();
        assert!(!sol.label(NodeId(1)).unwrap().inter_area);
        assert!(sol.label(NodeId(2)).unwrap().inter_area);
    }

    #[test]
    fn intra_area_preferred_over_cheaper_inter_area() {
        let p = OspfProtocol { edges: vec![] };
        let intra = OspfAttr {
            cost: 100,
            inter_area: false,
        };
        let inter = OspfAttr {
            cost: 1,
            inter_area: true,
        };
        assert_eq!(p.compare(&intra, &inter), Some(Ordering::Less));
    }

    #[test]
    fn disabled_interfaces_drop_routes() {
        let (mut net, _) = line(&[1], &[(0, 0)]);
        // Remove the OSPF process on r1: edge facts become None.
        net.devices[1].ospf = None;
        let topo = BuiltTopology::build(&net).unwrap();
        let ospf = OspfProtocol::from_network(&net, &topo);
        let srp = Srp::new(&topo.graph, NodeId(0), ospf);
        let sol = solve(&srp).unwrap();
        assert_eq!(sol.label(NodeId(1)), None);
    }

    #[test]
    fn default_cost_is_one() {
        let (mut net, _) = line(&[7], &[(0, 0)]);
        let right = net.devices[0].interface_index("right").unwrap();
        net.devices[0].interfaces[right].ospf_cost = None;
        let left = net.devices[1].interface_index("left").unwrap();
        net.devices[1].interfaces[left].ospf_cost = None;
        let topo = BuiltTopology::build(&net).unwrap();
        let ospf = OspfProtocol::from_network(&net, &topo);
        let srp = Srp::new(&topo.graph, NodeId(0), ospf);
        let sol = solve(&srp).unwrap();
        assert_eq!(sol.label(NodeId(1)).unwrap().cost, 1);
    }
}
