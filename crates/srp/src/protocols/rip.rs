//! RIP: hop-count distance vector (paper §3.2, Figure 1).
//!
//! Attributes are path lengths `0..=15`; the comparison prefers shorter
//! paths; the transfer function increments the hop count and drops routes
//! beyond the 16-hop horizon.

use crate::model::Protocol;
use bonsai_net::{EdgeId, NodeId};
use std::cmp::Ordering;

/// RIP hop count. Valid values are `0..=15`.
pub type RipAttr = u8;

/// The RIP protocol. Configuration-free: every link costs one hop.
#[derive(Clone, Copy, Debug, Default)]
pub struct Rip;

/// RIP's infinity: routes at 16 hops are unreachable.
pub const RIP_HORIZON: RipAttr = 16;

impl Protocol for Rip {
    type Attr = RipAttr;

    fn origin(&self, _: NodeId) -> RipAttr {
        0
    }

    fn compare(&self, a: &RipAttr, b: &RipAttr) -> Option<Ordering> {
        Some(a.cmp(b))
    }

    fn transfer(&self, _e: EdgeId, a: Option<&RipAttr>) -> Option<RipAttr> {
        match a {
            Some(&hops) if hops + 1 < RIP_HORIZON => Some(hops + 1),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Srp;
    use crate::solver::solve;
    use bonsai_net::GraphBuilder;

    /// The network of Figure 1(a): a — b1 — d, a — b2 — d... actually the
    /// paper's picture is a path a—b1—d plus a—b2—d style diamond; the
    /// solution labels are a=2, b1=b2=1, d=0 (Figure 1(b)).
    #[test]
    fn figure_1_solution() {
        let mut gb = GraphBuilder::new();
        let a = gb.add_node("a");
        let b1 = gb.add_node("b1");
        let b2 = gb.add_node("b2");
        let d = gb.add_node("d");
        gb.add_link(a, b1);
        gb.add_link(a, b2);
        gb.add_link(b1, d);
        gb.add_link(b2, d);
        let g = gb.build();
        let srp = Srp::new(&g, d, Rip);
        let sol = solve(&srp).unwrap();
        assert_eq!(sol.label(a), Some(&2));
        assert_eq!(sol.label(b1), Some(&1));
        assert_eq!(sol.label(b2), Some(&1));
        assert_eq!(sol.label(d), Some(&0));
        // b1 and b2 forward to d; a multipaths over b1 and b2.
        assert_eq!(g.target(sol.fwd(b1)[0]), d);
        assert_eq!(sol.fwd(a).len(), 2);
    }

    #[test]
    fn horizon_drops_long_paths() {
        // A 20-node line: nodes beyond 15 hops have no route.
        let mut gb = GraphBuilder::new();
        let nodes = gb.add_nodes("r", 20);
        for w in nodes.windows(2) {
            gb.add_link(w[0], w[1]);
        }
        let g = gb.build();
        let srp = Srp::new(&g, nodes[0], Rip);
        let sol = solve(&srp).unwrap();
        assert_eq!(sol.label(nodes[15]), Some(&15));
        assert_eq!(sol.label(nodes[16]), None);
        assert_eq!(sol.label(nodes[19]), None);
    }

    #[test]
    fn transfer_is_non_spontaneous() {
        assert_eq!(Rip.transfer(EdgeId(0), None), None);
    }
}
