//! Static routing (paper §3.2, Figure 6).
//!
//! The attribute set is the singleton `{true}` (here `()`): the presence of
//! a static route. The comparison relation is trivially empty and the
//! transfer function is *spontaneous* — it ignores the neighbor's label and
//! returns a route exactly when the device has a static route for the
//! destination pointing out of the edge's egress interface. Static routes
//! may therefore form forwarding loops, which the theory handles separately
//! (Theorem 4.3).

use crate::model::Protocol;
use bonsai_config::{BuiltTopology, NetworkConfig};
use bonsai_net::prefix::Prefix;
use bonsai_net::{EdgeId, NodeId};
use std::cmp::Ordering;

/// Static routing for one destination prefix.
#[derive(Clone, Debug)]
pub struct StaticProtocol {
    /// `on_edge[e]` is true when the edge's source device has a static
    /// route for the destination out of the edge's egress interface.
    on_edge: Vec<bool>,
}

impl StaticProtocol {
    /// Extracts static-route facts for a destination from a network.
    pub fn from_network(network: &NetworkConfig, topo: &BuiltTopology, dest: Prefix) -> Self {
        let on_edge = topo
            .graph
            .edges()
            .map(|e| Self::edge_fact(network, topo, e, dest))
            .collect();
        StaticProtocol { on_edge }
    }

    /// True if the source of `e` has a matching static route out of `e`.
    ///
    /// A static route matches when its prefix covers the destination and is
    /// the device's *longest* such match (so `ip route 0.0.0.0/0` loses to
    /// a more specific route out of a different interface).
    pub fn edge_fact(
        network: &NetworkConfig,
        topo: &BuiltTopology,
        e: EdgeId,
        dest: Prefix,
    ) -> bool {
        let u = topo.graph.source(e);
        let device = &network.devices[u.index()];
        let Some(best) = device
            .static_routes
            .iter()
            .filter(|r| r.prefix.contains(dest))
            .max_by_key(|r| r.prefix.len())
            .map(|r| r.prefix.len())
        else {
            return false;
        };
        let egress = &device.interfaces[topo.egress(e)].name;
        device
            .static_routes
            .iter()
            .any(|r| r.prefix.contains(dest) && r.prefix.len() == best && r.iface == *egress)
    }

    /// True if the edge carries a static route.
    pub fn on_edge(&self, e: EdgeId) -> bool {
        self.on_edge[e.index()]
    }
}

impl Protocol for StaticProtocol {
    type Attr = ();

    fn origin(&self, _: NodeId) {}

    fn compare(&self, _: &(), _: &()) -> Option<Ordering> {
        // The comparison relation is empty; all attributes are ≈.
        Some(Ordering::Equal)
    }

    fn transfer(&self, e: EdgeId, _a: Option<&()>) -> Option<()> {
        // Spontaneous: ignores the neighbor's label entirely.
        self.on_edge[e.index()].then_some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Srp;
    use crate::solver::solve;
    use bonsai_config::{DeviceConfig, Interface, Link, NetworkConfig, StaticRoute};
    use bonsai_net::NodeId;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// Figure 6: a — b1 — b2 — d; a and b2 have static routes toward d,
    /// b1 does not. Labels: a=true, b1=⊥, b2=true.
    fn figure6() -> (NetworkConfig, BuiltTopology) {
        let mut net = NetworkConfig::default();
        for name in ["a", "b1", "b2", "d"] {
            let mut dv = DeviceConfig::new(name);
            dv.interfaces.push(Interface::named("left"));
            dv.interfaces.push(Interface::named("right"));
            net.devices.push(dv);
        }
        net.links.push(Link::new(("a", "right"), ("b1", "left")));
        net.links.push(Link::new(("b1", "right"), ("b2", "left")));
        net.links.push(Link::new(("b2", "right"), ("d", "left")));
        // a: static route toward b1 (pointing at d's prefix)
        net.devices[0].static_routes.push(StaticRoute {
            prefix: p("10.0.0.0/24"),
            iface: "right".into(),
        });
        // b2: static route toward d
        net.devices[2].static_routes.push(StaticRoute {
            prefix: p("10.0.0.0/24"),
            iface: "right".into(),
        });
        let topo = BuiltTopology::build(&net).unwrap();
        (net, topo)
    }

    #[test]
    fn figure_6_labels() {
        let (net, topo) = figure6();
        let proto = StaticProtocol::from_network(&net, &topo, p("10.0.0.0/24"));
        let srp = Srp::new(&topo.graph, NodeId(3), proto);
        let sol = solve(&srp).unwrap();
        assert_eq!(sol.label(NodeId(0)), Some(&())); // a
        assert_eq!(sol.label(NodeId(1)), None); // b1: no static route
        assert_eq!(sol.label(NodeId(2)), Some(&())); // b2
                                                     // a forwards toward b1 even though b1 has no route (black hole
                                                     // potential — exactly what the theory must preserve).
        assert_eq!(topo.graph.target(sol.fwd(NodeId(0))[0]), NodeId(1));
    }

    #[test]
    fn longest_prefix_static_route_wins() {
        let mut net = NetworkConfig::default();
        for name in ["a", "b", "c"] {
            let mut dv = DeviceConfig::new(name);
            dv.interfaces.push(Interface::named("to_b"));
            dv.interfaces.push(Interface::named("to_c"));
            net.devices.push(dv);
        }
        net.links.push(Link::new(("a", "to_b"), ("b", "to_b")));
        net.links.push(Link::new(("a", "to_c"), ("c", "to_c")));
        // Default route via b, specific route via c.
        net.devices[0].static_routes.push(StaticRoute {
            prefix: Prefix::DEFAULT,
            iface: "to_b".into(),
        });
        net.devices[0].static_routes.push(StaticRoute {
            prefix: p("10.0.0.0/8"),
            iface: "to_c".into(),
        });
        let topo = BuiltTopology::build(&net).unwrap();
        let dest = p("10.1.0.0/16");
        let e_ab = topo.graph.find_edge(NodeId(0), NodeId(1)).unwrap();
        let e_ac = topo.graph.find_edge(NodeId(0), NodeId(2)).unwrap();
        assert!(!StaticProtocol::edge_fact(&net, &topo, e_ab, dest));
        assert!(StaticProtocol::edge_fact(&net, &topo, e_ac, dest));
        // For a destination outside 10/8 the default route applies.
        let other = p("192.168.0.0/16");
        assert!(StaticProtocol::edge_fact(&net, &topo, e_ab, other));
        assert!(!StaticProtocol::edge_fact(&net, &topo, e_ac, other));
    }

    #[test]
    fn static_loops_are_representable() {
        // a -> b and b -> a both configured statically: a forwarding loop.
        let mut net = NetworkConfig::default();
        for name in ["a", "b", "d"] {
            let mut dv = DeviceConfig::new(name);
            dv.interfaces.push(Interface::named("x"));
            dv.interfaces.push(Interface::named("y"));
            net.devices.push(dv);
        }
        net.links.push(Link::new(("a", "x"), ("b", "x")));
        net.links.push(Link::new(("b", "y"), ("d", "y")));
        net.devices[0].static_routes.push(StaticRoute {
            prefix: p("10.0.0.0/24"),
            iface: "x".into(),
        });
        net.devices[1].static_routes.push(StaticRoute {
            prefix: p("10.0.0.0/24"),
            iface: "x".into(), // b points BACK at a: loop
        });
        let topo = BuiltTopology::build(&net).unwrap();
        let proto = StaticProtocol::from_network(&net, &topo, p("10.0.0.0/24"));
        let srp = Srp::new(&topo.graph, NodeId(2), proto);
        let sol = solve(&srp).unwrap();
        // Both a and b have routes; b forwards to a, a to b.
        assert_eq!(topo.graph.target(sol.fwd(NodeId(0))[0]), NodeId(1));
        assert_eq!(topo.graph.target(sol.fwd(NodeId(1))[0]), NodeId(0));
    }
}
