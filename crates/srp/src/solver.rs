//! Fixpoint solver for SRP instances: the control-plane simulator.
//!
//! The solver mimics the asynchronous message passing of a real control
//! plane: nodes are *activated* one at a time; an activated node recomputes
//! its best choice from its neighbors' current labels and, if its label
//! changes, schedules its in-neighbors for re-activation. A fixpoint of
//! this process is by construction a stable solution (every node holds a
//! ≺-minimal available choice).
//!
//! Because SRPs may have **multiple** stable solutions (paper §3.1 and the
//! Figure 2 gadget), the activation order matters: different orders can
//! land in different solutions, exactly like different message timings in
//! a real network. [`solve_with_order`] exposes the order so callers can
//! explore several solutions; [`solve`] uses the natural node order.
//!
//! BGP-like protocols can also *diverge* (oscillate forever — the "bad
//! gadget" of Griffin et al.). The solver bounds the number of label
//! updates and reports [`SolveError::Diverged`] when the bound is hit.
//!
//! Every entry point has a `_masked` variant taking an optional
//! [`FailureMask`]: the fixpoint is then computed on the instance with the
//! masked edges removed, which is how the failure-scenario subsystem
//! re-solves one instance under thousands of link-failure combinations
//! without cloning it.
//!
//! [`solve_warm_masked`] goes one step further: instead of restarting from
//! ⊥, it **repairs** a failure-free fixpoint after edge deletion. Labels
//! whose forwarding chain to an origin survives the mask are provably still
//! stable (removing edges only shrinks choice sets); everything downstream
//! of the failed links is invalidated to ⊥ and the worklist re-runs from
//! exactly that region. On scenario sweeps this turns each solve from
//! O(network) propagation into O(affected region) propagation, and the
//! resulting labeling is validated by the same stability check as a cold
//! solve — a warm solution is never trusted, only reached faster.

use crate::model::{Protocol, Solution, Srp};
use bonsai_net::{FailureMask, NodeId};
use std::collections::VecDeque;
use std::fmt;

/// Solver configuration.
#[derive(Clone, Copy, Debug)]
pub struct SolverOptions {
    /// The solver aborts after `update_factor * (V + E)` label updates.
    pub update_factor: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions { update_factor: 64 }
    }
}

/// Why the solver failed to produce a solution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// The update budget was exhausted: the instance oscillates (or is far
    /// larger than the budget assumes).
    Diverged {
        /// Number of label updates performed before giving up.
        updates: usize,
    },
    /// The computed fixpoint failed the stability check — indicates a bug
    /// in a [`Protocol`] implementation (e.g. a non-antisymmetric compare).
    Internal(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Diverged { updates } => {
                write!(f, "control plane diverged after {updates} updates")
            }
            SolveError::Internal(msg) => write!(f, "internal solver error: {msg}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Statistics of one solver run. Label updates are a deterministic
/// machine-independent cost measure — the warm-start assertions compare
/// them instead of noisy wall-clock time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Label updates performed until the fixpoint.
    pub updates: usize,
}

/// Solves the SRP with nodes initially activated in natural id order.
pub fn solve<P: Protocol>(srp: &Srp<'_, P>) -> Result<Solution<P::Attr>, SolveError> {
    let order: Vec<NodeId> = srp.graph.nodes().collect();
    solve_with_order(srp, &order, SolverOptions::default())
}

/// Solves the SRP with a set of failed edges removed, activating nodes in
/// natural id order. The instance itself is untouched — the mask only
/// filters which edges offer choices.
pub fn solve_masked<P: Protocol>(
    srp: &Srp<'_, P>,
    mask: Option<&FailureMask>,
) -> Result<Solution<P::Attr>, SolveError> {
    let order: Vec<NodeId> = srp.graph.nodes().collect();
    solve_with_order_masked(srp, &order, SolverOptions::default(), mask)
}

/// Solves the SRP, activating nodes initially in the given order.
///
/// The order is a permutation of the nodes (checked). Different orders may
/// yield different (all stable) solutions when the instance has several.
pub fn solve_with_order<P: Protocol>(
    srp: &Srp<'_, P>,
    order: &[NodeId],
    options: SolverOptions,
) -> Result<Solution<P::Attr>, SolveError> {
    solve_with_order_masked(srp, order, options, None)
}

/// [`solve_with_order`] with a link-failure mask threaded through: the
/// fixpoint is computed, and its stability validated, on the instance with
/// the masked edges removed. `None` (or an empty mask) is the failure-free
/// solve; the `Srp` is shared by reference across any number of scenario
/// solves.
pub fn solve_with_order_masked<P: Protocol>(
    srp: &Srp<'_, P>,
    order: &[NodeId],
    options: SolverOptions,
    mask: Option<&FailureMask>,
) -> Result<Solution<P::Attr>, SolveError> {
    solve_with_order_masked_stats(srp, order, options, mask).map(|(s, _)| s)
}

/// [`solve_with_order_masked`] additionally reporting [`SolveStats`].
pub fn solve_with_order_masked_stats<P: Protocol>(
    srp: &Srp<'_, P>,
    order: &[NodeId],
    options: SolverOptions,
    mask: Option<&FailureMask>,
) -> Result<(Solution<P::Attr>, SolveStats), SolveError> {
    let n = srp.graph.node_count();
    assert_eq!(order.len(), n, "activation order must cover every node");

    let mut labels: Vec<Option<P::Attr>> = vec![None; n];
    for &o in &srp.origins {
        labels[o.index()] = Some(srp.protocol.origin(o));
    }

    let seeds: Vec<NodeId> = order
        .iter()
        .copied()
        .filter(|&u| !srp.is_origin(u))
        .collect();
    let mut touched = vec![false; n];
    let updates = propagate(srp, &mut labels, &seeds, options, mask, &mut touched)?;
    let solution = srp
        .solution_from_labels_masked(labels, mask)
        .map_err(SolveError::Internal)?;
    Ok((solution, SolveStats { updates }))
}

/// Solves the masked instance from an explicit initial labeling — the
/// **solution-transport** warm start of the per-scenario sweep engine.
///
/// `initial` is a *guess*, typically the base abstract network's
/// failure-free fixpoint transported through a partition-refinement map
/// onto a refined abstract network: near the fixpoint when the refinement
/// is local, but carrying no guarantees whatsoever. Origins are pinned to
/// their protocol origin labels (the guess is ignored there), **every**
/// non-origin node is seeded for re-examination, and the result passes the
/// same full stability validation as a cold solve — a bad guess can only
/// cost updates, never correctness. With a good guess most activations
/// confirm the label without an update, which is the measurable win
/// ([`SolveStats::updates`]).
///
/// A pathological guess can make the worklist leapfrog stale labels until
/// the update budget dies ([`SolveError::Diverged`]) where a cold order
/// would have converged — callers treat that as "guess wasted" and fall
/// back to a cold solve, exactly like [`solve_warm_masked`] divergence.
pub fn solve_seeded_masked<P: Protocol>(
    srp: &Srp<'_, P>,
    initial: Vec<Option<P::Attr>>,
    options: SolverOptions,
    mask: Option<&FailureMask>,
) -> Result<(Solution<P::Attr>, SolveStats), SolveError> {
    let n = srp.graph.node_count();
    assert_eq!(initial.len(), n, "initial labeling must cover every node");
    let mut labels = initial;
    for &o in &srp.origins {
        labels[o.index()] = Some(srp.protocol.origin(o));
    }

    let seeds: Vec<NodeId> = srp.graph.nodes().filter(|&u| !srp.is_origin(u)).collect();
    let mut touched = vec![false; n];
    let updates = propagate(srp, &mut labels, &seeds, options, mask, &mut touched)?;
    let solution = srp
        .solution_from_labels_masked(labels, mask)
        .map_err(SolveError::Internal)?;
    Ok((solution, SolveStats { updates }))
}

/// Repairs a failure-free fixpoint after edge deletion instead of
/// restarting from ⊥.
///
/// `base` must be a stable solution of the *unmasked* instance (typically
/// the failure-free fixpoint, computed once per sweep). Nodes whose
/// forwarding chain to an origin survives the mask keep their labels —
/// masking only removes choices, so a label that is still offered along an
/// intact chain remains ≺-minimal. Every other routed node is invalidated
/// to ⊥, and the worklist re-runs from the invalidated region (plus its
/// predecessors and the failed-edge sources, whose choice sets changed).
///
/// The repaired region passes through the same per-node stability
/// validation as a cold solve; nodes the repair never touched keep inputs
/// identical to the already-validated base solution, so their constraints
/// (and forwarding sets) carry over unchanged — that is what makes the
/// warm solve O(affected region) end to end. Warm-starting can never
/// produce a wrong solution — at worst it diverges
/// ([`SolveError::Diverged`]) where a cold order would have converged, and
/// the caller falls back to [`solve_masked`].
pub fn solve_warm_masked<P: Protocol>(
    srp: &Srp<'_, P>,
    base: &Solution<P::Attr>,
    options: SolverOptions,
    mask: &FailureMask,
) -> Result<Solution<P::Attr>, SolveError> {
    let n = srp.graph.node_count();
    assert_eq!(base.labels.len(), n, "base solution must cover every node");
    let mut labels = base.labels.clone();

    // A node is *safe* when some forwarding chain of the base solution
    // reaches an origin without crossing a disabled edge: origins by
    // definition, and any node with an enabled fwd edge into a safe node.
    // Computed by reverse BFS over the base forwarding relation.
    let mut safe = vec![false; n];
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    for &o in &srp.origins {
        if !safe[o.index()] {
            safe[o.index()] = true;
            queue.push_back(o);
        }
    }
    // Reverse forwarding adjacency: fwd_preds[v] = nodes forwarding into v
    // across an enabled edge.
    let mut fwd_preds: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for u in srp.graph.nodes() {
        for &e in base.fwd(u) {
            if !mask.is_disabled(e) {
                fwd_preds[srp.graph.target(e).index()].push(u);
            }
        }
    }
    while let Some(v) = queue.pop_front() {
        for &u in &fwd_preds[v.index()] {
            if !safe[u.index()] {
                safe[u.index()] = true;
                queue.push_back(u);
            }
        }
    }

    // Invalidate everything downstream of the failures; seed the worklist
    // with the invalidated region, its predecessors, and the sources of
    // disabled edges (their choice sets shrank even when they stay safe).
    let mut seed_set = vec![false; n];
    for u in srp.graph.nodes() {
        if !safe[u.index()] && !srp.is_origin(u) && labels[u.index()].is_some() {
            labels[u.index()] = None;
            seed_set[u.index()] = true;
            for w in srp.graph.predecessors(u) {
                seed_set[w.index()] = true;
            }
        }
    }
    for e in mask.iter_disabled() {
        if e.index() < srp.graph.edge_count() {
            seed_set[srp.graph.source(e).index()] = true;
        }
    }
    let seeds: Vec<NodeId> = srp
        .graph
        .nodes()
        .filter(|&u| seed_set[u.index()] && !srp.is_origin(u))
        .collect();

    let mut touched = seed_set;
    propagate(srp, &mut labels, &seeds, options, Some(mask), &mut touched)?;

    // Finish incrementally: only nodes whose inputs could have changed —
    // the touched region — get their forwarding recomputed and their
    // stability constraint rechecked. Everything else carries over from
    // the validated base verbatim.
    let mut fwd = base.fwd.clone();
    for u in srp.graph.nodes() {
        if touched[u.index()] {
            srp.check_node_stable_masked(&labels, u, Some(mask))
                .map_err(SolveError::Internal)?;
            fwd[u.index()] = srp.node_forwarding_masked(&labels, u, Some(mask));
        }
    }
    Ok(Solution { labels, fwd })
}

/// The shared worklist loop: activates the seeds (in order), recomputes
/// each popped node's best choice, and propagates label changes to
/// predecessors until a fixpoint. Every node that is (re-)examined or
/// enqueued is marked in `touched`; callers validate at least that region.
/// Returns the number of label updates performed.
fn propagate<P: Protocol>(
    srp: &Srp<'_, P>,
    labels: &mut [Option<P::Attr>],
    seeds: &[NodeId],
    options: SolverOptions,
    mask: Option<&FailureMask>,
    touched: &mut [bool],
) -> Result<usize, SolveError> {
    let n = srp.graph.node_count();
    let mut queue: VecDeque<NodeId> = VecDeque::with_capacity(seeds.len().max(4) * 2);
    let mut queued = vec![false; n];
    for &u in seeds {
        debug_assert!(!srp.is_origin(u), "origins are pinned, never activated");
        if !queued[u.index()] {
            queue.push_back(u);
            queued[u.index()] = true;
            touched[u.index()] = true;
        }
    }

    let budget = options
        .update_factor
        .saturating_mul(n + srp.graph.edge_count())
        .max(1024);
    let mut updates = 0usize;

    while let Some(u) = queue.pop_front() {
        queued[u.index()] = false;
        let choices = srp.choices_masked(labels, u, mask);
        let new_label = if choices.is_empty() {
            None
        } else {
            let best = srp.pick_minimal(&choices);
            // Keep the current label if it is still among the ≈-minimal
            // choices: real routers do not churn between equally good
            // routes, and this makes fixpoints sticky (helps convergence).
            let keep = labels[u.index()].as_ref().and_then(|cur| {
                choices
                    .iter()
                    .find(|(_, a)| a == cur && srp.equally_good(a, &choices[best].1))
                    .map(|(_, a)| a.clone())
            });
            Some(keep.unwrap_or_else(|| choices[best].1.clone()))
        };
        if new_label != labels[u.index()] {
            labels[u.index()] = new_label;
            updates += 1;
            if updates > budget {
                return Err(SolveError::Diverged { updates });
            }
            for w in srp.graph.predecessors(u) {
                if !srp.is_origin(w) {
                    touched[w.index()] = true;
                    if !queued[w.index()] {
                        queued[w.index()] = true;
                        queue.push_back(w);
                    }
                }
            }
        }
    }
    Ok(updates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Protocol;
    use bonsai_net::{EdgeId, Graph, GraphBuilder};
    use std::cmp::Ordering;

    struct Hops;
    impl Protocol for Hops {
        type Attr = u32;
        fn origin(&self, _: NodeId) -> u32 {
            0
        }
        fn compare(&self, a: &u32, b: &u32) -> Option<Ordering> {
            Some(a.cmp(b))
        }
        fn transfer(&self, _e: EdgeId, a: Option<&u32>) -> Option<u32> {
            a.map(|x| x + 1)
        }
    }

    fn grid(width: usize, height: usize) -> Graph {
        let mut gb = GraphBuilder::new();
        let nodes: Vec<Vec<NodeId>> = (0..height)
            .map(|y| {
                (0..width)
                    .map(|x| gb.add_node(format!("g{x}_{y}")))
                    .collect()
            })
            .collect();
        for y in 0..height {
            for x in 0..width {
                if x + 1 < width {
                    gb.add_link(nodes[y][x], nodes[y][x + 1]);
                }
                if y + 1 < height {
                    gb.add_link(nodes[y][x], nodes[y + 1][x]);
                }
            }
        }
        gb.build()
    }

    #[test]
    fn shortest_paths_on_grid() {
        let g = grid(5, 4);
        let dest = NodeId(0);
        let srp = Srp::new(&g, dest, Hops);
        let sol = solve(&srp).unwrap();
        let bfs = g.bfs_distances(dest);
        for u in g.nodes() {
            assert_eq!(sol.label(u).copied(), bfs[u.index()]);
        }
        // Interior nodes with two equally short next hops multipath.
        let corner_opposite = NodeId((5 * 4 - 1) as u32);
        assert_eq!(sol.fwd(corner_opposite).len(), 2);
    }

    #[test]
    fn unreachable_nodes_get_bottom() {
        let mut gb = GraphBuilder::new();
        let a = gb.add_node("a");
        let b = gb.add_node("b");
        let c = gb.add_node("c"); // isolated
        gb.add_link(a, b);
        let _ = c;
        let g = gb.build();
        let srp = Srp::new(&g, NodeId(0), Hops);
        let sol = solve(&srp).unwrap();
        assert_eq!(sol.label(NodeId(1)).copied(), Some(1));
        assert_eq!(sol.label(NodeId(2)), None);
        assert!(sol.fwd(NodeId(2)).is_empty());
    }

    #[test]
    fn masked_solve_reroutes_around_failed_link() {
        // Diamond: d — {b1, b2} — a. Failing d—b1 pushes b1 onto the
        // 3-hop detour through a while b2 keeps its direct route.
        let mut gb = GraphBuilder::new();
        let d = gb.add_node("d");
        let b1 = gb.add_node("b1");
        let b2 = gb.add_node("b2");
        let a = gb.add_node("a");
        gb.add_link(d, b1);
        gb.add_link(d, b2);
        gb.add_link(a, b1);
        gb.add_link(a, b2);
        let g = gb.build();
        let srp = Srp::new(&g, d, Hops);

        let mut mask = bonsai_net::FailureMask::for_graph(&g);
        mask.disable_link(&g, d, b1);
        let sol = solve_masked(&srp, Some(&mask)).unwrap();
        assert_eq!(sol.label(b1).copied(), Some(3));
        assert_eq!(sol.label(b2).copied(), Some(1));
        assert_eq!(sol.label(a).copied(), Some(2));
        // b1 forwards only via a; the dead edge never appears in fwd.
        assert_eq!(sol.fwd(b1).len(), 1);
        assert_eq!(g.target(sol.fwd(b1)[0]), a);

        // The same instance still solves failure-free afterwards.
        let sol0 = solve(&srp).unwrap();
        assert_eq!(sol0.label(b1).copied(), Some(1));
    }

    #[test]
    fn masked_solve_partitions_network_to_bottom() {
        // Cutting a line graph strands the far side with ⊥ labels.
        let mut gb = GraphBuilder::new();
        let d = gb.add_node("d");
        let m = gb.add_node("m");
        let f = gb.add_node("f");
        gb.add_link(d, m);
        gb.add_link(m, f);
        let g = gb.build();
        let srp = Srp::new(&g, d, Hops);
        let mut mask = bonsai_net::FailureMask::for_graph(&g);
        mask.disable_link(&g, d, m);
        let sol = solve_masked(&srp, Some(&mask)).unwrap();
        assert_eq!(sol.label(m), None);
        assert_eq!(sol.label(f), None);
        assert_eq!(sol.routed_count(), 1); // just the origin
    }

    #[test]
    fn order_is_validated() {
        let g = grid(2, 2);
        let srp = Srp::new(&g, NodeId(0), Hops);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            solve_with_order(&srp, &[NodeId(0)], SolverOptions::default())
        }));
        assert!(result.is_err());
    }

    #[test]
    fn warm_solve_matches_cold_solve_on_diamond() {
        let mut gb = GraphBuilder::new();
        let d = gb.add_node("d");
        let b1 = gb.add_node("b1");
        let b2 = gb.add_node("b2");
        let a = gb.add_node("a");
        gb.add_link(d, b1);
        gb.add_link(d, b2);
        gb.add_link(a, b1);
        gb.add_link(a, b2);
        let g = gb.build();
        let srp = Srp::new(&g, d, Hops);
        let base = solve(&srp).unwrap();

        let mut mask = bonsai_net::FailureMask::for_graph(&g);
        mask.disable_link(&g, d, b1);
        let warm = solve_warm_masked(&srp, &base, SolverOptions::default(), &mask).unwrap();
        let cold = solve_masked(&srp, Some(&mask)).unwrap();
        assert_eq!(warm.labels, cold.labels);
        assert_eq!(warm.fwd, cold.fwd);
    }

    /// Warm-starting must not count to infinity: cutting a line graph
    /// invalidates the stranded side down to ⊥ instead of leapfrogging
    /// stale labels upward until the budget dies.
    #[test]
    fn warm_solve_handles_partition_without_divergence() {
        let mut gb = GraphBuilder::new();
        let d = gb.add_node("d");
        let m = gb.add_node("m");
        let f = gb.add_node("f");
        gb.add_link(d, m);
        gb.add_link(m, f);
        let g = gb.build();
        let srp = Srp::new(&g, d, Hops);
        let base = solve(&srp).unwrap();

        let mut mask = bonsai_net::FailureMask::for_graph(&g);
        mask.disable_link(&g, d, m);
        let warm = solve_warm_masked(&srp, &base, SolverOptions::default(), &mask).unwrap();
        assert_eq!(warm.label(m), None);
        assert_eq!(warm.label(f), None);
        assert_eq!(warm.routed_count(), 1);
    }

    /// A failure that carried no traffic leaves the base fixpoint intact:
    /// the warm solve touches nothing and returns the base labeling.
    #[test]
    fn warm_solve_is_noop_off_the_forwarding_paths() {
        let g = grid(4, 3);
        let srp = Srp::new(&g, NodeId(0), Hops);
        let base = solve(&srp).unwrap();
        // The far-corner link only ever carries traffic *toward* the
        // origin; failing it still leaves every node a shortest path.
        let far = NodeId((4 * 3 - 1) as u32);
        let near_far = NodeId((4 * 3 - 2) as u32);
        let mut mask = bonsai_net::FailureMask::for_graph(&g);
        mask.disable_link(&g, far, near_far);
        let warm = solve_warm_masked(&srp, &base, SolverOptions::default(), &mask).unwrap();
        let cold = solve_masked(&srp, Some(&mask)).unwrap();
        assert_eq!(warm.labels, cold.labels);
        // Labels are unchanged from the base (the detour is equally long).
        assert_eq!(warm.labels, base.labels);
    }

    /// A protocol with no stable solution on a cycle: it prefers *longer*
    /// paths, so two adjacent nodes keep leapfrogging each other's labels
    /// forever (a minimal stand-in for Griffin's "bad gadget").
    struct Greedy;
    impl Protocol for Greedy {
        type Attr = u32;
        fn origin(&self, _: NodeId) -> u32 {
            0
        }
        fn compare(&self, a: &u32, b: &u32) -> Option<Ordering> {
            Some(b.cmp(a)) // larger is better
        }
        fn transfer(&self, _e: EdgeId, a: Option<&u32>) -> Option<u32> {
            a.map(|x| x + 1)
        }
    }

    #[test]
    fn divergent_instance_reports_divergence() {
        // d — a — b: `a` prefers the ever-growing offer through `b`, which
        // grows whenever `a` grows; labels increase without bound.
        let mut gb = GraphBuilder::new();
        let d = gb.add_node("d");
        let a = gb.add_node("a");
        let b = gb.add_node("b");
        gb.add_link(d, a);
        gb.add_link(a, b);
        let g = gb.build();
        let srp = Srp::new(&g, d, Greedy);
        match solve(&srp) {
            Err(SolveError::Diverged { updates }) => assert!(updates > 0),
            other => panic!("expected divergence, got {other:?}"),
        }
    }
}
