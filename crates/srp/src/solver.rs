//! Fixpoint solver for SRP instances: the control-plane simulator.
//!
//! The solver mimics the asynchronous message passing of a real control
//! plane: nodes are *activated* one at a time; an activated node recomputes
//! its best choice from its neighbors' current labels and, if its label
//! changes, schedules its in-neighbors for re-activation. A fixpoint of
//! this process is by construction a stable solution (every node holds a
//! ≺-minimal available choice).
//!
//! Because SRPs may have **multiple** stable solutions (paper §3.1 and the
//! Figure 2 gadget), the activation order matters: different orders can
//! land in different solutions, exactly like different message timings in
//! a real network. [`solve_with_order`] exposes the order so callers can
//! explore several solutions; [`solve`] uses the natural node order.
//!
//! BGP-like protocols can also *diverge* (oscillate forever — the "bad
//! gadget" of Griffin et al.). The solver bounds the number of label
//! updates and reports [`SolveError::Diverged`] when the bound is hit.
//!
//! Every entry point has a `_masked` variant taking an optional
//! [`FailureMask`]: the fixpoint is then computed on the instance with the
//! masked edges removed, which is how the failure-scenario subsystem
//! re-solves one instance under thousands of link-failure combinations
//! without cloning it.

use crate::model::{Protocol, Solution, Srp};
use bonsai_net::{FailureMask, NodeId};
use std::collections::VecDeque;
use std::fmt;

/// Solver configuration.
#[derive(Clone, Copy, Debug)]
pub struct SolverOptions {
    /// The solver aborts after `update_factor * (V + E)` label updates.
    pub update_factor: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions { update_factor: 64 }
    }
}

/// Why the solver failed to produce a solution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// The update budget was exhausted: the instance oscillates (or is far
    /// larger than the budget assumes).
    Diverged {
        /// Number of label updates performed before giving up.
        updates: usize,
    },
    /// The computed fixpoint failed the stability check — indicates a bug
    /// in a [`Protocol`] implementation (e.g. a non-antisymmetric compare).
    Internal(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Diverged { updates } => {
                write!(f, "control plane diverged after {updates} updates")
            }
            SolveError::Internal(msg) => write!(f, "internal solver error: {msg}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Solves the SRP with nodes initially activated in natural id order.
pub fn solve<P: Protocol>(srp: &Srp<'_, P>) -> Result<Solution<P::Attr>, SolveError> {
    let order: Vec<NodeId> = srp.graph.nodes().collect();
    solve_with_order(srp, &order, SolverOptions::default())
}

/// Solves the SRP with a set of failed edges removed, activating nodes in
/// natural id order. The instance itself is untouched — the mask only
/// filters which edges offer choices.
pub fn solve_masked<P: Protocol>(
    srp: &Srp<'_, P>,
    mask: Option<&FailureMask>,
) -> Result<Solution<P::Attr>, SolveError> {
    let order: Vec<NodeId> = srp.graph.nodes().collect();
    solve_with_order_masked(srp, &order, SolverOptions::default(), mask)
}

/// Solves the SRP, activating nodes initially in the given order.
///
/// The order is a permutation of the nodes (checked). Different orders may
/// yield different (all stable) solutions when the instance has several.
pub fn solve_with_order<P: Protocol>(
    srp: &Srp<'_, P>,
    order: &[NodeId],
    options: SolverOptions,
) -> Result<Solution<P::Attr>, SolveError> {
    solve_with_order_masked(srp, order, options, None)
}

/// [`solve_with_order`] with a link-failure mask threaded through: the
/// fixpoint is computed, and its stability validated, on the instance with
/// the masked edges removed. `None` (or an empty mask) is the failure-free
/// solve; the `Srp` is shared by reference across any number of scenario
/// solves.
pub fn solve_with_order_masked<P: Protocol>(
    srp: &Srp<'_, P>,
    order: &[NodeId],
    options: SolverOptions,
    mask: Option<&FailureMask>,
) -> Result<Solution<P::Attr>, SolveError> {
    let n = srp.graph.node_count();
    assert_eq!(order.len(), n, "activation order must cover every node");

    let mut labels: Vec<Option<P::Attr>> = vec![None; n];
    for &o in &srp.origins {
        labels[o.index()] = Some(srp.protocol.origin(o));
    }

    let mut queue: VecDeque<NodeId> = VecDeque::with_capacity(n * 2);
    let mut queued = vec![false; n];
    for &u in order {
        if !srp.is_origin(u) {
            queue.push_back(u);
            queued[u.index()] = true;
        }
    }

    let budget = options
        .update_factor
        .saturating_mul(n + srp.graph.edge_count())
        .max(1024);
    let mut updates = 0usize;

    while let Some(u) = queue.pop_front() {
        queued[u.index()] = false;
        let choices = srp.choices_masked(&labels, u, mask);
        let new_label = if choices.is_empty() {
            None
        } else {
            let best = srp.pick_minimal(&choices);
            // Keep the current label if it is still among the ≈-minimal
            // choices: real routers do not churn between equally good
            // routes, and this makes fixpoints sticky (helps convergence).
            let keep = labels[u.index()].as_ref().and_then(|cur| {
                choices
                    .iter()
                    .find(|(_, a)| a == cur && srp.equally_good(a, &choices[best].1))
                    .map(|(_, a)| a.clone())
            });
            Some(keep.unwrap_or_else(|| choices[best].1.clone()))
        };
        if new_label != labels[u.index()] {
            labels[u.index()] = new_label;
            updates += 1;
            if updates > budget {
                return Err(SolveError::Diverged { updates });
            }
            for w in srp.graph.predecessors(u) {
                if !srp.is_origin(w) && !queued[w.index()] {
                    queued[w.index()] = true;
                    queue.push_back(w);
                }
            }
        }
    }

    srp.solution_from_labels_masked(labels, mask)
        .map_err(SolveError::Internal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Protocol;
    use bonsai_net::{EdgeId, Graph, GraphBuilder};
    use std::cmp::Ordering;

    struct Hops;
    impl Protocol for Hops {
        type Attr = u32;
        fn origin(&self, _: NodeId) -> u32 {
            0
        }
        fn compare(&self, a: &u32, b: &u32) -> Option<Ordering> {
            Some(a.cmp(b))
        }
        fn transfer(&self, _e: EdgeId, a: Option<&u32>) -> Option<u32> {
            a.map(|x| x + 1)
        }
    }

    fn grid(width: usize, height: usize) -> Graph {
        let mut gb = GraphBuilder::new();
        let nodes: Vec<Vec<NodeId>> = (0..height)
            .map(|y| {
                (0..width)
                    .map(|x| gb.add_node(format!("g{x}_{y}")))
                    .collect()
            })
            .collect();
        for y in 0..height {
            for x in 0..width {
                if x + 1 < width {
                    gb.add_link(nodes[y][x], nodes[y][x + 1]);
                }
                if y + 1 < height {
                    gb.add_link(nodes[y][x], nodes[y + 1][x]);
                }
            }
        }
        gb.build()
    }

    #[test]
    fn shortest_paths_on_grid() {
        let g = grid(5, 4);
        let dest = NodeId(0);
        let srp = Srp::new(&g, dest, Hops);
        let sol = solve(&srp).unwrap();
        let bfs = g.bfs_distances(dest);
        for u in g.nodes() {
            assert_eq!(sol.label(u).copied(), bfs[u.index()]);
        }
        // Interior nodes with two equally short next hops multipath.
        let corner_opposite = NodeId((5 * 4 - 1) as u32);
        assert_eq!(sol.fwd(corner_opposite).len(), 2);
    }

    #[test]
    fn unreachable_nodes_get_bottom() {
        let mut gb = GraphBuilder::new();
        let a = gb.add_node("a");
        let b = gb.add_node("b");
        let c = gb.add_node("c"); // isolated
        gb.add_link(a, b);
        let _ = c;
        let g = gb.build();
        let srp = Srp::new(&g, NodeId(0), Hops);
        let sol = solve(&srp).unwrap();
        assert_eq!(sol.label(NodeId(1)).copied(), Some(1));
        assert_eq!(sol.label(NodeId(2)), None);
        assert!(sol.fwd(NodeId(2)).is_empty());
    }

    #[test]
    fn masked_solve_reroutes_around_failed_link() {
        // Diamond: d — {b1, b2} — a. Failing d—b1 pushes b1 onto the
        // 3-hop detour through a while b2 keeps its direct route.
        let mut gb = GraphBuilder::new();
        let d = gb.add_node("d");
        let b1 = gb.add_node("b1");
        let b2 = gb.add_node("b2");
        let a = gb.add_node("a");
        gb.add_link(d, b1);
        gb.add_link(d, b2);
        gb.add_link(a, b1);
        gb.add_link(a, b2);
        let g = gb.build();
        let srp = Srp::new(&g, d, Hops);

        let mut mask = bonsai_net::FailureMask::for_graph(&g);
        mask.disable_link(&g, d, b1);
        let sol = solve_masked(&srp, Some(&mask)).unwrap();
        assert_eq!(sol.label(b1).copied(), Some(3));
        assert_eq!(sol.label(b2).copied(), Some(1));
        assert_eq!(sol.label(a).copied(), Some(2));
        // b1 forwards only via a; the dead edge never appears in fwd.
        assert_eq!(sol.fwd(b1).len(), 1);
        assert_eq!(g.target(sol.fwd(b1)[0]), a);

        // The same instance still solves failure-free afterwards.
        let sol0 = solve(&srp).unwrap();
        assert_eq!(sol0.label(b1).copied(), Some(1));
    }

    #[test]
    fn masked_solve_partitions_network_to_bottom() {
        // Cutting a line graph strands the far side with ⊥ labels.
        let mut gb = GraphBuilder::new();
        let d = gb.add_node("d");
        let m = gb.add_node("m");
        let f = gb.add_node("f");
        gb.add_link(d, m);
        gb.add_link(m, f);
        let g = gb.build();
        let srp = Srp::new(&g, d, Hops);
        let mut mask = bonsai_net::FailureMask::for_graph(&g);
        mask.disable_link(&g, d, m);
        let sol = solve_masked(&srp, Some(&mask)).unwrap();
        assert_eq!(sol.label(m), None);
        assert_eq!(sol.label(f), None);
        assert_eq!(sol.routed_count(), 1); // just the origin
    }

    #[test]
    fn order_is_validated() {
        let g = grid(2, 2);
        let srp = Srp::new(&g, NodeId(0), Hops);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            solve_with_order(&srp, &[NodeId(0)], SolverOptions::default())
        }));
        assert!(result.is_err());
    }

    /// A protocol with no stable solution on a cycle: it prefers *longer*
    /// paths, so two adjacent nodes keep leapfrogging each other's labels
    /// forever (a minimal stand-in for Griffin's "bad gadget").
    struct Greedy;
    impl Protocol for Greedy {
        type Attr = u32;
        fn origin(&self, _: NodeId) -> u32 {
            0
        }
        fn compare(&self, a: &u32, b: &u32) -> Option<Ordering> {
            Some(b.cmp(a)) // larger is better
        }
        fn transfer(&self, _e: EdgeId, a: Option<&u32>) -> Option<u32> {
            a.map(|x| x + 1)
        }
    }

    #[test]
    fn divergent_instance_reports_divergence() {
        // d — a — b: `a` prefers the ever-growing offer through `b`, which
        // grows whenever `a` grows; labels increase without bound.
        let mut gb = GraphBuilder::new();
        let d = gb.add_node("d");
        let a = gb.add_node("a");
        let b = gb.add_node("b");
        gb.add_link(d, a);
        gb.add_link(a, b);
        let g = gb.build();
        let srp = Srp::new(&g, d, Greedy);
        match solve(&srp) {
            Err(SolveError::Diverged { updates }) => assert!(updates > 0),
            other => panic!("expected divergence, got {other:?}"),
        }
    }
}
