//! Integration tests for the multi-protocol RIB (admin distance,
//! redistribution) and the paper networks end to end.

use bonsai_config::{parse_network, BuiltTopology};
use bonsai_net::prefix::Prefix;
use bonsai_srp::instance::{EcDest, MultiProtocol, OriginProto, RibAttr};
use bonsai_srp::solver::solve;
use bonsai_srp::Srp;

fn p(s: &str) -> Prefix {
    s.parse().unwrap()
}

/// static > eBGP > OSPF by administrative distance.
#[test]
fn admin_distance_ordering() {
    // x originates 10.0.0.0/24 into both BGP and OSPF; y hears both and
    // additionally has a static route. The static route must win in y's
    // RIB; without it, eBGP (20) must beat OSPF (110).
    let net = parse_network(
        "
device x
interface i
 ip ospf area 0
router bgp 1
 network 10.0.0.0/24
 neighbor i remote-as external
router ospf
 network 10.0.0.0/24
end
device y
interface i
 ip ospf area 0
router bgp 2
 neighbor i remote-as external
router ospf
ip route 10.0.0.0/24 i
end
link x i y i
",
    )
    .unwrap();
    let topo = BuiltTopology::build(&net).unwrap();
    let x = topo.graph.node_by_name("x").unwrap();
    let y = topo.graph.node_by_name("y").unwrap();

    let ec = EcDest::new(p("10.0.0.0/24"), vec![(x, OriginProto::Bgp)]);
    let proto = MultiProtocol::build(&net, &topo, &ec);
    let srp = Srp::with_origins(&topo.graph, vec![x], proto);
    let sol = solve(&srp).unwrap();
    assert_eq!(sol.label(y), Some(&RibAttr::Static));

    // Remove the static route: eBGP wins over OSPF.
    let mut net2 = net.clone();
    net2.devices[1].static_routes.clear();
    let topo2 = BuiltTopology::build(&net2).unwrap();
    let proto2 = MultiProtocol::build(&net2, &topo2, &ec);
    let srp2 = Srp::with_origins(&topo2.graph, vec![x], proto2);
    let sol2 = solve(&srp2).unwrap();
    match sol2.label(y) {
        Some(RibAttr::Bgp(a)) => assert!(!a.from_ibgp),
        other => panic!("expected an eBGP route, got {other:?}"),
    }
}

/// Static routes redistributed into BGP propagate beyond the static hop.
#[test]
fn redistribute_static_into_bgp() {
    // z -- y -- x: y has a static route toward x for the prefix and
    // redistributes static into BGP; z must learn a BGP route via y.
    let net = parse_network(
        "
device x
interface i
end
device y
interface i
interface j
router bgp 2
 neighbor j remote-as external
 redistribute static
ip route 10.0.0.0/24 i
end
device z
interface j
router bgp 3
 neighbor j remote-as external
end
link x i y i
link y j z j
",
    )
    .unwrap();
    let topo = BuiltTopology::build(&net).unwrap();
    let y = topo.graph.node_by_name("y").unwrap();
    let z = topo.graph.node_by_name("z").unwrap();

    // The EC originates nowhere as BGP; the static route at y is the seed.
    // Model: y is the origin-like node via its static route. We pin x as
    // plain destination holder (the prefix lives behind x).
    let x = topo.graph.node_by_name("x").unwrap();
    let ec = EcDest::new(p("10.0.0.0/24"), vec![(x, OriginProto::Bgp)]);
    // x has no BGP, so nothing propagates from x itself; y's label must
    // come from its own static route, z's from y's redistribution.
    let proto = MultiProtocol::build(&net, &topo, &ec);
    let srp = Srp::with_origins(&topo.graph, vec![x], proto);
    let sol = solve(&srp).unwrap();
    assert_eq!(sol.label(y), Some(&RibAttr::Static));
    match sol.label(z) {
        Some(RibAttr::Bgp(a)) => {
            assert_eq!(a.path, vec![y]);
            assert_eq!(a.lp, 100);
        }
        other => panic!("expected a redistributed BGP route at z, got {other:?}"),
    }
    // z forwards to y.
    assert_eq!(topo.graph.target(sol.fwd(z)[0]), y);
}

/// OSPF routes flow between OSPF speakers while BGP speakers coexist.
#[test]
fn ospf_chain_through_multi_protocol() {
    let net = parse_network(
        "
device a
interface i
 ip ospf cost 2
 ip ospf area 0
router ospf
 network 10.0.0.0/24
end
device b
interface i
 ip ospf cost 2
 ip ospf area 0
interface j
 ip ospf cost 5
 ip ospf area 0
router ospf
end
device c
interface j
 ip ospf cost 5
 ip ospf area 0
router ospf
end
link a i b i
link b j c j
",
    )
    .unwrap();
    let topo = BuiltTopology::build(&net).unwrap();
    let a = topo.graph.node_by_name("a").unwrap();
    let b = topo.graph.node_by_name("b").unwrap();
    let c = topo.graph.node_by_name("c").unwrap();
    let ec = EcDest::new(p("10.0.0.0/24"), vec![(a, OriginProto::Ospf)]);
    let proto = MultiProtocol::build(&net, &topo, &ec);
    let srp = Srp::with_origins(&topo.graph, vec![a], proto);
    let sol = solve(&srp).unwrap();
    match sol.label(b) {
        Some(RibAttr::Ospf(o)) => assert_eq!(o.cost, 2),
        other => panic!("expected OSPF at b, got {other:?}"),
    }
    match sol.label(c) {
        Some(RibAttr::Ospf(o)) => assert_eq!(o.cost, 7),
        other => panic!("expected OSPF at c, got {other:?}"),
    }
}

/// The full Figure 2 gadget through the multi-protocol stack: stability and
/// the one-direct/two-indirect split must survive the RIB wrapper.
#[test]
fn figure2_gadget_via_multi_protocol() {
    let net = bonsai_srp::papernets::figure2_gadget();
    let topo = BuiltTopology::build(&net).unwrap();
    let d = topo.graph.node_by_name("d").unwrap();
    let ec = EcDest::new(
        p(bonsai_srp::papernets::DEST_PREFIX),
        vec![(d, OriginProto::Bgp)],
    );
    let proto = MultiProtocol::build(&net, &topo, &ec);
    let srp = Srp::with_origins(&topo.graph, vec![d], proto);
    let sol = solve(&srp).unwrap();
    let mut lp100 = 0;
    let mut lp200 = 0;
    for name in ["b1", "b2", "b3"] {
        let b = topo.graph.node_by_name(name).unwrap();
        match sol.label(b) {
            Some(RibAttr::Bgp(a)) if a.lp == 100 => lp100 += 1,
            Some(RibAttr::Bgp(a)) if a.lp == 200 => lp200 += 1,
            other => panic!("unexpected label at {name}: {other:?}"),
        }
    }
    assert_eq!((lp100, lp200), (1, 2));
}

/// Multi-origin (anycast) EC: both origins attract traffic.
#[test]
fn anycast_destination() {
    let net = parse_network(
        "
device o1
interface i
router bgp 1
 network 10.0.0.0/24
 neighbor i remote-as external
end
device m
interface i
interface j
router bgp 2
 neighbor i remote-as external
 neighbor j remote-as external
end
device o2
interface j
router bgp 3
 network 10.0.0.0/24
 neighbor j remote-as external
end
link o1 i m i
link m j o2 j
",
    )
    .unwrap();
    let topo = BuiltTopology::build(&net).unwrap();
    let o1 = topo.graph.node_by_name("o1").unwrap();
    let o2 = topo.graph.node_by_name("o2").unwrap();
    let m = topo.graph.node_by_name("m").unwrap();
    let ec = EcDest::new(
        p("10.0.0.0/24"),
        vec![(o1, OriginProto::Bgp), (o2, OriginProto::Bgp)],
    );
    let proto = MultiProtocol::build(&net, &topo, &ec);
    let srp = Srp::with_origins(&topo.graph, vec![o1, o2], proto);
    let sol = solve(&srp).unwrap();
    // m hears 1-hop routes from both origins: multipath.
    assert_eq!(sol.fwd(m).len(), 2);
}
