//! Property tests for the SRP solver: every produced solution satisfies
//! the local stability constraints, shortest-path protocols agree with
//! BFS/Dijkstra, and activation order never affects *values* for
//! deterministic protocols.

use bonsai_net::{EdgeId, Graph, GraphBuilder, NodeId};
use bonsai_srp::model::{Protocol, Srp};
use bonsai_srp::protocols::Rip;
use bonsai_srp::solver::{solve, solve_with_order, SolverOptions};
use proptest::prelude::*;
use std::cmp::Ordering;

/// Builds a connected random graph from a spanning-path plus chords.
fn build_graph(n: usize, chords: &[(u8, u8)]) -> Graph {
    let mut gb = GraphBuilder::new();
    let nodes = gb.add_nodes("r", n);
    for w in nodes.windows(2) {
        gb.add_link(w[0], w[1]);
    }
    for &(a, b) in chords {
        let a = nodes[a as usize % n];
        let b = nodes[b as usize % n];
        if a != b && !gb.has_edge(a, b) {
            gb.add_link(a, b);
        }
    }
    gb.build()
}

/// A weighted-cost protocol: edge id parity decides cost 1 or 3.
struct Weighted;
impl Protocol for Weighted {
    type Attr = u32;
    fn origin(&self, _: NodeId) -> u32 {
        0
    }
    fn compare(&self, a: &u32, b: &u32) -> Option<Ordering> {
        Some(a.cmp(b))
    }
    fn transfer(&self, e: EdgeId, a: Option<&u32>) -> Option<u32> {
        a.map(|x| x + if e.0 % 2 == 0 { 1 } else { 3 })
    }
}

proptest! {
    /// Hop-count solutions equal BFS distances, whatever the order.
    #[test]
    fn rip_matches_bfs(
        n in 2usize..12,
        chords in prop::collection::vec((any::<u8>(), any::<u8>()), 0..8),
        rot in any::<usize>(),
    ) {
        let g = build_graph(n, &chords);
        let dest = NodeId(0);
        let srp = Srp::new(&g, dest, Rip);
        let mut order: Vec<NodeId> = g.nodes().collect();
        order.rotate_left(rot % n);
        let sol = solve_with_order(&srp, &order, SolverOptions::default()).unwrap();
        let bfs = g.bfs_distances(dest);
        for u in g.nodes() {
            let expect = bfs[u.index()].filter(|&d| d < 16).map(|d| d as u8);
            prop_assert_eq!(sol.label(u).copied(), expect);
        }
    }

    /// Every solution the solver returns passes the independent stability
    /// checker (the defining constraints of Figure 4).
    #[test]
    fn solutions_are_stable(
        n in 2usize..12,
        chords in prop::collection::vec((any::<u8>(), any::<u8>()), 0..8),
    ) {
        let g = build_graph(n, &chords);
        let srp = Srp::new(&g, NodeId(0), Weighted);
        let sol = solve(&srp).unwrap();
        prop_assert!(srp.check_stable(&sol.labels).is_ok());
        // Forwarding edges all carry ≈-minimal attributes.
        for u in g.nodes() {
            for &e in sol.fwd(u) {
                prop_assert_eq!(g.source(e), u);
            }
        }
    }

    /// Deterministic protocols: label values are order-independent.
    #[test]
    fn weighted_labels_order_independent(
        n in 2usize..10,
        chords in prop::collection::vec((any::<u8>(), any::<u8>()), 0..6),
        rot in any::<usize>(),
    ) {
        let g = build_graph(n, &chords);
        let srp = Srp::new(&g, NodeId(0), Weighted);
        let base = solve(&srp).unwrap();
        let mut order: Vec<NodeId> = g.nodes().collect();
        order.rotate_left(rot % n);
        order.reverse();
        let other = solve_with_order(&srp, &order, SolverOptions::default()).unwrap();
        prop_assert_eq!(base.labels, other.labels);
    }
}
