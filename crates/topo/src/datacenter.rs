//! A multi-cluster Clos data center simulacrum (paper §8, Table 1(b)).
//!
//! The operational network the paper studies is proprietary; this
//! generator reproduces its published structure: ~197 routers "organized
//! into multiple clusters, each with a Clos-like topology", eBGP with
//! private AS numbers per router, "extensive use of route filters, ACLs,
//! and BGP communities", static routes, and — crucially — community tags
//! that are attached but never matched, which inflate the role count until
//! the unused-tag-stripping attribute abstraction collapses them
//! (112 → 26 roles; 8 more without static routes). Device-level noise is
//! seeded and deterministic.

use bonsai_config::{
    Acl, AclEntry, Action, BgpConfig, BgpNeighbor, Community, DeviceConfig, Interface, Link,
    MatchCond, NetworkConfig, PrefixList, PrefixListEntry, RouteMap, RouteMapClause, SetAction,
    StaticRoute,
};
use bonsai_net::prefix::{Ipv4Addr, Prefix};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Shape of the generated data center.
#[derive(Clone, Copy, Debug)]
pub struct DatacenterParams {
    /// Number of Clos clusters.
    pub clusters: usize,
    /// Aggregation routers per cluster.
    pub aggs_per_cluster: usize,
    /// Top-of-rack routers per cluster.
    pub tors_per_cluster: usize,
    /// Spine routers joining the clusters.
    pub spines: usize,
    /// Border routers above the spine.
    pub borders: usize,
    /// Prefixes (virtual networks) originated per ToR.
    pub prefixes_per_tor: usize,
    /// RNG seed for the per-device noise.
    pub seed: u64,
}

impl Default for DatacenterParams {
    /// The published shape: 197 routers, ~1269 destination classes.
    fn default() -> Self {
        DatacenterParams {
            clusters: 12,
            aggs_per_cluster: 4,
            tors_per_cluster: 12,
            spines: 4,
            borders: 1,
            prefixes_per_tor: 9,
            seed: 2018,
        }
    }
}

impl DatacenterParams {
    /// Total router count.
    pub fn node_count(&self) -> usize {
        self.clusters * (self.aggs_per_cluster + self.tors_per_cluster) + self.spines + self.borders
    }
}

fn cluster_community(c: usize, tier: u16) -> Community {
    Community::new(65000, (100 * tier) + c as u16)
}

/// Generates the data-center network.
pub fn datacenter(params: DatacenterParams) -> NetworkConfig {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut net = NetworkConfig::default();
    let mut asn = 64512u32; // private AS range

    let mut new_device = |net: &mut NetworkConfig, name: String| -> usize {
        let mut d = DeviceConfig::new(name);
        d.bgp = Some(BgpConfig::new(asn));
        asn += 1;
        // Uniform aggregate filter (route filters "to each destination").
        d.prefix_lists.push(PrefixList {
            name: "AGGREGATE".into(),
            entries: vec![PrefixListEntry {
                seq: 5,
                action: Action::Permit,
                prefix: "10.0.0.0/8".parse().unwrap(),
                ge: None,
                le: Some(32),
            }],
        });
        net.devices.push(d);
        net.devices.len() - 1
    };

    // Border and spine tiers.
    let borders: Vec<usize> = (0..params.borders)
        .map(|i| new_device(&mut net, format!("border{i}")))
        .collect();
    let spines: Vec<usize> = (0..params.spines)
        .map(|i| new_device(&mut net, format!("spine{i}")))
        .collect();
    for &b in &borders {
        // Border routers filter more aggressively: a deny list for a
        // carved-out service range plus the aggregate permit.
        net.devices[b].prefix_lists.push(PrefixList {
            name: "NO_SERVICES".into(),
            entries: vec![
                PrefixListEntry {
                    seq: 5,
                    action: Action::Deny,
                    prefix: "10.255.0.0/16".parse().unwrap(),
                    ge: None,
                    le: Some(32),
                },
                PrefixListEntry {
                    seq: 10,
                    action: Action::Permit,
                    prefix: "10.0.0.0/8".parse().unwrap(),
                    ge: None,
                    le: Some(32),
                },
            ],
        });
        net.devices[b].route_maps.push(RouteMap {
            name: "IMPORT".into(),
            clauses: vec![RouteMapClause {
                seq: 10,
                action: Action::Permit,
                matches: vec![MatchCond::PrefixList("NO_SERVICES".into())],
                sets: vec![],
            }],
        });
    }

    // Per-tier import maps attaching the (never matched) cluster tag.
    let make_import_map = |net: &mut NetworkConfig, dev: usize, tag: Community| {
        net.devices[dev].route_maps.push(RouteMap {
            name: "IMPORT".into(),
            clauses: vec![RouteMapClause {
                seq: 10,
                action: Action::Permit,
                matches: vec![MatchCond::PrefixList("AGGREGATE".into())],
                sets: vec![SetAction::AddCommunity(tag)],
            }],
        });
    };
    for (i, &s) in spines.iter().enumerate() {
        // Spines share one role: same tag for all.
        let _ = i;
        make_import_map(&mut net, s, Community::new(65000, 900));
    }

    let link = |net: &mut NetworkConfig, a: usize, b: usize| {
        let ia = format!("to_{}", net.devices[b].name);
        let ib = format!("to_{}", net.devices[a].name);
        net.devices[a].interfaces.push(Interface::named(ia.clone()));
        net.devices[b].interfaces.push(Interface::named(ib.clone()));
        for (dev, iface) in [(a, &ia), (b, &ib)] {
            let import = if net.devices[dev].route_map("IMPORT").is_some() {
                Some("IMPORT".to_string())
            } else {
                None
            };
            let bgp = net.devices[dev].bgp.as_mut().unwrap();
            bgp.neighbors.push(BgpNeighbor {
                iface: iface.clone(),
                import_policy: import,
                export_policy: None,
                ibgp: false,
            });
        }
        let (na, nb) = (net.devices[a].name.clone(), net.devices[b].name.clone());
        net.links.push(Link::new((na, ia), (nb, ib)));
    };

    // Spine–border.
    for &s in &spines {
        for &b in &borders {
            link(&mut net, s, b);
        }
    }

    // Clusters.
    for c in 0..params.clusters {
        let aggs: Vec<usize> = (0..params.aggs_per_cluster)
            .map(|i| {
                let d = new_device(&mut net, format!("c{c}_agg{i}"));
                make_import_map(&mut net, d, cluster_community(c, 1));
                d
            })
            .collect();
        let tors: Vec<usize> = (0..params.tors_per_cluster)
            .map(|i| {
                let d = new_device(&mut net, format!("c{c}_tor{i}"));
                make_import_map(&mut net, d, cluster_community(c, 2));
                d
            })
            .collect();

        for (t_idx, &t) in tors.iter().enumerate() {
            // Originated virtual networks (one EC each).
            for v in 0..params.prefixes_per_tor {
                let prefix = Prefix::new(
                    Ipv4Addr::new(
                        10,
                        (1 + c) as u8,
                        (t_idx * params.prefixes_per_tor + v) as u8,
                        0,
                    ),
                    24,
                );
                net.devices[t].bgp.as_mut().unwrap().networks.push(prefix);
            }

            // Static-route noise: most ToRs carry a static route toward
            // a server subnet; the subnet flavor varies — the paper's
            // dominant source of extra roles ("most of the differences
            // are due to differences in static routes").
            net.devices[t].interfaces.push(Interface::named("mgmt"));
            let variant = rng.gen_range(0..9u8);
            if variant > 0 {
                net.devices[t].static_routes.push(StaticRoute {
                    prefix: Prefix::new(Ipv4Addr::new(10, 201, variant, 0), 24),
                    iface: "mgmt".into(),
                });
            }

            // ACL noise: some ToRs guard one of two management ranges on
            // their first fabric interface.
            let acl_flavor = rng.gen_range(0..3u8);
            if acl_flavor > 0 {
                net.devices[t].acls.push(Acl {
                    name: "GUARD".into(),
                    entries: vec![
                        AclEntry {
                            action: Action::Deny,
                            prefix: Prefix::new(Ipv4Addr::new(10, 249 + acl_flavor, 0, 0), 16),
                        },
                        AclEntry {
                            action: Action::Permit,
                            prefix: Prefix::DEFAULT,
                        },
                    ],
                });
            }
        }

        // ToR–aggregation full bipartite.
        for &t in &tors {
            for &a in &aggs {
                link(&mut net, t, a);
            }
        }
        // Aggregation–spine.
        for &a in &aggs {
            for &s in &spines {
                link(&mut net, a, s);
            }
        }
    }

    // Attach the GUARD ACL to the first fabric interface of devices that
    // carry it (done after linking so interfaces exist).
    for d in net.devices.iter_mut() {
        if d.acl("GUARD").is_some() {
            if let Some(iface) = d.interfaces.iter_mut().find(|i| i.name.starts_with("to_")) {
                iface.acl_in = Some("GUARD".into());
            }
        }
    }

    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_config::BuiltTopology;

    #[test]
    fn default_shape_matches_paper() {
        let params = DatacenterParams::default();
        assert_eq!(params.node_count(), 197);
        let net = datacenter(params);
        assert_eq!(net.devices.len(), 197);
        BuiltTopology::build(&net).unwrap();
        // ~1296 originated prefixes ≈ the paper's 1269 classes.
        let originated: usize = net
            .devices
            .iter()
            .map(|d| d.bgp.as_ref().map(|b| b.networks.len()).unwrap_or(0))
            .sum();
        assert_eq!(
            originated,
            params.clusters * params.tors_per_cluster * params.prefixes_per_tor
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = datacenter(DatacenterParams::default());
        let b = datacenter(DatacenterParams::default());
        assert_eq!(a, b);
        let c = datacenter(DatacenterParams {
            seed: 7,
            ..Default::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn unused_cluster_tags_are_never_matched() {
        let net = datacenter(DatacenterParams::default());
        for d in &net.devices {
            assert!(
                d.community_lists.is_empty(),
                "no community is ever matched in this network"
            );
        }
    }
}
