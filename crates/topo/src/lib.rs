//! # bonsai-topo
//!
//! Synthetic network generators for the paper's evaluation (§8):
//!
//! * [`fattree`] — Al-Fares fattrees running eBGP shortest-path routing
//!   (one private AS per router, one originated prefix per edge router),
//!   plus the Figure 11 policy variant where the aggregation tier prefers
//!   routing via the edge tier.
//! * [`ring`] / [`full_mesh`] — the other two Table 1(a) topologies.
//! * [`mod@datacenter`] — a multi-cluster Clos simulacrum of the paper's
//!   197-router operational data center: eBGP with private ASes, static
//!   routes, route filters, ACLs, and communities that are attached but
//!   never matched (the source of the 112 → 26 role collapse).
//! * [`mod@wan`] — a ~1086-device wide-area simulacrum mixing eBGP, iBGP,
//!   OSPF and static routing.
//!
//! Every generator returns a plain [`bonsai_config::NetworkConfig`]; nothing here knows
//! about compression, which keeps the benchmark inputs honest.
//!
//! [`mod@scenarios`] adds name-based helpers for the failure workload:
//! listing a topology's links by device name and building
//! [`bonsai_net::FailureMask`]s from name pairs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datacenter;
pub mod scenarios;
pub mod synthetic;
pub mod wan;

pub use datacenter::{datacenter, DatacenterParams};
pub use scenarios::{fail_links_by_name, link_by_names, named_links};
pub use synthetic::{fattree, full_mesh, ring, FattreePolicy};
pub use wan::{wan, WanParams};
