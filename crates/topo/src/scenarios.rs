//! Name-based failure-scenario helpers.
//!
//! The scenario engine in `bonsai-core` speaks [`NodeId`]s and
//! [`EdgeId`](bonsai_net::EdgeId)s; tests, examples and operators speak
//! device names. These helpers translate: build a [`FailureMask`] from
//! `("device_a", "device_b")` pairs, or list a built topology's links by
//! name to pick scenarios from.

use bonsai_config::BuiltTopology;
use bonsai_net::{FailureMask, NodeId};

/// The undirected links of a built topology as name pairs, in canonical
/// order (the same order as [`bonsai_net::Graph::links`]).
pub fn named_links(topo: &BuiltTopology) -> Vec<(String, String)> {
    topo.graph
        .links()
        .into_iter()
        .map(|(u, v)| {
            (
                topo.graph.name(u).to_string(),
                topo.graph.name(v).to_string(),
            )
        })
        .collect()
}

/// Resolves a device-name pair to the canonical node pair of the link
/// between them, or `None` if either name is unknown or the devices are
/// not adjacent.
pub fn link_by_names(topo: &BuiltTopology, a: &str, b: &str) -> Option<(NodeId, NodeId)> {
    let u = topo.graph.node_by_name(a)?;
    let v = topo.graph.node_by_name(b)?;
    if topo.graph.find_edge(u, v).is_none() && topo.graph.find_edge(v, u).is_none() {
        return None;
    }
    Some(if u <= v { (u, v) } else { (v, u) })
}

/// Builds a failure mask disabling the named links (both directions each).
///
/// # Panics
///
/// Panics if a pair names an unknown device or a non-adjacent pair —
/// failing to fail the link you asked for must not silently audit a
/// different scenario.
pub fn fail_links_by_name(topo: &BuiltTopology, pairs: &[(&str, &str)]) -> FailureMask {
    let mut mask = FailureMask::for_graph(&topo.graph);
    for &(a, b) in pairs {
        let (u, v) = link_by_names(topo, a, b)
            .unwrap_or_else(|| panic!("no link {a} — {b} in the topology"));
        mask.disable_link(&topo.graph, u, v);
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fattree, FattreePolicy};

    #[test]
    fn named_links_roundtrip() {
        let net = fattree(4, FattreePolicy::ShortestPath);
        let topo = BuiltTopology::build(&net).unwrap();
        let links = named_links(&topo);
        assert_eq!(links.len(), topo.graph.link_count());
        for (a, b) in &links {
            assert!(link_by_names(&topo, a, b).is_some());
            // Symmetric lookup resolves to the same canonical pair.
            assert_eq!(link_by_names(&topo, a, b), link_by_names(&topo, b, a));
        }
    }

    #[test]
    fn mask_from_names_disables_both_directions() {
        let net = fattree(4, FattreePolicy::ShortestPath);
        let topo = BuiltTopology::build(&net).unwrap();
        let (a, b) = named_links(&topo)[0].clone();
        let mask = fail_links_by_name(&topo, &[(&a, &b)]);
        assert_eq!(mask.disabled_count(), 2);
    }

    #[test]
    fn unknown_pair_is_none() {
        let net = fattree(4, FattreePolicy::ShortestPath);
        let topo = BuiltTopology::build(&net).unwrap();
        assert!(link_by_names(&topo, "nope", "nada").is_none());
    }

    #[test]
    #[should_panic(expected = "no link")]
    fn failing_a_missing_link_panics() {
        let net = fattree(4, FattreePolicy::ShortestPath);
        let topo = BuiltTopology::build(&net).unwrap();
        fail_links_by_name(&topo, &[("nope", "nada")]);
    }
}
