//! The Table 1(a) topologies: fattree, ring, full mesh.
//!
//! All three run eBGP with one private AS per router (the data-center
//! style of RFC 7938 cited by the paper) and shortest-AS-path routing;
//! each "server-facing" router originates one /24. A uniform import
//! filter (permit the data-center aggregate, deny the rest) gives the BDD
//! pipeline real policy work without breaking symmetry — the paper's
//! "destination-based prefix filters".

use bonsai_config::{
    BgpConfig, BgpNeighbor, DeviceConfig, Interface, Link, NetworkConfig, PrefixList,
    PrefixListEntry, RouteMap, RouteMapClause, SetAction,
};
use bonsai_net::prefix::{Ipv4Addr, Prefix};

/// Routing policy of the fattree (Figure 11).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FattreePolicy {
    /// Plain shortest AS-path routing.
    ShortestPath,
    /// The aggregation tier prefers routes learned from the edge tier
    /// (local preference 200) — the Figure 11 variant whose abstraction
    /// must grow to capture the extra behaviors.
    PreferBottom,
}

/// The standard filter + (optionally) the prefer-bottom route map.
fn add_common_policy(device: &mut DeviceConfig, policy_needed: bool) {
    device.prefix_lists.push(PrefixList {
        name: "DC".into(),
        entries: vec![PrefixListEntry {
            seq: 5,
            action: bonsai_config::Action::Permit,
            prefix: "10.0.0.0/8".parse().unwrap(),
            ge: None,
            le: Some(32),
        }],
    });
    device.route_maps.push(RouteMap {
        name: "FILTER".into(),
        clauses: vec![RouteMapClause {
            seq: 10,
            action: bonsai_config::Action::Permit,
            matches: vec![bonsai_config::MatchCond::PrefixList("DC".into())],
            sets: vec![],
        }],
    });
    if policy_needed {
        device.route_maps.push(RouteMap {
            name: "PREFER_DOWN".into(),
            clauses: vec![RouteMapClause {
                seq: 10,
                action: bonsai_config::Action::Permit,
                matches: vec![bonsai_config::MatchCond::PrefixList("DC".into())],
                sets: vec![SetAction::LocalPref(200)],
            }],
        });
    }
}

fn bgp_node(name: &str, asn: u32) -> DeviceConfig {
    let mut d = DeviceConfig::new(name);
    d.bgp = Some(BgpConfig::new(asn));
    d
}

/// Connects two devices, creating the interfaces and neighbor sessions.
fn connect(
    net: &mut NetworkConfig,
    a: usize,
    b: usize,
    import_a: Option<&str>,
    import_b: Option<&str>,
) {
    let ia = format!("to_{}", net.devices[b].name);
    let ib = format!("to_{}", net.devices[a].name);
    net.devices[a].interfaces.push(Interface::named(ia.clone()));
    net.devices[b].interfaces.push(Interface::named(ib.clone()));
    let (na, nb) = (net.devices[a].name.clone(), net.devices[b].name.clone());
    for (dev, iface, import) in [(a, &ia, import_a), (b, &ib, import_b)] {
        let bgp = net.devices[dev].bgp.as_mut().expect("bgp configured");
        bgp.neighbors.push(BgpNeighbor {
            iface: iface.clone(),
            import_policy: Some(import.unwrap_or("FILTER").to_string()),
            export_policy: None,
            ibgp: false,
        });
    }
    net.links.push(Link::new((na, ia), (nb, ib)));
}

/// An Al-Fares fattree with parameter `k` (k pods, `5k²/4` switches):
/// `k = 12, 20, 30` give the paper's 180-, 500- and 1125-node networks.
/// Each edge switch originates one /24, so there are `k²/2` destination
/// equivalence classes (the paper's 72 / 200 / 450).
///
/// # Panics
///
/// Panics if `k` is odd or zero.
pub fn fattree(k: usize, policy: FattreePolicy) -> NetworkConfig {
    assert!(k > 0 && k % 2 == 0, "fattree parameter must be even");
    let half = k / 2;
    let mut net = NetworkConfig::default();
    let mut asn = 1u32;
    let mut fresh_asn = || {
        let a = asn;
        asn += 1;
        a
    };

    // Core switches: (k/2)².
    let mut cores = Vec::new();
    for i in 0..half * half {
        let idx = net.devices.len();
        net.devices.push(bgp_node(&format!("core{i}"), fresh_asn()));
        add_common_policy(&mut net.devices[idx], false);
        cores.push(idx);
    }
    // Pods: k/2 aggregation + k/2 edge each.
    let mut aggs: Vec<Vec<usize>> = Vec::new();
    let mut edges: Vec<Vec<usize>> = Vec::new();
    for p in 0..k {
        let mut pod_aggs = Vec::new();
        let mut pod_edges = Vec::new();
        for i in 0..half {
            let idx = net.devices.len();
            net.devices
                .push(bgp_node(&format!("agg{p}_{i}"), fresh_asn()));
            add_common_policy(&mut net.devices[idx], policy == FattreePolicy::PreferBottom);
            pod_aggs.push(idx);
        }
        for i in 0..half {
            let idx = net.devices.len();
            net.devices
                .push(bgp_node(&format!("edge{p}_{i}"), fresh_asn()));
            add_common_policy(&mut net.devices[idx], false);
            let prefix = Prefix::new(Ipv4Addr::new(10, p as u8, i as u8, 0), 24);
            net.devices[idx].bgp.as_mut().unwrap().networks.push(prefix);
            pod_edges.push(idx);
        }
        aggs.push(pod_aggs);
        edges.push(pod_edges);
    }

    let agg_import = match policy {
        FattreePolicy::ShortestPath => None,
        FattreePolicy::PreferBottom => Some("PREFER_DOWN"),
    };

    for p in 0..k {
        // Edge–aggregation full bipartite within the pod. The aggregation
        // side uses the policy import on edge-facing sessions.
        for &e in &edges[p] {
            for &a in &aggs[p] {
                connect(&mut net, a, e, agg_import, None);
            }
        }
        // Aggregation–core: agg i of each pod connects to cores
        // i*(k/2) .. (i+1)*(k/2).
        for (i, &a) in aggs[p].iter().enumerate() {
            for j in 0..half {
                connect(&mut net, a, cores[i * half + j], None, None);
            }
        }
    }
    net
}

/// A ring of `n` routers, each its own AS, each originating one /24.
/// Compression must preserve path length, so the abstraction grows with
/// the diameter: `n/2 + 1` abstract nodes (the paper's 51 / 251 / 501).
pub fn ring(n: usize) -> NetworkConfig {
    assert!(n >= 3, "a ring needs at least 3 nodes");
    let mut net = NetworkConfig::default();
    for i in 0..n {
        let idx = net.devices.len();
        net.devices.push(bgp_node(&format!("r{i}"), i as u32 + 1));
        add_common_policy(&mut net.devices[idx], false);
        let prefix = Prefix::new(Ipv4Addr::new(10, (i / 256) as u8, (i % 256) as u8, 0), 24);
        net.devices[idx].bgp.as_mut().unwrap().networks.push(prefix);
    }
    for i in 0..n {
        connect(&mut net, i, (i + 1) % n, None, None);
    }
    net
}

/// A full mesh of `n` routers, each its own AS, each originating one /24.
/// Every non-destination router is one hop from the destination, so each
/// class compresses to 2 nodes and 1 link regardless of `n`.
pub fn full_mesh(n: usize) -> NetworkConfig {
    assert!(n >= 2);
    let mut net = NetworkConfig::default();
    for i in 0..n {
        let idx = net.devices.len();
        net.devices.push(bgp_node(&format!("m{i}"), i as u32 + 1));
        add_common_policy(&mut net.devices[idx], false);
        let prefix = Prefix::new(Ipv4Addr::new(10, (i / 256) as u8, (i % 256) as u8, 0), 24);
        net.devices[idx].bgp.as_mut().unwrap().networks.push(prefix);
    }
    for i in 0..n {
        for j in (i + 1)..n {
            connect(&mut net, i, j, None, None);
        }
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_config::BuiltTopology;

    #[test]
    fn fattree_sizes_match_paper() {
        for (k, nodes, ecs) in [(4usize, 20usize, 8usize), (12, 180, 72)] {
            let net = fattree(k, FattreePolicy::ShortestPath);
            assert_eq!(net.devices.len(), nodes, "k={k}");
            let originated: usize = net
                .devices
                .iter()
                .map(|d| d.bgp.as_ref().map(|b| b.networks.len()).unwrap_or(0))
                .sum();
            assert_eq!(originated, ecs, "k={k}");
            BuiltTopology::build(&net).unwrap();
        }
    }

    #[test]
    fn fattree_link_structure() {
        let k = 4;
        let net = fattree(k, FattreePolicy::ShortestPath);
        let topo = BuiltTopology::build(&net).unwrap();
        // k³/2 links: edge-agg (k * (k/2)²) + agg-core (k * (k/2)²).
        assert_eq!(topo.graph.link_count(), k * k * k / 2);
        // Every device runs BGP with a session per interface.
        for d in &net.devices {
            let bgp = d.bgp.as_ref().unwrap();
            assert_eq!(bgp.neighbors.len(), d.interfaces.len());
        }
    }

    #[test]
    fn prefer_bottom_adds_policy_to_aggs_only() {
        let net = fattree(4, FattreePolicy::PreferBottom);
        for d in &net.devices {
            let has_policy = d.route_map("PREFER_DOWN").is_some();
            assert_eq!(has_policy, d.name.starts_with("agg"), "{}", d.name);
        }
    }

    #[test]
    fn ring_and_mesh_shapes() {
        let r = ring(10);
        assert_eq!(r.devices.len(), 10);
        let rt = BuiltTopology::build(&r).unwrap();
        assert_eq!(rt.graph.link_count(), 10);

        let m = full_mesh(6);
        let mt = BuiltTopology::build(&m).unwrap();
        assert_eq!(mt.graph.link_count(), 15);
    }

    #[test]
    fn unique_prefixes_per_origin() {
        let net = fattree(8, FattreePolicy::ShortestPath);
        let mut seen = std::collections::BTreeSet::new();
        for d in &net.devices {
            if let Some(bgp) = &d.bgp {
                for p in &bgp.networks {
                    assert!(seen.insert(*p), "duplicate originated prefix {p}");
                }
            }
        }
    }
}
