//! A wide-area network simulacrum (paper §8, Table 1(b)).
//!
//! The paper's WAN has 1086 devices — "a mix of routers and switches" —
//! running "eBGP, iBGP, OSPF, and static routing" with "neighbor-specific,
//! prefix-based filters and ACLs" producing 137 roles. This generator
//! builds a two-level backbone with the same protocol mix: point-of-
//! presence (POP) sites, each with OSPF-and-iBGP core routers,
//! aggregation routers, and static/BGP access switches; POPs chain along
//! a backbone with eBGP between sites.

use bonsai_config::{
    Action, BgpConfig, BgpNeighbor, DeviceConfig, Interface, Link, MatchCond, NetworkConfig,
    OspfConfig, PrefixList, PrefixListEntry, RouteMap, RouteMapClause, StaticRoute,
};
use bonsai_net::prefix::{Ipv4Addr, Prefix};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Shape of the generated WAN.
#[derive(Clone, Copy, Debug)]
pub struct WanParams {
    /// Number of POP sites along the backbone.
    pub pops: usize,
    /// Core routers per POP (OSPF + iBGP among themselves).
    pub cores_per_pop: usize,
    /// Aggregation routers per POP.
    pub aggs_per_pop: usize,
    /// Access switches per POP (static routing upward).
    pub access_per_pop: usize,
    /// Prefixes originated per aggregation router.
    pub prefixes_per_agg: usize,
    /// Number of distinct neighbor-filter flavors across POPs (role noise).
    pub filter_flavors: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WanParams {
    /// ~1086 devices like the paper: 30 POPs × 36 devices + 6 backbone
    /// border routers.
    fn default() -> Self {
        WanParams {
            pops: 30,
            cores_per_pop: 2,
            aggs_per_pop: 4,
            access_per_pop: 29,
            prefixes_per_agg: 7,
            filter_flavors: 120,
            seed: 2018,
        }
    }
}

impl WanParams {
    /// Total device count.
    pub fn node_count(&self) -> usize {
        self.pops * (self.cores_per_pop + self.aggs_per_pop + self.access_per_pop)
            + (self.pops + self.pops / 5).max(2)
    }
}

/// Generates the WAN.
pub fn wan(params: WanParams) -> NetworkConfig {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut net = NetworkConfig::default();

    let aggregate = PrefixList {
        name: "NET".into(),
        entries: vec![PrefixListEntry {
            seq: 5,
            action: Action::Permit,
            prefix: "10.0.0.0/8".parse().unwrap(),
            ge: None,
            le: Some(32),
        }],
    };

    let link = |net: &mut NetworkConfig, a: usize, b: usize, ibgp: bool, ospf: bool| {
        let ia = format!("to_{}", net.devices[b].name);
        let ib = format!("to_{}", net.devices[a].name);
        net.devices[a].interfaces.push(Interface::named(ia.clone()));
        net.devices[b].interfaces.push(Interface::named(ib.clone()));
        for (dev, iface) in [(a, &ia), (b, &ib)] {
            if ospf {
                let idx = net.devices[dev].interface_index(iface).unwrap();
                net.devices[dev].interfaces[idx].ospf_area = Some(0);
                net.devices[dev].interfaces[idx].ospf_cost = Some(10);
            }
            if net.devices[dev].bgp.is_some() {
                let import = net.devices[dev]
                    .route_map("IMPORT")
                    .map(|_| "IMPORT".to_string());
                let bgp = net.devices[dev].bgp.as_mut().unwrap();
                bgp.neighbors.push(BgpNeighbor {
                    iface: iface.clone(),
                    import_policy: import,
                    export_policy: None,
                    ibgp,
                });
            }
        }
        let (na, nb) = (net.devices[a].name.clone(), net.devices[b].name.clone());
        net.links.push(Link::new((na, ia), (nb, ib)));
    };

    // Backbone border routers (eBGP, a few flavors of filters).
    let border_count = (params.pops + params.pops / 5).max(2);
    let mut borders = Vec::new();
    for i in 0..border_count {
        let mut d = DeviceConfig::new(format!("bb{i}"));
        d.bgp = Some(BgpConfig::new(100 + i as u32));
        d.prefix_lists.push(aggregate.clone());
        d.route_maps.push(RouteMap {
            name: "IMPORT".into(),
            clauses: vec![RouteMapClause {
                seq: 10,
                action: Action::Permit,
                matches: vec![MatchCond::PrefixList("NET".into())],
                sets: vec![],
            }],
        });
        net.devices.push(d);
        borders.push(net.devices.len() - 1);
    }
    // Border routers form a ring (the long-haul backbone).
    for i in 0..borders.len() {
        let j = (i + 1) % borders.len();
        if borders.len() > 1 && !(borders.len() == 2 && i == 1) {
            link(&mut net, borders[i], borders[j], false, false);
        }
    }

    for p in 0..params.pops {
        let pop_asn = 1000 + p as u32;
        // Core routers: OSPF + iBGP within the POP, eBGP toward backbone.
        let mut cores = Vec::new();
        for i in 0..params.cores_per_pop {
            let mut d = DeviceConfig::new(format!("p{p}_core{i}"));
            d.bgp = Some(BgpConfig::new(pop_asn));
            d.ospf = Some(OspfConfig::default());
            d.prefix_lists.push(aggregate.clone());
            net.devices.push(d);
            cores.push(net.devices.len() - 1);
        }
        // Aggregation routers: OSPF toward cores, originate prefixes,
        // neighbor-specific filter flavor (role noise across POPs — the
        // paper: "many of the differences are from neighbor-specific,
        // prefix-based filters").
        let mut aggs = Vec::new();
        for i in 0..params.aggs_per_pop {
            let flavor = (p * params.aggs_per_pop + i) % params.filter_flavors;
            let mut d = DeviceConfig::new(format!("p{p}_agg{i}"));
            d.bgp = Some(BgpConfig::new(pop_asn));
            d.ospf = Some(OspfConfig {
                networks: vec![],
                redistribute_static: true,
            });
            d.prefix_lists.push(PrefixList {
                name: "CUST".into(),
                entries: vec![
                    PrefixListEntry {
                        seq: 5,
                        action: Action::Deny,
                        prefix: Prefix::new(Ipv4Addr::new(10, 240, flavor as u8, 0), 24),
                        ge: None,
                        le: Some(32),
                    },
                    PrefixListEntry {
                        seq: 10,
                        action: Action::Permit,
                        prefix: "10.0.0.0/8".parse().unwrap(),
                        ge: None,
                        le: Some(32),
                    },
                ],
            });
            d.route_maps.push(RouteMap {
                name: "IMPORT".into(),
                clauses: vec![RouteMapClause {
                    seq: 10,
                    action: Action::Permit,
                    matches: vec![MatchCond::PrefixList("CUST".into())],
                    sets: vec![],
                }],
            });
            // Originated customer prefixes (one EC each).
            for v in 0..params.prefixes_per_agg {
                let third = (p * params.aggs_per_pop + i) as u16;
                d.ospf.as_mut().unwrap().networks.push(Prefix::new(
                    Ipv4Addr::new(
                        10,
                        (third / 256) as u8 + 1,
                        (third % 256) as u8,
                        (v * 16) as u8,
                    ),
                    28,
                ));
            }
            net.devices.push(d);
            aggs.push(net.devices.len() - 1);
        }
        // Access switches: static default toward an aggregation router.
        let mut accesses = Vec::new();
        for i in 0..params.access_per_pop {
            let mut d = DeviceConfig::new(format!("p{p}_acc{i}"));
            // A third of access devices are plain L2-ish switches with a
            // static default; the rest run OSPF passively (cost noise).
            if rng.gen_bool(0.33) {
                d.ospf = Some(OspfConfig::default());
            }
            net.devices.push(d);
            accesses.push(net.devices.len() - 1);
        }

        // Wiring: cores to two backbone borders (eBGP), cores meshed
        // (OSPF+iBGP), aggs to both cores (OSPF), access to one agg
        // (static upward).
        for (i, &c) in cores.iter().enumerate() {
            let b = borders[(p * params.cores_per_pop + i) % borders.len()];
            link(&mut net, c, b, false, false);
        }
        for i in 0..cores.len() {
            for j in (i + 1)..cores.len() {
                link(&mut net, cores[i], cores[j], true, true);
            }
        }
        for &a in &aggs {
            for &c in &cores {
                link(&mut net, a, c, true, true);
            }
        }
        for (i, &acc) in accesses.iter().enumerate() {
            let a = aggs[i % aggs.len()];
            link(&mut net, acc, a, false, true);
            // Static default route up to the agg.
            let iface = net.devices[acc].interfaces.last().unwrap().name.clone();
            net.devices[acc].static_routes.push(StaticRoute {
                prefix: Prefix::DEFAULT,
                iface,
            });
        }
    }

    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_config::BuiltTopology;

    #[test]
    fn default_shape_near_paper() {
        let params = WanParams::default();
        let net = wan(params);
        assert_eq!(net.devices.len(), params.node_count());
        assert!(
            (1080..=1100).contains(&net.devices.len()),
            "device count {}",
            net.devices.len()
        );
        BuiltTopology::build(&net).unwrap();
    }

    #[test]
    fn protocol_mix_present() {
        let net = wan(WanParams {
            pops: 4,
            ..Default::default()
        });
        let mut has_ibgp = false;
        let mut has_ebgp = false;
        let mut has_ospf = false;
        let mut has_static = false;
        for d in &net.devices {
            if let Some(bgp) = &d.bgp {
                for n in &bgp.neighbors {
                    has_ibgp |= n.ibgp;
                    has_ebgp |= !n.ibgp;
                }
            }
            has_ospf |= d.ospf.is_some();
            has_static |= !d.static_routes.is_empty();
        }
        assert!(has_ibgp && has_ebgp && has_ospf && has_static);
    }

    #[test]
    fn deterministic() {
        let a = wan(WanParams::default());
        let b = wan(WanParams::default());
        assert_eq!(a, b);
    }
}
