//! Executable CP-equivalence: the bisimulation check of §2/§4, run on
//! actual solutions.
//!
//! Given a concrete network, a destination class, and the abstraction
//! produced for it, this module solves both SRPs and checks:
//!
//! * **label-equivalence** — `h(L(u)) = L̂(f(u))`, where `h` erases the
//!   concrete identity of path nodes (keeping protocol, local preference,
//!   communities, path *length*, MED and administrative kind — every field
//!   the comparison relation observes);
//! * **fwd-equivalence** — `u` forwards into block `B` iff `f(u)` forwards
//!   into a copy of `B`.
//!
//! For BGP-split blocks the node abstraction `f` is *solution-dependent*
//! (paper §4.3): a concrete member maps to whichever copy exhibits its
//! behavior. The check therefore matches each block's set of concrete
//! behaviors against its copies' behaviors, and — because the abstract
//! network may itself have several stable solutions — retries abstract
//! activation orders until one matches (CP-equivalence promises only that
//! *some* abstract solution corresponds).

use bonsai_config::{BuiltTopology, Community, NetworkConfig};
use bonsai_core::abstraction::AbstractNetwork;
use bonsai_core::algorithm::Abstraction;
use bonsai_net::partition::BlockId;
use bonsai_net::{FailureMask, NodeId};
use bonsai_srp::instance::{EcDest, MultiProtocol, RibAttr};
use bonsai_srp::solver::{solve_with_order, SolverOptions};
use bonsai_srp::{Solution, Srp};
use std::collections::{BTreeMap, BTreeSet};

/// Why CP-equivalence checking failed.
#[derive(Clone, Debug)]
pub enum EquivalenceError {
    /// The concrete instance did not converge.
    ConcreteDiverged(String),
    /// The abstract instance did not converge.
    AbstractDiverged(String),
    /// No abstract solution (over the tried activation orders) matched the
    /// concrete solution's behaviors.
    NoMatchingSolution {
        /// Human-readable mismatch report for the closest attempt.
        detail: String,
    },
}

impl std::fmt::Display for EquivalenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EquivalenceError::ConcreteDiverged(e) => write!(f, "concrete diverged: {e}"),
            EquivalenceError::AbstractDiverged(e) => write!(f, "abstract diverged: {e}"),
            EquivalenceError::NoMatchingSolution { detail } => {
                write!(f, "no abstract solution matches: {detail}")
            }
        }
    }
}

/// The observable content of a label under the attribute abstraction `h`:
/// everything except concrete node identities in the path.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum HLabel {
    /// No route.
    Bottom,
    /// A static route.
    Static,
    /// A BGP route: `(lp, communities, path length, med, from_ibgp)`.
    Bgp(u32, Vec<Community>, usize, u32, bool),
    /// An OSPF route: `(cost, inter_area)`.
    Ospf(u32, bool),
}

impl HLabel {
    /// Applies `h` to a label. `keep` restricts the observed communities
    /// to the modeled set (the unused-tag-stripping `h` of §8); `None`
    /// keeps them all.
    fn of(label: Option<&RibAttr>, keep: Option<&BTreeSet<Community>>) -> HLabel {
        match label {
            None => HLabel::Bottom,
            Some(RibAttr::Static) => HLabel::Static,
            Some(RibAttr::Bgp(a)) => HLabel::Bgp(
                a.lp,
                a.comms
                    .iter()
                    .copied()
                    .filter(|c| keep.map_or(true, |k| k.contains(c)))
                    .collect(),
                a.path.len(),
                a.med,
                a.from_ibgp,
            ),
            Some(RibAttr::Ospf(o)) => HLabel::Ospf(o.cost, o.inter_area),
        }
    }
}

/// A node's observable behavior in a solution: the `h`-image of its set
/// of ≈-minimal choices (labels it may equally well hold — comparing the
/// whole set makes the check independent of how ties were broken; this is
/// the paper's *choice-equivalence*, Definition A.1, restricted to minimal
/// elements) plus the set of blocks it forwards into.
pub(crate) type Behavior = (BTreeSet<HLabel>, BTreeSet<u32>);

/// A structured behavior mismatch: which block failed the comparison, and
/// a human-readable description. The failure auditor uses the block to
/// choose a refinement split when no failed-link endpoint is available.
#[derive(Clone, Debug)]
pub struct BehaviorMismatch {
    /// The block whose concrete and abstract behavior sets disagree.
    pub block: BlockId,
    /// Human-readable description of the disagreement.
    pub detail: String,
    /// The abstract side's behavior set for the block (empty when the
    /// abstract network lacks the block entirely). The sweep engine's
    /// deviating-member split compares each concrete member against this
    /// set to refine only the members the abstraction cannot mirror.
    pub(crate) abs_behaviors: BTreeSet<Behavior>,
}

/// The shared activation-order scheme of every solution sampler in this
/// crate: the node list rotated left by `rot`, reversed on every second
/// wrap. The equivalence oracle, the failure auditor and the sweep engine
/// MUST all draw orders from this one function — the sweep's cache
/// determinism ("a cache hit is byte-identical to a fresh derivation")
/// rests on the samplers staying in lockstep.
pub(crate) fn rotated_order(nodes: &[NodeId], rot: usize) -> Vec<NodeId> {
    let n = nodes.len().max(1);
    let mut order = nodes.to_vec();
    order.rotate_left(rot % n);
    if rot / n % 2 == 1 {
        order.reverse();
    }
    order
}

/// The ≈-minimal choice set of a node under a solution, as `h`-labels.
/// Origins contribute their pinned label; unrouted nodes the empty set.
/// A failure mask restricts the choice set to surviving edges.
fn minimal_hlabels<P: bonsai_srp::Protocol<Attr = RibAttr>>(
    srp: &Srp<'_, P>,
    solution: &Solution<RibAttr>,
    u: NodeId,
    keep: Option<&BTreeSet<Community>>,
    mask: Option<&FailureMask>,
) -> BTreeSet<HLabel> {
    let mut out = BTreeSet::new();
    match solution.label(u) {
        None => {}
        Some(label) if srp.is_origin(u) => {
            out.insert(HLabel::of(Some(label), keep));
        }
        Some(label) => {
            for (_, a) in srp.choices_masked(&solution.labels, u, mask) {
                if srp.equally_good(&a, label) {
                    out.insert(HLabel::of(Some(&a), keep));
                }
            }
        }
    }
    out
}

/// The behavior of every concrete node under a solution, in node order:
/// the per-node raw material of [`concrete_behaviors`], kept unaggregated
/// so the sweep engine can split exactly the members whose behavior the
/// abstract side cannot realize.
pub(crate) fn concrete_node_behaviors<P: bonsai_srp::Protocol<Attr = RibAttr>>(
    srp: &Srp<'_, P>,
    topo: &BuiltTopology,
    solution: &Solution<RibAttr>,
    abstraction: &Abstraction,
    keep: Option<&BTreeSet<Community>>,
    mask: Option<&FailureMask>,
) -> Vec<(NodeId, Behavior)> {
    topo.graph
        .nodes()
        .map(|u| {
            let labels = minimal_hlabels(srp, solution, u, keep, mask);
            let fwd_blocks: BTreeSet<u32> = solution
                .fwd(u)
                .iter()
                .map(|&e| abstraction.role_of(topo.graph.target(e)).0)
                .collect();
            (u, (labels, fwd_blocks))
        })
        .collect()
}

/// Aggregates per-node behaviors into per-block behavior sets.
pub(crate) fn aggregate_behaviors(
    node_behaviors: &[(NodeId, Behavior)],
    abstraction: &Abstraction,
) -> BTreeMap<BlockId, BTreeSet<Behavior>> {
    let mut map: BTreeMap<BlockId, BTreeSet<Behavior>> = BTreeMap::new();
    for (u, behavior) in node_behaviors {
        map.entry(abstraction.role_of(*u))
            .or_default()
            .insert(behavior.clone());
    }
    map
}

pub(crate) fn concrete_behaviors(
    network: &NetworkConfig,
    topo: &BuiltTopology,
    ec: &EcDest,
    solution: &Solution<RibAttr>,
    abstraction: &Abstraction,
    keep: Option<&BTreeSet<Community>>,
    mask: Option<&FailureMask>,
) -> BTreeMap<BlockId, BTreeSet<Behavior>> {
    let proto = MultiProtocol::build(network, topo, ec);
    let origins: Vec<NodeId> = ec.origins.iter().map(|(n, _)| *n).collect();
    let srp = Srp::with_origins(&topo.graph, origins, proto);
    aggregate_behaviors(
        &concrete_node_behaviors(&srp, topo, solution, abstraction, keep, mask),
        abstraction,
    )
}

pub(crate) fn abstract_behaviors(
    abs: &AbstractNetwork,
    solution: &Solution<RibAttr>,
    keep: Option<&BTreeSet<Community>>,
    mask: Option<&FailureMask>,
) -> BTreeMap<BlockId, BTreeSet<Behavior>> {
    let proto = MultiProtocol::build(&abs.network, &abs.topo, &abs.ec);
    let origins: Vec<NodeId> = abs.ec.origins.iter().map(|(n, _)| *n).collect();
    let srp = Srp::with_origins(&abs.topo.graph, origins, proto);
    let mut map: BTreeMap<BlockId, BTreeSet<Behavior>> = BTreeMap::new();
    for n in abs.topo.graph.nodes() {
        let (block, _copy) = abs.copy_of_node[n.index()];
        let labels = minimal_hlabels(&srp, solution, n, keep, mask);
        let fwd_blocks: BTreeSet<u32> = solution
            .fwd(n)
            .iter()
            .map(|&e| abs.copy_of_node[abs.topo.graph.target(e).index()].0 .0)
            .collect();
        map.entry(block).or_default().insert((labels, fwd_blocks));
    }
    map
}

/// Checks CP-equivalence of a concrete solution against the abstract
/// network, trying up to `orders` abstract activation orders.
///
/// Returns `Ok(())` when some abstract solution is label- and
/// fwd-equivalent to the given concrete solution (modulo `h` and the
/// copy assignment).
#[allow(clippy::too_many_arguments)]
pub fn check_solution_equivalence(
    network: &NetworkConfig,
    topo: &BuiltTopology,
    ec: &EcDest,
    concrete_solution: &Solution<RibAttr>,
    abstraction: &Abstraction,
    abs: &AbstractNetwork,
    orders: usize,
    keep: Option<&BTreeSet<Community>>,
) -> Result<(), EquivalenceError> {
    let concrete = concrete_behaviors(
        network,
        topo,
        ec,
        concrete_solution,
        abstraction,
        keep,
        None,
    );

    let abs_origins: Vec<NodeId> = abs.ec.origins.iter().map(|(n, _)| *n).collect();
    let nodes: Vec<NodeId> = abs.topo.graph.nodes().collect();
    let mut last_detail = String::new();
    let mut seen: BTreeSet<Vec<Option<String>>> = BTreeSet::new();

    for rot in 0..orders.max(1) {
        let proto = MultiProtocol::build(&abs.network, &abs.topo, &abs.ec);
        let srp = Srp::with_origins(&abs.topo.graph, abs_origins.clone(), proto);
        let order = rotated_order(&nodes, rot);
        let abs_solution = match solve_with_order(&srp, &order, SolverOptions::default()) {
            Ok(s) => s,
            Err(e) => return Err(EquivalenceError::AbstractDiverged(e.to_string())),
        };
        // Dedup identical abstract solutions cheaply.
        let fingerprint: Vec<Option<String>> = abs_solution
            .labels
            .iter()
            .map(|l| l.as_ref().map(|a| format!("{a:?}")))
            .collect();
        if !seen.insert(fingerprint) {
            continue;
        }

        let abstract_b = abstract_behaviors(abs, &abs_solution, keep, None);
        match behaviors_match(&concrete, &abstract_b) {
            Ok(()) => return Ok(()),
            Err(mismatch) => last_detail = mismatch.detail,
        }
    }
    Err(EquivalenceError::NoMatchingSolution {
        detail: last_detail,
    })
}

/// Concrete block behaviors must coincide with the copies' behaviors:
/// every concrete behavior is realized by a copy (label- and
/// fwd-equivalence for some refinement `f_r`), and no copy exhibits a
/// behavior no concrete member has (onto-ness of `f_r`, adjusted as in
/// Theorem 4.5: spare copies may duplicate an existing behavior).
pub(crate) fn behaviors_match(
    concrete: &BTreeMap<BlockId, BTreeSet<Behavior>>,
    abstract_b: &BTreeMap<BlockId, BTreeSet<Behavior>>,
) -> Result<(), BehaviorMismatch> {
    for (block, cset) in concrete {
        let Some(aset) = abstract_b.get(block) else {
            return Err(BehaviorMismatch {
                block: *block,
                detail: format!("abstract network lacks block {block:?}"),
                abs_behaviors: BTreeSet::new(),
            });
        };
        for b in cset {
            if !aset.contains(b) {
                return Err(BehaviorMismatch {
                    block: *block,
                    detail: format!(
                        "block {block:?}: concrete behavior {b:?} not realized by any copy \
                         (abstract behaviors: {aset:?})"
                    ),
                    abs_behaviors: aset.clone(),
                });
            }
        }
        for b in aset {
            if !cset.contains(b) {
                return Err(BehaviorMismatch {
                    block: *block,
                    detail: format!(
                        "block {block:?}: abstract copy behavior {b:?} has no concrete witness \
                         (concrete behaviors: {cset:?})"
                    ),
                    abs_behaviors: aset.clone(),
                });
            }
        }
    }
    Ok(())
}

/// End-to-end CP-equivalence check for one destination class: solves the
/// concrete network under `concrete_orders` different activation orders
/// and requires every resulting solution to have a matching abstract
/// solution.
pub fn check_cp_equivalence(
    network: &NetworkConfig,
    topo: &BuiltTopology,
    ec: &EcDest,
    abstraction: &Abstraction,
    abs: &AbstractNetwork,
    concrete_orders: usize,
    abstract_orders: usize,
) -> Result<(), EquivalenceError> {
    check_cp_equivalence_under_h(
        network,
        topo,
        ec,
        abstraction,
        abs,
        concrete_orders,
        abstract_orders,
        false,
    )
}

/// [`check_cp_equivalence`] reusing the compression run's shared
/// policy-compilation engine (`CompressionReport::policies`) instead of
/// rescanning the network for the modeled-community set. The attribute
/// abstraction `h` is taken **from the engine**: an engine built with
/// `strip_unused_communities` models exactly the matched-community
/// universe, so labels are compared modulo unused tags iff the
/// compression itself stripped them — the two can never disagree.
#[allow(clippy::too_many_arguments)]
pub fn check_cp_equivalence_shared(
    network: &NetworkConfig,
    topo: &BuiltTopology,
    ec: &EcDest,
    abstraction: &Abstraction,
    abs: &AbstractNetwork,
    concrete_orders: usize,
    abstract_orders: usize,
    engine: &bonsai_core::engine::CompiledPolicies,
) -> Result<(), EquivalenceError> {
    let keep: Option<BTreeSet<Community>> = engine
        .strips_unused_communities()
        .then(|| engine.communities().iter().copied().collect());
    check_cp_equivalence_with_keep(
        network,
        topo,
        ec,
        abstraction,
        abs,
        concrete_orders,
        abstract_orders,
        keep,
    )
}

/// [`check_cp_equivalence`] with an explicit choice of the attribute
/// abstraction `h`: with `strip_unused_communities`, labels are compared
/// modulo communities no configuration ever matches (the `h` the paper
/// uses for its data-center study). Builds a throwaway engine for the
/// community scan; callers holding a `CompressionReport` should prefer
/// [`check_cp_equivalence_shared`].
#[allow(clippy::too_many_arguments)]
pub fn check_cp_equivalence_under_h(
    network: &NetworkConfig,
    topo: &BuiltTopology,
    ec: &EcDest,
    abstraction: &Abstraction,
    abs: &AbstractNetwork,
    concrete_orders: usize,
    abstract_orders: usize,
    strip_unused_communities: bool,
) -> Result<(), EquivalenceError> {
    let keep: Option<BTreeSet<Community>> = strip_unused_communities.then(|| {
        bonsai_core::engine::CompiledPolicies::from_network(network, true)
            .communities()
            .iter()
            .copied()
            .collect()
    });
    check_cp_equivalence_with_keep(
        network,
        topo,
        ec,
        abstraction,
        abs,
        concrete_orders,
        abstract_orders,
        keep,
    )
}

#[allow(clippy::too_many_arguments)]
fn check_cp_equivalence_with_keep(
    network: &NetworkConfig,
    topo: &BuiltTopology,
    ec: &EcDest,
    abstraction: &Abstraction,
    abs: &AbstractNetwork,
    concrete_orders: usize,
    abstract_orders: usize,
    keep: Option<BTreeSet<Community>>,
) -> Result<(), EquivalenceError> {
    let origins: Vec<NodeId> = ec.origins.iter().map(|(n, _)| *n).collect();
    let nodes: Vec<NodeId> = topo.graph.nodes().collect();
    for rot in 0..concrete_orders.max(1) {
        let proto = MultiProtocol::build(network, topo, ec);
        let srp = Srp::with_origins(&topo.graph, origins.clone(), proto);
        let order = rotated_order(&nodes, rot);
        let solution = solve_with_order(&srp, &order, SolverOptions::default())
            .map_err(|e| EquivalenceError::ConcreteDiverged(e.to_string()))?;
        check_solution_equivalence(
            network,
            topo,
            ec,
            &solution,
            abstraction,
            abs,
            abstract_orders,
            keep.as_ref(),
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_core::compress::{compress, CompressOptions};
    use bonsai_srp::papernets;

    fn check_network(net: &NetworkConfig) {
        let topo = BuiltTopology::build(net).unwrap();
        let report = compress(net, CompressOptions::default());
        for ec in &report.per_ec {
            let ec_dest = ec.ec.to_ec_dest();
            // Reuse the compression run's shared engine (the same manager)
            // rather than rescanning the network.
            check_cp_equivalence_shared(
                net,
                &topo,
                &ec_dest,
                &ec.abstraction,
                &ec.abstract_network,
                8,
                16,
                &report.policies,
            )
            .unwrap_or_else(|e| panic!("CP-equivalence failed for {}: {e}", ec.ec.rep));
        }
    }

    #[test]
    fn figure1_cp_equivalent() {
        check_network(&papernets::figure1_rip());
    }

    #[test]
    fn figure2_gadget_cp_equivalent() {
        check_network(&papernets::figure2_gadget());
    }

    #[test]
    fn figure5_cp_equivalent() {
        check_network(&papernets::figure5_bgp());
    }

    /// The naive gadget abstraction of Figure 2(b) — all three b's merged
    /// into ONE copy — must fail the equivalence check (it cannot express
    /// the direct/indirect behavior split).
    #[test]
    fn naive_gadget_abstraction_fails() {
        let net = papernets::figure2_gadget();
        let topo = BuiltTopology::build(&net).unwrap();
        let report = compress(&net, CompressOptions::default());
        let ec = &report.per_ec[0];
        let ec_dest = ec.ec.to_ec_dest();

        // Sabotage: force one copy for every block (Figure 2(b)).
        let mut naive = ec.abstraction.clone();
        for c in naive.copies.iter_mut() {
            *c = 1;
        }
        let naive_abs =
            bonsai_core::abstraction::build_abstract_network(&net, &topo, &ec_dest, &naive);
        let result = check_cp_equivalence(&net, &topo, &ec_dest, &naive, &naive_abs, 4, 16);
        assert!(
            result.is_err(),
            "the unsound single-copy abstraction must be rejected"
        );
    }
}
