//! K-failure soundness auditing with counterexample-guided refinement.
//!
//! The paper proves CP-equivalence for the failure-free control plane and
//! warns (§9) that compression may become **unsound when links fail**: an
//! abstract link stands for a whole orbit of concrete links, so the
//! abstract network cannot express "exactly one of them is down" — the
//! very asymmetry a failure introduces. This module turns that caveat
//! into a checked, repairable property:
//!
//! 1. [`check_cp_equivalence_under_failures`] sweeps every `≤ k`
//!    link-failure scenario (enumerated — and optionally symmetry-pruned —
//!    by [`bonsai_core::scenarios`]), solving the concrete instance under
//!    the scenario's [`FailureMask`] and the abstract instance under the
//!    *lifted* mask ([`lift_failure_mask`]), and compares per-block
//!    behaviors exactly like the failure-free oracle.
//! 2. On a mismatch it extracts a refinement split — the failed-link
//!    endpoints still sharing a block with other nodes, falling back to
//!    the offending block itself — and feeds it to
//!    [`bonsai_core::compress::refine_ec_with_split`], which isolates the
//!    nodes, restores the refinement fixpoint and rebuilds the abstract
//!    network through the same shared engine.
//! 3. The sweep continues against the refined abstraction (refinement is
//!    monotone) and repeats in passes until a whole pass finds no
//!    counterexample: the abstraction is then **k-failure sound**, and the
//!    [`FailureAuditReport`] carries it together with every counterexample
//!    found along the way.
//!
//! Termination: every effective refinement strictly increases the block
//! count, which is bounded by the node count; the discrete partition's
//! abstract network is isomorphic to the concrete one, where every
//! scenario passes trivially. In practice one or two splits repair a
//! failure-broken abstraction while the rest of the network stays
//! compressed — that is the selling point over "just verify concretely".

use crate::equivalence::{
    abstract_behaviors, behaviors_match, concrete_behaviors, rotated_order, BehaviorMismatch,
    EquivalenceError,
};
use bonsai_config::{BuiltTopology, Community, NetworkConfig};
use bonsai_core::abstraction::AbstractNetwork;
use bonsai_core::algorithm::Abstraction;
use bonsai_core::compress::refine_ec_with_split;
use bonsai_core::engine::CompiledPolicies;
use bonsai_core::scenarios::{
    enumerate_scenarios_pruned, exhaustive_scenario_count, FailureScenario, ScenarioStream,
};
use bonsai_core::signatures::build_sig_table;
use bonsai_net::partition::BlockId;
use bonsai_net::{FailureMask, NodeId};
use bonsai_srp::instance::{EcDest, MultiProtocol};
use bonsai_srp::solver::{solve_with_order_masked, SolverOptions};
use bonsai_srp::Srp;
use std::collections::BTreeSet;

/// Options for a k-failure soundness audit.
#[derive(Clone, Copy, Debug)]
pub struct FailureAuditOptions {
    /// Maximum number of simultaneously failed links (`k`).
    pub max_failures: usize,
    /// Enumerate one representative scenario per link-orbit multiset
    /// instead of every link combination (see
    /// [`bonsai_core::scenarios::enumerate_scenarios_pruned`] for the
    /// exactness discussion). Exhaustive sweeps disable this.
    pub prune_symmetric: bool,
    /// Concrete activation orders tried per scenario (each must have a
    /// matching abstract solution).
    pub concrete_orders: usize,
    /// Abstract activation orders tried per concrete solution.
    pub abstract_orders: usize,
    /// Refinement-round bound; 0 means "node count" (always sufficient:
    /// each round strictly refines the partition).
    pub max_rounds: usize,
}

impl Default for FailureAuditOptions {
    fn default() -> Self {
        FailureAuditOptions {
            max_failures: 1,
            prune_symmetric: true,
            concrete_orders: 4,
            abstract_orders: 16,
            max_rounds: 0,
        }
    }
}

/// One scenario the abstraction could not mirror, and how it was repaired.
#[derive(Clone, Debug)]
pub struct FailureCounterexample {
    /// The failing scenario.
    pub scenario: FailureScenario,
    /// The block whose behaviors disagreed (when the comparison got that
    /// far; `None` when the abstract instance diverged outright).
    pub block: Option<BlockId>,
    /// Human-readable mismatch description.
    pub detail: String,
    /// The concrete nodes the refinement step isolated in response.
    pub split: Vec<NodeId>,
}

/// The outcome of a k-failure soundness audit: the (possibly refined)
/// abstraction that passes every scenario, plus the audit trail.
#[derive(Debug)]
pub struct FailureAuditReport {
    /// The failure bound that was audited.
    pub k: usize,
    /// Scenario count of the exhaustive enumeration (what the sweep would
    /// cost without symmetry pruning).
    pub scenarios_exhaustive: usize,
    /// Scenarios actually verified in the final (passing) sweep.
    pub scenarios_swept: usize,
    /// Total scenario checks across all sweeps, including the aborted
    /// ones that ended in a counterexample.
    pub checks_performed: usize,
    /// Every counterexample found, in discovery order.
    pub counterexamples: Vec<FailureCounterexample>,
    /// Number of refinement rounds (== `counterexamples.len()`).
    pub refinement_rounds: usize,
    /// Abstract node count before the audit.
    pub initial_abstract_nodes: usize,
    /// The k-failure-sound abstraction (the input one if no refinement
    /// was needed).
    pub abstraction: Abstraction,
    /// Its materialized abstract network.
    pub abstract_network: AbstractNetwork,
}

impl FailureAuditReport {
    /// True if the input abstraction was already k-failure sound.
    pub fn was_sound(&self) -> bool {
        self.counterexamples.is_empty()
    }

    /// Abstract node count after the audit.
    pub fn final_abstract_nodes(&self) -> usize {
        self.abstraction.abstract_node_count()
    }
}

/// Lifts a concrete failure scenario onto an abstract network: for every
/// failed concrete link `u — v`, every abstract link between a copy of
/// `u`'s block and a copy of `v`'s block is failed.
///
/// This is the only possible interpretation of the scenario on the
/// abstract topology — and precisely where unsoundness comes from: when
/// the blocks have *other* concrete links that did not fail, the lifted
/// mask over-fails the abstract network. The auditor detects the
/// resulting behavior mismatch and refines until every failed link is the
/// unique concrete witness of the abstract links it lifts to.
pub fn lift_failure_mask(
    scenario: &FailureScenario,
    abstraction: &Abstraction,
    abs: &AbstractNetwork,
) -> FailureMask {
    let graph = &abs.topo.graph;
    let mut mask = FailureMask::for_graph(graph);
    for &(u, v) in &scenario.links {
        let bu = abstraction.role_of(u);
        let bv = abstraction.role_of(v);
        for cu in 0..abstraction.copies[bu.index()] {
            for cv in 0..abstraction.copies[bv.index()] {
                let nu = abs.node_of_copy[&(bu, cu)];
                let nv = abs.node_of_copy[&(bv, cv)];
                if nu != nv {
                    mask.disable_link(graph, nu, nv);
                }
            }
        }
    }
    mask
}

/// Sweeps all `≤ k` link-failure scenarios, checking CP-equivalence of
/// the abstraction under each; on a counterexample, refines the
/// abstraction (splitting the offending nodes) and restarts the sweep,
/// until the abstraction is **k-failure sound**.
///
/// The attribute abstraction `h` is taken from the engine, exactly as in
/// [`crate::equivalence::check_cp_equivalence_shared`]; scenario
/// enumeration, signature tables and the refinement step all run through
/// the same shared [`CompiledPolicies`] engine, so an audit after a
/// compression run recompiles nothing.
///
/// Errors only when a *concrete* instance diverges under some scenario
/// (nothing to audit against) or the refinement bound is exhausted.
pub fn check_cp_equivalence_under_failures(
    network: &NetworkConfig,
    topo: &BuiltTopology,
    ec: &EcDest,
    abstraction: &Abstraction,
    abs: &AbstractNetwork,
    engine: &CompiledPolicies,
    options: &FailureAuditOptions,
) -> Result<FailureAuditReport, EquivalenceError> {
    let keep: Option<BTreeSet<Community>> = engine
        .strips_unused_communities()
        .then(|| engine.communities().iter().copied().collect());
    let sigs = build_sig_table(engine, network, topo, ec);
    let k = options.max_failures;
    let max_rounds = if options.max_rounds == 0 {
        topo.graph.node_count() + 1
    } else {
        options.max_rounds
    };

    let mut current = abstraction.clone();
    let mut current_net = abs.clone();
    let mut counterexamples: Vec<FailureCounterexample> = Vec::new();
    let mut checks_performed = 0usize;
    let initial_abstract_nodes = abstraction.abstract_node_count();
    let scenarios_exhaustive = exhaustive_scenario_count(topo.graph.link_count(), k);

    loop {
        // Enumerate per pass: pruning is relative to the *current*
        // abstraction's orbits, and refinement makes orbits finer. Within
        // a pass, a counterexample refines the abstraction and the sweep
        // **continues** against the refined one (restarting per
        // counterexample would cost rounds × scenarios); a pass with no
        // counterexample is the clean confirmation the soundness claim
        // rests on.
        let scenarios = if options.prune_symmetric {
            enumerate_scenarios_pruned(&topo.graph, &current, &sigs, k)
        } else {
            ScenarioStream::new(&topo.graph, k).to_vec()
        };

        let mut refined_this_pass = false;
        for scenario in &scenarios {
            checks_performed += 1;
            match check_scenario(
                network,
                topo,
                ec,
                &current,
                &current_net,
                scenario,
                options,
                keep.as_ref(),
            )? {
                Ok(()) => {}
                Err(mismatch) => {
                    let describe = |m: &Option<BehaviorMismatch>| {
                        m.as_ref()
                            .map(|m| m.detail.clone())
                            .unwrap_or_else(|| "abstract instance diverged".to_string())
                    };
                    if counterexamples.len() >= max_rounds {
                        return Err(EquivalenceError::NoMatchingSolution {
                            detail: format!(
                                "refinement bound ({max_rounds} rounds) exhausted; last \
                                 counterexample under {}: {}",
                                scenario.describe(&topo.graph),
                                describe(&mismatch),
                            ),
                        });
                    }
                    let split = split_candidates(&current, scenario, &mismatch);
                    if split.is_empty() {
                        // Nothing left to split: a genuine equivalence bug
                        // rather than a refinable failure asymmetry.
                        return Err(EquivalenceError::NoMatchingSolution {
                            detail: format!(
                                "irrefinable mismatch under {}: {}",
                                scenario.describe(&topo.graph),
                                describe(&mismatch),
                            ),
                        });
                    }
                    let (refined, refined_net) =
                        refine_ec_with_split(engine, network, topo, ec, &current, &split);
                    counterexamples.push(FailureCounterexample {
                        scenario: scenario.clone(),
                        block: mismatch.as_ref().map(|m| m.block),
                        detail: describe(&mismatch),
                        split,
                    });
                    current = refined;
                    current_net = refined_net;
                    refined_this_pass = true;
                }
            }
        }

        if !refined_this_pass {
            let refinement_rounds = counterexamples.len();
            return Ok(FailureAuditReport {
                k,
                scenarios_exhaustive,
                scenarios_swept: scenarios.len(),
                checks_performed,
                counterexamples,
                refinement_rounds,
                initial_abstract_nodes,
                abstraction: current,
                abstract_network: current_net,
            });
        }
    }
}

/// Checks one scenario: every concrete solution (over the tried
/// activation orders) must have a matching abstract solution under the
/// lifted mask.
///
/// `Err(EquivalenceError)` is reserved for unauditable situations
/// (concrete divergence); the inner `Result` carries the verdict, with
/// `None` standing for "the abstract instance diverged on every order".
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
fn check_scenario(
    network: &NetworkConfig,
    topo: &BuiltTopology,
    ec: &EcDest,
    abstraction: &Abstraction,
    abs: &AbstractNetwork,
    scenario: &FailureScenario,
    options: &FailureAuditOptions,
    keep: Option<&BTreeSet<Community>>,
) -> Result<Result<(), Option<BehaviorMismatch>>, EquivalenceError> {
    let mask = scenario.mask(&topo.graph);
    let abs_mask = lift_failure_mask(scenario, abstraction, abs);

    let origins: Vec<NodeId> = ec.origins.iter().map(|(n, _)| *n).collect();
    let nodes: Vec<NodeId> = topo.graph.nodes().collect();
    let abs_origins: Vec<NodeId> = abs.ec.origins.iter().map(|(n, _)| *n).collect();
    let abs_nodes: Vec<NodeId> = abs.topo.graph.nodes().collect();

    // One instance each side serves every activation order and mask —
    // the point of masked solving (nothing below depends on the order).
    let proto = MultiProtocol::build(network, topo, ec);
    let srp = Srp::with_origins(&topo.graph, origins, proto);
    let abs_proto = MultiProtocol::build(&abs.network, &abs.topo, &abs.ec);
    let abs_srp = Srp::with_origins(&abs.topo.graph, abs_origins, abs_proto);

    for rot in 0..options.concrete_orders.max(1) {
        let order = rotated_order(&nodes, rot);
        let solution = solve_with_order_masked(&srp, &order, SolverOptions::default(), Some(&mask))
            .map_err(|e| {
                EquivalenceError::ConcreteDiverged(format!(
                    "under {}: {e}",
                    scenario.describe(&topo.graph)
                ))
            })?;
        let concrete =
            concrete_behaviors(network, topo, ec, &solution, abstraction, keep, Some(&mask));

        let mut matched = false;
        let mut last_mismatch: Option<BehaviorMismatch> = None;
        let mut seen: BTreeSet<Vec<Option<String>>> = BTreeSet::new();
        for arot in 0..options.abstract_orders.max(1) {
            let order = rotated_order(&abs_nodes, arot);
            let abs_solution = match solve_with_order_masked(
                &abs_srp,
                &order,
                SolverOptions::default(),
                Some(&abs_mask),
            ) {
                Ok(s) => s,
                // Abstract divergence under a failure the concrete plane
                // survives is itself an abstraction failure — fall through
                // to the counterexample path rather than erroring.
                Err(_) => continue,
            };
            let fingerprint: Vec<Option<String>> = abs_solution
                .labels
                .iter()
                .map(|l| l.as_ref().map(|a| format!("{a:?}")))
                .collect();
            if !seen.insert(fingerprint) {
                continue;
            }
            let abstract_b = abstract_behaviors(abs, &abs_solution, keep, Some(&abs_mask));
            match behaviors_match(&concrete, &abstract_b) {
                Ok(()) => {
                    matched = true;
                    break;
                }
                Err(mismatch) => last_mismatch = Some(mismatch),
            }
        }
        if !matched {
            return Ok(Err(last_mismatch));
        }
    }
    Ok(Ok(()))
}

/// The refinement split for a counterexample: failed-link endpoints that
/// still share a block with other nodes; if all endpoints are already
/// singletons, the members of the offending block.
fn split_candidates(
    abstraction: &Abstraction,
    scenario: &FailureScenario,
    mismatch: &Option<BehaviorMismatch>,
) -> Vec<NodeId> {
    let mut out: Vec<NodeId> = scenario
        .links
        .iter()
        .flat_map(|&(u, v)| [u, v])
        .filter(|&n| abstraction.partition.members(abstraction.role_of(n)).len() > 1)
        .collect();
    out.sort();
    out.dedup();
    if out.is_empty() {
        if let Some(m) = mismatch {
            let members = abstraction.partition.members(m.block);
            if members.len() > 1 {
                out = members.iter().map(|&x| NodeId(x)).collect();
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_core::compress::{compress, CompressOptions};
    use bonsai_srp::papernets;

    /// Audits the first EC of a compressed network and returns the report.
    fn audit(
        net: &NetworkConfig,
        options: &FailureAuditOptions,
    ) -> (BuiltTopology, FailureAuditReport) {
        let topo = BuiltTopology::build(net).unwrap();
        let report = compress(net, CompressOptions::default());
        let ec = &report.per_ec[0];
        let audit = check_cp_equivalence_under_failures(
            net,
            &topo,
            &ec.ec.to_ec_dest(),
            &ec.abstraction,
            &ec.abstract_network,
            &report.policies,
            options,
        )
        .expect("audit completes");
        (topo, audit)
    }

    /// The crafted unsoundness gadget: Figure 1's diamond merges b1 and
    /// b2, which is CP-equivalent failure-free but unsound the moment one
    /// of the two parallel b—d links fails (b1 detours, b2 does not — one
    /// abstract b-node cannot do both). The audit must find exactly this,
    /// split the b-block, and converge to a sound 4-node abstraction.
    #[test]
    fn figure1_is_unsound_under_one_failure_and_gets_repaired() {
        let net = papernets::figure1_rip();
        let (topo, audit) = audit(&net, &FailureAuditOptions::default());
        assert!(!audit.was_sound(), "the merged diamond must be refuted");
        assert!(audit.refinement_rounds >= 1);
        assert_eq!(audit.initial_abstract_nodes, 3);
        // Repair splits the merged b-block; the result re-verifies sound.
        assert!(audit.final_abstract_nodes() > 3);
        let b1 = topo.graph.node_by_name("b1").unwrap();
        let b2 = topo.graph.node_by_name("b2").unwrap();
        assert_ne!(audit.abstraction.role_of(b1), audit.abstraction.role_of(b2));
        // The counterexample names a failed link and a real split.
        let cx = &audit.counterexamples[0];
        assert_eq!(cx.scenario.len(), 1);
        assert!(!cx.split.is_empty());
    }

    /// Exhaustive and pruned sweeps agree on the final abstraction for
    /// the diamond (pruning only skips symmetric duplicates).
    #[test]
    fn pruned_and_exhaustive_audits_agree() {
        let net = papernets::figure1_rip();
        let (_, pruned) = audit(&net, &FailureAuditOptions::default());
        let (_, full) = audit(
            &net,
            &FailureAuditOptions {
                prune_symmetric: false,
                ..Default::default()
            },
        );
        assert_eq!(
            pruned.abstraction.partition.as_sets(),
            full.abstraction.partition.as_sets()
        );
        assert!(pruned.scenarios_swept <= full.scenarios_swept);
        assert_eq!(full.scenarios_swept, full.scenarios_exhaustive);
    }

    /// The BGP gadget (Figure 2): loop prevention already forces a copy
    /// split failure-free; one failed b—d link still breaks the 3-member
    /// b-block's symmetry and must trigger a further split.
    #[test]
    fn gadget_refines_under_single_failure() {
        let net = papernets::figure2_gadget();
        let (topo, audit) = audit(&net, &FailureAuditOptions::default());
        assert!(!audit.was_sound());
        // Whatever the split sequence, the result is k-failure sound and
        // still smaller than or equal to the concrete network.
        assert!(audit.final_abstract_nodes() <= topo.graph.node_count());
        assert!(audit.final_abstract_nodes() > audit.initial_abstract_nodes);
    }

    /// A network whose abstraction is already discrete (no compression,
    /// Figure 5) is vacuously failure-sound: the audit passes without
    /// refinement.
    #[test]
    fn incompressible_network_is_already_failure_sound() {
        let net = papernets::figure5_bgp();
        let (_, audit) = audit(&net, &FailureAuditOptions::default());
        assert!(audit.was_sound(), "{:?}", audit.counterexamples);
        assert_eq!(audit.refinement_rounds, 0);
    }

    /// k = 2 on the diamond: failing *both* parallel links is exactly
    /// representable (the whole orbit dies), and the refined abstraction
    /// handles every pair.
    #[test]
    fn diamond_two_failure_audit_converges() {
        let net = papernets::figure1_rip();
        let (topo, audit) = audit(
            &net,
            &FailureAuditOptions {
                max_failures: 2,
                ..Default::default()
            },
        );
        assert_eq!(audit.k, 2);
        assert!(audit.final_abstract_nodes() <= topo.graph.node_count());
        // Sound after refinement for every ≤2-failure scenario.
        assert!(audit.checks_performed >= audit.scenarios_swept);
    }

    /// The lifted mask over-fails exactly when a block-pair is partially
    /// failed — the documented source of unsoundness.
    #[test]
    fn lift_mask_covers_all_copies() {
        let net = papernets::figure1_rip();
        let topo = BuiltTopology::build(&net).unwrap();
        let report = compress(&net, CompressOptions::default());
        let ec = &report.per_ec[0];
        let d = topo.graph.node_by_name("d").unwrap();
        let b1 = topo.graph.node_by_name("b1").unwrap();
        let scenario = FailureScenario::new(vec![(d, b1)]);
        let mask = lift_failure_mask(&scenario, &ec.abstraction, &ec.abstract_network);
        // The single concrete failure kills the one abstract d̂—b̂ link,
        // i.e. both directed edges.
        assert_eq!(mask.disabled_count(), 2);
    }
}
