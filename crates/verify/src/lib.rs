//! # bonsai-verify
//!
//! Property checking over concrete and compressed networks, plus the two
//! analysis engines the paper's evaluation (§8) runs Bonsai in front of:
//!
//! * [`properties`] — the path properties CP-equivalence preserves (§4.4):
//!   reachability, path length, black holes, multipath consistency,
//!   waypointing, routing loops.
//! * [`equivalence`] — an executable CP-equivalence oracle: solves the
//!   concrete and abstract SRPs and checks label- and fwd-equivalence
//!   modulo the attribute abstraction `h` (and modulo the
//!   solution-dependent copy assignment of BGP-split nodes, §4.3).
//! * [`failures`] — the bounded link-failure audit: sweeps every `≤ k`
//!   failure scenario through the equivalence oracle and repairs **one**
//!   abstraction by counterexample-guided refinement until it is globally
//!   k-failure sound (the paper's §9 caveat, made checkable).
//! * [`sweep`] — the scalable per-scenario refinement sweep: keeps the
//!   failure-free base abstraction, derives a tiny localized refinement
//!   per scenario (cached by orbit signature, verified with warm-started
//!   masked solves — concrete *and* abstract, via solution transport —
//!   fanned out over the shared lock-free driver) instead of
//!   decompressing one abstraction for all scenarios at once.
//! * [`netsweep`] — the network-level orchestrator over the
//!   (scenario × destination class) product: one fan-out plane for the
//!   whole network, with refinements shared **across classes** keyed by
//!   (policy fingerprint, quotient class, canonical signature).
//! * [`sim_engine`] — the **Batfish substitute**: simulates the control
//!   plane per destination class, derives the data plane (with ACLs), and
//!   answers reachability queries — failure-free, under a failure mask,
//!   or on a per-scenario refined abstract network mapped back to
//!   concrete nodes.
//! * [`search_engine`] — the **Minesweeper substitute**: checks a property
//!   over *many stable solutions* by re-solving under systematically
//!   varied activation orders (optionally under a failure mask, or across
//!   every `≤ k` failure scenario), with wall-clock and memory budgets
//!   that report `Timeout` / `OutOfMemory` like the paper's 10-minute
//!   limit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod equivalence;
pub mod failures;
pub mod netsweep;
pub mod properties;
pub mod query;
pub mod search_engine;
pub mod session;
pub mod sim_engine;
pub mod sweep;

pub use equivalence::{
    check_cp_equivalence, check_cp_equivalence_shared, check_cp_equivalence_under_h,
    EquivalenceError,
};
pub use failures::{
    check_cp_equivalence_under_failures, lift_failure_mask, FailureAuditOptions,
    FailureAuditReport, FailureCounterexample,
};
pub use netsweep::{
    sweep_network, sweep_network_subset, EcSweep, NetworkSweepOptions, NetworkSweepReport,
};
pub use properties::{Reachability, SolutionAnalysis};
pub use query::{QueryCtx, QueryScope, QueryStats};
pub use search_engine::{SearchBudget, SearchOutcome};
pub use session::{
    QueryAnswer, QueryRequest, ReloadOutcome, Session, SessionBuilder, SessionError,
    SessionOptions, SessionStats,
};
pub use sim_engine::SimEngine;
pub use sweep::{
    derive_refinement, sweep_failures, RefinementProvenance, ScenarioOutcome, ScenarioRefinement,
    SweepOptions, SweepReport,
};
